//! `emsplit` — a command-line front end for the library.
//!
//! Operates on flat binary files of little-endian `u64` keys (8 bytes per
//! record), the native encoding of `emcore`'s file backend.
//!
//! ```text
//! emsplit gen <file> <n> [--workload uniform|sorted|reversed|zipf] [--seed S]
//! emsplit splitters <file> --k K [--min a] [--max b] [--stats]
//! emsplit partition <file> <out-dir> --k K [--min a] [--max b] [--stats]
//! emsplit quantiles <file> --q Q [--stats]
//! emsplit select <file> --ranks r1,r2,... [--stats]
//! emsplit sort <file> <out-file> [--stats]
//! emsplit serve <store-dir> [--shards N] [--batch-max N] [--batch-window-ms W]
//!               [--no-refine] [--deadline-ms D] [--degraded] [--breaker-threshold K]
//!               [--probe-ms P] [--metrics] [--metrics-file FILE] [--metrics-interval-ms I]
//! emsplit shard-build <store-dir> <name> <file> --shards N
//! emsplit metrics-report <series.jsonl>
//! emsplit verify <file> --k K [--min a] [--max b] -- s1 s2 ...
//! emsplit graph-gen <file> --kind rmat|grid [--scale S --edges E --seed S | --rows R --cols C]
//! emsplit graph-build <file> <out-file> [--directed] [--keep-loops] [--vertices N]
//! emsplit graph-cluster <file> [--rounds R] [--max-size C] [--labels FILE] [--stats]
//! emsplit graph-stats <file> [--buckets K]
//! ```
//!
//! The `graph-*` family operates on edge lists stored as flat `u64`
//! pair files (16 bytes per edge: `src` then `dst`, little-endian).
//! `graph-build` canonicalizes a raw edge list (symmetrize, drop
//! self-loops, sort, dedup) and writes the canonical pair file;
//! `graph-cluster` runs crash-recoverable size-capped label propagation
//! and prints `clusters=<c> digest=<hex>` — the digest is bit-identical
//! across `--mem`, `--workers`, and backend choices; `graph-stats`
//! prints the degree profile and (with `--buckets K`) the near-even
//! degree buckets realized by approximate K-partitioning. All three
//! take `--trace FILE` / `--trace-summary`; clustering rounds appear as
//! `graph/round#N` spans.
//!
//! `serve` opens (or creates) a persistent dataset store in `<store-dir>`
//! and answers line-oriented rank/quantile queries from stdin — see
//! `emserve::serve_session` for the protocol. Answers go to stdout exactly
//! as `select`/`quantiles` print them; status lines go to stderr.
//! With `--shards N` the store becomes a fleet root (`router/` +
//! `shard-000/` …): datasets opened in the session are split across `N`
//! per-shard stores at exact splitter boundaries and every query is
//! scatter/gathered by the co-ranking router — answers are bit-identical
//! to the single-store server. `shard-build` performs just the splitting
//! (registering `<file>` under `<name>` in the fleet at `<store-dir>`)
//! so a later `serve --shards N` session starts from the journaled shard
//! map without moving data.
//! `--deadline-ms` sheds queries that waited longer than `D` ms before
//! execution; with `--degraded` they are instead answered approximately
//! from the splitter skeleton (zero I/O, flagged on stderr with an
//! explicit rank-error bound). `--breaker-threshold` trips a dataset's
//! circuit breaker after `K` consecutive fully-failed fault batches
//! (fail-fast typed errors), and `--probe-ms` sets the cooldown before a
//! background probe tries to restore it.
//!
//! `--mem M` and `--block B` set the machine geometry (defaults 65536/1024
//! records — a more disk-like shape than the simulator defaults).
//! `--workers W` sorts with `W` threads (identical logical I/Os and
//! output; see `emsort::parallel_external_sort`) and `--cache-blocks C`
//! enables a `C`-block buffer-pool cache under the EM machine (hits charge
//! logical but not physical I/Os).
//!
//! `--trace FILE` streams a JSONL I/O trace of the run (render it with the
//! `trace_report` tool); `--trace-summary` prints the span tree and
//! per-file access summary to stderr without writing a file.
//!
//! `--metrics` turns on the live metrics registry for a `serve` session:
//! the `metrics` protocol verb then scrapes a Prometheus-style text
//! exposition (latency histograms, breaker/lease/queue gauges) on stderr.
//! `--metrics-file FILE` additionally runs a background sampler that
//! appends a JSONL snapshot of every instrument each
//! `--metrics-interval-ms` (default 100) — render the series afterwards
//! with `emsplit metrics-report FILE`.
//!
//! `--mem-squeeze W` ratchets the live memory budget down to `W` words a
//! few milliseconds into the run (`--squeeze-at-ms D`, default 5) and
//! optionally restores it (`--restore-at-ms R`) — a CLI harness for the
//! memory governor's mid-run reclaim path. Algorithms adapt at phase
//! boundaries (smaller runs, narrower fan-in/fan-out) and produce
//! bit-identical output. `--mem-governor` adds governor gauges (budget,
//! leases, denials, reclaims) to the `--stats` report. For `serve`,
//! `--lease-floor W` reserves a per-dataset memory floor with the governor
//! and `--lease-weight X` sets its fair-share weight.

use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use em_splitters::prelude::*;

struct Args {
    positional: Vec<String>,
    flags: std::collections::BTreeMap<String, String>,
    trailing: Vec<String>,
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let mut trailing = Vec::new();
    let mut it = std::env::args().skip(1).peekable();
    let mut in_trailing = false;
    while let Some(a) = it.next() {
        if in_trailing {
            trailing.push(a);
        } else if a == "--" {
            in_trailing = true;
        } else if let Some(name) = a.strip_prefix("--") {
            let val = if it.peek().is_some_and(|v| !v.starts_with("--")) {
                it.next().unwrap_or_default()
            } else {
                "true".to_string()
            };
            flags.insert(name.to_string(), val);
        } else {
            positional.push(a);
        }
    }
    Args {
        positional,
        flags,
        trailing,
    }
}

impl Args {
    fn flag_u64(&self, name: &str, default: u64) -> u64 {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("--{name} expects a number")))
            })
            .unwrap_or(default)
    }
    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("emsplit: {msg}");
    eprintln!("run `emsplit help` for usage");
    std::process::exit(2)
}

fn read_keys(path: &Path) -> Vec<u64> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
    if bytes.len() % 8 != 0 {
        die(&format!(
            "{} is not a u64 file (length {} not a multiple of 8)",
            path.display(),
            bytes.len()
        ));
    }
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

fn write_keys(path: &Path, keys: &[u64]) {
    let mut out = Vec::with_capacity(keys.len() * 8);
    for k in keys {
        out.extend_from_slice(&k.to_le_bytes());
    }
    std::fs::write(path, out)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
}

/// Read a flat `u64` file as `(src, dst)` edge pairs (16 bytes/edge).
fn read_pairs(path: &Path) -> Vec<(u64, u64)> {
    let keys = read_keys(path);
    if !keys.len().is_multiple_of(2) {
        die(&format!(
            "{} is not an edge pair file (odd u64 count {})",
            path.display(),
            keys.len()
        ));
    }
    keys.chunks_exact(2).map(|c| (c[0], c[1])).collect()
}

fn write_pairs(path: &Path, pairs: &[(u64, u64)]) {
    let mut keys = Vec::with_capacity(pairs.len() * 2);
    for &(s, d) in pairs {
        keys.push(s);
        keys.push(d);
    }
    write_keys(path, &keys);
}

fn config(args: &Args) -> EmConfig {
    EmConfig::builder()
        .mem(args.flag_u64("mem", 65536) as usize)
        .block(args.flag_u64("block", 1024) as usize)
        .workers(args.flag_u64("workers", 1) as usize)
        .cache_blocks(args.flag_u64("cache-blocks", 0) as usize)
        .build()
        .unwrap_or_else(|e| die(&format!("bad geometry: {e}")))
}

fn machine(args: &Args) -> EmContext {
    let ctx = EmContext::new_in_memory(config(args));
    setup_squeeze(&ctx, args);
    ctx
}

/// With `--mem-squeeze W`, ratchet the live budget down to `W` words
/// `--squeeze-at-ms` milliseconds into the run, and back to the configured
/// `M` after `--restore-at-ms` (0 = never restore). Runs detached: the
/// squeeze lands mid-job and the algorithms adapt at their next phase
/// boundary.
fn setup_squeeze(ctx: &EmContext, args: &Args) {
    let target = args.flag_u64("mem-squeeze", 0) as usize;
    if target == 0 {
        return;
    }
    let at = args.flag_u64("squeeze-at-ms", 5);
    let restore = args.flag_u64("restore-at-ms", 0);
    let full = ctx.config().mem_capacity();
    let ctx = ctx.clone();
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(at));
        match ctx.set_mem_budget(target) {
            Ok(got) => eprintln!("[governor] squeezed budget to {got} words"),
            Err(e) => eprintln!("[governor] squeeze failed: {e}"),
        }
        if restore > 0 {
            std::thread::sleep(std::time::Duration::from_millis(restore));
            match ctx.set_mem_budget(full) {
                Ok(_) => eprintln!("[governor] restored budget to {full} words"),
                Err(e) => eprintln!("[governor] restore failed: {e}"),
            }
        }
    });
}

fn load(ctx: &EmContext, path: &Path) -> EmFile<u64> {
    let keys = read_keys(path);
    ctx.stats()
        .paused(|| EmFile::from_slice(ctx, &keys))
        .unwrap_or_else(|e| die(&format!("load failed: {e}")))
}

fn spec_from(args: &Args, n: u64) -> ProblemSpec {
    let k = args.flag_u64("k", 0);
    if k == 0 {
        die("--k is required");
    }
    ProblemSpec::builder(n, k)
        .min_size(args.flag_u64("min", 0))
        .max_size(args.flag_u64("max", n))
        .build()
        .unwrap_or_else(|e| die(&format!("infeasible spec: {e}")))
}

/// Armed tracing state for one command, from `--trace` / `--trace-summary`.
struct TraceSetup {
    ring: Option<RingSink>,
    path: Option<PathBuf>,
}

/// Install a trace sink on `ctx` if the flags ask for one. `--trace FILE`
/// streams JSONL to the file; `--trace-summary` buffers events in memory
/// (bounded ring) and renders the report at the end of the command.
fn setup_trace(ctx: &EmContext, args: &Args) -> TraceSetup {
    let mut setup = TraceSetup {
        ring: None,
        path: None,
    };
    if let Some(p) = args.flags.get("trace") {
        if p == "true" {
            die("--trace expects a file path");
        }
        let path = PathBuf::from(p);
        ctx.trace_to_file(&path)
            .unwrap_or_else(|e| die(&format!("cannot open trace {}: {e}", path.display())));
        setup.path = Some(path);
    } else if args.has("trace-summary") {
        let ring = RingSink::new(1 << 20);
        ctx.set_trace_sink(Box::new(ring.clone()));
        setup.ring = Some(ring);
    }
    setup
}

/// Finish the trace (if one was armed) and render/report it.
fn finish_trace(ctx: &EmContext, setup: TraceSetup) {
    if setup.ring.is_none() && setup.path.is_none() {
        return;
    }
    ctx.finish_trace();
    if let Some(ring) = setup.ring {
        if ring.dropped() > 0 {
            eprintln!(
                "[trace] ring overflow: {} oldest events dropped",
                ring.dropped()
            );
        }
        let report = TraceReport::from_events(&ring.events());
        eprint!("{}", report.render_tree());
        eprintln!();
        eprint!("{}", report.render_files());
    }
    if let Some(path) = setup.path {
        eprintln!("[trace] wrote {}", path.display());
    }
}

fn print_stats(ctx: &EmContext, args: &Args) {
    let c = ctx.stats().snapshot();
    if args.has("mem-governor") || c.mem_denials != 0 || c.mem_reclaims != 0 {
        eprintln!(
            "[stats] memory: budget {} / {} words configured; {} denials, {} reclaims",
            ctx.mem_budget(),
            ctx.config().mem_capacity(),
            c.mem_denials,
            c.mem_reclaims
        );
    }
    if args.has("mem-governor") {
        let g = ctx.governor().snapshot();
        eprintln!(
            "[governor] total={} floors={} denials={} squeezes={} restores={}",
            g.total, g.floor_total, g.denials, g.squeezes, g.restores
        );
        for l in &g.leases {
            eprintln!(
                "[governor]   lease {} floor={} weight={} granted={}",
                l.name, l.floor, l.weight, l.granted
            );
        }
    }
    eprintln!(
        "[stats] {} I/Os ({} reads, {} writes); peak memory {} / {} words",
        c.total_ios(),
        c.reads,
        c.writes,
        ctx.mem().peak(),
        ctx.mem().capacity()
    );
    if ctx.cache().is_enabled() {
        eprintln!(
            "[stats] cache: {} hits / {} misses ({:.1}% hit rate); {} physical I/Os",
            c.cache_hits,
            c.cache_misses,
            100.0 * c.cache_hit_rate(),
            c.physical_ios()
        );
    }
    for (phase, pc) in ctx.stats().phase_totals() {
        eprintln!("[stats]   {phase:<28} {:>8} I/Os", pc.total_ios());
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let cmd = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    match cmd {
        "gen" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("gen needs <file>")),
            );
            let n = args
                .positional
                .get(2)
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| die("gen needs <n>"));
            let seed = args.flag_u64("seed", 42);
            let wl = match args.flags.get("workload").map(String::as_str) {
                None | Some("uniform") => Workload::UniformPerm,
                Some("sorted") => Workload::Sorted,
                Some("reversed") => Workload::Reversed,
                Some("zipf") => Workload::ZipfLike {
                    values: n.max(2) / 10,
                    s: 1.1,
                },
                Some(other) => die(&format!("unknown workload {other}")),
            };
            let keys = generate(wl, n, seed);
            write_keys(&path, &keys);
            eprintln!("wrote {n} records to {}", path.display());
        }
        "splitters" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("splitters needs <file>")),
            );
            let ctx = machine(&args);
            let trace = setup_trace(&ctx, &args);
            let file = load(&ctx, &path);
            let spec = spec_from(&args, file.len());
            let phase = ctx.stats().phase_guard("emsplit/splitters");
            let sp = approx_splitters(&file, &spec);
            drop(phase);
            let sp = sp.unwrap_or_else(|e| die(&format!("splitters failed: {e}")));
            let mut out = std::io::stdout().lock();
            for s in &sp {
                writeln!(out, "{s}").expect("stdout");
            }
            if args.has("stats") || args.has("mem-governor") {
                print_stats(&ctx, &args);
            }
            finish_trace(&ctx, trace);
        }
        "partition" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("partition needs <file>")),
            );
            let out_dir = PathBuf::from(
                args.positional
                    .get(2)
                    .unwrap_or_else(|| die("partition needs <out-dir>")),
            );
            std::fs::create_dir_all(&out_dir)
                .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", out_dir.display())));
            let ctx = machine(&args);
            let trace = setup_trace(&ctx, &args);
            let file = load(&ctx, &path);
            let spec = spec_from(&args, file.len());
            let phase = ctx.stats().phase_guard("emsplit/partition");
            let parts = approx_partitioning(&file, &spec);
            drop(phase);
            let parts = parts.unwrap_or_else(|e| die(&format!("partitioning failed: {e}")));
            for (i, p) in parts.iter().enumerate() {
                let keys = ctx
                    .stats()
                    .paused(|| p.to_vec())
                    .unwrap_or_else(|e| die(&format!("read-back failed: {e}")));
                write_keys(&out_dir.join(format!("part-{i:04}.bin")), &keys);
            }
            eprintln!("wrote {} partitions to {}", parts.len(), out_dir.display());
            if args.has("stats") || args.has("mem-governor") {
                print_stats(&ctx, &args);
            }
            finish_trace(&ctx, trace);
        }
        "quantiles" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("quantiles needs <file>")),
            );
            let q = args.flag_u64("q", 0);
            if q < 2 {
                die("--q must be at least 2");
            }
            let ctx = machine(&args);
            let trace = setup_trace(&ctx, &args);
            let file = load(&ctx, &path);
            let phase = ctx.stats().phase_guard("emsplit/quantiles");
            let qs = quantiles(&file, q);
            drop(phase);
            let qs = qs.unwrap_or_else(|e| die(&format!("quantiles failed: {e}")));
            let mut out = std::io::stdout().lock();
            for s in &qs {
                writeln!(out, "{s}").expect("stdout");
            }
            if args.has("stats") || args.has("mem-governor") {
                print_stats(&ctx, &args);
            }
            finish_trace(&ctx, trace);
        }
        "select" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("select needs <file>")),
            );
            let ranks: Vec<u64> = args
                .flags
                .get("ranks")
                .unwrap_or_else(|| die("select needs --ranks r1,r2,..."))
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .unwrap_or_else(|_| die(&format!("bad rank {t:?}")))
                })
                .collect();
            if ranks.is_empty() {
                die("select needs at least one rank");
            }
            let ctx = machine(&args);
            let trace = setup_trace(&ctx, &args);
            let file = load(&ctx, &path);
            let phase = ctx.stats().phase_guard("emsplit/select");
            let ans = multi_select(&file, &ranks);
            drop(phase);
            let ans = ans.unwrap_or_else(|e| die(&format!("select failed: {e}")));
            let mut out = std::io::stdout().lock();
            for x in &ans {
                writeln!(out, "{x}").expect("stdout");
            }
            if args.has("stats") || args.has("mem-governor") {
                print_stats(&ctx, &args);
            }
            finish_trace(&ctx, trace);
        }
        "serve" => {
            let store = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("serve needs <store-dir>")),
            );
            std::fs::create_dir_all(&store)
                .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", store.display())));
            // --shards N serves a splitter-partitioned fleet under the
            // store root; the router's context carries the fleet-shared
            // metrics registry, so sampling/tracing attach to it either way.
            let shards = args.flag_u64("shards", 0) as usize;
            let (ctx, shard_ctxs) = if shards > 0 {
                let (rc, scs) =
                    shard_fleet_on_disk(config(&args), &store, shards).unwrap_or_else(|e| {
                        die(&format!("cannot open fleet {}: {e}", store.display()))
                    });
                (rc, Some(scs))
            } else {
                let ctx = EmContext::new_on_disk(config(&args), &store).unwrap_or_else(|e| {
                    die(&format!("cannot open store {}: {e}", store.display()))
                });
                (ctx, None)
            };
            setup_squeeze(&ctx, &args);
            let trace = setup_trace(&ctx, &args);
            // --metrics / --metrics-file arm the live registry; the
            // sampler (if any) snapshots it into a JSONL series for
            // `emsplit metrics-report`.
            let metrics_file = args.flags.get("metrics-file").cloned();
            if metrics_file.as_deref() == Some("true") {
                die("--metrics-file expects a file path");
            }
            if args.has("metrics") || metrics_file.is_some() {
                ctx.metrics().set_enabled(true);
            }
            let sampler = metrics_file.as_ref().map(|p| {
                let interval = std::time::Duration::from_millis(
                    args.flag_u64("metrics-interval-ms", 100).max(1),
                );
                Sampler::to_file(ctx.metrics().clone(), ctx.clock(), interval, p)
                    .unwrap_or_else(|e| die(&format!("cannot open metrics file {p}: {e}")))
            });
            let defaults = ServeOptions::default();
            let deadline_ms = args.flag_u64("deadline-ms", 0);
            let opts = ServeOptions::builder()
                .batch_max(args.flag_u64("batch-max", defaults.batch_max as u64) as usize)
                .batch_window(std::time::Duration::from_millis(args.flag_u64(
                    "batch-window-ms",
                    defaults.batch_window.as_millis() as u64,
                )))
                .queue_depth(args.flag_u64("queue-depth", defaults.queue_depth as u64) as usize)
                .refine(!args.has("no-refine"))
                .deadline((deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)))
                .degraded(args.has("degraded"))
                .breaker_threshold(
                    args.flag_u64("breaker-threshold", defaults.breaker_threshold as u64) as u32,
                )
                .probe_cooldown(std::time::Duration::from_millis(
                    args.flag_u64("probe-ms", defaults.probe_cooldown.as_millis() as u64),
                ))
                .lease_floor(args.flag_u64("lease-floor", 0) as usize)
                .lease_weight(args.flag_u64("lease-weight", 1) as u32)
                .build();
            let stdin = std::io::stdin();
            let report = match &shard_ctxs {
                Some(scs) => {
                    let mut router = Router::<u64>::start(&ctx, scs, opts)
                        .unwrap_or_else(|e| die(&format!("cannot start fleet: {e}")));
                    let session = serve_session(
                        &router,
                        stdin.lock(),
                        std::io::stdout().lock(),
                        std::io::stderr().lock(),
                    );
                    let merged = router.shutdown();
                    let report = session
                        .and(merged)
                        .unwrap_or_else(|e| die(&format!("serve failed: {e}")));
                    eprintln!(
                        "[serve] fleet of {} shards; {} key ranges degraded by routing",
                        scs.len(),
                        router.degraded_key_ranges()
                    );
                    report
                }
                None => {
                    let mut server = QueryServer::<u64>::start(&ctx, opts)
                        .unwrap_or_else(|e| die(&format!("cannot start server: {e}")));
                    let session = serve_session(
                        &server,
                        stdin.lock(),
                        std::io::stdout().lock(),
                        std::io::stderr().lock(),
                    );
                    let report = server.shutdown();
                    session
                        .and(report)
                        .unwrap_or_else(|e| die(&format!("serve failed: {e}")))
                }
            };
            eprintln!(
                "[serve] {} queries in {} batches; {} index hits, {} selected; \
                 {} failed ({} quarantined), {} shed, {} degraded ({} on memory), \
                 {} breaker trips; budget {} words, {} leases (floor {}), {} lease denials",
                report.queries,
                report.batches,
                report.index_hits,
                report.selected,
                report.failed,
                report.quarantined,
                report.shed,
                report.degraded,
                report.mem_degraded,
                report.breaker_trips,
                report.mem_budget_words,
                report.leases,
                report.lease_floor_words,
                report.lease_denials
            );
            if let Some(s) = sampler {
                match s.stop() {
                    Ok(()) => eprintln!(
                        "[metrics] wrote series to {}",
                        metrics_file.as_deref().unwrap_or("?")
                    ),
                    Err(e) => eprintln!("[metrics] sampler failed: {e}"),
                }
            }
            if args.has("stats") || args.has("mem-governor") {
                print_stats(&ctx, &args);
            }
            finish_trace(&ctx, trace);
        }
        "shard-build" => {
            let store = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("shard-build needs <store-dir>")),
            );
            let name = args
                .positional
                .get(2)
                .unwrap_or_else(|| die("shard-build needs <name>"))
                .clone();
            let path = PathBuf::from(
                args.positional
                    .get(3)
                    .unwrap_or_else(|| die("shard-build needs <file>")),
            );
            let shards = args.flag_u64("shards", 0) as usize;
            if shards == 0 {
                die("--shards is required");
            }
            std::fs::create_dir_all(&store)
                .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", store.display())));
            let (rc, scs) = shard_fleet_on_disk(config(&args), &store, shards)
                .unwrap_or_else(|e| die(&format!("cannot open fleet {}: {e}", store.display())));
            let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default())
                .unwrap_or_else(|e| die(&format!("cannot start fleet: {e}")));
            let keys = read_keys(&path);
            let n = router
                .register(&name, keys)
                .unwrap_or_else(|e| die(&format!("shard build failed: {e}")));
            // One "cut-rank boundary-key" line per shard holding data —
            // the journaled splitter boundaries the router routes by.
            let mut out = std::io::stdout().lock();
            for (rank, key) in router.boundaries(&name).unwrap_or_default() {
                writeln!(out, "{rank} {key}").expect("stdout");
            }
            eprintln!(
                "sharded {n} records of {name} across {shards} shards in {}",
                store.display()
            );
            router
                .shutdown()
                .unwrap_or_else(|e| die(&format!("fleet shutdown failed: {e}")));
            if args.has("stats") || args.has("mem-governor") {
                print_stats(&rc, &args);
            }
        }
        "metrics-report" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("metrics-report needs <series.jsonl>")),
            );
            let input = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
            let report = render_series_report(&input)
                .unwrap_or_else(|e| die(&format!("bad metrics series: {e}")));
            print!("{report}");
        }
        "sort" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("sort needs <file>")),
            );
            let out_path = PathBuf::from(
                args.positional
                    .get(2)
                    .unwrap_or_else(|| die("sort needs <out-file>")),
            );
            let ctx = machine(&args);
            let trace = setup_trace(&ctx, &args);
            let file = load(&ctx, &path);
            let phase = ctx.stats().phase_guard("emsplit/sort");
            let sorted = external_sort(&file);
            drop(phase);
            let sorted = sorted.unwrap_or_else(|e| die(&format!("sort failed: {e}")));
            let keys = ctx
                .stats()
                .paused(|| sorted.to_vec())
                .unwrap_or_else(|e| die(&format!("read-back failed: {e}")));
            write_keys(&out_path, &keys);
            eprintln!("sorted {} records into {}", keys.len(), out_path.display());
            if args.has("stats") || args.has("mem-governor") {
                print_stats(&ctx, &args);
            }
            finish_trace(&ctx, trace);
        }
        "verify" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("verify needs <file>")),
            );
            let ctx = machine(&args);
            let file = load(&ctx, &path);
            let spec = spec_from(&args, file.len());
            let splitters: Vec<u64> = args
                .trailing
                .iter()
                .map(|s| {
                    s.parse()
                        .unwrap_or_else(|_| die("splitters must be u64 keys"))
                })
                .collect();
            let mut sp = splitters;
            sp.sort_unstable();
            let rep = verify_splitters(&file, &sp, &spec)
                .unwrap_or_else(|e| die(&format!("verify failed: {e}")));
            if rep.ok {
                eprintln!(
                    "OK: all {} partition sizes within [{}, {}]",
                    rep.sizes.len(),
                    spec.a,
                    spec.b
                );
            } else {
                eprintln!(
                    "INVALID: sizes {:?}, violations at {:?}",
                    rep.sizes, rep.violations
                );
                return ExitCode::FAILURE;
            }
        }
        "graph-gen" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("graph-gen needs <file>")),
            );
            let pairs = match args.flags.get("kind").map(String::as_str) {
                None | Some("rmat") => {
                    let scale = args.flag_u64("scale", 10) as u32;
                    let edges = args.flag_u64("edges", 1 << (scale + 2));
                    rmat_edges(scale, edges, args.flag_u64("seed", 42))
                }
                Some("grid") => grid_edges(args.flag_u64("rows", 32), args.flag_u64("cols", 32)),
                Some(other) => die(&format!("unknown graph kind {other}")),
            };
            write_pairs(&path, &pairs);
            eprintln!("wrote {} edges to {}", pairs.len(), path.display());
        }
        "graph-build" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("graph-build needs <file>")),
            );
            let out_path = PathBuf::from(
                args.positional
                    .get(2)
                    .unwrap_or_else(|| die("graph-build needs <out-file>")),
            );
            let ctx = machine(&args);
            let trace = setup_trace(&ctx, &args);
            let raw = edges_from_pairs(&ctx, &read_pairs(&path))
                .unwrap_or_else(|e| die(&format!("load failed: {e}")));
            let vertices = args.flag_u64("vertices", 0);
            let opts = BuildOptions {
                symmetrize: !args.has("directed"),
                drop_self_loops: !args.has("keep-loops"),
                vertices: (vertices > 0).then_some(vertices),
            };
            let g = build_graph(&ctx, &raw, &opts)
                .unwrap_or_else(|e| die(&format!("graph build failed: {e}")));
            let canon = ctx
                .stats()
                .paused(|| g.edges().to_vec())
                .unwrap_or_else(|e| die(&format!("read-back failed: {e}")));
            write_pairs(
                &out_path,
                &canon.iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>(),
            );
            eprintln!(
                "canonicalized {} raw edges into {} ({} vertices, {} edges, max degree {})",
                raw.len(),
                out_path.display(),
                g.vertices(),
                g.num_edges(),
                g.max_degree()
            );
            if args.has("stats") || args.has("mem-governor") {
                print_stats(&ctx, &args);
            }
            finish_trace(&ctx, trace);
        }
        "graph-cluster" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("graph-cluster needs <file>")),
            );
            let ctx = machine(&args);
            let trace = setup_trace(&ctx, &args);
            let raw = edges_from_pairs(&ctx, &read_pairs(&path))
                .unwrap_or_else(|e| die(&format!("load failed: {e}")));
            let g = build_graph(&ctx, &raw, &BuildOptions::default())
                .unwrap_or_else(|e| die(&format!("graph build failed: {e}")));
            let opts = ClusterOptions {
                rounds: args.flag_u64("rounds", 8) as u32,
                max_cluster_size: args.flag_u64("max-size", 0),
            };
            let c = cluster(&g, &opts).unwrap_or_else(|e| die(&format!("clustering failed: {e}")));
            let digest =
                labels_digest(&c.labels).unwrap_or_else(|e| die(&format!("digest failed: {e}")));
            println!("clusters={} digest={digest:016x}", c.clusters);
            eprintln!(
                "[cluster] {} vertices, {} rounds run, moves per round {:?}",
                g.vertices(),
                c.rounds_run,
                c.moves
            );
            if let Some(p) = args.flags.get("labels") {
                if p == "true" {
                    die("--labels expects a file path");
                }
                let labels = ctx
                    .stats()
                    .paused(|| c.labels.to_vec())
                    .unwrap_or_else(|e| die(&format!("read-back failed: {e}")));
                write_keys(&PathBuf::from(p), &labels);
                eprintln!("[cluster] wrote {} labels to {p}", labels.len());
            }
            if args.has("stats") || args.has("mem-governor") {
                print_stats(&ctx, &args);
            }
            finish_trace(&ctx, trace);
        }
        "graph-stats" => {
            let path = PathBuf::from(
                args.positional
                    .get(1)
                    .unwrap_or_else(|| die("graph-stats needs <file>")),
            );
            let ctx = machine(&args);
            let trace = setup_trace(&ctx, &args);
            let raw = edges_from_pairs(&ctx, &read_pairs(&path))
                .unwrap_or_else(|e| die(&format!("load failed: {e}")));
            let g = build_graph(&ctx, &raw, &BuildOptions::default())
                .unwrap_or_else(|e| die(&format!("graph build failed: {e}")));
            println!(
                "vertices={} edges={} max-degree={}",
                g.vertices(),
                g.num_edges(),
                g.max_degree()
            );
            let k = args.flag_u64("buckets", 0);
            if k > 0 {
                let b = degree_buckets(&g, k)
                    .unwrap_or_else(|e| die(&format!("bucketing failed: {e}")));
                let ranges = b
                    .score_ranges()
                    .unwrap_or_else(|e| die(&format!("bucket scan failed: {e}")));
                for (i, (size, range)) in b.sizes().iter().zip(&ranges).enumerate() {
                    match range {
                        Some((lo, hi)) => {
                            println!("bucket={i} size={size} degrees=[{lo}, {hi}]")
                        }
                        None => println!("bucket={i} size=0"),
                    }
                }
            }
            if args.has("stats") || args.has("mem-governor") {
                print_stats(&ctx, &args);
            }
            finish_trace(&ctx, trace);
        }
        _ => {
            eprintln!(
                "emsplit — approximate partitions and splitters in external memory\n\
                 \n\
                 usage:\n\
                 \x20 emsplit gen <file> <n> [--workload uniform|sorted|reversed|zipf] [--seed S]\n\
                 \x20 emsplit splitters <file> --k K [--min a] [--max b] [--stats]\n\
                 \x20 emsplit partition <file> <out-dir> --k K [--min a] [--max b] [--stats]\n\
                 \x20 emsplit quantiles <file> --q Q [--stats]\n\
                 \x20 emsplit select <file> --ranks r1,r2,... [--stats]\n\
                 \x20 emsplit sort <file> <out-file> [--stats]\n\
                 \x20 emsplit serve <store-dir> [--shards N] [--batch-max N] [--batch-window-ms W]\n\
                 \x20               [--no-refine] [--deadline-ms D] [--degraded] [--breaker-threshold K]\n\
                 \x20               [--probe-ms P] [--metrics] [--metrics-file FILE] [--metrics-interval-ms I]\n\
                 \x20 emsplit shard-build <store-dir> <name> <file> --shards N\n\
                 \x20 emsplit metrics-report <series.jsonl>\n\
                 \x20 emsplit verify <file> --k K [--min a] [--max b] -- s1 s2 ...\n\
                 \x20 emsplit graph-gen <file> [--kind rmat|grid] [--scale S --edges E --seed S | --rows R --cols C]\n\
                 \x20 emsplit graph-build <file> <out-file> [--directed] [--keep-loops] [--vertices N] [--stats]\n\
                 \x20 emsplit graph-cluster <file> [--rounds R] [--max-size C] [--labels FILE] [--stats]\n\
                 \x20 emsplit graph-stats <file> [--buckets K]\n\
                 \x20   (graph files are flat u64 pair arrays: 16 bytes per src,dst edge)\n\
                 \n\
                 common flags: --mem M --block B   (machine geometry, records)\n\
                 \x20             --workers W        (parallel sort threads; same logical I/Os)\n\
                 \x20             --cache-blocks C   (buffer-pool block cache; 0 = off)\n\
                 \x20             --trace FILE       (stream a JSONL I/O trace; see trace_report)\n\
                 \x20             --trace-summary    (print span tree + file access to stderr)\n\
                 files are flat little-endian u64 arrays (8 bytes per record)"
            );
        }
    }
    ExitCode::SUCCESS
}
