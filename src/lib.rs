//! # em-splitters
//!
//! A reproduction of **"Finding Approximate Partitions and Splitters in
//! External Memory"** (Hu, Tao, Yang, Zhou; SPAA 2014) as a Rust
//! workspace: the external-memory model as a measurable runtime, the full
//! algorithm stack (external sorting, L-intermixed selection, I/O-optimal
//! multi-selection, multi-partition), the paper's approximate K-splitters
//! and K-partitioning algorithms, baselines, verifiers, workload
//! generators, and a benchmark harness regenerating the paper's Table 1.
//!
//! This umbrella crate re-exports the workspace's public surface:
//!
//! * [`emcore`] — the EM-model runtime: [`emcore::EmContext`],
//!   [`emcore::EmFile`], I/O stats, memory metering.
//! * [`emsort`] — external merge sort (the paper's §1.2 baseline).
//! * [`emselect`] — the selection stack: [`emselect::multi_select`]
//!   (Theorem 4), [`emselect::intermixed_select`] (§4.1),
//!   [`emselect::multi_partition`] (Aggarwal–Vitter).
//! * [`apsplit`] — the headline algorithms: [`apsplit::approx_splitters`]
//!   (Theorem 5) and [`apsplit::approx_partitioning`] (Theorem 6).
//! * [`workloads`] — seeded input generators, including the paper's hard
//!   permutation family `Π_hard`.
//! * [`emserve`] — the serving layer: a persistent dataset catalog, a
//!   batch-coalescing [`emserve::QueryServer`], the journaled
//!   [`emserve::SplitterIndex`] for online multiselection, and the
//!   sharded scale-out tier — [`emserve::Router`] scatter/gathers rank
//!   queries across splitter-partitioned shards behind the same
//!   transport-agnostic [`emserve::QueryService`] trait.
//! * [`emgraph`] — semi-external graph partitioning and clustering on
//!   top of the stack: canonical edge files ([`emgraph::build_graph`]),
//!   crash-recoverable size-capped label propagation
//!   ([`emgraph::cluster`]), degree/cluster bucketing via approximate
//!   K-partitioning, and clustering-as-dataset serve integration.
//!
//! ## Quickstart
//!
//! ```
//! use em_splitters::prelude::*;
//!
//! // An external-memory "machine" with M = 4096 records of memory and
//! // blocks of B = 64 records.
//! let ctx = EmContext::new_in_memory(EmConfig::medium());
//!
//! // 100k records on its disk.
//! let data: Vec<u64> = (0..100_000).rev().collect();
//! let file = EmFile::from_slice(&ctx, &data).unwrap();
//! ctx.stats().reset();
//!
//! // Split into 16 ranges of between 4 and 100_000 records each — a
//! // right-grounded instance, solvable in sublinear I/O.
//! let spec = ProblemSpec::builder(100_000, 16).min_size(4).build().unwrap();
//! let splitters = approx_splitters(&file, &spec).unwrap();
//!
//! // Far fewer I/Os than even one scan of the input:
//! assert!(ctx.stats().snapshot().total_ios() < 100_000 / 64 / 10);
//!
//! // The verification scan (not part of the algorithm) confirms validity.
//! let report = verify_splitters(&file, &splitters, &spec).unwrap();
//! assert!(report.ok);
//! ```

pub use apsplit;
pub use emcore;
pub use emgraph;
pub use emselect;
pub use emserve;
pub use emsort;
pub use workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use apsplit::{
        approx_partitioning, approx_partitioning_recoverable, approx_splitters, balanced_loads,
        equi_depth_histogram, median, precise_partitioning, precise_via_approx,
        sort_based_partitioning, sort_based_splitters, top_k, verify_multiselect,
        verify_partitioning, verify_splitters, Groundedness, PartitionJob, PartitionManifest,
        ProblemSpec, ProblemSpecBuilder,
    };
    pub use emcore::metrics::render_series_report;
    pub use emcore::{
        run_recoverable, BlockCache, Clock, EmConfig, EmContext, EmError, EmFile, FaultPlan,
        HistogramSnapshot, Journal, JsonlSink, ManualClock, MetricSample, MetricsRegistry,
        MetricsSnapshot, Record, RecoverableJob, Result, RetryPolicy, RingSink, Sampler,
        TraceReport, TraceSink, WallClock,
    };
    pub use emgraph::{
        build_graph, cluster, cluster_buckets, cluster_sizes, count_clusters, degree_buckets,
        edges_from_pairs, labels_digest, rebind_graph, register_cluster_sizes, register_clustering,
        score_buckets, Buckets, BuildOptions, ClusterJob, ClusterManifest, ClusterOptions,
        Clustering, Edge, Graph,
    };
    pub use emselect::{
        multi_select, multi_select_recoverable, quantiles, select_rank, MsOptions, MultiSelectJob,
        MultiSelectManifest, Partition,
    };
    #[allow(deprecated)]
    pub use emserve::serve_lines;
    pub use emserve::{
        serve_session, shard_fleet_in_memory, shard_fleet_on_disk, BreakerState, Catalog,
        QueryAnswer, QueryOptions, QueryServer, QueryService, Request, Response, Router,
        ServeOptions, ServeReport, ServiceTicket, ShardMap, SplitterIndex, PROTOCOL_VERSION,
    };
    pub use emsort::{
        external_sort, external_sort_recoverable, parallel_external_sort, SortJob, SortManifest,
    };
    pub use workloads::{
        degree_histogram, generate, grid_edges, materialize, rmat_edges, Workload,
    };
}
