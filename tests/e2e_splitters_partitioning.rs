//! Cross-crate end-to-end tests: workloads → algorithms → verifiers,
//! across groundedness regimes, workload families, configurations and
//! backends.

use em_splitters::prelude::*;
use emselect::{MsBaseCase, MsOptions, SplitterStrategy};
use workloads::Workload;

const CONFIGS: &[(usize, usize)] = &[(256, 16), (1024, 32), (4096, 64)];

fn specs_for(n: u64, k: u64) -> Vec<ProblemSpec> {
    vec![
        ProblemSpec::new(n, k, 0, n).unwrap(),
        ProblemSpec::new(n, k, 0, (2 * n) / k).unwrap(),
        ProblemSpec::new(n, k, 2, n).unwrap(),
        ProblemSpec::new(n, k, n / (4 * k), n / 2).unwrap(),
        ProblemSpec::new(n, k, n / k, n.div_ceil(k)).unwrap(),
    ]
}

#[test]
fn splitters_all_regimes_all_configs() {
    for &(m, b) in CONFIGS {
        let cfg = EmConfig::new(m, b).unwrap();
        let ctx = EmContext::new_in_memory(cfg);
        let n = 6000u64;
        let file = materialize(&ctx, Workload::UniformPerm, n, 11).unwrap();
        for spec in specs_for(n, 8) {
            let sp = approx_splitters(&file, &spec)
                .unwrap_or_else(|e| panic!("{spec} on M={m},B={b}: {e}"));
            let rep = verify_splitters(&file, &sp, &spec).unwrap();
            assert!(rep.ok, "{spec} M={m} B={b}: sizes {:?}", rep.sizes);
        }
    }
}

#[test]
fn partitioning_all_regimes_all_configs() {
    for &(m, b) in CONFIGS {
        let cfg = EmConfig::new(m, b).unwrap();
        let ctx = EmContext::new_in_memory(cfg);
        let n = 6000u64;
        let file = materialize(&ctx, Workload::UniformPerm, n, 12).unwrap();
        for spec in specs_for(n, 8) {
            let parts = approx_partitioning(&file, &spec)
                .unwrap_or_else(|e| panic!("{spec} on M={m},B={b}: {e}"));
            let rep = verify_partitioning(&parts, &spec).unwrap();
            assert!(rep.ok, "{spec} M={m} B={b}: {:?}", rep.sizes);
        }
    }
}

#[test]
fn all_workload_families() {
    let cfg = EmConfig::new(1024, 32).unwrap();
    let n = 5000u64;
    let wls = [
        Workload::UniformPerm,
        Workload::Sorted,
        Workload::Reversed,
        Workload::NearlySorted { frac: 0.05 },
        Workload::HardBlockColumns { block: 32 },
    ];
    for wl in wls {
        let ctx = EmContext::new_in_memory(cfg);
        let file = materialize(&ctx, wl, n, 13).unwrap();
        let spec = ProblemSpec::new(n, 10, 2, n / 2).unwrap();
        let sp = approx_splitters(&file, &spec)
            .unwrap_or_else(|e| panic!("{} splitters: {e}", workloads::name(wl)));
        let rep = verify_splitters(&file, &sp, &spec).unwrap();
        assert!(rep.ok, "{}: {:?}", workloads::name(wl), rep.sizes);

        let parts = approx_partitioning(&file, &spec).unwrap();
        let rep = verify_partitioning(&parts, &spec).unwrap();
        assert!(
            rep.ok,
            "{} partitioning: {:?}",
            workloads::name(wl),
            rep.sizes
        );
    }
}

#[test]
fn duplicate_heavy_workloads_with_indexed_records() {
    use emcore::Indexed;
    let cfg = EmConfig::new(1024, 32).unwrap();
    let n = 4000u64;
    for wl in [
        Workload::FewDistinct { values: 5 },
        Workload::ZipfLike { values: 50, s: 1.2 },
    ] {
        let ctx = EmContext::new_in_memory(cfg);
        let keys = workloads::generate(wl, n, 14);
        let data: Vec<Indexed<u64>> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Indexed::new(k, i as u64))
            .collect();
        let file = ctx
            .stats()
            .paused(|| emcore::EmFile::from_slice(&ctx, &data))
            .unwrap();
        let spec = ProblemSpec::new(n, 8, 100, n / 2).unwrap();
        let sp = approx_splitters(&file, &spec).unwrap();
        let rep = verify_splitters(&file, &sp, &spec).unwrap();
        assert!(rep.ok, "{}: {:?}", workloads::name(wl), rep.sizes);
        let parts = approx_partitioning(&file, &spec).unwrap();
        let rep = verify_partitioning(&parts, &spec).unwrap();
        assert!(rep.ok, "{} partitioning", workloads::name(wl));
    }
}

#[test]
fn duplicate_heavy_left_grounded_plain_keys() {
    // With a = 0, duplicate keys are fine even without Indexed.
    let cfg = EmConfig::new(1024, 32).unwrap();
    let ctx = EmContext::new_in_memory(cfg);
    let n = 4000u64;
    let file = materialize(&ctx, Workload::FewDistinct { values: 40 }, n, 15).unwrap();
    let spec = ProblemSpec::new(n, 8, 0, n / 4).unwrap();
    let parts = approx_partitioning(&file, &spec).unwrap();
    let rep = verify_partitioning(&parts, &spec).unwrap();
    assert!(rep.ok, "{:?}", rep.sizes);
}

#[test]
fn file_backend_matches_memory_backend() {
    // Same algorithm, same data: the real-file backend must produce the
    // same splitters AND the same I/O counts as the memory backend.
    let cfg = EmConfig::new(1024, 32).unwrap();
    let n = 5000u64;
    let spec = ProblemSpec::new(n, 8, 4, n / 2).unwrap();

    let run = |ctx: &EmContext| {
        let file = materialize(ctx, Workload::UniformPerm, n, 16).unwrap();
        ctx.stats().reset();
        let sp = approx_splitters(&file, &spec).unwrap();
        (sp, ctx.stats().snapshot().total_ios())
    };
    let mem_ctx = EmContext::new_in_memory(cfg);
    let disk_ctx = EmContext::new_on_disk_temp(cfg).unwrap();
    let (sp_mem, io_mem) = run(&mem_ctx);
    let (sp_disk, io_disk) = run(&disk_ctx);
    assert_eq!(sp_mem, sp_disk, "backends must agree on the output");
    assert_eq!(io_mem, io_disk, "backends must agree on I/O counts");
}

#[test]
fn randomized_strategy_end_to_end() {
    let cfg = EmConfig::new(1024, 32).unwrap();
    let ctx = EmContext::new_in_memory(cfg);
    let n = 6000u64;
    let file = materialize(&ctx, Workload::UniformPerm, n, 17).unwrap();
    let spec = ProblemSpec::new(n, 8, 4, n / 2).unwrap();
    let opts = MsOptions {
        strategy: SplitterStrategy::Randomized { seed: 5 },
        base_capacity_override: None,
        base_case: MsBaseCase::default(),
    };
    let sp = apsplit::approx_splitters_with(&file, &spec, opts).unwrap();
    let rep = verify_splitters(&file, &sp, &spec).unwrap();
    assert!(rep.ok);
}

#[test]
fn intermixed_engine_end_to_end() {
    // The paper-faithful §4.2 base case, driven through the full
    // splitters pipeline.
    let cfg = EmConfig::new(4096, 64).unwrap();
    let ctx = EmContext::new_in_memory(cfg);
    let n = 50_000u64;
    let file = materialize(&ctx, Workload::UniformPerm, n, 18).unwrap();
    let spec = ProblemSpec::new(n, 16, 8, n / 2).unwrap();
    let opts = MsOptions {
        strategy: SplitterStrategy::Deterministic,
        base_capacity_override: None,
        base_case: MsBaseCase::Intermixed,
    };
    let sp = apsplit::approx_splitters_with(&file, &spec, opts).unwrap();
    let rep = verify_splitters(&file, &sp, &spec).unwrap();
    assert!(rep.ok, "{:?}", rep.sizes);
}

#[test]
fn applications_end_to_end() {
    let ctx = EmContext::new_in_memory(EmConfig::new(1024, 32).unwrap());
    let n = 8000u64;
    let file = materialize(
        &ctx,
        Workload::ZipfLike {
            values: 500,
            s: 1.0,
        },
        n,
        19,
    )
    .unwrap();

    let hist = equi_depth_histogram(&file, 8, 0.25).unwrap();
    assert_eq!(hist.counts.iter().sum::<u64>(), n);
    assert_eq!(hist.boundaries.len(), 7);

    let uniform = materialize(&ctx, Workload::UniformPerm, n, 20).unwrap();
    let loads = balanced_loads(&uniform, 8, 0.3).unwrap();
    assert_eq!(loads.len(), 8);
    assert_eq!(loads.iter().map(|l| l.len()).sum::<u64>(), n);
}

#[test]
fn sort_and_select_agree_with_reference() {
    let ctx = EmContext::new_in_memory(EmConfig::new(1024, 32).unwrap());
    let n = 7000u64;
    let data = workloads::generate(Workload::UniformPerm, n, 21);
    let file = ctx
        .stats()
        .paused(|| emcore::EmFile::from_slice(&ctx, &data))
        .unwrap();

    let sorted = external_sort(&file).unwrap().to_vec().unwrap();
    let mut want = data.clone();
    want.sort_unstable();
    assert_eq!(sorted, want);

    let ranks = vec![1, n / 3, n / 2, n - 1, n];
    let got = multi_select(&file, &ranks).unwrap();
    let expect: Vec<u64> = ranks.iter().map(|&r| want[(r - 1) as usize]).collect();
    assert_eq!(got, expect);
}

#[test]
fn precise_reduction_cross_checks() {
    let ctx = EmContext::new_in_memory(EmConfig::new(1024, 32).unwrap());
    let n = 6000u64;
    let file = materialize(&ctx, Workload::UniformPerm, n, 22).unwrap();
    let direct = precise_partitioning(&file, 12).unwrap();
    let via = precise_via_approx(&file, n / 12).unwrap();
    assert_eq!(direct.len(), via.len());
    for (d, v) in direct.iter().zip(&via) {
        let mut dv = d.to_vec().unwrap();
        let mut vv = v.to_vec().unwrap();
        dv.sort_unstable();
        vv.sort_unstable();
        assert_eq!(dv, vv);
    }
}
