//! Property tests for the fault-injection + recovery subsystem (seeded
//! deterministic loops; the workspace builds offline with no proptest).
//!
//! The three contracted properties of the crash-recoverable sort:
//!
//! 1. **Fault-schedule equivalence** — under any seeded fault schedule
//!    whose transients eventually succeed, the sorted output is identical
//!    to the fault-free run's.
//! 2. **Exact retry accounting** — `IoStats.retries` equals the number of
//!    injected transient faults, on both backends.
//! 3. **Bounded redo** — crash at *any* I/O index, then resume: the total
//!    I/O spent never exceeds the fault-free cost by more than one work
//!    unit (the largest single run formation or merge group).

use em_splitters::prelude::*;
use emcore::{EmError, FaultKind, FaultPlan, FaultSpec, RetryPolicy, SplitMix64, Trigger};
use emselect::{multi_select_recoverable, MsOptions, MultiSelectJob, MultiSelectManifest};
use emsort::{external_sort_recoverable, SortJob, SortManifest};

use apsplit::{approx_partitioning_recoverable, PartitionJob, PartitionManifest};

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut v);
    v
}

/// Fault-free reference: same data, same config, no plan.
fn clean_sort(data: &[u64]) -> (Vec<u64>, u64) {
    let c = EmContext::new_in_memory(EmConfig::tiny());
    let f = c.stats().paused(|| EmFile::from_slice(&c, data)).unwrap();
    let out = external_sort_recoverable(&f).unwrap();
    let v = c.stats().paused(|| out.to_vec()).unwrap();
    (v, c.stats().snapshot().total_ios())
}

#[test]
fn any_recoverable_schedule_yields_identical_output_memory() {
    let mut master = SplitMix64::new(0xabcd_0001);
    for case in 0..24 {
        let n = 500 + master.below(2500);
        let data = shuffled(n, master.next_u64());
        let (want, _) = clean_sort(&data);

        let rate = 0.01 + master.unit() * 0.2; // up to heavy fault pressure
        let plan_seed = master.next_u64();
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let plan = FaultPlan::new(plan_seed).transient_rate(rate);
        c.install_fault_plan(plan.clone());
        // Enough attempts that rate < 0.21 cannot exhaust them.
        c.set_retry_policy(RetryPolicy::retries(30));
        let f = c.oracle(|| EmFile::from_slice(&c, &data)).unwrap();

        let sorted = external_sort_recoverable(&f).unwrap();
        let got = c.oracle(|| sorted.to_vec()).unwrap();
        assert_eq!(got, want, "case {case}: n={n} rate={rate:.3}");

        let stats = c.stats().snapshot();
        assert_eq!(
            stats.retries,
            plan.injected().transient_total(),
            "case {case}: retries must equal injected transients"
        );
    }
}

#[test]
fn any_recoverable_schedule_yields_identical_output_disk() {
    let mut master = SplitMix64::new(0xabcd_0002);
    for case in 0..6 {
        let n = 400 + master.below(1600);
        let data = shuffled(n, master.next_u64());
        let (want, _) = clean_sort(&data);

        let rate = 0.02 + master.unit() * 0.1;
        let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let plan = FaultPlan::new(master.next_u64()).transient_rate(rate);
        c.install_fault_plan(plan.clone());
        c.set_retry_policy(RetryPolicy::retries(30));
        let f = c.oracle(|| EmFile::from_slice(&c, &data)).unwrap();

        let sorted = external_sort_recoverable(&f).unwrap();
        let got = c.oracle(|| sorted.to_vec()).unwrap();
        assert_eq!(got, want, "case {case}: n={n} rate={rate:.3}");
        assert_eq!(
            c.stats().snapshot().retries,
            plan.injected().transient_total(),
            "case {case}"
        );
    }
}

#[test]
fn crash_at_any_io_plus_resume_bounds_redone_work() {
    // Exhaustive sweep: crash the sort at every possible I/O index, resume,
    // and check (a) the output is correct and (b) the redone work stays
    // under one work-unit of I/O.
    let n: u64 = 1000;
    let data = shuffled(n, 7);
    let (want, clean_ios) = clean_sort(&data);

    // Work-unit bound at EmConfig::tiny() for u64: run formation handles
    // cap = M − 2B = 224 records (14 blocks read + 14 written + 1
    // positioning read); a merge group re-reads and re-writes at most all
    // its input runs — here a single group of ceil(1000/224) = 5 runs,
    // i.e. the whole file: 63 reads + 63 writes. The largest unit is the
    // merge group.
    let unit_bound = 2 * n.div_ceil(16) + 2;

    for crash_at in 0..clean_ios {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let plan = FaultPlan::new(0).fatal_at(crash_at);
        c.install_fault_plan(plan.clone());

        let mut manifest = SortManifest::new(&c, None);
        let first = run_recoverable(&c, &mut SortJob::new(&f, &mut manifest));
        assert!(
            matches!(first, Err(EmError::Crashed)),
            "crash_at={crash_at}: expected a crash"
        );
        plan.clear_crash();
        let sorted = run_recoverable(&c, &mut SortJob::new(&f, &mut manifest)).unwrap();
        assert_eq!(
            c.oracle(|| sorted.to_vec()).unwrap(),
            want,
            "crash_at={crash_at}"
        );

        let total = c.stats().snapshot().total_ios();
        assert!(
            total <= clean_ios + unit_bound,
            "crash_at={crash_at}: {total} I/Os vs fault-free {clean_ios} + unit bound {unit_bound}"
        );
    }
}

#[test]
fn repeated_crashes_still_converge() {
    // Crash the sort several times at spread-out attempt indices, clearing
    // and resuming each time: the checkpoint structure must make monotone
    // progress and finish. (Crashes cannot recur *faster* than a work unit
    // completes — checkpoints are per run / per merge group, so a crash
    // period below one unit's I/O cost livelocks by construction. The
    // fault-plan attempt counter keeps advancing across resumes, so these
    // indices land in distinct resume episodes.)
    let n: u64 = 1500;
    let data = shuffled(n, 99);
    let (want, _) = clean_sort(&data);

    let c = EmContext::new_in_memory(EmConfig::tiny());
    let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
    let plan = FaultPlan::new(0)
        .fatal_at(50)
        .fatal_at(150)
        .fatal_at(300)
        .fatal_at(520);
    c.install_fault_plan(plan.clone());

    let mut manifest = SortManifest::new(&c, None);
    let mut crashes = 0;
    let sorted = loop {
        match run_recoverable(&c, &mut SortJob::new(&f, &mut manifest)) {
            Ok(out) => break out,
            Err(EmError::Crashed) => {
                crashes += 1;
                assert!(
                    crashes < 1000,
                    "sort does not converge under periodic crashes"
                );
                plan.clear_crash();
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    assert!(
        crashes >= 2,
        "the schedule should actually interrupt the sort"
    );
    assert_eq!(c.oracle(|| sorted.to_vec()).unwrap(), want);
}

/// A seeded non-fatal fault plan mixing transient reads/writes, torn
/// writes, and (disk-detectable) in-flight read corruption.
fn noisy_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::new(seed).transient_rate(rate).with(FaultSpec {
        trigger: Trigger::Rate(rate / 2.0),
        kind: FaultKind::TornWrite,
    })
}

#[test]
fn multi_select_under_transient_faults_matches_fault_free() {
    let mut master = SplitMix64::new(0xabcd_0003);
    for case in 0..12 {
        let n = 600 + master.below(2400);
        let data = shuffled(n, master.next_u64());
        let ranks: Vec<u64> = (1..=8).map(|i| i * n / 8).filter(|&r| r > 0).collect();

        // Fault-free reference (plain, non-recoverable algorithm).
        let want: Vec<u64> = {
            let c = EmContext::new_in_memory(EmConfig::tiny());
            let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
            multi_select(&f, &ranks).unwrap()
        };

        let rate = 0.01 + master.unit() * 0.1;
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let plan = noisy_plan(master.next_u64(), rate);
        c.install_fault_plan(plan.clone());
        c.set_retry_policy(RetryPolicy::retries(30));
        let f = c.oracle(|| EmFile::from_slice(&c, &data)).unwrap();

        let got = multi_select_recoverable(&f, &ranks).unwrap();
        assert_eq!(got, want, "case {case}: n={n} rate={rate:.3}");

        let stats = c.stats().snapshot();
        assert_eq!(
            stats.retries,
            plan.injected().transient_total(),
            "case {case}: retries must equal injected transients (incl. torn)"
        );
        assert!(stats.journal_writes > 0, "case {case}");
        assert_eq!(stats.redone_ios, 0, "case {case}: no crash, no redo");
    }
}

#[test]
fn partitioning_under_transient_faults_matches_fault_free() {
    let mut master = SplitMix64::new(0xabcd_0004);
    for case in 0..8 {
        let n = 800 + master.below(2400);
        let data = shuffled(n, master.next_u64());
        let spec = ProblemSpec::new(n, 8, n / 10, n / 2).unwrap();

        // Fault-free recoverable reference (the recoverable path's sizes
        // are its own contract; compare like with like).
        let want: Vec<Vec<u64>> = {
            let c = EmContext::new_in_memory(EmConfig::tiny());
            let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
            let parts = approx_partitioning_recoverable(&f, &spec).unwrap();
            parts.iter().map(|p| p.to_vec().unwrap()).collect()
        };

        let rate = 0.01 + master.unit() * 0.08;
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let plan = noisy_plan(master.next_u64(), rate);
        c.install_fault_plan(plan.clone());
        c.set_retry_policy(RetryPolicy::retries(30));
        let f = c.oracle(|| EmFile::from_slice(&c, &data)).unwrap();

        let parts = approx_partitioning_recoverable(&f, &spec).unwrap();
        let got: Vec<Vec<u64>> = c
            .oracle(|| parts.iter().map(|p| p.to_vec()).collect::<Result<_>>())
            .unwrap();
        assert_eq!(got, want, "case {case}: n={n} rate={rate:.3}");
        assert_eq!(
            c.stats().snapshot().retries,
            plan.injected().transient_total(),
            "case {case}"
        );
    }
}

#[test]
fn corrupt_reads_on_disk_surface_and_are_accounted() {
    // In-flight read corruption on the disk backend is caught by the block
    // checksum and cured by retry (the device payload is intact): output
    // stays correct and every detection is accounted in corrupt_reads.
    let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
    let data = shuffled(1200, 31);
    let f = c.oracle(|| EmFile::from_slice(&c, &data)).unwrap();
    let plan = FaultPlan::new(77).with(FaultSpec {
        trigger: Trigger::Rate(0.01),
        kind: FaultKind::CorruptRead,
    });
    c.install_fault_plan(plan.clone());
    c.set_retry_policy(RetryPolicy::retries(10));
    let ranks = [300, 600, 900];
    let got = multi_select_recoverable(&f, &ranks).unwrap();
    assert_eq!(got, vec![299, 599, 899]);
    let stats = c.stats().snapshot();
    assert_eq!(
        stats.corrupt_reads,
        plan.injected().corrupt_reads,
        "every injected read corruption must be detected and counted"
    );
}

/// Count fault-plan device attempts of one fault-free recoverable run
/// (the crash-index space for the sweeps below). The plan is installed
/// *after* the input is materialised, exactly as in the crash runs, so
/// indices line up.
fn count_attempts(data: &[u64], run: impl FnOnce(&EmContext, &EmFile<u64>)) -> u64 {
    let c = EmContext::new_in_memory(EmConfig::tiny());
    let f = c.stats().paused(|| EmFile::from_slice(&c, data)).unwrap();
    let plan = FaultPlan::new(0);
    c.install_fault_plan(plan.clone());
    run(&c, &f);
    plan.attempts()
}

#[test]
fn multi_select_crash_sweep_exhaustive() {
    let n: u64 = 500;
    let data = shuffled(n, 17);
    let ranks: Vec<u64> = vec![50, 125, 250, 375, 450, 499];
    let opts = MsOptions {
        base_capacity_override: Some(2), // many groups → many work units
        ..MsOptions::default()
    };
    let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();

    let attempts = count_attempts(&data, |_, f| {
        let mut m = MultiSelectManifest::new(f, &ranks, opts).unwrap();
        assert_eq!(
            run_recoverable(f.ctx(), &mut MultiSelectJob::new(f, &mut m)).unwrap(),
            want
        );
    });

    for crash_at in 0..attempts {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let plan = FaultPlan::new(0).fatal_at(crash_at);
        c.install_fault_plan(plan.clone());
        let mut m = MultiSelectManifest::new(&f, &ranks, opts).unwrap();
        assert!(
            matches!(
                run_recoverable(&c, &mut MultiSelectJob::new(&f, &mut m)),
                Err(EmError::Crashed)
            ),
            "crash_at={crash_at}: expected a crash"
        );
        plan.clear_crash();
        let got = run_recoverable(&c, &mut MultiSelectJob::new(&f, &mut m)).unwrap();
        assert_eq!(got, want, "crash_at={crash_at}");
        let stats = c.stats().snapshot();
        assert!(
            stats.redone_ios <= m.max_unit_ios(),
            "crash_at={crash_at}: redone {} vs unit bound {}",
            stats.redone_ios,
            m.max_unit_ios()
        );
    }
}

#[test]
fn partitioning_crash_sweep_exhaustive() {
    let n: u64 = 600;
    let data = shuffled(n, 19);
    let spec = ProblemSpec::new(n, 6, 60, 300).unwrap();

    let want: Vec<Vec<u64>> = {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let parts = approx_partitioning_recoverable(&f, &spec).unwrap();
        parts.iter().map(|p| p.to_vec().unwrap()).collect()
    };
    let attempts = count_attempts(&data, |_, f| {
        approx_partitioning_recoverable(f, &spec).unwrap();
    });

    for crash_at in 0..attempts {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let plan = FaultPlan::new(0).fatal_at(crash_at);
        c.install_fault_plan(plan.clone());
        let mut m = PartitionManifest::new(&f, &spec).unwrap();
        assert!(
            matches!(
                run_recoverable(&c, &mut PartitionJob::new(&f, &mut m)),
                Err(EmError::Crashed)
            ),
            "crash_at={crash_at}: expected a crash"
        );
        plan.clear_crash();
        let parts = run_recoverable(&c, &mut PartitionJob::new(&f, &mut m)).unwrap();
        let got: Vec<Vec<u64>> = c
            .oracle(|| parts.iter().map(|p| p.to_vec()).collect::<Result<_>>())
            .unwrap();
        assert_eq!(got, want, "crash_at={crash_at}");
        let stats = c.stats().snapshot();
        assert!(
            stats.redone_ios <= m.max_unit_ios(),
            "crash_at={crash_at}: redone {} vs unit bound {}",
            stats.redone_ios,
            m.max_unit_ios()
        );
    }
}

#[test]
fn sort_manifest_survives_process_restart_on_disk() {
    // Cross-process resume: crash a sort backed by a *fixed* directory,
    // drop every handle (simulating process death), reopen the directory
    // in a brand-new context, load the manifest from its journal, and
    // finish the sort. A planted orphan block file and a stale journal
    // temp file must be garbage-collected by the load.
    let mut dir = std::env::temp_dir();
    dir.push(format!("em-splitters-xproc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let n: u64 = 1200;
    let data = shuffled(n, 23);
    let mut want = data.clone();
    want.sort_unstable();

    // Phase 1: first "process" — crash mid-sort, after some checkpoints.
    let attempts = count_attempts(&data, |_, f| {
        external_sort_recoverable(f).unwrap();
    });
    let input_identity = {
        let c1 = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
        let f = c1
            .stats()
            .paused(|| EmFile::from_slice(&c1, &data))
            .unwrap();
        f.set_persistent(true); // the input outlives this "process"
        let plan = FaultPlan::new(0).fatal_at(attempts * 2 / 3);
        c1.install_fault_plan(plan.clone());
        let mut m = SortManifest::new(&c1, None);
        assert!(matches!(
            run_recoverable(&c1, &mut SortJob::new(&f, &mut m)),
            Err(EmError::Crashed)
        ));
        assert!(m.checkpoints() > 0, "crash landed after checkpoints");
        (f.id(), f.len())
        // c1, f, m all drop here: the "process" dies.
    };
    assert!(
        dir.join("sort-manifest.journal").exists(),
        "journal must survive the first process"
    );

    // Plant garbage a real crash could leave behind.
    std::fs::write(dir.join("em-00004242.bin"), b"stale block file").unwrap();
    std::fs::write(dir.join("sort-manifest.journal.tmp"), b"torn commit").unwrap();

    // Phase 2: second "process" — reload from disk and finish.
    {
        let c2 = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
        let mut m = SortManifest::load(&c2)
            .unwrap()
            .expect("journal present → manifest loads");
        assert_eq!(m.input(), Some(input_identity));
        let f2 = c2
            .open_file::<u64>(input_identity.0, input_identity.1)
            .unwrap();
        assert!(
            !dir.join("em-00004242.bin").exists(),
            "orphan block file must be garbage-collected on load"
        );
        assert!(
            !dir.join("sort-manifest.journal.tmp").exists(),
            "stale journal temp file must be garbage-collected on load"
        );
        let sorted = run_recoverable(&c2, &mut SortJob::new(&f2, &mut m)).unwrap();
        assert_eq!(c2.oracle(|| sorted.to_vec()).unwrap(), want);
        assert!(!dir.join("sort-manifest.journal").exists());
        f2.set_persistent(false); // let the input delete on drop
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_on_disk_is_detected_not_wrong() {
    // Persistent corruption is not recoverable by retry — but it must
    // surface as EmError::Corrupt, never as silently wrong output.
    let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
    let data = shuffled(800, 21);
    let f = EmFile::from_slice(&c, &data).unwrap();
    c.install_fault_plan(FaultPlan::new(5).fail_nth(10, emcore::FaultKind::CorruptWrite));
    c.set_retry_policy(RetryPolicy::retries(3));
    match external_sort_recoverable(&f) {
        Ok(out) => {
            // The corrupt write hit a file that was later discarded wholesale
            // (e.g. a dropped run) — the output must still be right.
            let mut want = data.clone();
            want.sort_unstable();
            assert_eq!(c.oracle(|| out.to_vec()).unwrap(), want);
        }
        Err(EmError::Corrupt { .. }) => {
            assert!(c.stats().snapshot().corrupt_reads > 0);
        }
        Err(e) => panic!("expected success or Corrupt, got {e}"),
    }
}
