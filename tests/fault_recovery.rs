//! Property tests for the fault-injection + recovery subsystem (seeded
//! deterministic loops; the workspace builds offline with no proptest).
//!
//! The three contracted properties of the crash-recoverable sort:
//!
//! 1. **Fault-schedule equivalence** — under any seeded fault schedule
//!    whose transients eventually succeed, the sorted output is identical
//!    to the fault-free run's.
//! 2. **Exact retry accounting** — `IoStats.retries` equals the number of
//!    injected transient faults, on both backends.
//! 3. **Bounded redo** — crash at *any* I/O index, then resume: the total
//!    I/O spent never exceeds the fault-free cost by more than one work
//!    unit (the largest single run formation or merge group).

use em_splitters::prelude::*;
use emcore::{EmError, FaultPlan, RetryPolicy, SplitMix64};
use emsort::{external_sort_recoverable, resume_sort, SortManifest};

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut v);
    v
}

/// Fault-free reference: same data, same config, no plan.
fn clean_sort(data: &[u64]) -> (Vec<u64>, u64) {
    let c = EmContext::new_in_memory(EmConfig::tiny());
    let f = c.stats().paused(|| EmFile::from_slice(&c, data)).unwrap();
    let out = external_sort_recoverable(&f).unwrap();
    let v = c.stats().paused(|| out.to_vec()).unwrap();
    (v, c.stats().snapshot().total_ios())
}

#[test]
fn any_recoverable_schedule_yields_identical_output_memory() {
    let mut master = SplitMix64::new(0xabcd_0001);
    for case in 0..24 {
        let n = 500 + master.below(2500);
        let data = shuffled(n, master.next_u64());
        let (want, _) = clean_sort(&data);

        let rate = 0.01 + master.unit() * 0.2; // up to heavy fault pressure
        let plan_seed = master.next_u64();
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let plan = FaultPlan::new(plan_seed).transient_rate(rate);
        c.install_fault_plan(plan.clone());
        // Enough attempts that rate < 0.21 cannot exhaust them.
        c.set_retry_policy(RetryPolicy::retries(30));
        let f = c.oracle(|| EmFile::from_slice(&c, &data)).unwrap();

        let sorted = external_sort_recoverable(&f).unwrap();
        let got = c.oracle(|| sorted.to_vec()).unwrap();
        assert_eq!(got, want, "case {case}: n={n} rate={rate:.3}");

        let stats = c.stats().snapshot();
        assert_eq!(
            stats.retries,
            plan.injected().transient_total(),
            "case {case}: retries must equal injected transients"
        );
    }
}

#[test]
fn any_recoverable_schedule_yields_identical_output_disk() {
    let mut master = SplitMix64::new(0xabcd_0002);
    for case in 0..6 {
        let n = 400 + master.below(1600);
        let data = shuffled(n, master.next_u64());
        let (want, _) = clean_sort(&data);

        let rate = 0.02 + master.unit() * 0.1;
        let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let plan = FaultPlan::new(master.next_u64()).transient_rate(rate);
        c.install_fault_plan(plan.clone());
        c.set_retry_policy(RetryPolicy::retries(30));
        let f = c.oracle(|| EmFile::from_slice(&c, &data)).unwrap();

        let sorted = external_sort_recoverable(&f).unwrap();
        let got = c.oracle(|| sorted.to_vec()).unwrap();
        assert_eq!(got, want, "case {case}: n={n} rate={rate:.3}");
        assert_eq!(
            c.stats().snapshot().retries,
            plan.injected().transient_total(),
            "case {case}"
        );
    }
}

#[test]
fn crash_at_any_io_plus_resume_bounds_redone_work() {
    // Exhaustive sweep: crash the sort at every possible I/O index, resume,
    // and check (a) the output is correct and (b) the redone work stays
    // under one work-unit of I/O.
    let n: u64 = 1000;
    let data = shuffled(n, 7);
    let (want, clean_ios) = clean_sort(&data);

    // Work-unit bound at EmConfig::tiny() for u64: run formation handles
    // cap = M − 2B = 224 records (14 blocks read + 14 written + 1
    // positioning read); a merge group re-reads and re-writes at most all
    // its input runs — here a single group of ceil(1000/224) = 5 runs,
    // i.e. the whole file: 63 reads + 63 writes. The largest unit is the
    // merge group.
    let unit_bound = 2 * n.div_ceil(16) + 2;

    for crash_at in 0..clean_ios {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let plan = FaultPlan::new(0).fatal_at(crash_at);
        c.install_fault_plan(plan.clone());

        let mut manifest = SortManifest::new(&c, None);
        let first = resume_sort(&f, &mut manifest);
        assert!(
            matches!(first, Err(EmError::Crashed)),
            "crash_at={crash_at}: expected a crash"
        );
        plan.clear_crash();
        let sorted = resume_sort(&f, &mut manifest).unwrap();
        assert_eq!(
            c.oracle(|| sorted.to_vec()).unwrap(),
            want,
            "crash_at={crash_at}"
        );

        let total = c.stats().snapshot().total_ios();
        assert!(
            total <= clean_ios + unit_bound,
            "crash_at={crash_at}: {total} I/Os vs fault-free {clean_ios} + unit bound {unit_bound}"
        );
    }
}

#[test]
fn repeated_crashes_still_converge() {
    // Crash the sort several times at spread-out attempt indices, clearing
    // and resuming each time: the checkpoint structure must make monotone
    // progress and finish. (Crashes cannot recur *faster* than a work unit
    // completes — checkpoints are per run / per merge group, so a crash
    // period below one unit's I/O cost livelocks by construction. The
    // fault-plan attempt counter keeps advancing across resumes, so these
    // indices land in distinct resume episodes.)
    let n: u64 = 1500;
    let data = shuffled(n, 99);
    let (want, _) = clean_sort(&data);

    let c = EmContext::new_in_memory(EmConfig::tiny());
    let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
    let plan = FaultPlan::new(0)
        .fatal_at(50)
        .fatal_at(150)
        .fatal_at(300)
        .fatal_at(520);
    c.install_fault_plan(plan.clone());

    let mut manifest = SortManifest::new(&c, None);
    let mut crashes = 0;
    let sorted = loop {
        match resume_sort(&f, &mut manifest) {
            Ok(out) => break out,
            Err(EmError::Crashed) => {
                crashes += 1;
                assert!(
                    crashes < 1000,
                    "sort does not converge under periodic crashes"
                );
                plan.clear_crash();
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    assert!(
        crashes >= 2,
        "the schedule should actually interrupt the sort"
    );
    assert_eq!(c.oracle(|| sorted.to_vec()).unwrap(), want);
}

#[test]
fn corruption_on_disk_is_detected_not_wrong() {
    // Persistent corruption is not recoverable by retry — but it must
    // surface as EmError::Corrupt, never as silently wrong output.
    let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
    let data = shuffled(800, 21);
    let f = EmFile::from_slice(&c, &data).unwrap();
    c.install_fault_plan(FaultPlan::new(5).fail_nth(10, emcore::FaultKind::CorruptWrite));
    c.set_retry_policy(RetryPolicy::retries(3));
    match external_sort_recoverable(&f) {
        Ok(out) => {
            // The corrupt write hit a file that was later discarded wholesale
            // (e.g. a dropped run) — the output must still be right.
            let mut want = data.clone();
            want.sort_unstable();
            assert_eq!(c.oracle(|| out.to_vec()).unwrap(), want);
        }
        Err(EmError::Corrupt { .. }) => {
            assert!(c.stats().snapshot().corrupt_reads > 0);
        }
        Err(e) => panic!("expected success or Corrupt, got {e}"),
    }
}
