//! Integration tests for the serving layer (`emserve`): catalog and
//! splitter-index persistence across a simulated process restart, and
//! end-to-end agreement between the batched server and plain
//! per-query multi-selection.

use em_splitters::prelude::*;
use emcore::SplitMix64;
use emselect::MsOptions;

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut v);
    v
}

/// Register datasets, answer (and thereby refine) through the splitter
/// index, drop every handle and the context — then reopen the same
/// directory with a fresh `EmContext` as a restarted process would.
/// The catalog, the index skeleton, and the answers must all survive.
#[test]
fn catalog_and_splitter_index_survive_process_restart() {
    let dir = std::env::temp_dir().join(format!("em-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 5000u64;
    let data = shuffled(n, 0x5e12e);
    let ranks: Vec<u64> = vec![1, n / 4, n / 2, 3 * n / 4, n];
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();

    // --- process 1: register, answer, refine, drop everything ---
    let (first_answers, boundaries_before) = {
        let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let g = EmFile::from_slice(&ctx, &[7u64, 3, 5]).unwrap();
        let mut cat = Catalog::open(&ctx).unwrap();
        cat.register("alpha", &f).unwrap();
        cat.register("beta", &g).unwrap();

        let mut idx = SplitterIndex::open(&ctx, "alpha", f).unwrap();
        let (ans, stats) = idx.answer(&ranks, MsOptions::default(), true).unwrap();
        assert_eq!(ans, want);
        assert_eq!(stats.index_hits, 0, "cold index answers nothing for free");
        let bounds = idx.boundaries();
        assert!(
            idx.num_segments() > 1,
            "refinement must split the unrefined segment"
        );
        (ans, bounds)
    };

    // --- process 2: a fresh context over the same directory ---
    let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
    let cat = Catalog::open(&ctx).unwrap();
    assert_eq!(cat.names(), vec!["alpha".to_string(), "beta".to_string()]);
    let e = cat.entry("alpha").unwrap();
    assert_eq!((e.len, e.words), (n, 1));

    // The small dataset reads back bit-identically.
    let beta = cat.open_dataset::<u64>("beta").unwrap();
    assert_eq!(beta.to_vec().unwrap(), vec![7, 3, 5]);

    // The index skeleton reloaded: same boundaries, before any query.
    let alpha = cat.open_dataset::<u64>("alpha").unwrap();
    let mut idx = SplitterIndex::open(&ctx, "alpha", alpha).unwrap();
    assert_eq!(idx.boundaries(), boundaries_before);
    assert!(idx.num_segments() > 1, "skeleton survived the restart");

    // Re-asking the same ranks is pure boundary hits: zero logical I/O.
    ctx.stats().reset();
    let (ans, stats) = idx.answer(&ranks, MsOptions::default(), true).unwrap();
    assert_eq!(ans, first_answers);
    assert_eq!(stats.index_hits, ranks.len() as u64);
    assert_eq!(ctx.stats().snapshot().total_ios(), 0);

    // New ranks recurse only into known segments and still agree with the
    // ground truth.
    let fresh: Vec<u64> = vec![n / 8, n / 2 + 17, n - 3];
    let fresh_want: Vec<u64> = fresh.iter().map(|&r| sorted[(r - 1) as usize]).collect();
    let (ans, _) = idx.answer(&fresh, MsOptions::default(), true).unwrap();
    assert_eq!(ans, fresh_want);

    drop((idx, beta, cat));
    drop(ctx);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full server stack on the directory backend: a coalesced batch
/// answered through the scheduler is bit-identical to per-query
/// `multi_select`, and a restarted server still knows the catalog.
#[test]
fn server_batches_match_plain_select_and_survive_restart() {
    let dir = std::env::temp_dir().join(format!("em-serve-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 3000u64;
    let data = shuffled(n, 0xcafe);

    let queries: Vec<Vec<u64>> = vec![
        vec![1, n],
        vec![n / 2],
        vec![n / 3, 2 * n / 3, n / 5],
        vec![42, 42, 2718],
    ];

    // Ground truth per query via plain multi-select on a throwaway context.
    let want: Vec<Vec<u64>> = {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = EmFile::from_slice(&c, &data).unwrap();
        queries
            .iter()
            .map(|q| multi_select(&f, q).unwrap())
            .collect()
    };

    // Everything below speaks the transport-agnostic QueryService trait —
    // the same calls would drive a sharded Router unchanged.
    {
        let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let svc: &dyn QueryService<u64> = &server;
        svc.register("ds", data.clone()).unwrap();
        let tickets = svc.rank_batch("ds", queries.clone()).unwrap();
        let got: Vec<Vec<u64>> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().into_values())
            .collect();
        assert_eq!(got, want, "batched answers must be bit-identical");
        let report = server.shutdown().unwrap();
        assert_eq!(report.queries as usize, queries.len());
        assert_eq!(report.batches, 1, "submit_batch coalesces into one pass");
    }

    // Restarted server: the dataset is already in the catalog, and the
    // warmed index makes exact repeats free of selection work.
    let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
    let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
    let svc: &dyn QueryService<u64> = &server;
    assert_eq!(svc.dataset_len("ds").unwrap(), n);
    let got = svc.rank("ds", queries[0].clone()).unwrap().wait().unwrap();
    assert_eq!(got.values, want[0]);
    let report = svc.stats().unwrap();
    assert_eq!(
        report.index_hits as usize,
        queries[0].len(),
        "repeat ranks answered from the persisted skeleton"
    );
    server.shutdown().unwrap();
    drop(ctx);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Transient and corrupt faults injected during a coalesced batch are
/// absorbed by the retry-and-bisect path: every query still gets an
/// exact, bit-identical answer on the directory backend (where torn and
/// corrupt block writes are real on-disk events).
#[test]
fn faulty_batches_still_answer_exactly_on_disk() {
    use emcore::{FaultKind, FaultSpec, Trigger};
    let dir = std::env::temp_dir().join(format!("em-serve-faulty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 4000u64;
    let data = shuffled(n, 0xfau64);
    let mut sorted = data.clone();
    sorted.sort_unstable();

    let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
    ctx.set_retry_policy(RetryPolicy::retries(4));
    let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
    let client = server.client().unwrap();
    client.register("ds", data).unwrap();

    // A storm of transient faults plus periodic corrupt reads.
    let plan = FaultPlan::new(11).transient_rate(0.03).with(FaultSpec {
        trigger: Trigger::EveryNth(37),
        kind: FaultKind::CorruptRead,
    });
    ctx.install_fault_plan(plan);

    let queries: Vec<Vec<u64>> = (0..6)
        .map(|i| vec![1 + i * 613 % n, 1 + (i * 1811 + 7) % n])
        .collect();
    let tickets = client.submit_batch("ds", queries.clone()).unwrap();
    for (ranks, t) in queries.iter().zip(tickets) {
        let a = t
            .wait_timeout(std::time::Duration::from_secs(30))
            .expect("faulted batch must still answer");
        assert!(!a.approx);
        let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();
        assert_eq!(a.values, want, "ranks {ranks:?}");
    }
    ctx.clear_fault_plan();
    drop(client);
    server.shutdown().unwrap();
    drop(ctx);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fatal fault while serving one dataset must not take down the others:
/// the crashed dataset trips its breaker and fails fast with a typed
/// error, while a second dataset keeps answering exactly — and after the
/// device recovers, the background probe restores the first.
#[test]
fn fatal_fault_on_one_dataset_leaves_others_serving() {
    use std::time::{Duration, Instant};
    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    let a = shuffled(2000, 1);
    let b = shuffled(2000, 2);
    let mut sorted_b = b.clone();
    sorted_b.sort_unstable();
    let mut server = QueryServer::<u64>::start(
        &ctx,
        ServeOptions::builder()
            .breaker_threshold(2)
            .probe_cooldown(Duration::from_millis(5))
            .retry(RetryPolicy::NONE)
            .build(),
    )
    .unwrap();
    let client = server.client().unwrap();
    client.register("a", a).unwrap();
    client.register("b", b).unwrap();
    // Warm dataset b so its answers during the crash window are pure
    // boundary hits (zero device I/O — the crash cannot touch them).
    let warm_ranks = vec![500u64, 1000, 1500];
    client
        .query("b", warm_ranks.clone())
        .unwrap()
        .wait()
        .unwrap();

    // Crash the device and drive dataset a into its breaker.
    let plan = FaultPlan::new(0).fatal_at(0);
    ctx.install_fault_plan(plan.clone());
    for _ in 0..2 {
        let e = client.query("a", vec![10]).unwrap().wait().unwrap_err();
        assert!(e.is_fault(), "expected a fault error, got {e}");
    }
    let e = client.query("a", vec![10]).unwrap().wait().unwrap_err();
    assert!(
        matches!(e, EmError::Unhealthy { .. }),
        "breaker must fail fast, got {e}"
    );
    // Dataset b still serves its warmed ranks exactly.
    let got = client
        .query("b", warm_ranks.clone())
        .unwrap()
        .wait()
        .unwrap();
    let want: Vec<u64> = warm_ranks
        .iter()
        .map(|&r| sorted_b[(r - 1) as usize])
        .collect();
    assert_eq!(got.values, want, "healthy dataset unaffected");
    assert!(!got.approx);

    // Device recovers; the probe restores dataset a.
    plan.clear_crash();
    plan.clear_specs();
    let t0 = Instant::now();
    loop {
        match client.query("a", vec![10]).unwrap().wait() {
            Ok(ans) => {
                assert_eq!(ans.values.len(), 1);
                break;
            }
            Err(_) => {
                assert!(
                    t0.elapsed() < Duration::from_secs(10),
                    "probe never restored dataset a"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    drop(client);
    let report = server.shutdown().unwrap();
    assert!(report.breaker_trips >= 1);
    assert!(report.breaker_restores >= 1);
}

/// `Ticket::wait_timeout` never hangs the caller: a server wedged behind
/// a slow device yields a typed `DeadlineExceeded`, the ticket stays
/// usable, and killing the server mid-batch resolves (not hangs) every
/// outstanding ticket.
#[test]
fn wait_timeout_never_hangs_on_a_wedged_or_killed_server() {
    use std::time::Duration;
    let ctx = EmContext::new_in_memory(EmConfig::tiny().with_device_latency_us(800));
    let data = shuffled(3000, 3);
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
    let client = server.client().unwrap();
    client.register("ds", data).unwrap();

    // Wedged: the cold-index select behind a slow device outlasts a 1 ms
    // budget, but the ticket survives the timeout and answers later.
    let t = client.query("ds", vec![1500]).unwrap();
    let e = t.wait_timeout(Duration::from_millis(1)).unwrap_err();
    assert!(
        matches!(e, EmError::DeadlineExceeded { .. }),
        "typed timeout, got {e}"
    );
    let a = t.wait_timeout(Duration::from_secs(60)).unwrap();
    assert_eq!(a.values, vec![sorted[1499]]);

    // Killed mid-batch: submit, then shut the server down from another
    // thread while the batch is in flight. Every ticket must resolve —
    // with an answer or a typed error — well before the timeout.
    let tickets = client
        .submit_batch("ds", (0..4).map(|i| vec![100 + i * 700]).collect())
        .unwrap();
    let killer = std::thread::spawn(move || {
        drop(client); // release the last sender so shutdown can join
        server.shutdown()
    });
    for t in tickets {
        match t.wait_timeout(Duration::from_secs(60)) {
            Ok(_) | Err(EmError::Unavailable { .. }) => {}
            Err(e) => assert!(
                !matches!(e, EmError::DeadlineExceeded { .. }),
                "ticket hung: {e}"
            ),
        }
    }
    killer.join().unwrap().unwrap();
}

/// Every histogram percentile ladder in `snap` is monotone.
fn monotone(snap: &MetricsSnapshot) -> bool {
    snap.samples.iter().all(|s| match &s.hist {
        Some(h) if h.count() > 0 => {
            let l = [
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0),
                h.percentile(99.9),
                h.max(),
            ];
            l.windows(2).all(|w| w[0] <= w[1])
        }
        _ => true,
    })
}

/// Scraping the live registry mid-fault-storm tells the same story as
/// the server's own report: the end-to-end outcome histograms conserve
/// (one sample per accepted query), every percentile ladder is monotone,
/// and the breaker gauge reads Open while the device is crashed and
/// Closed again after the heal — with trip/restore counters matching.
#[test]
fn metrics_scrape_stays_conserved_during_fault_storm() {
    use std::time::{Duration, Instant};
    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    ctx.metrics().set_enabled(true);
    ctx.set_retry_policy(RetryPolicy::retries(2));
    let n = 2000u64;
    let mut server = QueryServer::<u64>::start(
        &ctx,
        ServeOptions::builder()
            .breaker_threshold(2)
            .probe_cooldown(Duration::from_millis(5))
            .build(),
    )
    .unwrap();
    let client = server.client().unwrap();
    client.register("ds", shuffled(n, 0x0b5)).unwrap();
    client.query("ds", vec![n / 2]).unwrap().wait().unwrap();

    // Crash the device and let a storm of queries fail and fail fast.
    let plan = FaultPlan::new(0).fatal_at(20);
    ctx.install_fault_plan(plan.clone());
    for i in 0..10u64 {
        let _ = client
            .query("ds", vec![1 + (i * 613) % n])
            .unwrap()
            .wait_timeout(Duration::from_secs(20));
    }

    // Mid-storm scrape: conservation and the tripped breaker, live.
    let r = client.report().unwrap();
    let snap = ctx.metrics().snapshot(ctx.clock().now_us());
    assert_eq!(
        snap.family_total("em_serve_query_e2e_us"),
        r.queries,
        "every accepted query lands in exactly one outcome histogram"
    );
    assert!(monotone(&snap));
    assert!(r.breaker_trips >= 1, "storm must trip the breaker: {r:?}");
    let state = snap
        .find("em_serve_breaker_state", &[("ds", "ds")])
        .expect("breaker gauge registered")
        .value;
    assert!(state >= 1, "gauge must read tripped mid-storm, got {state}");

    // Heal; the probe closes the breaker and exact service resumes.
    plan.clear_crash();
    plan.clear_specs();
    let t0 = Instant::now();
    loop {
        match client.query("ds", vec![n / 3]).unwrap().wait() {
            Ok(_) => break,
            Err(_) => {
                assert!(t0.elapsed() < Duration::from_secs(10), "never healed");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    let r = client.report().unwrap();
    let snap = ctx.metrics().snapshot(ctx.clock().now_us());
    assert_eq!(snap.family_total("em_serve_query_e2e_us"), r.queries);
    assert!(monotone(&snap));
    let gauge = |name: &str| snap.find(name, &[("ds", "ds")]).map(|s| s.value);
    assert_eq!(
        gauge("em_serve_breaker_state"),
        Some(0),
        "closed after heal"
    );
    assert_eq!(gauge("em_serve_breaker_trips_total"), Some(r.breaker_trips));
    assert_eq!(
        gauge("em_serve_breaker_restores_total"),
        Some(r.breaker_restores)
    );
    drop(client);
    server.shutdown().unwrap();
}

/// The scripted protocol under a transient fault storm: the `metrics`
/// verb scrapes a clean exposition to stderr without polluting the
/// answer stream, the extended `stats` line carries the new gauges, and
/// the scraped histograms conserve against the final report.
#[test]
fn protocol_metrics_verb_scrapes_cleanly_during_faults() {
    use emcore::{FaultKind, FaultSpec, Trigger};
    use std::io::Write as _;
    let dir = std::env::temp_dir().join(format!("em-serve-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let n = 1500u64;
    let data = shuffled(n, 0x9e7);
    let data_path = dir.join("data.bin");
    {
        let mut f = std::fs::File::create(&data_path).unwrap();
        for v in &data {
            f.write_all(&v.to_le_bytes()).unwrap();
        }
    }

    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    ctx.metrics().set_enabled(true);
    ctx.set_retry_policy(RetryPolicy::retries(4));
    ctx.install_fault_plan(FaultPlan::new(5).transient_rate(0.02).with(FaultSpec {
        trigger: Trigger::EveryNth(41),
        kind: FaultKind::CorruptRead,
    }));

    let script = format!(
        "open ds {p}\nrank ds 100\nrank ds 700 1400\nmetrics\nrank ds 42\nstats\nquit\n",
        p = data_path.display()
    );
    let mut out = Vec::new();
    let mut errs = Vec::new();
    let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
    let report = serve_session(&server, script.as_bytes(), &mut out, &mut errs).unwrap();
    server.shutdown().unwrap();

    // The answer stream holds exactly the four requested values, all
    // numeric — the scrape leaked nothing into it.
    let out = String::from_utf8(out).unwrap();
    let answers: Vec<u64> = out.lines().map(|l| l.parse().unwrap()).collect();
    let mut sorted = data;
    sorted.sort_unstable();
    assert_eq!(
        answers,
        vec![sorted[99], sorted[699], sorted[1399], sorted[41]]
    );

    let errs = String::from_utf8(errs).unwrap();
    assert!(errs.contains("ok metrics begin") && errs.contains("ok metrics end"));
    assert!(errs.contains("# TYPE em_serve_query_e2e_us summary"));
    assert!(
        errs.contains("queue_depth=0"),
        "stats line extended: {errs}"
    );
    assert!(
        errs.contains("batch_occupancy="),
        "stats line extended: {errs}"
    );

    // The registry agrees with the final report even after the session.
    let snap = ctx.metrics().snapshot(ctx.clock().now_us());
    assert_eq!(snap.family_total("em_serve_query_e2e_us"), report.queries);
    ctx.clear_fault_plan();
    let _ = std::fs::remove_dir_all(&dir);
}
