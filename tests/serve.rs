//! Integration tests for the serving layer (`emserve`): catalog and
//! splitter-index persistence across a simulated process restart, and
//! end-to-end agreement between the batched server and plain
//! per-query multi-selection.

use em_splitters::prelude::*;
use emcore::SplitMix64;
use emselect::MsOptions;

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut v);
    v
}

/// Register datasets, answer (and thereby refine) through the splitter
/// index, drop every handle and the context — then reopen the same
/// directory with a fresh `EmContext` as a restarted process would.
/// The catalog, the index skeleton, and the answers must all survive.
#[test]
fn catalog_and_splitter_index_survive_process_restart() {
    let dir = std::env::temp_dir().join(format!("em-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 5000u64;
    let data = shuffled(n, 0x5e12e);
    let ranks: Vec<u64> = vec![1, n / 4, n / 2, 3 * n / 4, n];
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();

    // --- process 1: register, answer, refine, drop everything ---
    let (first_answers, boundaries_before) = {
        let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let g = EmFile::from_slice(&ctx, &[7u64, 3, 5]).unwrap();
        let mut cat = Catalog::open(&ctx).unwrap();
        cat.register("alpha", &f).unwrap();
        cat.register("beta", &g).unwrap();

        let mut idx = SplitterIndex::open(&ctx, "alpha", f).unwrap();
        let (ans, stats) = idx.answer(&ranks, MsOptions::default(), true).unwrap();
        assert_eq!(ans, want);
        assert_eq!(stats.index_hits, 0, "cold index answers nothing for free");
        let bounds = idx.boundaries();
        assert!(
            idx.num_segments() > 1,
            "refinement must split the unrefined segment"
        );
        (ans, bounds)
    };

    // --- process 2: a fresh context over the same directory ---
    let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
    let cat = Catalog::open(&ctx).unwrap();
    assert_eq!(cat.names(), vec!["alpha".to_string(), "beta".to_string()]);
    let e = cat.entry("alpha").unwrap();
    assert_eq!((e.len, e.words), (n, 1));

    // The small dataset reads back bit-identically.
    let beta = cat.open_dataset::<u64>("beta").unwrap();
    assert_eq!(beta.to_vec().unwrap(), vec![7, 3, 5]);

    // The index skeleton reloaded: same boundaries, before any query.
    let alpha = cat.open_dataset::<u64>("alpha").unwrap();
    let mut idx = SplitterIndex::open(&ctx, "alpha", alpha).unwrap();
    assert_eq!(idx.boundaries(), boundaries_before);
    assert!(idx.num_segments() > 1, "skeleton survived the restart");

    // Re-asking the same ranks is pure boundary hits: zero logical I/O.
    ctx.stats().reset();
    let (ans, stats) = idx.answer(&ranks, MsOptions::default(), true).unwrap();
    assert_eq!(ans, first_answers);
    assert_eq!(stats.index_hits, ranks.len() as u64);
    assert_eq!(ctx.stats().snapshot().total_ios(), 0);

    // New ranks recurse only into known segments and still agree with the
    // ground truth.
    let fresh: Vec<u64> = vec![n / 8, n / 2 + 17, n - 3];
    let fresh_want: Vec<u64> = fresh.iter().map(|&r| sorted[(r - 1) as usize]).collect();
    let (ans, _) = idx.answer(&fresh, MsOptions::default(), true).unwrap();
    assert_eq!(ans, fresh_want);

    drop((idx, beta, cat));
    drop(ctx);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full server stack on the directory backend: a coalesced batch
/// answered through the scheduler is bit-identical to per-query
/// `multi_select`, and a restarted server still knows the catalog.
#[test]
fn server_batches_match_plain_select_and_survive_restart() {
    let dir = std::env::temp_dir().join(format!("em-serve-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 3000u64;
    let data = shuffled(n, 0xcafe);

    let queries: Vec<Vec<u64>> = vec![
        vec![1, n],
        vec![n / 2],
        vec![n / 3, 2 * n / 3, n / 5],
        vec![42, 42, 2718],
    ];

    // Ground truth per query via plain multi-select on a throwaway context.
    let want: Vec<Vec<u64>> = {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = EmFile::from_slice(&c, &data).unwrap();
        queries
            .iter()
            .map(|q| multi_select(&f, q).unwrap())
            .collect()
    };

    {
        let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
        let server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let client = server.client();
        client.register("ds", data.clone()).unwrap();
        let tickets = client.submit_batch("ds", queries.clone()).unwrap();
        let got: Vec<Vec<u64>> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert_eq!(got, want, "batched answers must be bit-identical");
        drop(client); // the scheduler drains only once every sender is gone
        let report = server.shutdown();
        assert_eq!(report.queries as usize, queries.len());
        assert_eq!(report.batches, 1, "submit_batch coalesces into one pass");
    }

    // Restarted server: the dataset is already in the catalog, and the
    // warmed index makes exact repeats free of selection work.
    let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
    let server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
    let client = server.client();
    let got = client
        .query("ds", queries[0].clone())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(got, want[0]);
    let report = client.report().unwrap();
    assert_eq!(
        report.index_hits as usize,
        queries[0].len(),
        "repeat ranks answered from the persisted skeleton"
    );
    drop(client);
    server.shutdown();
    drop(ctx);
    let _ = std::fs::remove_dir_all(&dir);
}
