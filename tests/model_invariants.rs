//! EM-model fidelity invariants: exact I/O accounting, word-accurate block
//! packing, backend equivalence, memory budgets, and indivisibility of
//! multi-word records through the full pipeline.

use em_splitters::prelude::*;
use emcore::KeyValue;
use workloads::Workload;

#[test]
fn scan_costs_exactly_ceil_n_over_b() {
    for (m, b, n) in [(256usize, 16usize, 1000u64), (4096, 64, 12345)] {
        let ctx = EmContext::new_in_memory(EmConfig::new(m, b).unwrap());
        let f = materialize(&ctx, Workload::UniformPerm, n, 1).unwrap();
        let before = ctx.stats().snapshot();
        let mut r = f.reader().unwrap();
        let mut cnt = 0u64;
        while r.next().unwrap().is_some() {
            cnt += 1;
        }
        assert_eq!(cnt, n);
        let d = ctx.stats().snapshot().since(&before);
        assert_eq!(d.reads, n.div_ceil(b as u64));
        assert_eq!(d.writes, 0);
    }
}

#[test]
fn wide_records_pack_fewer_per_block() {
    let cfg = EmConfig::new(256, 16).unwrap();
    let ctx = EmContext::new_in_memory(cfg);
    let narrow = EmFile::from_slice(&ctx, &(0..64u64).collect::<Vec<_>>()).unwrap();
    let wide_data: Vec<KeyValue> = (0..64).map(|i| KeyValue { key: i, value: i }).collect();
    let wide = EmFile::from_slice(&ctx, &wide_data).unwrap();
    assert_eq!(narrow.num_blocks(), 4); // 64 / (16/1)
    assert_eq!(wide.num_blocks(), 8); // 64 / (16/2)
}

#[test]
fn multi_word_records_survive_full_pipeline() {
    // Indivisibility: the payload must travel with the key through
    // sorting, selection and partitioning.
    let cfg = EmConfig::new(1024, 32).unwrap();
    let ctx = EmContext::new_in_memory(cfg);
    let n = 3000u64;
    let keys = workloads::generate(Workload::UniformPerm, n, 5);
    let data: Vec<KeyValue> = keys
        .iter()
        .map(|&k| KeyValue {
            key: k,
            value: k.wrapping_mul(0x9E3779B9),
        })
        .collect();
    let file = ctx
        .stats()
        .paused(|| EmFile::from_slice(&ctx, &data))
        .unwrap();

    // Sort: payloads still attached.
    let sorted = external_sort(&file).unwrap().to_vec().unwrap();
    assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
    assert!(sorted
        .iter()
        .all(|kv| kv.value == kv.key.wrapping_mul(0x9E3779B9)));

    // Multi-select: the returned records carry their payloads.
    let picked = multi_select(&file, &[1, n / 2, n]).unwrap();
    for kv in &picked {
        assert_eq!(kv.value, kv.key.wrapping_mul(0x9E3779B9));
    }

    // Partitioning: payloads intact in every partition.
    let spec = ProblemSpec::new(n, 6, 100, n).unwrap();
    let parts = approx_partitioning(&file, &spec).unwrap();
    let rep = verify_partitioning(&parts, &spec).unwrap();
    assert!(rep.ok);
    for p in &parts {
        for kv in p.to_vec().unwrap() {
            assert_eq!(kv.value, kv.key.wrapping_mul(0x9E3779B9));
        }
    }
}

#[test]
fn backends_agree_on_partitioning_io() {
    let cfg = EmConfig::new(1024, 32).unwrap();
    let n = 4000u64;
    let spec = ProblemSpec::new(n, 8, 0, n / 4).unwrap();
    let run = |ctx: &EmContext| {
        let file = materialize(ctx, Workload::UniformPerm, n, 6).unwrap();
        ctx.stats().reset();
        let parts = approx_partitioning(&file, &spec).unwrap();
        let sizes: Vec<u64> = parts.iter().map(|p| p.len()).collect();
        (sizes, ctx.stats().snapshot().total_ios())
    };
    let (s1, io1) = run(&EmContext::new_in_memory(cfg));
    let (s2, io2) = run(&EmContext::new_on_disk_temp(cfg).unwrap());
    assert_eq!(s1, s2);
    assert_eq!(io1, io2);
}

#[test]
fn algorithms_fit_strict_memory_at_several_geometries() {
    for (m, b) in [(64usize, 16usize), (256, 16), (512, 64), (2048, 128)] {
        let ctx = EmContext::new_in_memory_strict(EmConfig::new(m, b).unwrap());
        let n = 3000u64;
        let file = materialize(&ctx, Workload::UniformPerm, n, 7).unwrap();
        let spec = ProblemSpec::new(n, 4, 1, n).unwrap();
        // Survival under strict metering is the assertion.
        let sp = approx_splitters(&file, &spec).unwrap_or_else(|e| panic!("M={m} B={b}: {e}"));
        assert_eq!(sp.len(), 3);
        let parts = approx_partitioning(&file, &spec).unwrap();
        assert_eq!(parts.len(), 4);
        let _ = external_sort(&file).unwrap();
        assert!(
            ctx.mem().peak() <= m,
            "M={m} B={b}: peak {}",
            ctx.mem().peak()
        );
    }
}

#[test]
fn determinism_across_runs() {
    let run = || {
        let ctx = EmContext::new_in_memory(EmConfig::medium());
        let file = materialize(&ctx, Workload::UniformPerm, 50_000, 99).unwrap();
        let spec = ProblemSpec::new(50_000, 16, 4, 25_000).unwrap();
        ctx.stats().reset();
        let sp = approx_splitters(&file, &spec).unwrap();
        (sp, ctx.stats().snapshot().total_ios())
    };
    let (a, io_a) = run();
    let (b, io_b) = run();
    assert_eq!(a, b, "outputs must be deterministic");
    assert_eq!(io_a, io_b, "I/O counts must be deterministic");
}

#[test]
fn refined_splitters_feed_intermixed_engine_at_scale() {
    use emselect::{multi_select_with, MsBaseCase, MsOptions, SplitterStrategy};
    // The Θ(M)-capacity path: more groups than the single-round fan-out
    // cap, handled by one intermixed base case over refined splitters.
    let ctx = EmContext::new_in_memory(EmConfig::medium());
    let n = 100_000u64;
    let file = materialize(&ctx, Workload::UniformPerm, n, 23).unwrap();
    let k = 120u64; // > f/2 ≈ 24 for the one-round sampler at this n
    let ranks: Vec<u64> = (1..=k).map(|i| (i * n) / k).collect();
    let got = multi_select_with(
        &file,
        &ranks,
        MsOptions {
            strategy: SplitterStrategy::Deterministic,
            base_capacity_override: None,
            base_case: MsBaseCase::Intermixed,
        },
    )
    .unwrap();
    let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
    assert_eq!(got, want);
}

#[test]
fn oversized_record_still_moves_as_one_unit() {
    // A record wider than a block occupies one block by itself
    // (indivisibility floor: block_records ≥ 1).
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Fat {
        key: u64,
        pad: [u64; 31],
    }
    impl emcore::Record for Fat {
        type Key = u64;
        const WORDS: usize = 32;
        const BYTES: usize = 256;
        fn key(&self) -> u64 {
            self.key
        }
        fn write_bytes(&self, out: &mut [u8]) {
            out[..8].copy_from_slice(&self.key.to_le_bytes());
            for (i, p) in self.pad.iter().enumerate() {
                out[8 + i * 8..16 + i * 8].copy_from_slice(&p.to_le_bytes());
            }
        }
        fn read_bytes(inp: &[u8]) -> Self {
            let mut key = [0u8; 8];
            key.copy_from_slice(&inp[..8]);
            let mut pad = [0u64; 31];
            for (i, p) in pad.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&inp[8 + i * 8..16 + i * 8]);
                *p = u64::from_le_bytes(b);
            }
            Fat {
                key: u64::from_le_bytes(key),
                pad,
            }
        }
    }
    let cfg = EmConfig::new(512, 16).unwrap(); // B = 16 words < 32-word record
    let ctx = EmContext::new_in_memory(cfg);
    let data: Vec<Fat> = (0..10u64)
        .map(|i| Fat {
            key: i,
            pad: [i; 31],
        })
        .collect();
    let f = EmFile::from_slice(&ctx, &data).unwrap();
    assert_eq!(f.num_blocks(), 10, "one record per block");
    assert_eq!(f.to_vec().unwrap(), data);
}
