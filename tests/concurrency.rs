//! Multi-threaded stress tests for the `Send + Sync` EM runtime:
//! concurrent sorts and multi-selects over one shared on-disk context,
//! logical-I/O conservation in the trace report under concurrency, and
//! race-free fault/retry accounting.

use em_splitters::prelude::*;
use emcore::{FaultPlan, RetryPolicy, SplitMix64, TraceReport};

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut v);
    v
}

fn fnv(v: &[u64]) -> u64 {
    v.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &x| {
        (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Worker count for the shared context, overridable so CI can run the
/// suite at both `workers = 1` and `workers = 4`.
fn test_workers() -> usize {
    std::env::var("EM_TEST_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// Several sorts and multi-selects run concurrently on one shared on-disk
/// context. Every sorted output must match the sequential answer
/// digest-for-digest, and the trace report must conserve logical I/Os:
/// with all charged work under one root span, the root's inclusive totals
/// equal the context's whole-run snapshot — no I/O is lost or
/// double-charged by racing threads.
#[test]
fn concurrent_sorts_and_selects_share_one_context() {
    let n = 20_000u64;
    let trace_path =
        std::env::temp_dir().join(format!("em-concurrency-{}.jsonl", std::process::id()));
    let cfg = EmConfig::medium()
        .with_workers(test_workers())
        .with_cache_blocks(64);
    let c = EmContext::new_on_disk_temp(cfg).unwrap();
    c.trace_to_file(&trace_path).unwrap();

    // Materialize every input up front with the oracle paused:
    // `IoStats::paused` is context-global, so it must not overlap the
    // charged work below.
    let sort_inputs: Vec<EmFile<u64>> = [0xA1u64, 0xB2, 0xC3]
        .iter()
        .map(|&seed| {
            let data = shuffled(n, seed);
            c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap()
        })
        .collect();
    let select_inputs: Vec<EmFile<u64>> = [0xD4u64, 0xE5]
        .iter()
        .map(|&seed| {
            let data = shuffled(n, seed);
            c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap()
        })
        .collect();
    let ranks: Vec<u64> = vec![1, n / 7, n / 3, n / 2, n - 1, n];

    // Inputs are permutations of 0..n, so the sequential answers are
    // closed-form: the sorted file is 0..n and rank r selects r-1.
    let want_digest = fnv(&(0..n).collect::<Vec<_>>());
    let want_selected: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();

    let root = c.stats().phase_guard("test/concurrent-root");
    let sorted_files: Vec<EmFile<u64>> = std::thread::scope(|s| {
        let mut sort_handles = Vec::new();
        for f in &sort_inputs {
            let c = &c;
            sort_handles.push(s.spawn(move || {
                let _g = c.stats().phase_guard("test/sort");
                external_sort(f).unwrap()
            }));
        }
        let mut select_handles = Vec::new();
        for f in &select_inputs {
            let (c, ranks) = (&c, &ranks);
            select_handles.push(s.spawn(move || {
                let _g = c.stats().phase_guard("test/select");
                multi_select(f, ranks).unwrap()
            }));
        }
        for h in select_handles {
            assert_eq!(h.join().unwrap(), want_selected);
        }
        sort_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    drop(root);

    for sf in &sorted_files {
        assert_eq!(sf.len(), n);
        let got = c.stats().paused(|| sf.to_vec()).unwrap();
        assert_eq!(fnv(&got), want_digest, "concurrent sort output diverged");
    }

    let snapshot = c.stats().snapshot();
    c.finish_trace();
    let report = TraceReport::load(&trace_path).unwrap();
    std::fs::remove_file(&trace_path).ok();
    assert!(
        report.unclosed().is_empty(),
        "all spans must close despite interleaved open/close: {:?}",
        report
            .unclosed()
            .iter()
            .map(|sp| sp.name.clone())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        report.root_totals().total_ios(),
        snapshot.total_ios(),
        "logical I/Os must be conserved between the trace and the stats"
    );

    // Every buffer charge taken by the racing threads was released: the
    // lock-free memory gauge returns exactly to zero.
    drop((sort_inputs, select_inputs, sorted_files));
    assert_eq!(c.mem().current(), 0, "leaked memory charges");
}

/// Transient read faults injected while several threads scan the same
/// context concurrently: every injected fault is retried and counted
/// exactly once, so `IoStats.retries` equals the plan's injected-transient
/// total — the counters are race-free.
#[test]
fn fault_injection_counters_are_race_free() {
    let n = 4_000u64;
    let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
    c.set_retry_policy(RetryPolicy::retries(30));

    let files: Vec<EmFile<u64>> = (0..4u64)
        .map(|seed| {
            let data = shuffled(n, seed);
            c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap()
        })
        .collect();

    let plan = FaultPlan::new(0x5EED).transient_rate(0.02);
    c.install_fault_plan(plan.clone());
    std::thread::scope(|s| {
        for f in &files {
            s.spawn(move || {
                for _ in 0..2 {
                    let mut r = f.reader().unwrap();
                    let mut count = 0u64;
                    while r.next().unwrap().is_some() {
                        count += 1;
                    }
                    assert_eq!(count, n);
                }
            });
        }
    });
    c.clear_fault_plan();

    let stats = c.stats().snapshot();
    assert!(
        plan.injected().transient_total() > 0,
        "the sweep must actually inject faults to prove anything"
    );
    assert_eq!(
        stats.retries,
        plan.injected().transient_total(),
        "every injected transient fault is counted exactly once across threads"
    );
}
