//! Mid-run memory-squeeze invariants (PR 7, EX-SQUEEZE contract):
//!
//! 1. **Digest invariance** — sort, multi-select, and approximate
//!    partitioning produce answers bit-identical to a fixed-`M` oracle
//!    while the governor ratchets the live budget down and back up, on
//!    both backends. A squeeze may change run lengths, merge fan-in, and
//!    distribution fan-out — never the output.
//! 2. **No panics, typed errors only** — strict-mode squeezes surface as
//!    [`EmError::MemoryExceeded`] at worst; every test here runs strict
//!    where the backend allows it.
//! 3. **Bounded rework** — a squeeze inside a crash-recoverable job that
//!    is then killed and resumed redoes at most one work unit.

use em_splitters::prelude::*;
use emcore::SplitMix64;
use emsort::SortManifest;

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (1..=n).collect();
    let mut rng = SplitMix64::new(seed);
    for i in (1..v.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

fn fnv(data: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &x in data {
        for b in x.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The two backends: strict in-memory (budget violations reject) and
/// lenient on-disk (violations only recorded; sizing still adapts).
fn backends() -> Vec<EmContext> {
    let cfg = EmConfig::new(256, 16).unwrap();
    vec![
        EmContext::new_in_memory_strict(cfg),
        EmContext::new_on_disk_temp(cfg).unwrap(),
    ]
}

/// Ratchet the budget along `schedule` (words) with short sleeps in
/// between, ending back at the full configured budget.
fn ratchet(ctx: &EmContext, schedule: &[usize]) -> std::thread::JoinHandle<()> {
    let full = ctx.config().mem_capacity();
    let ctx = ctx.clone();
    let schedule = schedule.to_vec();
    std::thread::spawn(move || {
        for w in schedule {
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _ = ctx.set_mem_budget(w);
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
        let _ = ctx.set_mem_budget(full);
    })
}

#[test]
fn sort_digest_invariant_under_static_squeeze_both_backends() {
    let n = 5_000u64;
    let data = shuffled(n, 11);
    let mut want = data.clone();
    want.sort_unstable();
    let oracle = fnv(&want);

    for ctx in backends() {
        let full = ctx.config().mem_capacity();
        for budget in [full, full / 2, full / 4, 3 * full / 4] {
            ctx.set_mem_budget(budget).unwrap();
            let f = ctx
                .stats()
                .paused(|| EmFile::from_slice(&ctx, &data))
                .unwrap();
            let sorted = external_sort(&f).unwrap();
            let out = ctx.oracle(|| sorted.to_vec()).unwrap();
            assert_eq!(fnv(&out), oracle, "budget={budget}");
        }
        ctx.set_mem_budget(full).unwrap();
    }
}

#[test]
fn sort_digest_invariant_under_midrun_ratchet() {
    let n = 30_000u64;
    let data = shuffled(n, 23);
    let mut want = data.clone();
    want.sort_unstable();
    let oracle = fnv(&want);

    for ctx in backends() {
        let full = ctx.config().mem_capacity();
        let f = ctx
            .stats()
            .paused(|| EmFile::from_slice(&ctx, &data))
            .unwrap();
        let h = ratchet(&ctx, &[full / 2, full / 4, full / 2]);
        let sorted = external_sort(&f).unwrap();
        h.join().unwrap();
        let out = ctx.oracle(|| sorted.to_vec()).unwrap();
        assert_eq!(fnv(&out), oracle);
        assert_eq!(ctx.mem_budget(), full, "budget restored after the run");
    }
}

#[test]
fn multi_select_answers_invariant_under_squeeze() {
    let n = 4_000u64;
    let data = shuffled(n, 31);
    let ranks = [1u64, 7, n / 3, n / 2, n - 1, n];

    for ctx in backends() {
        let full = ctx.config().mem_capacity();
        let f = ctx
            .stats()
            .paused(|| EmFile::from_slice(&ctx, &data))
            .unwrap();
        let oracle = multi_select(&f, &ranks).unwrap();
        assert_eq!(oracle, ranks.to_vec());

        // Static squeezes: the per-pass splitter count / fan-out narrows,
        // the answers must not move.
        for budget in [full / 2, full / 4] {
            ctx.set_mem_budget(budget).unwrap();
            assert_eq!(multi_select(&f, &ranks).unwrap(), oracle, "budget={budget}");
        }
        ctx.set_mem_budget(full).unwrap();

        // Mid-run ratchet (lenient backend only: selection allocates
        // mid-phase, so a strict mid-run squeeze may — correctly — reject
        // with a typed error rather than adapt).
        if !ctx.mem().is_strict() {
            let h = ratchet(&ctx, &[full / 2, full / 4]);
            for _ in 0..10 {
                assert_eq!(multi_select(&f, &ranks).unwrap(), oracle);
            }
            h.join().unwrap();
        }
    }
}

#[test]
fn apsplit_partitioning_valid_under_squeeze() {
    let n = 4_000u64;
    let data = shuffled(n, 47);

    for ctx in backends() {
        let full = ctx.config().mem_capacity();
        let f = ctx
            .stats()
            .paused(|| EmFile::from_slice(&ctx, &data))
            .unwrap();
        let spec = ProblemSpec::new(n, 8, 100, n).unwrap();

        let oracle_parts = approx_partitioning(&f, &spec).unwrap();
        assert!(verify_partitioning(&oracle_parts, &spec).unwrap().ok);
        let oracle_sizes: Vec<u64> = oracle_parts.iter().map(|p| p.len()).collect();

        // Half budget: the recursion frontier narrows, the output must
        // still verify against the spec.
        ctx.set_mem_budget(full / 2).unwrap();
        let parts = approx_partitioning(&f, &spec).unwrap();
        let rep = verify_partitioning(&parts, &spec).unwrap();
        assert!(rep.ok, "budget={}: {rep:?}", full / 2);

        // Quarter budget (M = 4B) is below the algorithm's feasibility
        // floor (it needs several concurrent block buffers plus resident
        // splitters). The contract is a *typed* rejection — never a
        // panic; on the lenient backend it must still produce a valid
        // partitioning.
        ctx.set_mem_budget(full / 4).unwrap();
        match approx_partitioning(&f, &spec) {
            Ok(parts) => {
                assert!(verify_partitioning(&parts, &spec).unwrap().ok);
            }
            Err(EmError::MemoryExceeded { .. }) => {
                assert!(ctx.mem().is_strict(), "lenient backend must not reject");
            }
            Err(e) => panic!("expected MemoryExceeded, got {e}"),
        }
        ctx.set_mem_budget(full).unwrap();
        let again = approx_partitioning(&f, &spec).unwrap();
        assert_eq!(
            again.iter().map(|p| p.len()).collect::<Vec<_>>(),
            oracle_sizes,
            "restored budget reproduces the oracle partitioning"
        );
    }
}

#[test]
fn strict_starvation_is_a_typed_error_not_a_panic() {
    let ctx = EmContext::new_in_memory_strict(EmConfig::new(256, 16).unwrap());
    let data = shuffled(2_000, 5);
    let f = ctx
        .stats()
        .paused(|| EmFile::from_slice(&ctx, &data))
        .unwrap();

    // Pin most of the budget from a rival tenant, then ask for a sort:
    // it must come back as MemoryExceeded, never abort.
    let _rival = ctx.mem().try_charge(240, "rival tenant").unwrap();
    match external_sort(&f) {
        Err(EmError::MemoryExceeded { .. }) => {}
        Ok(_) => {
            // Also legal: the floor-sized (one block per buffer) degraded
            // path squeaked through. Either way: no panic.
        }
        Err(e) => panic!("expected MemoryExceeded, got {e}"),
    }
    drop(_rival);
    // With the rival gone the same context sorts fine.
    let sorted = external_sort(&f).unwrap();
    let mut want = data.clone();
    want.sort_unstable();
    assert_eq!(ctx.oracle(|| sorted.to_vec()).unwrap(), want);
}

#[test]
fn squeeze_inside_killed_job_resumes_with_bounded_rework() {
    let n = 2_000u64;
    let data = shuffled(n, 13);
    let mut want = data.clone();
    want.sort_unstable();

    // Oracle I/O cost of an unsqueezed, fault-free recoverable sort.
    let clean = EmContext::new_in_memory(EmConfig::new(256, 16).unwrap());
    let cf = clean
        .stats()
        .paused(|| EmFile::from_slice(&clean, &data))
        .unwrap();
    let mut cm = SortManifest::new(&clean, None);
    run_recoverable(&clean, &mut SortJob::new(&cf, &mut cm)).unwrap();
    let clean_ios = clean.stats().snapshot().total_ios();

    let ctx = EmContext::new_in_memory(EmConfig::new(256, 16).unwrap());
    let full = ctx.config().mem_capacity();
    let f = ctx
        .stats()
        .paused(|| EmFile::from_slice(&ctx, &data))
        .unwrap();

    // Squeeze mid-formation, then kill the job with a fatal fault.
    ctx.set_mem_budget(full / 4).unwrap();
    let plan = FaultPlan::new(0).fatal_at(60);
    ctx.install_fault_plan(plan.clone());
    let mut manifest = SortManifest::new(&ctx, None);
    let first = run_recoverable(&ctx, &mut SortJob::new(&f, &mut manifest));
    assert!(matches!(first, Err(EmError::Crashed)), "got {first:?}");

    // Restore the budget and resume: completed units stay done (smaller,
    // squeezed runs are fine — the merge takes any run lengths), only the
    // interrupted unit is redone.
    plan.clear_crash();
    ctx.set_mem_budget(full).unwrap();
    let sorted = run_recoverable(&ctx, &mut SortJob::new(&f, &mut manifest)).unwrap();
    assert_eq!(ctx.oracle(|| sorted.to_vec()).unwrap(), want);

    // Rework bound: squeezing to M/4 shrinks units, so the redone unit is
    // *smaller* than an unsqueezed one; total I/O stays within the clean
    // cost plus one full-size unit plus the squeezed formation overhead
    // (more, shorter runs => a few extra positioning reads and merge I/Os
    // for up to 4x as many runs).
    let total = ctx.stats().snapshot().total_ios();
    let unit_bound = 2 * n.div_ceil(16) + 2;
    assert!(
        total <= clean_ios + unit_bound + clean_ios,
        "{total} I/Os vs clean {clean_ios} + unit {unit_bound}"
    );
}

#[test]
fn governor_lease_fairness_under_contention() {
    let ctx = EmContext::new_in_memory_strict(EmConfig::new(4096, 16).unwrap());
    let gov = ctx.governor().clone();
    let a = gov.lease("tenant-a", 512, 3).unwrap();
    let b = gov.lease("tenant-b", 512, 1).unwrap();

    // Weighted fair shares: floor + weight-proportional surplus.
    let surplus = 4096 - 1024;
    assert_eq!(a.granted(), 512 + surplus * 3 / 4);
    assert_eq!(b.granted(), 512 + surplus / 4);

    // Squeeze: floors hold, surplus shrinks proportionally.
    ctx.set_mem_budget(2048).unwrap();
    assert_eq!(a.granted(), 512 + 1024 * 3 / 4);
    assert_eq!(b.granted(), 512 + 1024 / 4);
    assert!(a.granted() + b.granted() <= 2048);

    // Admission control: a floor that no longer fits is denied, typed.
    match gov.lease("tenant-c", 2000, 1) {
        Err(EmError::MemoryExceeded { .. }) => {}
        other => panic!("expected admission denial, got {other:?}"),
    }
    ctx.set_mem_budget(4096).unwrap();
    assert_eq!(gov.snapshot().denials, 1);
}
