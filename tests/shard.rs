//! Integration tests for sharded scale-out serving: a scripted protocol
//! session against a splitter-partitioned [`Router`] fleet must be
//! byte-identical on the answer stream to the same session against one
//! [`QueryServer`] store, the fleet-shared metrics registry must
//! conserve against the merged report, and a restarted fleet must route
//! from its journaled shard maps without rebuilding.

use em_splitters::prelude::*;
use emcore::SplitMix64;

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut v);
    v
}

fn write_u64_file(path: &std::path::Path, keys: &[u64]) {
    let bytes: Vec<u8> = keys.iter().flat_map(|x| x.to_le_bytes()).collect();
    std::fs::write(path, bytes).unwrap();
}

/// The same scripted session — hello, open, ranks, quantiles, stats —
/// against a 4-shard fleet and a one-store server. The answer streams
/// must be byte-identical, and the fleet's shared registry must hold
/// exactly one e2e histogram sample per accepted sub-query.
#[test]
fn sharded_session_answers_byte_identical_to_single_store() {
    let dir = std::env::temp_dir().join(format!("em-shard-session-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let n = 6000u64;
    write_u64_file(&dir.join("data.bin"), &shuffled(n, 0x5ead));

    let script = format!(
        "hello 1\nopen ds {p}\nrank ds 1 1500 1501 3000 6000\nquantiles ds 8\nrank ds 42\nstats\nquit\n",
        p = dir.join("data.bin").display()
    );

    // One-store oracle session.
    let single_out = {
        let ctx = EmContext::new_on_disk(EmConfig::tiny(), dir.join("single")).unwrap();
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let mut out = Vec::new();
        let mut errs = Vec::new();
        serve_session(&server, script.as_bytes(), &mut out, &mut errs).unwrap();
        server.shutdown().unwrap();
        out
    };

    // The same session against a 4-shard fleet.
    let (rc, scs) = shard_fleet_on_disk(EmConfig::tiny(), dir.join("fleet"), 4).unwrap();
    rc.metrics().set_enabled(true);
    let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).unwrap();
    let mut out = Vec::new();
    let mut errs = Vec::new();
    let session_report = serve_session(&router, script.as_bytes(), &mut out, &mut errs).unwrap();
    assert_eq!(
        out, single_out,
        "fleet answer stream must be byte-identical to the one-store session"
    );
    let errs = String::from_utf8(errs).unwrap();
    assert!(errs.contains("ok hello v1"), "{errs}");
    assert!(errs.contains(&format!("ok open ds {n}")), "{errs}");

    // Conservation over the fleet-shared registry: one e2e sample per
    // accepted sub-query across all shards, equal to the merged report.
    let snap = rc.metrics().snapshot(rc.clock().now_us());
    assert_eq!(
        snap.family_total("em_serve_query_e2e_us"),
        session_report.queries,
        "fleet histograms must conserve against the merged ServeReport"
    );

    let merged = router.shutdown().unwrap();
    assert_eq!(merged.queries, session_report.queries);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fresh fleet over the same root routes from the journaled shard maps
/// — a session can query a dataset it never opened, and the answers stay
/// exact and bit-identical across the restart.
#[test]
fn restarted_fleet_serves_sessions_from_journaled_maps() {
    let dir = std::env::temp_dir().join(format!("em-shard-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let n = 4000u64;
    write_u64_file(&dir.join("data.bin"), &shuffled(n, 0xf1ee7));

    let first = {
        let (rc, scs) = shard_fleet_on_disk(EmConfig::tiny(), dir.join("fleet"), 4).unwrap();
        let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).unwrap();
        let script = format!(
            "open ds {p}\nrank ds 1 1000 1001 4000\nquit\n",
            p = dir.join("data.bin").display()
        );
        let mut out = Vec::new();
        serve_session(&router, script.as_bytes(), &mut out, std::io::sink()).unwrap();
        router.shutdown().unwrap();
        out
    };

    // Restart: no `open` line — the dataset is routable straight from
    // the catalog's shard map journal.
    let (rc, scs) = shard_fleet_on_disk(EmConfig::tiny(), dir.join("fleet"), 4).unwrap();
    let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).unwrap();
    let script = "rank ds 1 1000 1001 4000\nquit\n";
    let mut out = Vec::new();
    serve_session(&router, script.as_bytes(), &mut out, std::io::sink()).unwrap();
    assert_eq!(out, first, "answers must survive the fleet restart");
    router.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent clients hammering one fleet through the QueryService
/// trait: every answer exact and oracle-identical, and the merged
/// report sees every sub-query.
#[test]
fn concurrent_clients_on_a_fleet_stay_exact_and_conserved() {
    let n = 8000u64;
    let (rc, scs) = shard_fleet_in_memory(EmConfig::tiny(), 8);
    rc.metrics().set_enabled(true);
    let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).unwrap();
    router.register("ds", shuffled(n, 0xc0c0)).unwrap();

    std::thread::scope(|s| {
        for c in 0..6u64 {
            let router = &router;
            s.spawn(move || {
                for i in 0..8u64 {
                    let r = 1 + (c * 1217 + i * 2819) % n;
                    let a = router
                        .rank("ds", vec![r, 1 + (r + n / 3) % n])
                        .unwrap()
                        .wait()
                        .unwrap();
                    assert!(!a.approx);
                    // The data is a permutation of 0..n: rank r holds r-1.
                    assert_eq!(a.values[0], r - 1);
                }
            });
        }
    });

    let merged = QueryService::<u64>::stats(&router).unwrap();
    let snap = rc.metrics().snapshot(rc.clock().now_us());
    assert_eq!(snap.family_total("em_serve_query_e2e_us"), merged.queries);
    assert_eq!(router.degraded_key_ranges(), 0);
    router.shutdown().unwrap();
}
