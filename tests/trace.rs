//! Integration tests for the structured tracing subsystem: I/O
//! conservation between the span tree and `IoStats`, redo attribution
//! under injected crashes, and the disabled-by-default contract.

use em_splitters::prelude::*;
use emcore::{EmError, FaultKind, FaultPlan, PointKind, SplitMix64, TraceEvent};
use emsort::{SortJob, SortManifest};

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut v);
    v
}

/// A traced multi-select on the directory backend: the JSONL trace must
/// reconstruct into a span tree whose root I/O totals *exactly* equal the
/// run's `IoStats` snapshot (every charged I/O belongs to some span).
#[test]
fn jsonl_trace_conserves_io_on_disk_backend() {
    let trace_path =
        std::env::temp_dir().join(format!("em-trace-conserve-{}.jsonl", std::process::id()));
    let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
    c.trace_to_file(&trace_path).unwrap();

    let n = 4000u64;
    let data = shuffled(n, 0x7ace);
    let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
    let ranks: Vec<u64> = vec![1, n / 7, n / 3, n / 2, n - 1];

    // One root span wraps all charged work, so the tree's root totals are
    // comparable to the whole-run snapshot.
    let got = {
        let _root = c.stats().phase_guard("test/root");
        multi_select(&f, &ranks).unwrap()
    };
    let mut sorted = data.clone();
    sorted.sort_unstable();
    for (r, g) in ranks.iter().zip(&got) {
        assert_eq!(*g, sorted[(*r - 1) as usize]);
    }

    let snapshot = c.stats().snapshot();
    c.finish_trace();

    let report = TraceReport::load(&trace_path).unwrap();
    std::fs::remove_file(&trace_path).ok();
    assert!(
        report.unclosed().is_empty(),
        "all spans must close: {:?}",
        report
            .unclosed()
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
    );
    let roots = report.root_totals();
    assert_eq!(
        roots.total_ios(),
        snapshot.total_ios(),
        "span-tree root I/O must equal the run snapshot"
    );
    assert_eq!(roots.reads, snapshot.reads);
    assert_eq!(roots.writes, snapshot.writes);
    assert_eq!(roots.bytes_read, snapshot.bytes_read);
    assert_eq!(roots.bytes_written, snapshot.bytes_written);
    // The tree actually has structure: the multi-select phase sits under
    // the test root.
    assert!(report.spans.iter().any(|s| s.name == "multi-select"));
}

/// A crash + resume of the recoverable sort, traced end to end: the trace
/// carries exactly one `work_unit_redo` point, its I/O delta equals the
/// stats' `redone_ios`, and it is attributed to a work-unit span.
#[test]
fn traced_resume_attributes_redone_work() {
    let c = EmContext::new_in_memory(EmConfig::tiny());
    let ring = RingSink::new(0); // unbounded: keep every event
    c.set_trace_sink(Box::new(ring.clone()));

    let n = 1200u64;
    let data = shuffled(n, 0xdead);
    let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
    let plan = FaultPlan::new(0).fatal_at(40);
    c.install_fault_plan(plan.clone());

    let mut manifest = SortManifest::new(&c, None);
    let first = run_recoverable(&c, &mut SortJob::new(&f, &mut manifest));
    assert!(matches!(first, Err(EmError::Crashed)));
    plan.clear_crash();
    let sorted = run_recoverable(&c, &mut SortJob::new(&f, &mut manifest)).unwrap();
    let mut want = data.clone();
    want.sort_unstable();
    assert_eq!(c.oracle(|| sorted.to_vec()).unwrap(), want);

    let snapshot = c.stats().snapshot();
    assert!(snapshot.redone_ios > 0, "the crash must force rework");
    c.finish_trace();

    let events = ring.events();
    assert_eq!(ring.dropped(), 0);
    let report = TraceReport::from_events(&events);
    assert!(report.unclosed().is_empty());

    // Exactly one redo point, carrying the exact redone-I/O tally.
    let redos: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Point {
                kind: PointKind::WorkUnitRedo { ios },
                span,
                ..
            } => Some((*span, *ios)),
            _ => None,
        })
        .collect();
    assert_eq!(redos.len(), 1, "one cleared crash => one redone unit");
    let (span, ios) = redos[0];
    assert_eq!(ios, snapshot.redone_ios);

    // ... attributed to a specific work-unit span in the tree.
    let unit = report
        .spans
        .iter()
        .find(|s| s.id == span)
        .expect("redo point's span must exist");
    assert!(
        unit.name.starts_with("unit/"),
        "redo attributed to a work-unit span, got {:?}",
        unit.name
    );
    assert_eq!(unit.redo_events, 1);
    assert_eq!(unit.redo_ios, snapshot.redone_ios);

    // The injected fatal fault itself is visible, attributed to a span.
    let faults: Vec<u64> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Point {
                kind:
                    PointKind::Fault {
                        kind: FaultKind::Fatal,
                        ..
                    },
                span,
                ..
            } => Some(*span),
            _ => None,
        })
        .collect();
    assert_eq!(faults.len(), 1, "the fatal injects once");
    assert_ne!(faults[0], 0, "fault lands inside an open span");

    // The recoverable sort journals its checkpoints; those show up too.
    assert!(events.iter().any(|ev| matches!(
        ev,
        TraceEvent::Point {
            kind: PointKind::JournalCommit { .. },
            ..
        }
    )));
}

/// A traced *parallel* sort must produce a parse-clean JSONL trace:
/// spans opened on worker threads nest under the parent phase captured on
/// the main thread (never becoming spurious roots), every span closes,
/// and root-total conservation still holds. Regression test for
/// `emsplit --trace --workers > 1` emitting traces `trace_report` could
/// not attribute.
#[test]
fn parallel_sort_trace_is_parse_clean_and_nested() {
    let trace_path =
        std::env::temp_dir().join(format!("em-trace-parallel-{}.jsonl", std::process::id()));
    let cfg = EmConfig::builder()
        .mem(256)
        .block(16)
        .workers(4)
        .build()
        .unwrap();
    let c = EmContext::new_on_disk_temp(cfg).unwrap();
    c.trace_to_file(&trace_path).unwrap();

    let n = 6000u64;
    let data = shuffled(n, 0x9a11);
    let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
    let sorted = {
        let _root = c.stats().phase_guard("test/parallel-root");
        parallel_external_sort(&f).unwrap()
    };
    let mut want = data.clone();
    want.sort_unstable();
    assert_eq!(c.stats().paused(|| sorted.to_vec()).unwrap(), want);

    let snapshot = c.stats().snapshot();
    c.finish_trace();

    let report = TraceReport::load(&trace_path).unwrap();
    std::fs::remove_file(&trace_path).ok();
    assert!(
        report.unclosed().is_empty(),
        "worker spans must all close: {:?}",
        report
            .unclosed()
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
    );

    // Worker-thread unit spans exist and are parented under the phase
    // spans the main thread opened — not floating as roots.
    let span_parent_name = |parent_id: u64| {
        report
            .spans
            .iter()
            .find(|s| s.id == parent_id)
            .map(|s| s.name.clone())
            .unwrap_or_default()
    };
    let run_units: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.name.starts_with("unit/run#"))
        .collect();
    assert!(
        !run_units.is_empty(),
        "parallel run formation must trace per-chunk unit spans"
    );
    for u in &run_units {
        assert_eq!(
            span_parent_name(u.parent),
            "sort/run-formation",
            "span {:?} must nest under the formation phase",
            u.name
        );
    }
    for u in report
        .spans
        .iter()
        .filter(|s| s.name.starts_with("unit/merge-group#"))
    {
        assert_eq!(
            span_parent_name(u.parent),
            "sort/merge",
            "span {:?} must nest under the merge phase",
            u.name
        );
    }

    // Conservation survives multi-threaded emission: no I/O was lost to
    // orphaned worker roots.
    let roots = report.root_totals();
    assert_eq!(
        roots.total_ios(),
        snapshot.total_ios(),
        "span-tree root I/O must equal the run snapshot"
    );
}

/// Without a sink, tracing stays disabled and costs nothing observable:
/// the same workload produces identical I/O accounting either way, and no
/// spans are left open.
#[test]
fn disabled_tracer_records_nothing_and_charges_nothing() {
    let run = |traced: bool| -> (u64, Option<Vec<TraceEvent>>) {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let ring = RingSink::new(0);
        if traced {
            c.set_trace_sink(Box::new(ring.clone()));
        }
        let data = shuffled(3000, 0xbeef);
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let q = quantiles(&f, 8).unwrap();
        assert_eq!(q.len(), 7);
        let ios = c.stats().snapshot().total_ios();
        if traced {
            c.finish_trace();
            (ios, Some(ring.events()))
        } else {
            assert!(!c.tracer().is_enabled());
            (ios, None)
        }
    };
    let (plain_ios, none) = run(false);
    let (traced_ios, events) = run(true);
    assert!(none.is_none());
    let events = events.unwrap();
    assert!(
        events.len() > 2,
        "traced run must actually record span events"
    );
    assert_eq!(
        plain_ios, traced_ios,
        "tracing must not change the EM cost model"
    );
}
