//! Integration guard for the metrics runtime's zero-overhead contract:
//! the registry is off by default, and whether it is off or on, the
//! algorithm stack's logical I/O accounting and answers are bit-identical
//! — instrumentation observes the run, it never perturbs it.

use em_splitters::prelude::*;
use emcore::SplitMix64;

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (1..=n).collect();
    SplitMix64::new(seed).shuffle(&mut v);
    v
}

fn fnv(vals: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in vals {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run the full stack — sort, multi-select, approximate splitters — on a
/// fresh context and return (logical counters, output digest).
fn pipeline(metrics_on: bool) -> (emcore::Counters, u64) {
    let n = 20_000u64;
    let ctx = EmContext::new_in_memory(EmConfig::medium());
    if metrics_on {
        ctx.metrics().set_enabled(true);
    }
    let data = shuffled(n, 0xd16e57);
    let f = ctx
        .stats()
        .paused(|| EmFile::from_slice(&ctx, &data))
        .unwrap();

    let sorted = external_sort(&f).unwrap();
    let sorted_head = ctx.stats().paused(|| sorted.to_vec()).unwrap();
    let ranks: Vec<u64> = (1..8).map(|i| i * n / 8).collect();
    let selected = multi_select(&f, &ranks).unwrap();
    let spec = ProblemSpec::builder(n, 16).min_size(4).build().unwrap();
    let splitters = approx_splitters(&f, &spec).unwrap();

    let digest = fnv(sorted_head.into_iter().chain(selected).chain(splitters));
    (ctx.stats().snapshot(), digest)
}

/// A fresh context's registry is disabled and records nothing; enabling
/// it must not change a single logical I/O counter or output bit.
#[test]
fn metrics_off_is_the_default_and_on_perturbs_nothing() {
    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    assert!(
        !ctx.metrics().enabled(),
        "observability must be opt-in, never ambient"
    );
    // The device-latency histograms exist from the start but stay empty
    // while disabled, even across real device traffic.
    let f = EmFile::from_slice(&ctx, &[3u64, 1, 2]).unwrap();
    let _ = f.to_vec().unwrap();
    let snap = ctx.metrics().snapshot(0);
    assert_eq!(snap.family_total("em_device_read_us"), 0);
    assert_eq!(snap.family_total("em_device_write_us"), 0);

    let (off, digest_off) = pipeline(false);
    let (on, digest_on) = pipeline(true);
    assert_eq!(off, on, "logical I/O counters must be bit-identical");
    assert_eq!(digest_off, digest_on, "answers must be bit-identical");
}

/// With the registry enabled, the device layer feeds real transfer
/// latencies: the histograms fill, percentiles are monotone, and the
/// exposition carries the families.
#[test]
fn enabled_registry_observes_device_transfers() {
    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    ctx.metrics().set_enabled(true);
    let data = shuffled(5000, 0xde1ce);
    let f = EmFile::from_slice(&ctx, &data).unwrap();
    let _ = external_sort(&f).unwrap();

    let snap = ctx.metrics().snapshot(ctx.clock().now_us());
    let reads = snap
        .find("em_device_read_us", &[])
        .and_then(|s| s.hist.clone())
        .expect("read histogram registered");
    let writes = snap
        .find("em_device_write_us", &[])
        .and_then(|s| s.hist.clone())
        .expect("write histogram registered");
    assert!(reads.count() > 0 && writes.count() > 0);
    assert!(reads.percentile(50.0) <= reads.percentile(99.0));
    assert!(reads.percentile(99.0) <= reads.max());

    let text = ctx.metrics().expose();
    assert!(text.contains("# TYPE em_device_read_us summary"));
    assert!(text.contains("em_device_read_us_count"));
}

/// The sampler → JSONL → report pipeline round-trips on a live context:
/// every sampled line re-parses, and the rendered report names the
/// device families.
#[test]
fn sampler_series_round_trips_through_the_report() {
    let dir = std::env::temp_dir().join(format!("em-metrics-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("series.jsonl");

    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    ctx.metrics().set_enabled(true);
    let sampler = Sampler::to_file(
        ctx.metrics().clone(),
        ctx.clock(),
        std::time::Duration::from_millis(1),
        &path,
    )
    .unwrap();
    let data = shuffled(4000, 0x5a3);
    let f = EmFile::from_slice(&ctx, &data).unwrap();
    let _ = external_sort(&f).unwrap();
    sampler.stop().unwrap();

    let series = std::fs::read_to_string(&path).unwrap();
    assert!(!series.trim().is_empty(), "final tick always writes");
    for line in series.lines().filter(|l| !l.trim().is_empty()) {
        MetricSample::parse(line).expect("every sampled line re-parses");
    }
    let report = render_series_report(&series).unwrap();
    assert!(report.contains("em_device_read_us"));
    assert!(report.contains("# metrics report"));
    let _ = std::fs::remove_dir_all(&dir);
}
