//! Large-scale stress tests (run with `cargo test --release -- --ignored`).

use em_splitters::prelude::*;
use workloads::Workload;

#[test]
#[ignore = "large: ~10M records; run with --release -- --ignored"]
fn ten_million_records_all_pipelines() {
    let ctx = EmContext::new_in_memory(EmConfig::medium());
    let n = 10_000_000u64;
    let file = materialize(&ctx, Workload::UniformPerm, n, 8).unwrap();

    // Splitters, all regimes.
    for spec in [
        ProblemSpec::builder(n, 64).min_size(4).build().unwrap(),
        ProblemSpec::builder(n, 64).max_size(n / 8).build().unwrap(),
        ProblemSpec::builder(n, 64)
            .min_size(4)
            .max_size(n / 2)
            .build()
            .unwrap(),
    ] {
        let sp = approx_splitters(&file, &spec).unwrap();
        let rep = ctx
            .stats()
            .paused(|| verify_splitters(&file, &sp, &spec))
            .unwrap();
        assert!(rep.ok, "{spec}");
    }

    // Partitioning + multiset check on sizes.
    let spec = ProblemSpec::builder(n, 64)
        .min_size(4)
        .max_size(n / 2)
        .build()
        .unwrap();
    let parts = approx_partitioning(&file, &spec).unwrap();
    let rep = ctx
        .stats()
        .paused(|| verify_partitioning(&parts, &spec))
        .unwrap();
    assert!(rep.ok);
    assert_eq!(parts.iter().map(|p| p.len()).sum::<u64>(), n);

    // Multi-selection against closed-form answers (input is a permutation).
    let ranks = vec![1, n / 3, n / 2, n - 1, n];
    let got = multi_select(&file, &ranks).unwrap();
    let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
    assert_eq!(got, want);

    // Memory stayed within the model the whole time.
    assert!(ctx.mem().peak() <= ctx.mem().capacity());
}

#[test]
#[ignore = "large: sorts 10M records; run with --release -- --ignored"]
fn ten_million_sort_io_matches_formula() {
    let ctx = EmContext::new_in_memory(EmConfig::medium());
    let n = 10_000_000u64;
    let file = materialize(&ctx, Workload::Reversed, n, 9).unwrap();
    ctx.stats().reset();
    let sorted = external_sort(&file).unwrap();
    assert!(emsort::is_sorted(&sorted).unwrap());
    let ios = ctx.stats().snapshot().total_ios() as f64;
    let predicted = emsort::predicted_sort_ios(ctx.config(), n);
    assert!(
        ios <= predicted * 1.3,
        "sort took {ios} vs predicted {predicted}"
    );
}
