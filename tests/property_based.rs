//! Property-based tests over the full pipeline: random feasible problem
//! instances and random data must always produce verifier-clean outputs,
//! and the EM algorithms must agree with trivial in-memory references.

use proptest::prelude::*;

use em_splitters::prelude::*;
use emcore::Indexed;

/// A feasible (n, k, a, b) tuple plus a data seed.
fn arb_instance() -> impl Strategy<Value = (u64, u64, u64, u64, u64)> {
    (200u64..3000, 2u64..24, any::<u64>()).prop_flat_map(|(n, k, seed)| {
        let nk = n / k;
        (0u64..=nk, Just(n), Just(k), Just(seed)).prop_flat_map(move |(a, n, k, seed)| {
            (n.div_ceil(k)..=n).prop_map(move |b| (n, k, a, b, seed))
        })
    })
}

fn ctx() -> EmContext {
    EmContext::new_in_memory(EmConfig::new(512, 16).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn splitters_always_verify((n, k, a, b, seed) in arb_instance()) {
        let c = ctx();
        // Distinct keys via Indexed so any a ≥ 1 stays feasible.
        let keys = workloads::generate(Workload::UniformPerm, n, seed);
        let data: Vec<Indexed<u64>> = keys
            .iter()
            .enumerate()
            .map(|(i, &x)| Indexed::new(x, i as u64))
            .collect();
        let file = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let spec = ProblemSpec::new(n, k, a, b).unwrap();
        let sp = approx_splitters(&file, &spec).unwrap();
        prop_assert_eq!(sp.len(), (k - 1) as usize);
        let rep = verify_splitters(&file, &sp, &spec).unwrap();
        prop_assert!(rep.ok, "{} sizes {:?}", spec, rep.sizes);
    }

    #[test]
    fn partitioning_always_verifies((n, k, a, b, seed) in arb_instance()) {
        let c = ctx();
        let keys = workloads::generate(Workload::UniformPerm, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let spec = ProblemSpec::new(n, k, a, b).unwrap();
        let parts = approx_partitioning(&file, &spec).unwrap();
        let rep = verify_partitioning(&parts, &spec).unwrap();
        prop_assert!(rep.ok, "{} report {:?}", spec, rep);
        // Multiset preservation.
        let mut all = Vec::new();
        for p in &parts {
            all.extend(p.to_vec().unwrap());
        }
        all.sort_unstable();
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(all, want);
    }

    #[test]
    fn multi_select_matches_reference(
        n in 100u64..2500,
        seed in any::<u64>(),
        ranks_raw in prop::collection::vec(any::<u64>(), 1..12),
        dup_values in prop::option::of(1u64..20),
    ) {
        let c = ctx();
        let wl = match dup_values {
            Some(v) => Workload::FewDistinct { values: v },
            None => Workload::UniformPerm,
        };
        let keys = workloads::generate(wl, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let ranks: Vec<u64> = ranks_raw.iter().map(|r| 1 + r % n).collect();
        let got = multi_select(&file, &ranks).unwrap();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn external_sort_matches_reference(
        n in 1u64..4000,
        seed in any::<u64>(),
        dup_values in prop::option::of(1u64..50),
    ) {
        let c = ctx();
        let wl = match dup_values {
            Some(v) => Workload::FewDistinct { values: v },
            None => Workload::UniformPerm,
        };
        let keys = workloads::generate(wl, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let sorted = external_sort(&file).unwrap().to_vec().unwrap();
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(sorted, want);
    }

    #[test]
    fn split_at_rank_exact(
        n in 50u64..2500,
        seed in any::<u64>(),
        dup_values in prop::option::of(1u64..10),
    ) {
        let c = ctx();
        let wl = match dup_values {
            Some(v) => Workload::FewDistinct { values: v },
            None => Workload::UniformPerm,
        };
        let keys = workloads::generate(wl, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let count = 1 + seed % n;
        let (low, high, boundary) = emselect::split_at_rank(&file, count).unwrap();
        prop_assert_eq!(low.len(), count);
        prop_assert_eq!(high.len(), n - count);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(boundary, sorted[(count - 1) as usize]);
        prop_assert!(low.to_vec().unwrap().iter().all(|&x| x <= boundary));
        prop_assert!(high.to_vec().unwrap().iter().all(|&x| x >= boundary));
    }

    #[test]
    fn quantiles_are_valid_splitters(
        n in 100u64..2000,
        q in 2u64..16,
        seed in any::<u64>(),
    ) {
        let c = ctx();
        let keys = workloads::generate(Workload::UniformPerm, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let qs = quantiles(&file, q).unwrap();
        prop_assert_eq!(qs.len(), (q - 1) as usize);
        // Induced partitions must be near-even: in {floor(n/q), ..., ceil(n/q)+1}.
        let spec = ProblemSpec::new(n, q, n / q, n.div_ceil(q)).unwrap();
        let rep = verify_splitters(&file, &qs, &spec).unwrap();
        prop_assert!(rep.ok, "sizes {:?}", rep.sizes);
    }

    #[test]
    fn memory_budget_never_exceeded(
        n in 500u64..3000,
        k in 2u64..12,
        seed in any::<u64>(),
    ) {
        // Strict contexts panic on violation, so survival is the assertion.
        let c = EmContext::new_in_memory_strict(EmConfig::new(512, 16).unwrap());
        let keys = workloads::generate(Workload::UniformPerm, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let spec = ProblemSpec::new(n, k, 1, n).unwrap();
        let sp = approx_splitters(&file, &spec).unwrap();
        prop_assert_eq!(sp.len(), (k - 1) as usize);
        let parts = approx_partitioning(&file, &spec).unwrap();
        prop_assert_eq!(parts.len(), k as usize);
        prop_assert!(c.mem().peak() <= c.mem().capacity());
    }
}
