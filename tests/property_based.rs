//! Property-based tests over the full pipeline: random feasible problem
//! instances and random data must always produce verifier-clean outputs,
//! and the EM algorithms must agree with trivial in-memory references.
//!
//! The instance generator is a seeded [`SplitMix64`] loop rather than a
//! shrinking framework (the workspace builds offline, with no external
//! dependencies); every case prints its instance on failure, and the same
//! master seed always replays the same cases.

use em_splitters::prelude::*;
use emcore::{Indexed, SplitMix64};

const CASES: usize = 48;
const MASTER_SEED: u64 = 0x5eed_ca5e;

/// A feasible (n, k, a, b) tuple plus a data seed.
fn gen_instance(rng: &mut SplitMix64) -> (u64, u64, u64, u64, u64) {
    let n = 200 + rng.below(2800);
    let k = 2 + rng.below(22);
    let seed = rng.next_u64();
    let a = rng.below(n / k + 1);
    let lo = n.div_ceil(k);
    let b = lo + rng.below(n - lo + 1);
    (n, k, a, b, seed)
}

fn ctx() -> EmContext {
    EmContext::new_in_memory(EmConfig::new(512, 16).unwrap())
}

#[test]
fn splitters_always_verify() {
    let mut rng = SplitMix64::new(MASTER_SEED);
    for case in 0..CASES {
        let (n, k, a, b, seed) = gen_instance(&mut rng);
        let c = ctx();
        // Distinct keys via Indexed so any a ≥ 1 stays feasible.
        let keys = workloads::generate(Workload::UniformPerm, n, seed);
        let data: Vec<Indexed<u64>> = keys
            .iter()
            .enumerate()
            .map(|(i, &x)| Indexed::new(x, i as u64))
            .collect();
        let file = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let spec = ProblemSpec::new(n, k, a, b).unwrap();
        let sp = approx_splitters(&file, &spec).unwrap();
        assert_eq!(sp.len(), (k - 1) as usize, "case {case}: {spec}");
        let rep = verify_splitters(&file, &sp, &spec).unwrap();
        assert!(rep.ok, "case {case}: {} sizes {:?}", spec, rep.sizes);
    }
}

#[test]
fn partitioning_always_verifies() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 1);
    for case in 0..CASES {
        let (n, k, a, b, seed) = gen_instance(&mut rng);
        let c = ctx();
        let keys = workloads::generate(Workload::UniformPerm, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let spec = ProblemSpec::new(n, k, a, b).unwrap();
        let parts = approx_partitioning(&file, &spec).unwrap();
        let rep = verify_partitioning(&parts, &spec).unwrap();
        assert!(rep.ok, "case {case}: {} report {:?}", spec, rep);
        // Multiset preservation.
        let mut all = Vec::new();
        for p in &parts {
            all.extend(p.to_vec().unwrap());
        }
        all.sort_unstable();
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(all, want, "case {case}: {spec}");
    }
}

#[test]
fn multi_select_matches_reference() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 2);
    for case in 0..CASES {
        let n = 100 + rng.below(2400);
        let seed = rng.next_u64();
        let wl = if rng.below(2) == 0 {
            Workload::FewDistinct {
                values: 1 + rng.below(19),
            }
        } else {
            Workload::UniformPerm
        };
        let num_ranks = 1 + rng.below(11) as usize;
        let c = ctx();
        let keys = workloads::generate(wl, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let ranks: Vec<u64> = (0..num_ranks).map(|_| 1 + rng.below(n)).collect();
        let got = multi_select(&file, &ranks).unwrap();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();
        assert_eq!(got, want, "case {case}: n={n} ranks={ranks:?}");
    }
}

#[test]
fn external_sort_matches_reference() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 3);
    for case in 0..CASES {
        let n = 1 + rng.below(3999);
        let seed = rng.next_u64();
        let wl = if rng.below(2) == 0 {
            Workload::FewDistinct {
                values: 1 + rng.below(49),
            }
        } else {
            Workload::UniformPerm
        };
        let c = ctx();
        let keys = workloads::generate(wl, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let sorted = external_sort(&file).unwrap().to_vec().unwrap();
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(sorted, want, "case {case}: n={n} wl={wl:?}");
    }
}

#[test]
fn split_at_rank_exact() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 4);
    for case in 0..CASES {
        let n = 50 + rng.below(2450);
        let seed = rng.next_u64();
        let wl = if rng.below(2) == 0 {
            Workload::FewDistinct {
                values: 1 + rng.below(9),
            }
        } else {
            Workload::UniformPerm
        };
        let c = ctx();
        let keys = workloads::generate(wl, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let count = 1 + seed % n;
        let (low, high, boundary) = emselect::split_at_rank(&file, count).unwrap();
        assert_eq!(low.len(), count, "case {case}");
        assert_eq!(high.len(), n - count, "case {case}");
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(boundary, sorted[(count - 1) as usize], "case {case}");
        assert!(low.to_vec().unwrap().iter().all(|&x| x <= boundary));
        assert!(high.to_vec().unwrap().iter().all(|&x| x >= boundary));
    }
}

#[test]
fn quantiles_are_valid_splitters() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 5);
    for case in 0..CASES {
        let n = 100 + rng.below(1900);
        let q = 2 + rng.below(14);
        let seed = rng.next_u64();
        let c = ctx();
        let keys = workloads::generate(Workload::UniformPerm, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let qs = quantiles(&file, q).unwrap();
        assert_eq!(qs.len(), (q - 1) as usize, "case {case}");
        // Induced partitions must be near-even: in {floor(n/q), ..., ceil(n/q)+1}.
        let spec = ProblemSpec::new(n, q, n / q, n.div_ceil(q)).unwrap();
        let rep = verify_splitters(&file, &qs, &spec).unwrap();
        assert!(rep.ok, "case {case}: sizes {:?}", rep.sizes);
    }
}

#[test]
fn memory_budget_never_exceeded() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 6);
    for case in 0..CASES {
        let n = 500 + rng.below(2500);
        let k = 2 + rng.below(10);
        let seed = rng.next_u64();
        // Strict contexts panic on violation, so survival is the assertion.
        let c = EmContext::new_in_memory_strict(EmConfig::new(512, 16).unwrap());
        let keys = workloads::generate(Workload::UniformPerm, n, seed);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &keys)).unwrap();
        let spec = ProblemSpec::new(n, k, 1, n).unwrap();
        let sp = approx_splitters(&file, &spec).unwrap();
        assert_eq!(sp.len(), (k - 1) as usize, "case {case}");
        let parts = approx_partitioning(&file, &spec).unwrap();
        assert_eq!(parts.len(), k as usize, "case {case}");
        assert!(c.mem().peak() <= c.mem().capacity(), "case {case}");
    }
}
