//! End-to-end tests of the `emsplit` command-line tool: generate data,
//! compute splitters/quantiles, verify, sort — through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_emsplit")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emsplit-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn emsplit");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn gen_splitters_verify_roundtrip() {
    let data = tmp("a.bin");
    let data_s = data.to_str().unwrap();
    let (_, err, ok) = run(&[
        "gen",
        data_s,
        "50000",
        "--workload",
        "uniform",
        "--seed",
        "3",
    ]);
    assert!(ok, "{err}");
    assert_eq!(std::fs::metadata(&data).unwrap().len(), 50_000 * 8);

    let (out, err, ok) = run(&["splitters", data_s, "--k", "8", "--min", "4", "--stats"]);
    assert!(ok, "{err}");
    let splitters: Vec<&str> = out.lines().collect();
    assert_eq!(splitters.len(), 7);
    assert!(err.contains("[stats]"), "stats requested: {err}");

    let mut args = vec!["verify", data_s, "--k", "8", "--min", "4", "--"];
    args.extend(splitters.iter());
    let (_, err, ok) = run(&args);
    assert!(ok, "verification failed: {err}");
    assert!(err.contains("OK"));
}

#[test]
fn verify_rejects_bad_splitters() {
    let data = tmp("b.bin");
    let data_s = data.to_str().unwrap();
    run(&["gen", data_s, "10000", "--seed", "4"]);
    // Splitters clustered at the bottom: some partition must be tiny.
    let (_, err, ok) = run(&[
        "verify", data_s, "--k", "4", "--min", "100", "--", "1", "2", "3",
    ]);
    assert!(!ok);
    assert!(err.contains("INVALID"), "{err}");
}

#[test]
fn quantiles_match_sorted_file() {
    let data = tmp("c.bin");
    let sorted = tmp("c-sorted.bin");
    let data_s = data.to_str().unwrap();
    run(&["gen", data_s, "20000", "--seed", "5"]);
    let (out, err, ok) = run(&["quantiles", data_s, "--q", "4"]);
    assert!(ok, "{err}");
    let got: Vec<u64> = out.lines().map(|l| l.parse().unwrap()).collect();
    assert_eq!(got.len(), 3);

    let (_, err, ok) = run(&["sort", data_s, sorted.to_str().unwrap()]);
    assert!(ok, "{err}");
    let bytes = std::fs::read(&sorted).unwrap();
    let keys: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    for (i, &q) in got.iter().enumerate() {
        let rank = ((i as u64 + 1) * 20_000) / 4;
        assert_eq!(q, keys[(rank - 1) as usize]);
    }
}

#[test]
fn partition_writes_ordered_shards() {
    let data = tmp("d.bin");
    let outdir = tmp("parts");
    run(&["gen", data.to_str().unwrap(), "10000", "--seed", "6"]);
    let (_, err, ok) = run(&[
        "partition",
        data.to_str().unwrap(),
        outdir.to_str().unwrap(),
        "--k",
        "5",
        "--min",
        "1000",
    ]);
    assert!(ok, "{err}");
    let mut prev_max = 0u64;
    let mut total = 0usize;
    for i in 0..5 {
        let bytes = std::fs::read(outdir.join(format!("part-{i:04}.bin"))).unwrap();
        let keys: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert!(keys.len() >= 1000, "shard {i} too small");
        let mn = *keys.iter().min().unwrap();
        assert!(mn >= prev_max);
        prev_max = *keys.iter().max().unwrap();
        total += keys.len();
    }
    assert_eq!(total, 10_000);
}

/// `select` prints the requested ranks' elements in caller order; a
/// scripted `serve` session over the same data must answer identically,
/// and its store directory must survive for a second session.
#[test]
fn serve_session_matches_one_shot_select() {
    let data = tmp("e.bin");
    let store = tmp("e-store");
    let data_s = data.to_str().unwrap();
    run(&["gen", data_s, "30000", "--seed", "7"]);

    let (sel_out, err, ok) = run(&["select", data_s, "--ranks", "15000,1,29999,400"]);
    assert!(ok, "{err}");
    assert_eq!(sel_out.lines().count(), 4);
    let (q_out, err, ok) = run(&["quantiles", data_s, "--q", "8"]);
    assert!(ok, "{err}");

    let script = format!("open ds {data_s}\nrank ds 15000 1 29999 400\nquantiles ds 8\nquit\n");
    let serve = |script: &str| -> (String, String, bool) {
        use std::io::Write as _;
        let mut child = Command::new(bin())
            .args(["serve", store.to_str().unwrap()])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn emsplit serve");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(script.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
            out.status.success(),
        )
    };
    let (out, err, ok) = serve(&script);
    assert!(ok, "{err}");
    assert_eq!(
        out,
        format!("{sel_out}{q_out}"),
        "serve must match one-shot"
    );
    assert!(err.contains("ok open ds 30000"), "{err}");

    // A second session on the same store: the dataset is in the catalog
    // (no re-registration cost) and answers are unchanged.
    let (out2, err, ok) = serve(&script);
    assert!(ok, "{err}");
    assert_eq!(out2, out, "restarted store must answer identically");
}

#[test]
fn help_and_bad_usage() {
    let (_, err, ok) = run(&["help"]);
    assert!(ok);
    assert!(err.contains("usage"));
    let (_, err, ok) = run(&["splitters", "/nonexistent/file.bin", "--k", "4"]);
    assert!(!ok);
    assert!(err.contains("emsplit:"), "{err}");
}

/// The `graph-*` family end to end: generate an R-MAT edge list,
/// canonicalize it, cluster it, and read the degree profile — and pin
/// the determinism contract: the cluster digest is identical across
/// `--workers` and `--mem` settings.
#[test]
fn graph_family_roundtrip_and_digest_invariance() {
    let edges = tmp("g.bin");
    let canon = tmp("g-canon.bin");
    let edges_s = edges.to_str().unwrap();
    let (_, err, ok) = run(&[
        "graph-gen",
        edges_s,
        "--kind",
        "rmat",
        "--scale",
        "8",
        "--edges",
        "3000",
        "--seed",
        "9",
    ]);
    assert!(ok, "{err}");
    assert_eq!(std::fs::metadata(&edges).unwrap().len(), 3000 * 16);

    let (_, err, ok) = run(&["graph-build", edges_s, canon.to_str().unwrap(), "--stats"]);
    assert!(ok, "{err}");
    assert!(err.contains("max degree"), "{err}");
    // Canonical file: sorted, deduplicated, symmetric (src,dst) pairs.
    let bytes = std::fs::read(&canon).unwrap();
    let keys: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let pairs: Vec<(u64, u64)> = keys.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    assert!(pairs.windows(2).all(|w| w[0] < w[1]), "canonical order");
    assert!(pairs.iter().all(|&(s, d)| s != d), "no self-loops");

    let cluster = |extra: &[&str]| -> String {
        let mut args = vec!["graph-cluster", edges_s, "--rounds", "4"];
        args.extend_from_slice(extra);
        let (out, err, ok) = run(&args);
        assert!(ok, "{err}");
        assert!(
            out.starts_with("clusters=") && out.contains("digest="),
            "{out}"
        );
        out
    };
    let base = cluster(&[]);
    assert_eq!(base, cluster(&["--workers", "4"]), "worker invariance");
    assert_eq!(
        base,
        cluster(&["--mem", "4096", "--block", "64"]),
        "memory-budget invariance"
    );

    let (out, err, ok) = run(&["graph-stats", edges_s, "--buckets", "4"]);
    assert!(ok, "{err}");
    assert!(out.starts_with("vertices="), "{out}");
    assert_eq!(out.lines().filter(|l| l.starts_with("bucket=")).count(), 4);
}

/// `graph-cluster --trace` emits per-round `graph/round#N` spans, and
/// `--labels` writes a labels file whose length is the vertex count.
#[test]
fn graph_cluster_trace_and_labels_output() {
    let edges = tmp("h.bin");
    let trace = tmp("h-trace.jsonl");
    let labels = tmp("h-labels.bin");
    let edges_s = edges.to_str().unwrap();
    run(&[
        "graph-gen",
        edges_s,
        "--kind",
        "grid",
        "--rows",
        "12",
        "--cols",
        "12",
    ]);
    let (out, err, ok) = run(&[
        "graph-cluster",
        edges_s,
        "--rounds",
        "3",
        "--labels",
        labels.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("digest="), "{out}");
    assert_eq!(std::fs::metadata(&labels).unwrap().len(), 144 * 8);
    let doc = std::fs::read_to_string(&trace).unwrap();
    assert!(doc.contains("graph/round#1"), "round spans in trace");
    assert!(doc.contains("graph/round#3"), "all rounds traced");
}
