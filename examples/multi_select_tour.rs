//! The paper's algorithmic engine in isolation: I/O-optimal
//! multi-selection (Theorem 4) versus the sort-based route, plus the
//! quantile convenience API and the precise-partitioning reduction (§3).
//!
//! Run: `cargo run --release --example multi_select_tour`

use em_splitters::prelude::*;

fn main() -> Result<()> {
    let cfg = EmConfig::medium();
    let n = 1_000_000u64;

    // --- Multi-selection: a handful of ranks in ~a few scans. ---
    let ctx = EmContext::new_in_memory(cfg);
    let file = materialize(&ctx, Workload::UniformPerm, n, 2024)?;
    let ranks = vec![1, n / 100, n / 4, n / 2, 3 * n / 4, n];
    ctx.stats().reset();
    let answers = multi_select(&file, &ranks)?;
    let ms_ios = ctx.stats().snapshot().total_ios();
    assert!(ctx
        .stats()
        .paused(|| verify_multiselect(&file, &ranks, &answers))?);
    println!("multi-select of {} ranks over {n} records:", ranks.len());
    for (r, a) in ranks.iter().zip(&answers) {
        println!("  rank {r:>8} -> {a}");
    }
    let scan = n.div_ceil(cfg.block_size() as u64);
    println!(
        "  cost: {ms_ios} I/Os = {:.2} scans (sorting would need ~{} I/Os)\n",
        ms_ios as f64 / scan as f64,
        (emsort::predicted_sort_ios(cfg, n)) as u64
    );

    // --- Quantiles: the (1/q)-quantile in one call. ---
    ctx.stats().reset();
    let deciles = quantiles(&file, 10)?;
    println!(
        "deciles ({} I/Os): {:?}\n",
        ctx.stats().snapshot().total_ios(),
        deciles
    );

    // --- Single-rank selection (the EM median). ---
    ctx.stats().reset();
    let median = select_rank(&file, n / 2)?;
    println!(
        "median = {median} in {} I/Os\n",
        ctx.stats().snapshot().total_ios()
    );

    // --- The §3 reduction: precise partitioning via the approximate one. ---
    let b = n / 32;
    ctx.stats().reset();
    let parts = precise_via_approx(&file, b)?;
    let red_ios = ctx.stats().snapshot().total_ios();
    assert_eq!(parts.len(), 32);
    assert!(parts.iter().all(|p| p.len() == b));
    println!(
        "§3 reduction: precise 32-way partitioning via the approximate \
         algorithm: {red_ios} I/Os = {:.2} scans",
        red_ios as f64 / scan as f64
    );
    println!("(this executable reduction is how Theorem 3's lower bound transfers)");
    Ok(())
}
