//! A parallel processing pipeline on top of approximate partitioning —
//! the paper's §1 motivation taken to its natural conclusion: partition
//! once (order-preserving, roughly balanced), then stream the shards
//! through a pool of workers over channels, and concatenate the per-shard
//! results without any merge step (cross-shard order is already global).
//!
//! The workload: per-shard sorting. Because the shards are ordered ranges,
//! concatenating the sorted shards yields the globally sorted sequence —
//! a two-phase parallel sort whose sequential I/O phase is one
//! approximate partitioning instead of a full multiway merge sort.
//!
//! Run: `cargo run --release --example pipeline`

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use em_splitters::prelude::*;

fn main() -> Result<()> {
    let cfg = EmConfig::medium();
    let ctx = EmContext::new_in_memory(cfg);
    let n = 1_000_000u64;
    let workers = 8usize;
    let file = materialize(&ctx, Workload::UniformPerm, n, 31)?;

    println!("two-phase parallel sort of {n} records with {workers} workers\n");

    // Phase 1 (sequential, I/O-bound): roughly balanced order-preserving
    // partitioning — the EM part.
    let t0 = std::time::Instant::now();
    ctx.stats().reset();
    let shards = balanced_loads(&file, workers as u64, 0.5)?;
    let part_ios = ctx.stats().snapshot().total_ios();
    // Ship each shard's records out of the simulator (a real deployment
    // would hand each worker its files).
    let shipped: Vec<(usize, Vec<u64>)> = shards
        .iter()
        .enumerate()
        .map(|(i, p)| Ok((i, p.to_vec()?)))
        .collect::<Result<_>>()?;
    let phase1 = t0.elapsed();

    // Phase 2 (parallel, CPU-bound): per-shard sort through a channel pool.
    let t1 = std::time::Instant::now();
    // std::sync::mpsc receivers are single-consumer, so the worker pool
    // shares the task receiver behind a mutex (shards are large, so the
    // lock is uncontended relative to the sort work).
    let (task_tx, task_rx) = mpsc::sync_channel::<(usize, Vec<u64>)>(workers);
    let (done_tx, done_rx) = mpsc::sync_channel::<(usize, Vec<u64>)>(workers);
    let task_rx = Arc::new(Mutex::new(task_rx));
    let sorted_shards = std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = Arc::clone(&task_rx);
            let done_tx = done_tx.clone();
            scope.spawn(move || loop {
                let task = {
                    let rx = task_rx.lock().expect("task queue lock");
                    rx.recv()
                };
                let Ok((idx, mut shard)) = task else { break };
                shard.sort_unstable();
                if done_tx.send((idx, shard)).is_err() {
                    break;
                }
            });
        }
        drop(done_tx);
        let expected = shipped.len();
        let producer = scope.spawn(move || {
            for item in shipped {
                if task_tx.send(item).is_err() {
                    break;
                }
            }
            // closing task_tx lets workers drain and exit
        });
        let mut collected: Vec<Option<Vec<u64>>> = (0..expected).map(|_| None).collect();
        for _ in 0..expected {
            let (idx, shard) = done_rx.recv().expect("worker result");
            collected[idx] = Some(shard);
        }
        producer.join().expect("producer");
        collected
            .into_iter()
            .map(|s| s.expect("all shards"))
            .collect::<Vec<_>>()
    });
    let phase2 = t1.elapsed();

    // Concatenation = done: cross-shard order was preserved by partitioning.
    let mut prev = 0u64;
    let mut total = 0u64;
    for shard in &sorted_shards {
        for &x in shard {
            assert!(x >= prev, "global order violated");
            prev = x;
            total += 1;
        }
    }
    assert_eq!(total, n);

    println!("phase 1 (partition, sequential I/O): {part_ios} I/Os, {phase1:?}");
    println!("phase 2 (sort shards, {workers} workers):   {phase2:?}");
    println!("\nglobally sorted ✓ — no merge phase needed: the shards were");
    println!("order-disjoint by construction (every record in shard i is ≤");
    println!("every record in shard i+1).");

    // Contrast: the classical single-machine external sort.
    ctx.stats().reset();
    let t2 = std::time::Instant::now();
    let _sorted = external_sort(&file)?;
    let sort_ios = ctx.stats().snapshot().total_ios();
    let sort_time = t2.elapsed();
    println!("\nbaseline external merge sort: {sort_ios} I/Os, {sort_time:?} (sequential)");
    println!(
        "partitioning used {:.0}% of the baseline's I/O and parallelised the rest",
        100.0 * part_ios as f64 / sort_ios as f64
    );
    Ok(())
}
