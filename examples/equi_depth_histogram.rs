//! Nearly equi-depth histograms — the paper's second motivation (§1):
//! "the bucket boundaries of an equi-depth histogram of K buckets
//! correspond to the output of the approximate K-splitters problem [...]
//! If one can accept a nearly equi-depth histogram, then the bucket
//! boundaries can be found in less — sometimes even sublinear — time."
//!
//! Builds histograms over a skewed (Zipf-like) dataset at several slack
//! levels, renders them, and reports the I/O cost of each.
//!
//! Run: `cargo run --release --example equi_depth_histogram`

use em_splitters::prelude::*;

fn bar(count: u64, max: u64, width: usize) -> String {
    let filled = ((count as f64 / max as f64) * width as f64).round() as usize;
    "#".repeat(filled.min(width))
}

fn main() -> Result<()> {
    let cfg = EmConfig::medium();
    let n = 400_000u64;
    let k = 12u64;

    println!("equi-depth histogram of {n} Zipf-distributed records, {k} buckets\n");

    for slack in [0.0, 0.5] {
        let ctx = EmContext::new_in_memory(cfg);
        let file = materialize(
            &ctx,
            Workload::ZipfLike {
                values: 10_000,
                s: 1.1,
            },
            n,
            123,
        )?;
        ctx.stats().reset();
        let hist = equi_depth_histogram(&file, k, slack)?;
        let ios = ctx.stats().snapshot().total_ios();

        println!("slack = {slack}:  ({ios} I/Os)");
        let maxc = *hist.counts.iter().max().unwrap();
        let mut lo = 0u64;
        for (i, &count) in hist.counts.iter().enumerate() {
            let hi_label = if i < hist.boundaries.len() {
                format!("{:>6}", hist.boundaries[i])
            } else {
                "   max".to_string()
            };
            println!(
                "  ({:>6}, {hi_label}]  {:>6}  {}",
                lo,
                count,
                bar(count, maxc, 40)
            );
            lo = hist.boundaries.get(i).copied().unwrap_or(lo);
        }
        let total: u64 = hist.counts.iter().sum();
        assert_eq!(total, n);
        println!();
    }

    println!(
        "note: the skew means narrow key ranges near 0 hold as many records as\n\
         huge ranges in the tail — exactly what equi-depth buckets equalise."
    );
    Ok(())
}
