//! Parallel load balancing — the paper's first motivation (§1):
//! "distributing S onto a number K of machines for parallel processing.
//! [...] the cost of partitioning can be reduced if one is satisfied with
//! a roughly balanced distribution."
//!
//! Partitions a dataset across K workers with a load-slack knob, shows the
//! I/O saved versus perfect balance, then actually runs the K workers in
//! parallel threads (each consumes its partition independently) to
//! demonstrate the end-to-end pipeline.
//!
//! Run: `cargo run --release --example load_balance`

use std::sync::atomic::{AtomicU64, Ordering};

use em_splitters::prelude::*;

fn main() -> Result<()> {
    let cfg = EmConfig::medium();
    let n = 500_000u64;

    // With many target machines (K ≫ M/B), exact balance needs multiple
    // distribution passes; slack shrinks the effective partition count
    // (the Table-1 `lg min{N/b, ·}` term) and saves passes.
    let k_many = 2048u64;
    println!("distributing {n} records onto {k_many} workers ({cfg})\n");
    println!("| slack | min load | max load | imbalance | I/Os | vs exact |");
    println!("|-------|----------|----------|-----------|------|----------|");

    let mut exact_ios = 0u64;
    for slack in [0.0, 1.0, 7.0, 63.0] {
        let ctx = EmContext::new_in_memory(cfg);
        let file = materialize(&ctx, Workload::UniformPerm, n, 7)?;
        ctx.stats().reset();
        let loads = balanced_loads(&file, k_many, slack)?;
        let ios = ctx.stats().snapshot().total_ios();
        if slack == 0.0 {
            exact_ios = ios;
        }
        let sizes: Vec<u64> = loads.iter().map(|l| l.len()).collect();
        let (mn, mx) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        println!(
            "| {slack:>5.1} | {mn:>8} | {mx:>8} | {:>8.2}x | {ios:>5} | {:>7.2}x |",
            mx as f64 / mn.max(1) as f64,
            exact_ios as f64 / ios as f64,
        );
    }
    println!(
        "\nphysically moving every record costs ~lg(K) distribution passes no\n\
         matter the slack — the big savings are in *planning* the boundaries:\n"
    );

    // If each machine pulls its own shard (the usual cluster pattern), the
    // coordinator only needs the K−1 boundary keys — the approximate
    // K-SPLITTERS problem, where slack buys orders of magnitude:
    println!("| bounds per machine | planning I/Os | vs exact |");
    println!("|--------------------|---------------|----------|");
    let mut exact_plan = 0u64;
    for (label, a, b) in [
        ("exactly ~N/K", n / k_many, n.div_ceil(k_many)),
        ("≥ 64 each", 64, n),
        ("≥ 4 each", 4, n),
    ] {
        let ctx = EmContext::new_in_memory(cfg);
        let file = materialize(&ctx, Workload::UniformPerm, n, 7)?;
        let spec = ProblemSpec::builder(n, k_many)
            .min_size(a)
            .max_size(b)
            .build()?;
        ctx.stats().reset();
        let sp = approx_splitters(&file, &spec)?;
        let ios = ctx.stats().snapshot().total_ios();
        if exact_plan == 0 {
            exact_plan = ios;
        }
        let rep = ctx.stats().paused(|| verify_splitters(&file, &sp, &spec))?;
        assert!(rep.ok);
        println!(
            "| {label:<18} | {ios:>13} | {:>7.1}x |",
            exact_plan as f64 / ios as f64
        );
    }
    let k = 16u64;

    // End-to-end: balance once, then run the workers. Each worker owns its
    // partition (order across workers is preserved: worker i holds smaller
    // keys than worker i+1), so a global aggregate can be assembled
    // without any cross-worker communication.
    println!("\nrunning the 16 workers in parallel (slack 0.5):");
    let ctx = EmContext::new_in_memory(cfg);
    let file = materialize(&ctx, Workload::UniformPerm, n, 7)?;
    let loads = balanced_loads(&file, k, 0.5)?;

    // Workers get host-side copies (the EM context is single-threaded by
    // design; a real deployment would ship each partition to its machine).
    let shipped: Vec<Vec<u64>> = loads
        .iter()
        .map(|l| l.to_vec())
        .collect::<Result<Vec<_>>>()?;

    let grand_total = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for (i, part) in shipped.iter().enumerate() {
            let grand_total = &grand_total;
            scope.spawn(move || {
                // Each worker computes a local aggregate over its range.
                let local: u64 = part.iter().copied().sum();
                grand_total.fetch_add(local, Ordering::Relaxed);
                let mn = part.iter().min().copied().unwrap_or(0);
                let mx = part.iter().max().copied().unwrap_or(0);
                println!(
                    "  worker {i:>2}: {:>6} records, key range [{mn:>6}, {mx:>6}]",
                    part.len()
                );
            });
        }
    });
    let expect: u64 = (0..n).sum();
    assert_eq!(grand_total.load(Ordering::Relaxed), expect);
    println!("\nglobal checksum verified across workers ✓");
    Ok(())
}
