//! A tour of the external-memory model runtime itself: contexts, typed
//! block files, I/O accounting, phase attribution, memory metering, and
//! the real-file backend.
//!
//! Run: `cargo run --release --example io_model_tour`

use em_splitters::prelude::*;
use emcore::KeyValue;

fn main() -> Result<()> {
    // --- 1. The machine: memory M, block size B (in records). ---
    let cfg = EmConfig::builder().mem(4096).block(64).build()?;
    let ctx = EmContext::new_in_memory(cfg);
    println!("machine: {cfg}");

    // --- 2. Files are sequences of records in B-record blocks. ---
    let data: Vec<u64> = (0..10_000).rev().collect();
    let file = EmFile::from_slice(&ctx, &data)?;
    println!(
        "wrote {} records into {} blocks ({} write I/Os)",
        file.len(),
        file.num_blocks(),
        ctx.stats().snapshot().writes
    );

    // --- 3. Every scan costs exactly ceil(N/B) reads. ---
    let before = ctx.stats().snapshot();
    let mut reader = file.reader()?;
    let mut sum = 0u64;
    while let Some(x) = reader.next()? {
        sum += x;
    }
    drop(reader);
    let delta = ctx.stats().snapshot().since(&before);
    println!(
        "scanned (sum = {sum}): {} reads = ceil({}/{})",
        delta.reads,
        file.len(),
        cfg.block_size()
    );

    // --- 4. Phases attribute I/Os to sub-algorithms. ---
    ctx.stats().reset();
    let sorted = external_sort(&file)?;
    println!("\nexternal sort of {} records:", sorted.len());
    for (name, c) in ctx.stats().phase_totals() {
        println!("  {name:<22} {:>6} I/Os", c.total_ios());
    }

    // --- 5. Memory metering: algorithms cannot cheat the model. ---
    println!(
        "\npeak tracked memory during the sort: {} / {} words",
        ctx.mem().peak(),
        ctx.mem().capacity()
    );
    assert!(ctx.mem().peak() <= ctx.mem().capacity());

    // --- 6. Multi-word records pack fewer per block (B is in words). ---
    let kv: Vec<KeyValue> = (0..100)
        .map(|i| KeyValue {
            key: i,
            value: i * i,
        })
        .collect();
    let kv_file = EmFile::from_slice(&ctx, &kv)?;
    println!(
        "\nKeyValue records are 2 words: {} records -> {} blocks (vs {} for u64)",
        kv_file.len(),
        kv_file.num_blocks(),
        100u64.div_ceil(64)
    );

    // --- 7. The same code runs on real files, same I/O counts. ---
    let disk_ctx = EmContext::new_on_disk_temp(cfg)?;
    let disk_file = EmFile::from_slice(&disk_ctx, &data)?;
    let before = disk_ctx.stats().snapshot();
    let _sorted = external_sort(&disk_file)?;
    let disk_ios = disk_ctx.stats().snapshot().since(&before);
    println!(
        "\nfile-backed sort: {} I/Os, {} bytes actually written to disk",
        disk_ios.total_ios(),
        disk_ios.bytes_written
    );
    Ok(())
}
