//! Quickstart: approximate K-splitters end to end.
//!
//! Builds an external-memory machine, generates data, finds two-sided
//! approximate splitters, verifies them, and compares the I/O cost against
//! the sort-based baseline and against a full scan.
//!
//! Run: `cargo run --release --example quickstart`

use em_splitters::prelude::*;

fn main() -> Result<()> {
    // The EM machine: M = 4096 records of memory, blocks of B = 64.
    let cfg = EmConfig::medium();
    let ctx = EmContext::new_in_memory(cfg);

    // One million records in random order, materialised on the "disk"
    // without charging the algorithm's meter.
    let n = 1_000_000u64;
    let file = materialize(&ctx, Workload::UniformPerm, n, 42)?;
    println!("machine: {cfg}");
    println!("input:   {n} records = {} blocks\n", file.num_blocks());

    // Problem: split into K = 64 ranges, each holding between a = 8 and
    // b = N/2 records — a two-sided instance.
    let spec = ProblemSpec::builder(n, 64)
        .min_size(8)
        .max_size(n / 2)
        .build()?;
    println!("spec:    {spec}");

    ctx.stats().reset();
    let splitters = approx_splitters(&file, &spec)?;
    let approx_ios = ctx.stats().snapshot().total_ios();

    // Verify (not charged to the algorithm).
    let report = ctx
        .stats()
        .paused(|| verify_splitters(&file, &splitters, &spec))?;
    assert!(report.ok, "splitters invalid: {:?}", report.violations);
    println!(
        "\nfound {} splitters; induced partition sizes range {}..{}",
        splitters.len(),
        report.sizes.iter().min().unwrap(),
        report.sizes.iter().max().unwrap()
    );

    // The baseline: sort everything, read off the quantiles.
    ctx.stats().reset();
    let _baseline = sort_based_splitters(&file, &spec)?;
    let sort_ios = ctx.stats().snapshot().total_ios();

    let scan = n.div_ceil(cfg.block_size() as u64);
    println!("\nI/O cost:");
    println!("  one scan of the input : {scan:>8} I/Os");
    println!(
        "  approximate splitters : {approx_ios:>8} I/Os  ({:.2} scans)",
        approx_ios as f64 / scan as f64
    );
    println!(
        "  sort-based baseline   : {sort_ios:>8} I/Os  ({:.2} scans)",
        sort_ios as f64 / scan as f64
    );
    println!(
        "  speedup               : {:.1}x",
        sort_ios as f64 / approx_ios as f64
    );

    // And the headline: a right-grounded instance (only a lower bound on
    // partition sizes) is solvable in SUBLINEAR I/O.
    let spec_r = ProblemSpec::builder(n, 64).min_size(4).build()?;
    ctx.stats().reset();
    let s = approx_splitters(&file, &spec_r)?;
    let sub_ios = ctx.stats().snapshot().total_ios();
    let rep = ctx
        .stats()
        .paused(|| verify_splitters(&file, &s, &spec_r))?;
    assert!(rep.ok);
    println!(
        "\nright-grounded (a=4, b=N): {sub_ios} I/Os — {}x fewer than one scan",
        scan / sub_ios.max(1)
    );
    Ok(())
}
