//! Zipfian query-rank streams for the serving experiments.

use emcore::SplitMix64;

/// A seeded Zipfian *query-rank* stream for serving experiments: `count`
/// ranks in `[1, n]`, drawn from `hot` distinct hot ranks with Zipf
/// weights `1/i^s` (hot rank 1 is the most popular). The hot ranks
/// themselves are a deterministic function of `seed`, spread uniformly
/// over `[1, n]`, so repeated queries hit the same ranks — the skew a
/// splitter index exploits. `s = 0` degrades to uniform over the hot set.
pub fn zipf_query_ranks(n: u64, hot: u64, s: f64, count: usize, seed: u64) -> Vec<u64> {
    let n = n.max(1);
    let hot = hot.max(1).min(n) as usize;
    let mut rng = SplitMix64::new(seed);
    // Distinct hot ranks: jittered picks from `hot` equal strata of [1, n].
    let mut hot_ranks = Vec::with_capacity(hot);
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..hot as u64 {
        let lo = (i * n) / hot as u64;
        let hi = (((i + 1) * n) / hot as u64).max(lo + 1);
        let mut r = lo + 1 + rng.below(hi - lo);
        while !seen.insert(r) {
            r = 1 + rng.below(n);
        }
        hot_ranks.push(r);
    }
    // Popularity order is independent of position: shuffle, then weight
    // the i-th hot rank by 1/i^s (inverse-CDF table, as ZipfLike).
    rng.shuffle(&mut hot_ranks);
    let mut cdf = Vec::with_capacity(hot);
    let mut acc = 0.0f64;
    for i in 1..=hot {
        acc += 1.0 / (i as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    (0..count)
        .map(|_| {
            let u = rng.unit() * total;
            hot_ranks[cdf.partition_point(|&c| c < u)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_query_ranks_golden_histogram() {
        // Pin the exact distribution: same seed must yield the same hot
        // ranks and the same per-rank frequencies, forever. Regenerating
        // this golden data means the stream changed and every EX-SERVE
        // number with it.
        let ranks = zipf_query_ranks(1000, 8, 1.1, 2000, 42);
        assert_eq!(ranks.len(), 2000);
        let mut hist: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
        for r in ranks {
            assert!((1..=1000).contains(&r));
            *hist.entry(r).or_default() += 1;
        }
        let got: Vec<(u64, usize)> = hist.into_iter().collect();
        let want: Vec<(u64, usize)> = vec![
            (39, 369),
            (167, 151),
            (359, 170),
            (390, 787),
            (501, 237),
            (688, 81),
            (801, 110),
            (909, 95),
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn zipf_query_ranks_is_deterministic_and_skewed() {
        let a = zipf_query_ranks(1 << 20, 64, 1.2, 5000, 7);
        let b = zipf_query_ranks(1 << 20, 64, 1.2, 5000, 7);
        assert_eq!(a, b);
        assert_ne!(a, zipf_query_ranks(1 << 20, 64, 1.2, 5000, 8));
        // At most `hot` distinct ranks, and a clear head/tail split.
        let mut hist: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
        for &r in &a {
            *hist.entry(r).or_default() += 1;
        }
        assert!(hist.len() <= 64);
        let mut counts: Vec<usize> = hist.values().copied().collect();
        counts.sort_unstable_by(|x, y| y.cmp(x));
        assert!(
            counts[0] > counts[counts.len() - 1] * 3,
            "head {} vs tail {}",
            counts[0],
            counts[counts.len() - 1]
        );
    }
}
