//! Key-array workloads: the input families of the paper's experiments.

use emcore::{EmContext, EmFile, Result, SplitMix64};

/// An input-distribution family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// A uniformly random permutation of `0..n`.
    UniformPerm,
    /// Already sorted ascending (`0..n`).
    Sorted,
    /// Sorted descending.
    Reversed,
    /// Sorted, then `frac·n` random transpositions.
    NearlySorted {
        /// Fraction of `n` random transpositions applied (e.g. 0.05).
        frac: f64,
    },
    /// Uniform over `values` distinct keys (heavy duplication).
    FewDistinct {
        /// Number of distinct key values.
        values: u64,
    },
    /// Zipf-like skew over `values` distinct keys with exponent `s`.
    ZipfLike {
        /// Number of distinct key values.
        values: u64,
        /// Skew exponent (`s = 1.0` is the classic Zipf).
        s: f64,
    },
    /// The paper's hard family `Π_hard` (§2.1): with block size `block`,
    /// the elements at block-position `i` across all blocks form the
    /// `i`-th contiguous key range, randomly permuted within the range.
    HardBlockColumns {
        /// Block size `B` the family is built against.
        block: usize,
    },
}

/// Generate `n` keys of the given `workload`, deterministically from
/// `seed`.
pub fn generate(workload: Workload, n: u64, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    match workload {
        Workload::UniformPerm => {
            let mut v: Vec<u64> = (0..n).collect();
            rng.shuffle(&mut v);
            v
        }
        Workload::Sorted => (0..n).collect(),
        Workload::Reversed => (0..n).rev().collect(),
        Workload::NearlySorted { frac } => {
            let mut v: Vec<u64> = (0..n).collect();
            let swaps = ((n as f64) * frac) as u64;
            for _ in 0..swaps {
                if n >= 2 {
                    let i = rng.below(n) as usize;
                    let j = rng.below(n) as usize;
                    v.swap(i, j);
                }
            }
            v
        }
        Workload::FewDistinct { values } => (0..n).map(|_| rng.below(values.max(1))).collect(),
        Workload::ZipfLike { values, s } => {
            // Inverse-CDF sampling over a precomputed Zipf table.
            let v = values.max(1) as usize;
            let mut cdf = Vec::with_capacity(v);
            let mut acc = 0.0f64;
            for i in 1..=v {
                acc += 1.0 / (i as f64).powf(s);
                cdf.push(acc);
            }
            let total = acc;
            (0..n)
                .map(|_| {
                    let u = rng.unit() * total;
                    cdf.partition_point(|&c| c < u) as u64
                })
                .collect()
        }
        Workload::HardBlockColumns { block } => {
            let b = block.max(1) as u64;
            let blocks = n.div_ceil(b);
            // Position i of block t gets a key from range
            // [i·blocks, (i+1)·blocks), permuted within the range.
            let mut perms: Vec<Vec<u64>> = Vec::with_capacity(b as usize);
            for i in 0..b {
                let mut range: Vec<u64> = (i * blocks..(i + 1) * blocks).collect();
                rng.shuffle(&mut range);
                perms.push(range);
            }
            let mut out = Vec::with_capacity(n as usize);
            'outer: for t in 0..blocks {
                for perm in perms.iter() {
                    if out.len() as u64 == n {
                        break 'outer;
                    }
                    out.push(perm[t as usize]);
                }
            }
            out
        }
    }
}

/// Generate and write the workload into an [`EmFile`] without charging
/// I/O (setup is not part of any measured algorithm).
pub fn materialize(ctx: &EmContext, workload: Workload, n: u64, seed: u64) -> Result<EmFile<u64>> {
    let data = generate(workload, n, seed);
    ctx.stats().paused(|| EmFile::from_slice(ctx, &data))
}

/// Human-readable short name (used in experiment tables).
pub fn name(workload: Workload) -> String {
    match workload {
        Workload::UniformPerm => "uniform".into(),
        Workload::Sorted => "sorted".into(),
        Workload::Reversed => "reversed".into(),
        Workload::NearlySorted { frac } => format!("nearly-sorted({frac})"),
        Workload::FewDistinct { values } => format!("few-distinct({values})"),
        Workload::ZipfLike { values, s } => format!("zipf({values},{s})"),
        Workload::HardBlockColumns { block } => format!("hard-columns(B={block})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_permutation() {
        let v = generate(Workload::UniformPerm, 1000, 1);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_deterministic_per_seed() {
        assert_eq!(
            generate(Workload::UniformPerm, 100, 5),
            generate(Workload::UniformPerm, 100, 5)
        );
        assert_ne!(
            generate(Workload::UniformPerm, 100, 5),
            generate(Workload::UniformPerm, 100, 6)
        );
    }

    #[test]
    fn sorted_and_reversed() {
        assert!(generate(Workload::Sorted, 50, 0)
            .windows(2)
            .all(|w| w[0] < w[1]));
        assert!(generate(Workload::Reversed, 50, 0)
            .windows(2)
            .all(|w| w[0] > w[1]));
    }

    #[test]
    fn nearly_sorted_is_permutation_mostly_ordered() {
        let v = generate(Workload::NearlySorted { frac: 0.01 }, 10_000, 2);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..10_000).collect::<Vec<_>>());
        let inversions_adjacent = v.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(
            inversions_adjacent < 500,
            "{inversions_adjacent} adjacent inversions"
        );
    }

    #[test]
    fn few_distinct_range() {
        let v = generate(Workload::FewDistinct { values: 7 }, 1000, 3);
        assert!(v.iter().all(|&x| x < 7));
        let distinct: std::collections::BTreeSet<u64> = v.iter().copied().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn zipf_is_skewed() {
        let v = generate(
            Workload::ZipfLike {
                values: 100,
                s: 1.2,
            },
            10_000,
            4,
        );
        assert!(v.iter().all(|&x| x < 100));
        let zeros = v.iter().filter(|&&x| x == 0).count();
        let tail = v.iter().filter(|&&x| x == 99).count();
        assert!(zeros > tail * 3, "zipf skew missing: {zeros} vs {tail}");
    }

    #[test]
    fn hard_columns_structure() {
        let b = 16usize;
        let n = 1600u64;
        let v = generate(Workload::HardBlockColumns { block: b }, n, 5);
        assert_eq!(v.len(), 1600);
        let blocks = n / b as u64;
        // Position i of every block must carry keys from [i·blocks, (i+1)·blocks).
        for (pos, &key) in v.iter().enumerate() {
            let i = (pos % b) as u64;
            assert!(
                key >= i * blocks && key < (i + 1) * blocks,
                "pos {pos} key {key} outside column range"
            );
        }
        // And it is a permutation of 0..n.
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn hard_columns_partial_tail() {
        let v = generate(Workload::HardBlockColumns { block: 16 }, 100, 6);
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn materialize_charges_nothing() {
        let ctx = EmContext::new_in_memory(emcore::EmConfig::tiny());
        let f = materialize(&ctx, Workload::UniformPerm, 500, 7).unwrap();
        assert_eq!(f.len(), 500);
        assert_eq!(ctx.stats().snapshot().total_ios(), 0);
    }

    #[test]
    fn names_distinct() {
        let names: Vec<String> = [
            Workload::UniformPerm,
            Workload::Sorted,
            Workload::Reversed,
            Workload::NearlySorted { frac: 0.1 },
            Workload::FewDistinct { values: 3 },
            Workload::ZipfLike { values: 10, s: 1.0 },
            Workload::HardBlockColumns { block: 64 },
        ]
        .into_iter()
        .map(name)
        .collect();
        let set: std::collections::BTreeSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
