//! # workloads — input generators for the EM experiments
//!
//! Deterministic (seeded) generators for every input family the
//! experiments use, split by family:
//!
//! * [`keys`] — key-array workloads: uniform permutations,
//!   (nearly/reverse-)sorted inputs, duplicate-heavy distributions, and
//!   the paper's hard permutation family `Π_hard` (§2.1) where the
//!   `i`-th positions of all input blocks form the `i`-th contiguous
//!   key range.
//! * [`zipf`] — Zipfian query-rank streams for serving experiments.
//! * [`graph`] — edge-list generators (RMAT power-law, 2-D grids) for
//!   the semi-external graph experiments. Generators return plain
//!   `(src, dst)` tuples so this crate stays a leaf: `emgraph` converts
//!   them into its on-disk record form.
//!
//! All public names are re-exported at the crate root, so existing call
//! sites (`workloads::generate`, `workloads::zipf_query_ranks`, …) are
//! unaffected by the module split.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use emcore::SplitMix64;

pub mod graph;
pub mod keys;
pub mod zipf;

pub use graph::{degree_histogram, grid_edges, rmat_edges};
pub use keys::{generate, materialize, name, Workload};
pub use zipf::zipf_query_ranks;
