//! Seeded edge-list generators for the semi-external graph experiments.
//!
//! Generators return plain `(src, dst)` tuples: raw directed edges, with
//! whatever self-loops and duplicates the model naturally produces. The
//! graph build in `emgraph` symmetrizes, deduplicates, and drops
//! self-loops, so the generators stay faithful to their models and the
//! canonicalization is exercised on realistic dirt.

use emcore::SplitMix64;

/// R-MAT recursive-matrix generator (Chakrabarti–Zhan–Faloutsos) with the
/// classic Graph500 quadrant weights `(a, b, c, d) = (0.57, 0.19, 0.19,
/// 0.05)`: `edges` directed edges over `2^scale` vertices, deterministic
/// from `seed`. The skewed quadrant weights yield a power-law degree
/// distribution — a few hub vertices with enormous degree and a long tail
/// of near-isolated ones — plus natural duplicate edges and self-loops.
pub fn rmat_edges(scale: u32, edges: u64, seed: u64) -> Vec<(u64, u64)> {
    let bits = scale.min(63);
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(edges as usize);
    for _ in 0..edges {
        let (mut src, mut dst) = (0u64, 0u64);
        for _ in 0..bits {
            let u = rng.unit();
            // Quadrant CDF: a=0.57, a+b=0.76, a+b+c=0.95, 1.0.
            let (s_bit, d_bit) = if u < 0.57 {
                (0, 0)
            } else if u < 0.76 {
                (0, 1)
            } else if u < 0.95 {
                (1, 0)
            } else {
                (1, 1)
            };
            src = (src << 1) | s_bit;
            dst = (dst << 1) | d_bit;
        }
        out.push((src, dst));
    }
    out
}

/// 2-D grid (lattice) graph on `rows × cols` vertices: each vertex is
/// connected to its right and down neighbors, each undirected edge
/// emitted once in arbitrary orientation. Vertex `(r, c)` has id
/// `r·cols + c`. Degrees are 2 (corners), 3 (borders), 4 (interior) —
/// the near-uniform counterpoint to [`rmat_edges`]' power law.
pub fn grid_edges(rows: u64, cols: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                out.push((v, v + 1));
            }
            if r + 1 < rows {
                out.push((v, v + cols));
            }
        }
    }
    out
}

/// Undirected degree histogram of a raw edge list: `(degree, number of
/// vertices with that degree)`, ascending by degree. Both endpoints of
/// every edge count (self-loops count twice), duplicates count each time
/// — this fingerprints the *generator output*, before canonicalization.
/// Vertices that never appear in the edge list are not counted.
pub fn degree_histogram(edges: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut deg: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &(s, d) in edges {
        *deg.entry(s).or_default() += 1;
        *deg.entry(d).or_default() += 1;
    }
    let mut hist: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &d in deg.values() {
        *hist.entry(d).or_default() += 1;
    }
    hist.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat_edges(10, 5000, 11);
        let b = rmat_edges(10, 5000, 11);
        assert_eq!(a, b);
        assert_ne!(a, rmat_edges(10, 5000, 12));
        assert_eq!(a.len(), 5000);
        assert!(a.iter().all(|&(s, d)| s < 1 << 10 && d < 1 << 10));
    }

    #[test]
    fn rmat_golden_degree_histogram() {
        // Pin the exact degree distribution: same (scale, edges, seed)
        // must fingerprint identically forever. Regenerating this golden
        // data means the generator changed and every EX-GRAPH digest
        // with it. Head of the histogram (degrees 1..8) plus summary
        // statistics pin both the tail mass and the hubs.
        let edges = rmat_edges(8, 2000, 42);
        let hist = degree_histogram(&edges);
        let head: Vec<(u64, u64)> = hist.iter().copied().take(8).collect();
        assert_eq!(
            head,
            vec![
                (1, 33),
                (2, 32),
                (3, 15),
                (4, 13),
                (5, 13),
                (6, 9),
                (7, 7),
                (8, 7)
            ]
        );
        let touched: u64 = hist.iter().map(|&(_, c)| c).sum();
        let mass: u64 = hist.iter().map(|&(d, c)| d * c).sum();
        let max_deg = hist.last().unwrap().0;
        assert_eq!((touched, mass, max_deg), (218, 4000, 463));
    }

    #[test]
    fn rmat_is_power_law_skewed() {
        // Hubs: the maximum degree dwarfs the median degree.
        let hist = degree_histogram(&rmat_edges(12, 40_000, 7));
        let max_deg = hist.last().unwrap().0;
        let low_mass: u64 = hist.iter().filter(|&&(d, _)| d <= 4).map(|&(_, c)| c).sum();
        let touched: u64 = hist.iter().map(|&(_, c)| c).sum();
        assert!(max_deg > 500, "no hub: max degree {max_deg}");
        assert!(
            low_mass * 3 > touched,
            "no tail: {low_mass} of {touched} vertices have degree ≤ 4"
        );
    }

    #[test]
    fn grid_golden_degree_histogram() {
        // A 3×4 grid analytically: 4 corners of degree 2, 6 border
        // vertices of degree 3, 2 interior vertices of degree 4.
        assert_eq!(
            degree_histogram(&grid_edges(3, 4)),
            vec![(2, 4), (3, 6), (4, 2)]
        );
        // Edge count: rows·(cols−1) horizontal + (rows−1)·cols vertical.
        assert_eq!(grid_edges(3, 4).len(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn grid_structure() {
        let edges = grid_edges(5, 7);
        assert_eq!(edges.len(), (5 * 6 + 4 * 7) as usize);
        // Every edge connects lattice neighbors, no loops or duplicates.
        let mut seen = std::collections::BTreeSet::new();
        for &(s, d) in &edges {
            assert!(s < 35 && d < 35 && s != d);
            let (lo, hi) = (s.min(d), s.max(d));
            assert!(hi - lo == 1 || hi - lo == 7, "non-neighbor edge {s}-{d}");
            assert!(seen.insert((lo, hi)), "duplicate edge {s}-{d}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert!(grid_edges(1, 1).is_empty());
        assert_eq!(grid_edges(1, 2), vec![(0, 1)]);
        assert!(rmat_edges(0, 10, 1).iter().all(|&e| e == (0, 0)));
        assert!(rmat_edges(4, 0, 1).is_empty());
    }
}
