//! Serving a clustering through the query layer.
//!
//! A clustering's label array doubles as a rank-queryable dataset: the
//! rank-`p` query over the labels returns the `p`-th smallest label,
//! i.e. **the cluster the `p`-th vertex falls in** once vertices are
//! laid out in cluster order (the order [`crate::cluster_buckets`]
//! shards them in). Quantile queries then read the cluster-size
//! distribution directly — a cluster spanning many quantile cuts is by
//! definition a large one — and the serve layer's whole machinery
//! (batching, breakers, shard routing) applies unchanged because the
//! dataset is just `u64`s.

use emcore::{EmFile, Result};
use emserve::QueryService;
use emsort::external_sort;

use crate::cluster::Clustering;

/// Register `clustering`'s vertex→label array under `name` on any
/// [`QueryService`]. Rank `p` (1-based) then answers "which cluster
/// does the `p`-th vertex fall in" for the cluster-ordered layout;
/// `quantiles(q)` samples the cluster-size distribution at the even
/// vertex cuts. Returns the dataset length (= vertex count).
pub fn register_clustering<S: QueryService<u64>>(
    svc: &S,
    name: &str,
    clustering: &Clustering,
) -> Result<u64> {
    svc.register(name, clustering.labels.to_vec()?)
}

/// The cluster-size distribution of a label file: ascending
/// `(label, size)` pairs, computed externally (one sort + one
/// run-length scan, nothing label-array-sized in RAM).
pub fn cluster_sizes(labels: &EmFile<u64>) -> Result<Vec<(u64, u64)>> {
    let sorted = external_sort(labels)?;
    let mut out: Vec<(u64, u64)> = Vec::new();
    let mut r = sorted.reader()?;
    while let Some(label) = r.next()? {
        match out.last_mut() {
            Some((l, size)) if *l == label => *size += 1,
            _ => out.push((label, 1)),
        }
    }
    Ok(out)
}

/// Register the cluster **sizes** themselves under `name`: rank and
/// quantile queries then answer questions about the size distribution
/// ("median cluster size", "how big is the 95th-percentile cluster").
/// Returns the dataset length (= cluster count).
pub fn register_cluster_sizes<S: QueryService<u64>>(
    svc: &S,
    name: &str,
    labels: &EmFile<u64>,
) -> Result<u64> {
    let sizes: Vec<u64> = cluster_sizes(labels)?.into_iter().map(|(_, s)| s).collect();
    svc.register(name, sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, BuildOptions};
    use crate::cluster::ClusterOptions;
    use crate::edge::edges_from_pairs;
    use crate::recover::cluster;
    use emcore::{EmConfig, EmContext};
    use emserve::{QueryServer, ServeOptions};

    #[test]
    fn rank_queries_answer_cluster_of_pth_vertex() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        // A triangle {0,1,2} and a K4 {3,4,5,6}: clusters of size 3 and 4
        // (odd cycles and cliques converge under synchronous LP; a bare
        // pair would oscillate).
        let raw = edges_from_pairs(
            &ctx,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (3, 4),
                (3, 5),
                (3, 6),
                (4, 5),
                (4, 6),
                (5, 6),
            ],
        )
        .unwrap();
        let g = build_graph(&ctx, &raw, &BuildOptions::default()).unwrap();
        let c = cluster(&g, &ClusterOptions::default()).unwrap();
        assert_eq!(c.clusters, 2);

        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let n = register_clustering(&server, "graph-vc", &c).unwrap();
        assert_eq!(n, 7);
        // In cluster order the first 3 vertices are the triangle's
        // cluster, the last 4 the clique's — whatever the label values.
        let a = server
            .rank("graph-vc", vec![1, 3, 4, 7])
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.values[0], a.values[1], "vertices 1 and 3 share a cluster");
        assert_eq!(a.values[2], a.values[3], "vertices 4 and 7 share a cluster");
        assert_ne!(a.values[1], a.values[2], "clusters differ across the cut");

        let k = register_cluster_sizes(&server, "graph-cs", &c.labels).unwrap();
        assert_eq!(k, 2);
        let s = server.rank("graph-cs", vec![1, 2]).unwrap().wait().unwrap();
        assert_eq!(s.values, vec![3, 4], "size distribution in rank order");
        server.shutdown().unwrap();
    }

    #[test]
    fn cluster_sizes_are_external_and_ordered() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let labels = EmFile::from_slice(&ctx, &[5u64, 2, 5, 5, 2, 9]).unwrap();
        assert_eq!(
            cluster_sizes(&labels).unwrap(),
            vec![(2, 2), (5, 3), (9, 1)]
        );
    }
}
