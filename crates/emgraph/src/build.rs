//! Canonical graph construction: symmetrize → external sort → dedup +
//! CSR offsets, all in sequential passes.

use emcore::{EmContext, EmError, EmFile, KeyValue, Record, Result};
use emsort::external_sort;

use crate::edge::Edge;

/// How a raw edge list is canonicalized into a [`Graph`].
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Emit every edge in both directions (undirected semantics). The
    /// canonical file then holds each vertex's full neighborhood under
    /// its own `src` group — what label propagation streams.
    pub symmetrize: bool,
    /// Drop self-loops during canonicalization.
    pub drop_self_loops: bool,
    /// Explicit vertex-id space `0..vertices`. `None` infers
    /// `max id + 1` from the input; `Some(n)` additionally rejects any
    /// endpoint `≥ n` as a typed error.
    pub vertices: Option<u64>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            symmetrize: true,
            drop_self_loops: true,
            vertices: None,
        }
    }
}

/// A canonicalized graph: a sorted, deduplicated, loop-free edge file
/// plus its CSR-like offset index.
///
/// `edges` is sorted by `(src, dst)`; `offsets` has `vertices + 1`
/// entries with `offsets[v]` = number of edges whose source precedes
/// `v`, so vertex `v`'s neighbors occupy edge positions
/// `offsets[v]..offsets[v+1]` and `degree(v)` is the difference — the
/// standard CSR row index, built in the same sequential pass as the
/// dedup.
#[derive(Debug)]
pub struct Graph {
    edges: EmFile<Edge>,
    offsets: EmFile<u64>,
    vertices: u64,
    max_degree: u64,
}

impl Graph {
    /// The canonical edge file, sorted by `(src, dst)`.
    pub fn edges(&self) -> &EmFile<Edge> {
        &self.edges
    }

    /// The CSR offset index (`vertices + 1` entries).
    pub fn offsets(&self) -> &EmFile<u64> {
        &self.offsets
    }

    /// Size of the vertex-id space (`0..vertices`).
    pub fn vertices(&self) -> u64 {
        self.vertices
    }

    /// Directed edge count of the canonical file (after symmetrize +
    /// dedup; an undirected graph counts each edge twice).
    pub fn num_edges(&self) -> u64 {
        self.edges.len()
    }

    /// Largest out-degree in the canonical file — the mode
    /// computation's scratch bound during label propagation.
    pub fn max_degree(&self) -> u64 {
        self.max_degree
    }

    /// Stream the offset index into a `(degree, vertex)` key/value file:
    /// the input the approximate K-partitioning buckets vertices by
    /// degree with. One sequential pass over `offsets`.
    pub fn degree_file(&self) -> Result<EmFile<KeyValue>> {
        let ctx = self.edges.ctx().clone();
        let mut w = ctx.writer::<KeyValue>()?;
        let mut r = self.offsets.reader()?;
        let mut prev = r.next()?.unwrap_or(0);
        let mut v = 0u64;
        while let Some(off) = r.next()? {
            w.push(KeyValue {
                key: off - prev,
                value: v,
            })?;
            prev = off;
            v += 1;
        }
        w.finish()
    }
}

/// Canonicalize `raw` into a [`Graph`]: optionally symmetrize and drop
/// self-loops (one pass), sort by `(src, dst)` via `emsort` (the
/// parallel path at `workers > 1`, I/O- and digest-identical), then
/// deduplicate and build the CSR offset index in one more sequential
/// pass. Charged under the `graph/build` phase.
pub fn build_graph(ctx: &EmContext, raw: &EmFile<Edge>, opts: &BuildOptions) -> Result<Graph> {
    let stats = ctx.stats().clone();
    let phase = stats.phase_guard("graph/build");
    let r = build_inner(ctx, raw, opts);
    drop(phase);
    r
}

fn build_inner(ctx: &EmContext, raw: &EmFile<Edge>, opts: &BuildOptions) -> Result<Graph> {
    // Pass 1: expand (symmetrize / drop loops) and find the id space.
    let mut w = ctx.writer::<Edge>()?;
    let mut r = raw.reader()?;
    let mut max_id: Option<u64> = None;
    while let Some(e) = r.next()? {
        if let Some(n) = opts.vertices {
            if e.src >= n || e.dst >= n {
                return Err(EmError::config(format!(
                    "graph build: edge ({}, {}) outside vertex space 0..{n}",
                    e.src, e.dst
                )));
            }
        }
        max_id = Some(max_id.unwrap_or(0).max(e.src).max(e.dst));
        if e.is_loop() && opts.drop_self_loops {
            continue;
        }
        w.push(e)?;
        if opts.symmetrize && !e.is_loop() {
            w.push(e.reversed())?;
        }
    }
    let expanded = w.finish()?;
    let vertices = opts.vertices.unwrap_or_else(|| max_id.map_or(0, |m| m + 1));

    // Pass 2: one external sort canonicalizes completely (composite key).
    let sorted = external_sort(&expanded)?;
    drop(expanded);

    // Pass 3: dedup + CSR offsets, sequentially.
    let mut edges = ctx.writer::<Edge>()?;
    let mut offsets = ctx.writer::<u64>()?;
    let mut sr = sorted.reader()?;
    let mut prev: Option<Edge> = None;
    let mut next_v = 0u64; // first vertex whose offset is still unwritten
    let mut count = 0u64;
    let mut max_degree = 0u64;
    let mut cur_degree = 0u64;
    while let Some(e) = sr.next()? {
        if prev == Some(e) {
            continue;
        }
        while next_v <= e.src {
            offsets.push(count)?;
            next_v += 1;
        }
        cur_degree = if prev.is_some_and(|p| p.src == e.src) {
            cur_degree + 1
        } else {
            1
        };
        max_degree = max_degree.max(cur_degree);
        edges.push(e)?;
        count += 1;
        prev = Some(e);
    }
    while next_v <= vertices {
        offsets.push(count)?;
        next_v += 1;
    }
    drop(sorted);
    Ok(Graph {
        edges: edges.finish()?,
        offsets: offsets.finish()?,
        vertices,
        max_degree,
    })
}

/// Re-attach an already-canonical edge file (e.g. reopened by id after a
/// process restart) as a [`Graph`] over `0..vertices`, rebuilding the CSR
/// offset index in one sequential pass. Rejects files that are not
/// strictly `(src, dst)`-sorted or that reference vertices outside the
/// id space — a cheap integrity check on whatever the caller reopened.
pub fn rebind_graph(ctx: &EmContext, edges: EmFile<Edge>, vertices: u64) -> Result<Graph> {
    let mut offsets = ctx.writer::<u64>()?;
    let mut r = edges.reader()?;
    let mut prev: Option<Edge> = None;
    let mut next_v = 0u64;
    let mut count = 0u64;
    let mut max_degree = 0u64;
    let mut cur_degree = 0u64;
    while let Some(e) = r.next()? {
        if prev.is_some_and(|p| p.key() >= e.key()) {
            return Err(EmError::config(format!(
                "rebind_graph: file {} is not canonical at edge ({}, {})",
                edges.id(),
                e.src,
                e.dst
            )));
        }
        if e.src >= vertices || e.dst >= vertices {
            return Err(EmError::config(format!(
                "rebind_graph: edge ({}, {}) outside vertex space 0..{vertices}",
                e.src, e.dst
            )));
        }
        while next_v <= e.src {
            offsets.push(count)?;
            next_v += 1;
        }
        cur_degree = if prev.is_some_and(|p| p.src == e.src) {
            cur_degree + 1
        } else {
            1
        };
        max_degree = max_degree.max(cur_degree);
        count += 1;
        prev = Some(e);
    }
    while next_v <= vertices {
        offsets.push(count)?;
        next_v += 1;
    }
    Ok(Graph {
        edges,
        offsets: offsets.finish()?,
        vertices,
        max_degree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::edges_from_pairs;
    use emcore::{EmConfig, EmContext};

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny())
    }

    fn build(pairs: &[(u64, u64)], opts: &BuildOptions) -> Graph {
        let c = ctx();
        let raw = edges_from_pairs(&c, pairs).unwrap();
        build_graph(&c, &raw, opts).unwrap()
    }

    #[test]
    fn canonicalizes_duplicates_loops_and_direction() {
        // Duplicates (0,1)×2, a loop (2,2), and both orientations of
        // (0,1): the canonical file holds each direction exactly once.
        let g = build(
            &[(0, 1), (0, 1), (1, 0), (2, 2), (1, 2)],
            &BuildOptions::default(),
        );
        assert_eq!(g.vertices(), 3);
        let canon = g.edges().to_vec().unwrap();
        assert_eq!(
            canon,
            vec![
                Edge { src: 0, dst: 1 },
                Edge { src: 1, dst: 0 },
                Edge { src: 1, dst: 2 },
                Edge { src: 2, dst: 1 },
            ]
        );
        assert_eq!(g.offsets().to_vec().unwrap(), vec![0, 1, 3, 4]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn directed_unsymmetrized_build() {
        let opts = BuildOptions {
            symmetrize: false,
            drop_self_loops: false,
            vertices: None,
        };
        let g = build(&[(3, 1), (1, 1)], &opts);
        assert_eq!(g.vertices(), 4);
        assert_eq!(
            g.edges().to_vec().unwrap(),
            vec![Edge { src: 1, dst: 1 }, Edge { src: 3, dst: 1 }]
        );
        // Vertices 0 and 2 exist with degree 0.
        assert_eq!(g.offsets().to_vec().unwrap(), vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn explicit_vertex_space_validates() {
        let c = ctx();
        let raw = edges_from_pairs(&c, &[(0, 5)]).unwrap();
        let opts = BuildOptions {
            vertices: Some(4),
            ..BuildOptions::default()
        };
        assert!(matches!(
            build_graph(&c, &raw, &opts),
            Err(EmError::Config(_))
        ));
        let opts = BuildOptions {
            vertices: Some(10),
            ..BuildOptions::default()
        };
        let g = build_graph(&c, &raw, &opts).unwrap();
        assert_eq!(g.vertices(), 10);
        assert_eq!(g.offsets().len(), 11);
    }

    #[test]
    fn rebind_reconstructs_the_index() {
        let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let raw = edges_from_pairs(&c, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let g = build_graph(&c, &raw, &BuildOptions::default()).unwrap();
        let edges = c
            .open_file::<Edge>(g.edges().id(), g.edges().len())
            .unwrap();
        let re = rebind_graph(&c, edges, g.vertices()).unwrap();
        assert_eq!(
            re.offsets().to_vec().unwrap(),
            g.offsets().to_vec().unwrap()
        );
        assert_eq!(re.max_degree(), g.max_degree());
        // Non-canonical input is rejected.
        let bad = edges_from_pairs(&c, &[(1, 0), (0, 1)]).unwrap();
        assert!(matches!(rebind_graph(&c, bad, 2), Err(EmError::Config(_))));
        let out = edges_from_pairs(&c, &[(0, 5)]).unwrap();
        assert!(matches!(rebind_graph(&c, out, 2), Err(EmError::Config(_))));
    }

    #[test]
    fn empty_graph() {
        let g = build(&[], &BuildOptions::default());
        assert_eq!(g.vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.offsets().to_vec().unwrap(), vec![0]);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn degree_file_matches_offsets() {
        let g = build(&[(0, 1), (1, 2), (1, 3), (4, 4)], &BuildOptions::default());
        // Loop (4,4) dropped but vertex 4 still in the id space.
        let degs = g.degree_file().unwrap().to_vec().unwrap();
        let got: Vec<(u64, u64)> = degs.iter().map(|kv| (kv.value, kv.key)).collect();
        assert_eq!(got, vec![(0, 1), (1, 3), (2, 1), (3, 1), (4, 0)]);
    }

    #[test]
    fn degree_sum_is_edge_count_at_scale() {
        let mut rng = emcore::SplitMix64::new(99);
        let pairs: Vec<(u64, u64)> = (0..5000)
            .map(|_| (rng.below(300), rng.below(300)))
            .collect();
        let g = build(&pairs, &BuildOptions::default());
        let degs = g.degree_file().unwrap().to_vec().unwrap();
        let sum: u64 = degs.iter().map(|kv| kv.key).sum();
        assert_eq!(sum, g.num_edges());
        let max = degs.iter().map(|kv| kv.key).max().unwrap();
        assert_eq!(max, g.max_degree());
        // Canonical: strictly increasing (src, dst) ⇒ no dupes, sorted.
        let canon = g.edges().to_vec().unwrap();
        assert!(canon.windows(2).all(|w| w[0].key() < w[1].key()));
        // Symmetric: every edge has its reverse.
        let set: std::collections::BTreeSet<(u64, u64)> =
            canon.iter().map(|e| (e.src, e.dst)).collect();
        assert!(canon.iter().all(|e| set.contains(&(e.dst, e.src))));
    }
}
