//! The on-disk edge record.

use emcore::{EmContext, EmFile, Record, Result};

/// A directed edge `(src, dst)` as a two-word EM record.
///
/// The key is the full `(src, dst)` pair, so one external sort
/// canonicalizes an edge list completely: edges group by source (the
/// CSR adjacency order), a source's neighbors come out ascending, and
/// exact duplicates become adjacent — dedup is a sequential scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source vertex id.
    pub src: u64,
    /// Destination vertex id.
    pub dst: u64,
}

impl Edge {
    /// The same edge in the opposite direction.
    #[inline]
    pub fn reversed(self) -> Edge {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Whether this is a self-loop.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.src == self.dst
    }
}

impl Record for Edge {
    type Key = (u64, u64);
    const WORDS: usize = 2;
    const BYTES: usize = 16;

    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.src, self.dst)
    }

    fn write_bytes(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.src.to_le_bytes());
        out[8..16].copy_from_slice(&self.dst.to_le_bytes());
    }

    fn read_bytes(inp: &[u8]) -> Self {
        Edge {
            src: u64::read_bytes(&inp[..8]),
            dst: u64::read_bytes(&inp[8..16]),
        }
    }
}

/// Materialize raw `(src, dst)` tuples (e.g. from a `workloads`
/// generator) as an edge [`EmFile`] without charging I/O — staging an
/// input is setup, not part of any measured algorithm.
pub fn edges_from_pairs(ctx: &EmContext, pairs: &[(u64, u64)]) -> Result<EmFile<Edge>> {
    let edges: Vec<Edge> = pairs.iter().map(|&(src, dst)| Edge { src, dst }).collect();
    ctx.stats().paused(|| EmFile::from_slice(ctx, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext};

    #[test]
    fn bytes_roundtrip() {
        let e = Edge {
            src: 7,
            dst: u64::MAX - 3,
        };
        let mut buf = [0u8; 16];
        e.write_bytes(&mut buf);
        assert_eq!(Edge::read_bytes(&buf), e);
    }

    #[test]
    fn key_orders_by_src_then_dst() {
        let mut v = vec![
            Edge { src: 2, dst: 0 },
            Edge { src: 1, dst: 9 },
            Edge { src: 1, dst: 3 },
        ];
        v.sort_unstable_by_key(|e| e.key());
        assert_eq!(
            v,
            vec![
                Edge { src: 1, dst: 3 },
                Edge { src: 1, dst: 9 },
                Edge { src: 2, dst: 0 },
            ]
        );
    }

    #[test]
    fn from_pairs_is_free_setup() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let f = edges_from_pairs(&ctx, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(ctx.stats().snapshot().total_ios(), 0);
    }

    #[test]
    fn reversed_and_loops() {
        assert_eq!(Edge { src: 1, dst: 2 }.reversed(), Edge { src: 2, dst: 1 });
        assert!(Edge { src: 3, dst: 3 }.is_loop());
        assert!(!Edge { src: 3, dst: 4 }.is_loop());
    }
}
