//! `emgraph` — semi-external graph partitioning and clustering on top
//! of the approximate-splitters stack.
//!
//! The paper's machinery (external sorting, approximate K-splitters and
//! K-partitioning) was built for flat record files; this crate shows it
//! carrying a real graph workload end to end, in the *semi-external*
//! model: the edge list always streams from external memory, while the
//! per-vertex state (one `u64` label per vertex) lives in RAM **only
//! when the memory governor grants it** — and degrades to windowed
//! streaming, not failure, when it doesn't.
//!
//! The pipeline:
//!
//! 1. **Build** ([`build_graph`]): a raw `(src, dst)` edge file is
//!    canonicalized by *one* external sort — the [`Edge`] record's key
//!    is the full pair, so grouping by source, neighbor ordering, and
//!    duplicate adjacency all fall out of the same sort — followed by a
//!    sequential dedup pass that emits the CSR offset index for free.
//! 2. **Cluster** ([`cluster`]): synchronous label propagation with an
//!    optional hard cluster-size cap. Every round streams the canonical
//!    edge file sequentially; proposals depend only on each vertex's
//!    round-start neighbor-label multiset, so the labeling is
//!    bit-identical across memory budgets, window sizes, worker counts,
//!    and backends. Rounds are checkpointed through the shared journal
//!    ([`ClusterManifest`]) — a crash redoes at most one round.
//! 3. **Bucket** ([`degree_buckets`], [`cluster_buckets`]): approximate
//!    K-partitioning buckets vertices by degree or by cluster id into
//!    near-even shards without sorting the score file.
//! 4. **Serve** ([`register_clustering`]): the label array registers as
//!    a rank-queryable dataset, answering "which cluster does the
//!    `p`-th vertex fall in" through the full serve stack.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bucket;
pub mod build;
pub mod cluster;
pub mod edge;
pub mod recover;
pub mod serve;

pub use bucket::{cluster_buckets, degree_buckets, score_buckets, Buckets};
pub use build::{build_graph, rebind_graph, BuildOptions, Graph};
pub use cluster::{count_clusters, labels_digest, ClusterOptions, Clustering};
pub use edge::{edges_from_pairs, Edge};
pub use recover::{cluster, ClusterJob, ClusterManifest, CLUSTER_JOURNAL};
pub use serve::{cluster_sizes, register_cluster_sizes, register_clustering};
