//! Crash-recoverable clustering: rounds checkpointed through the
//! shared journal so a crash redoes at most one round.
//!
//! The only algorithm state that must survive a crash is the current
//! label file — everything inside a round (annotation files, mover and
//! admission files, the half-written next label file) is derived and
//! unwinds with the crash. The [`ClusterManifest`] therefore journals
//! just `(round, labels file, moves history)` plus the input binding,
//! commits after every completed round (the labels file marked
//! persistent *before* the previous round's file is released), and
//! [`ClusterManifest::load`] resumes across processes on a
//! directory-backed context, garbage-collecting the crashed attempt's
//! orphans.

use emcore::{
    run_recoverable, Counters, EmContext, EmError, EmFile, Journal, JournalState, RecoverableJob,
    Result,
};

use crate::build::Graph;
use crate::cluster::{count_clusters, initial_labels, lp_round, ClusterOptions, Clustering};

/// Name of the clustering checkpoint journal within its backing store.
pub const CLUSTER_JOURNAL: &str = "graph-cluster";

/// Checkpointed state of a recoverable clustering run. One work unit =
/// one label-propagation round (unit 0 is the identity labeling).
#[derive(Debug)]
pub struct ClusterManifest {
    /// Input binding: canonical edge file `(id, len)`, vertex count, and
    /// the option echo — a journal must not replay against a different
    /// graph or different parameters.
    input: Option<(u64, u64)>,
    vertices: u64,
    rounds: u32,
    cap: u64,
    /// Completed rounds and their label file.
    round: u32,
    labels: Option<EmFile<u64>>,
    /// Vertices moved per completed round (a trailing 0 means the loop
    /// converged early and must not resume).
    moves: Vec<u64>,
    checkpoints: u64,
    done: bool,
    in_flight: Option<u64>,
    max_unit_ios: u64,
    journal: Journal,
}

/// Serialised image of a [`ClusterManifest`] — what the journal stores.
#[derive(Debug, PartialEq, Eq)]
struct ClusterImage {
    input: Option<(u64, u64)>,
    vertices: u64,
    rounds: u32,
    cap: u64,
    round: u32,
    labels: Option<(u64, u64)>,
    moves: Vec<u64>,
    checkpoints: u64,
}

impl JournalState for ClusterImage {
    const KIND: &'static str = "graph-cluster";
    const VERSION: u32 = 1;

    fn encode(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "vertices {}", self.vertices);
        let _ = writeln!(out, "rounds {}", self.rounds);
        let _ = writeln!(out, "cap {}", self.cap);
        let _ = writeln!(out, "round {}", self.round);
        let _ = writeln!(out, "checkpoints {}", self.checkpoints);
        if let Some((id, len)) = self.input {
            let _ = writeln!(out, "input {id} {len}");
        }
        if let Some((id, len)) = self.labels {
            let _ = writeln!(out, "labels {id} {len}");
        }
        for m in &self.moves {
            let _ = writeln!(out, "moved {m}");
        }
    }

    fn decode(body: &str) -> Result<Self> {
        fn bad(line: &str) -> EmError {
            EmError::config(format!("graph-cluster journal: bad line {line:?}"))
        }
        fn pair(rest: &str, line: &str) -> Result<(u64, u64)> {
            let (a, b) = rest.split_once(' ').ok_or_else(|| bad(line))?;
            Ok((
                a.parse().map_err(|_| bad(line))?,
                b.parse().map_err(|_| bad(line))?,
            ))
        }
        let mut img = ClusterImage {
            input: None,
            vertices: 0,
            rounds: 0,
            cap: 0,
            round: 0,
            labels: None,
            moves: Vec::new(),
            checkpoints: 0,
        };
        for line in body.lines() {
            let (key, rest) = line.split_once(' ').ok_or_else(|| bad(line))?;
            match key {
                "vertices" => img.vertices = rest.parse().map_err(|_| bad(line))?,
                "rounds" => img.rounds = rest.parse().map_err(|_| bad(line))?,
                "cap" => img.cap = rest.parse().map_err(|_| bad(line))?,
                "round" => img.round = rest.parse().map_err(|_| bad(line))?,
                "checkpoints" => img.checkpoints = rest.parse().map_err(|_| bad(line))?,
                "input" => img.input = Some(pair(rest, line)?),
                "labels" => img.labels = Some(pair(rest, line)?),
                "moved" => img.moves.push(rest.parse().map_err(|_| bad(line))?),
                _ => return Err(bad(line)),
            }
        }
        Ok(img)
    }
}

impl ClusterManifest {
    /// A fresh manifest for `opts`: no rounds completed.
    pub fn new(ctx: &EmContext, opts: &ClusterOptions) -> Self {
        Self {
            input: None,
            vertices: 0,
            rounds: opts.rounds,
            cap: opts.max_cluster_size,
            round: 0,
            labels: None,
            moves: Vec::new(),
            checkpoints: 0,
            done: false,
            in_flight: None,
            max_unit_ios: 0,
            journal: Journal::new(ctx, CLUSTER_JOURNAL).expect("valid journal name"),
        }
    }

    /// Reload an interrupted clustering from `ctx`'s backing directory:
    /// read the `graph-cluster` journal, reopen the checkpointed label
    /// file, and garbage-collect block files the crashed attempt
    /// orphaned (anything referenced by neither the journal nor the
    /// recorded input). Returns `Ok(None)` when no journal exists.
    ///
    /// As with the sort manifest, the sweep assumes one recoverable job
    /// per backing directory and requires a directory-backed context.
    pub fn load(ctx: &EmContext) -> Result<Option<Self>> {
        if ctx.backing_dir().is_none() {
            return Err(EmError::config(
                "ClusterManifest::load: cross-process resume requires a directory-backed context",
            ));
        }
        let journal = Journal::new(ctx, CLUSTER_JOURNAL).expect("valid journal name");
        let Some(img) = journal.load::<ClusterImage>()? else {
            return Ok(None);
        };
        let mut keep = Vec::new();
        if let Some((id, _)) = img.input {
            keep.push(id);
        }
        if let Some((id, _)) = img.labels {
            keep.push(id);
        }
        ctx.gc_orphans(&keep)?;
        let labels = img
            .labels
            .map(|(id, len)| ctx.open_file::<u64>(id, len))
            .transpose()?;
        Ok(Some(Self {
            input: img.input,
            vertices: img.vertices,
            rounds: img.rounds,
            cap: img.cap,
            round: img.round,
            labels,
            moves: img.moves,
            checkpoints: img.checkpoints,
            done: false,
            in_flight: None,
            max_unit_ios: 0,
            journal,
        }))
    }

    /// Completed rounds so far.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Completed work units so far (each one a checkpoint).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Whether the clustering has completed and yielded its output.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Vertices moved per completed round.
    pub fn moves(&self) -> &[u64] {
        &self.moves
    }

    /// The `(id, len)` of the canonical edge file this manifest
    /// clusters, once known.
    pub fn input(&self) -> Option<(u64, u64)> {
        self.input
    }

    /// The vertex-id space of the bound graph (0 until bound).
    pub fn vertices(&self) -> u64 {
        self.vertices
    }

    /// Largest I/O cost of any single completed work unit — the
    /// empirical bound on crash rework (≤ one round).
    pub fn max_unit_ios(&self) -> u64 {
        self.max_unit_ios
    }

    /// A human-readable snapshot of the manifest.
    pub fn describe(&self) -> String {
        let mut s = String::from("em-graph-cluster-manifest v1\n");
        self.image().encode(&mut s);
        s
    }

    fn image(&self) -> ClusterImage {
        ClusterImage {
            input: self.input,
            vertices: self.vertices,
            rounds: self.rounds,
            cap: self.cap,
            round: self.round,
            labels: self.labels.as_ref().map(|f| (f.id(), f.len())),
            moves: self.moves.clone(),
            checkpoints: self.checkpoints,
        }
    }

    fn begin_unit(&mut self, ctx: &EmContext) -> (bool, Counters) {
        let redo = self.in_flight == Some(self.checkpoints);
        self.in_flight = Some(self.checkpoints);
        (redo, ctx.stats().snapshot())
    }

    fn end_unit(&mut self, ctx: &EmContext, redo: bool, before: Counters) {
        let spent = ctx.stats().snapshot().since(&before).total_ios();
        self.max_unit_ios = self.max_unit_ios.max(spent);
        if redo {
            ctx.stats().record_redone_ios(spent);
        }
    }

    fn checkpoint(&mut self) -> Result<()> {
        self.checkpoints += 1;
        self.journal.commit(&self.image())
    }

    fn finish(&mut self) -> Result<()> {
        self.done = true;
        self.journal.remove()
    }

    /// Install `next` as the checkpointed label file: persist it, commit
    /// the journal, then release the previous round's file — in that
    /// order, so every committed image references a durable file.
    fn swap_labels(&mut self, next: EmFile<u64>) -> Result<()> {
        next.set_persistent(true);
        let prev = self.labels.replace(next);
        self.checkpoint()?;
        if let Some(prev) = prev {
            prev.set_persistent(false);
        }
        Ok(())
    }
}

/// The checkpointed clustering as a [`RecoverableJob`]: drive it with
/// [`emcore::run_recoverable`]. Borrows the graph and its manifest for
/// one resume attempt; build a fresh job value per attempt.
#[derive(Debug)]
pub struct ClusterJob<'a> {
    graph: &'a Graph,
    manifest: &'a mut ClusterManifest,
}

impl<'a> ClusterJob<'a> {
    /// A job that clusters `graph`, checkpointing through `manifest`.
    pub fn new(graph: &'a Graph, manifest: &'a mut ClusterManifest) -> Self {
        Self { graph, manifest }
    }
}

impl RecoverableJob for ClusterJob<'_> {
    type Output = Clustering;

    fn kind(&self) -> &'static str {
        "graph_cluster"
    }

    fn journal_name(&self) -> &'static str {
        CLUSTER_JOURNAL
    }

    fn is_done(&self) -> bool {
        self.manifest.done
    }

    fn check_input(&mut self) -> Result<()> {
        let edges = self.graph.edges();
        match self.manifest.input {
            None => {
                self.manifest.input = Some((edges.id(), edges.len()));
                self.manifest.vertices = self.graph.vertices();
                Ok(())
            }
            Some((id, len)) if (id, len) != (edges.id(), edges.len()) => {
                Err(EmError::config(format!(
                    "graph_cluster: manifest belongs to edge file (id {id}, len {len}), \
                     got (id {}, len {})",
                    edges.id(),
                    edges.len()
                )))
            }
            Some(_) if self.manifest.vertices != self.graph.vertices() => {
                Err(EmError::config(format!(
                    "graph_cluster: manifest belongs to a {}-vertex graph, got {}",
                    self.manifest.vertices,
                    self.graph.vertices()
                )))
            }
            Some(_) => Ok(()),
        }
    }

    fn drive(&mut self, ctx: &EmContext) -> Result<Clustering> {
        let stats = ctx.stats().clone();
        let phase = stats.phase_guard("graph/cluster");
        let r = drive_rounds(ctx, self.graph, self.manifest);
        drop(phase);
        r
    }
}

fn drive_rounds(
    ctx: &EmContext,
    graph: &Graph,
    manifest: &mut ClusterManifest,
) -> Result<Clustering> {
    // The label array is the dominant RAM cost: hold one governor lease
    // for the whole run and re-read its grant every round, so a squeeze
    // between rounds shrinks the next round's window, never correctness.
    let floor = ctx
        .config()
        .block_size()
        .min(graph.vertices().max(1) as usize);
    let lease = ctx.governor().lease("graph-labels", floor, 2)?;

    // Unit 0: the identity labeling.
    if manifest.labels.is_none() {
        let (redo, before) = manifest.begin_unit(ctx);
        let _unit = ctx.stats().trace_span(|| "graph/round#0".to_string());
        let init = initial_labels(ctx, graph.vertices())?;
        manifest.swap_labels(init)?;
        manifest.end_unit(ctx, redo, before);
    }

    // Units 1..: one round each, until the budget or convergence.
    while manifest.round < manifest.rounds && manifest.moves.last() != Some(&0) {
        let (redo, before) = manifest.begin_unit(ctx);
        let _unit = ctx
            .stats()
            .trace_span(|| format!("graph/round#{}", manifest.round + 1));
        let old = manifest.labels.as_ref().ok_or_else(|| {
            EmError::config("graph cluster invariant violated: missing label file")
        })?;
        let (next, moved) = lp_round(ctx, graph, old, manifest.cap, &lease)?;
        manifest.round += 1;
        manifest.moves.push(moved);
        manifest.swap_labels(next)?;
        manifest.end_unit(ctx, redo, before);
    }

    // Finalize: read-only summary work after the last checkpoint — a
    // crash here redoes no round.
    let labels = manifest
        .labels
        .take()
        .ok_or_else(|| EmError::config("graph cluster invariant violated: missing label file"))?;
    let clusters = count_clusters(&labels)?;
    let result = Clustering {
        rounds_run: manifest.round,
        moves: manifest.moves.clone(),
        clusters,
        labels,
    };
    manifest.finish()?;
    // The output leaves the manifest's custody: normal drop semantics.
    result.labels.set_persistent(false);
    Ok(result)
}

/// Cluster `graph` with per-round checkpointing — the one-shot entry
/// point. For crash survival across attempts, keep your own manifest
/// and drive [`ClusterJob`] via [`emcore::run_recoverable`].
pub fn cluster(graph: &Graph, opts: &ClusterOptions) -> Result<Clustering> {
    let ctx = graph.edges().ctx().clone();
    let mut manifest = ClusterManifest::new(&ctx, opts);
    run_recoverable(&ctx, &mut ClusterJob::new(graph, &mut manifest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, BuildOptions};
    use crate::cluster::labels_digest;
    use crate::edge::edges_from_pairs;
    use emcore::{EmConfig, EmContext, FaultPlan};

    fn graph_on(ctx: &EmContext, seed: u64, n: u64, m: usize) -> Graph {
        let mut rng = emcore::SplitMix64::new(seed);
        let pairs: Vec<(u64, u64)> = (0..m).map(|_| (rng.below(n), rng.below(n))).collect();
        let raw = edges_from_pairs(ctx, &pairs).unwrap();
        build_graph(ctx, &raw, &BuildOptions::default()).unwrap()
    }

    #[test]
    fn one_shot_cluster_reports_and_converges() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        // Two disjoint triangles: LP settles quickly.
        let raw =
            edges_from_pairs(&ctx, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let g = build_graph(&ctx, &raw, &BuildOptions::default()).unwrap();
        let c = cluster(&g, &ClusterOptions::default()).unwrap();
        assert!(c.rounds_run <= 8);
        assert_eq!(c.moves.last(), Some(&0), "converged");
        assert_eq!(c.labels.len(), 6);
        // Each triangle collapses to one label.
        let labels = c.labels.to_vec().unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(c.clusters, 2);
    }

    #[test]
    fn crash_mid_round_resumes_with_bounded_rework() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let g = graph_on(&ctx, 5, 200, 2000);
        let opts = ClusterOptions {
            rounds: 4,
            max_cluster_size: 0,
        };
        // Reference run, fault-free.
        let want = cluster(&g, &opts).unwrap();
        let want_digest = labels_digest(&want.labels).unwrap();

        // Crash somewhere inside the round loop, then resume.
        let plan = FaultPlan::new(0).fatal_at(400);
        ctx.install_fault_plan(plan.clone());
        let mut manifest = ClusterManifest::new(&ctx, &opts);
        let crashed = run_recoverable(&ctx, &mut ClusterJob::new(&g, &mut manifest));
        assert!(matches!(crashed, Err(EmError::Crashed)));
        assert!(!manifest.is_done());
        plan.clear_crash();
        ctx.clear_fault_plan();
        let got = run_recoverable(&ctx, &mut ClusterJob::new(&g, &mut manifest)).unwrap();
        assert!(manifest.is_done());
        assert_eq!(labels_digest(&got.labels).unwrap(), want_digest);
        assert_eq!(got.moves, want.moves);
        // ≤ 1 redone round, by construction and by accounting.
        let stats = ctx.stats().snapshot();
        assert!(stats.redone_ios > 0, "redone work must be accounted");
        assert!(
            stats.redone_ios <= manifest.max_unit_ios(),
            "rework {} exceeds one round {}",
            stats.redone_ios,
            manifest.max_unit_ios()
        );
    }

    #[test]
    fn completed_manifest_rejects_reuse_and_wrong_input() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let g = graph_on(&ctx, 7, 50, 300);
        let opts = ClusterOptions {
            rounds: 2,
            max_cluster_size: 0,
        };
        let mut manifest = ClusterManifest::new(&ctx, &opts);
        let _ = run_recoverable(&ctx, &mut ClusterJob::new(&g, &mut manifest)).unwrap();
        assert!(matches!(
            run_recoverable(&ctx, &mut ClusterJob::new(&g, &mut manifest)),
            Err(EmError::Config(_))
        ));
        // A fresh manifest crashed against g must reject another graph.
        let plan = FaultPlan::new(0).fatal_at(100);
        ctx.install_fault_plan(plan.clone());
        let mut m2 = ClusterManifest::new(&ctx, &opts);
        assert!(run_recoverable(&ctx, &mut ClusterJob::new(&g, &mut m2)).is_err());
        plan.clear_crash();
        ctx.clear_fault_plan();
        let other = graph_on(&ctx, 8, 60, 400);
        assert!(matches!(
            run_recoverable(&ctx, &mut ClusterJob::new(&other, &mut m2)),
            Err(EmError::Config(_))
        ));
        let done = run_recoverable(&ctx, &mut ClusterJob::new(&g, &mut m2)).unwrap();
        assert_eq!(done.labels.len(), 50);
    }

    #[test]
    fn cross_process_resume_on_disk() {
        let dir = std::env::temp_dir().join(format!("emgraph-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let opts = ClusterOptions {
            rounds: 3,
            max_cluster_size: 16,
        };
        let (edges_id, edges_len, want_digest);
        {
            // "Process 1": build, start clustering, crash.
            let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
            let g = graph_on(&ctx, 21, 120, 1200);
            g.edges().set_persistent(true);
            (edges_id, edges_len) = (g.edges().id(), g.edges().len());
            // Fault-free reference digest first, on a scratch context.
            let ctx2 = EmContext::new_in_memory(EmConfig::tiny());
            let g2 = graph_on(&ctx2, 21, 120, 1200);
            want_digest = labels_digest(&cluster(&g2, &opts).unwrap().labels).unwrap();

            let plan = FaultPlan::new(0).fatal_at(600);
            ctx.install_fault_plan(plan.clone());
            let mut manifest = ClusterManifest::new(&ctx, &opts);
            let r = run_recoverable(&ctx, &mut ClusterJob::new(&g, &mut manifest));
            assert!(matches!(r, Err(EmError::Crashed)));
        }
        {
            // "Process 2": fresh context over the same directory.
            let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
            let mut manifest = ClusterManifest::load(&ctx)
                .unwrap()
                .expect("journal exists");
            let edges = ctx.open_file::<crate::Edge>(edges_id, edges_len).unwrap();
            let g = crate::rebind_graph(&ctx, edges, manifest.vertices()).unwrap();
            let got = run_recoverable(&ctx, &mut ClusterJob::new(&g, &mut manifest)).unwrap();
            assert_eq!(labels_digest(&got.labels).unwrap(), want_digest);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn image_roundtrips_through_journal_encoding() {
        let img = ClusterImage {
            input: Some((3, 4096)),
            vertices: 100,
            rounds: 8,
            cap: 32,
            round: 5,
            labels: Some((9, 100)),
            moves: vec![40, 12, 3, 1, 0],
            checkpoints: 6,
        };
        let mut body = String::new();
        img.encode(&mut body);
        assert_eq!(ClusterImage::decode(&body).unwrap(), img);
    }

    #[test]
    fn describe_reports_progress() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let m = ClusterManifest::new(
            &ctx,
            &ClusterOptions {
                rounds: 6,
                max_cluster_size: 10,
            },
        );
        let d = m.describe();
        assert!(d.contains("rounds 6"));
        assert!(d.contains("cap 10"));
    }
}
