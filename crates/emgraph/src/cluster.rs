//! Semi-external label propagation with size-constrained clustering.
//!
//! One round streams the canonical edge file sequentially while the
//! vertex→label array stays in RAM under a governor lease. Updates are
//! *synchronous* (Jacobi-style): every vertex's new label is the mode of
//! its neighbors' **round-start** labels, with deterministic tie-breaks
//! (largest count, then smallest label) and a keep-on-tie rule against
//! the vertex's current label. Depending only on the per-vertex multiset
//! of round-start neighbor labels makes the round's result invariant to
//! *how* the multiset was gathered — which is what makes the
//! memory-adaptive execution below digest-exact at any budget.
//!
//! ## Memory adaptation (never correctness)
//!
//! When the governor's grant covers the whole label array (plus a
//! max-degree scratch), the round is one sequential edge-file pass with
//! RAM label lookups. When it does not, the label array is split into
//! `W` windows: each window pass streams the edge file and appends
//! `(src, label(dst))` annotation records for destinations resident in
//! the window; one external sort of the annotations then groups every
//! vertex's full neighbor-label multiset (sorted, so the mode is a
//! run-length scan). Both paths feed identical multisets to the same
//! mode accumulator, so a squeeze at a round boundary shrinks the
//! window — it cannot change any label.
//!
//! ## Size constraint
//!
//! With `max_cluster_size = c > 0`, a round's label changes become
//! *applications to move*: movers are sorted by `(target label, vertex)`
//! and each target cluster admits at most `c − size` of them (size =
//! round-start membership), in ascending vertex order. Since clusters
//! start as singletons and only ever admit into remaining capacity, no
//! cluster ever exceeds `c`. The admission pipeline is fully external
//! (two sorts and sequential merges), so the cap holds at any memory
//! budget — and its outcome is deterministic for the same reason the
//! mode is.

use emcore::{EmContext, EmError, EmFile, Lease, Result, TrackedVec};
use emsort::external_sort;

use crate::build::Graph;
use crate::edge::Edge;

/// Options for [`crate::cluster`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterOptions {
    /// Maximum label-propagation rounds (the round loop stops early
    /// when a round moves no vertex).
    pub rounds: u32,
    /// Hard cluster-size cap (`0` = unconstrained). With a cap, label
    /// changes are admitted per target cluster into remaining capacity,
    /// ascending by vertex id.
    pub max_cluster_size: u64,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            rounds: 8,
            max_cluster_size: 0,
        }
    }
}

/// The result of [`crate::cluster`].
#[derive(Debug)]
pub struct Clustering {
    /// Final vertex→label assignment (indexed by vertex id).
    pub labels: EmFile<u64>,
    /// Rounds actually run (≤ `ClusterOptions::rounds`; fewer when a
    /// round moved nothing).
    pub rounds_run: u32,
    /// Vertices moved per round.
    pub moves: Vec<u64>,
    /// Number of distinct labels in the final assignment.
    pub clusters: u64,
}

/// FNV-1a digest of a label file in vertex order — the bit-identity
/// fingerprint the EX-GRAPH harness and `emsplit graph-cluster` compare
/// across backends, worker counts, memory budgets, and crash+resume.
pub fn labels_digest(labels: &EmFile<u64>) -> Result<u64> {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut r = labels.reader()?;
    while let Some(x) = r.next()? {
        h = (h ^ x).wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ok(h)
}

/// Count distinct labels by sorting the label multiset externally and
/// scanning group boundaries.
pub fn count_clusters(labels: &EmFile<u64>) -> Result<u64> {
    let sorted = external_sort(labels)?;
    let mut r = sorted.reader()?;
    let mut clusters = 0u64;
    let mut prev = None;
    while let Some(l) = r.next()? {
        if prev != Some(l) {
            clusters += 1;
            prev = Some(l);
        }
    }
    Ok(clusters)
}

/// The identity labeling `v → v`: every vertex its own singleton
/// cluster (round 0 of label propagation).
pub(crate) fn initial_labels(ctx: &EmContext, n: u64) -> Result<EmFile<u64>> {
    let mut w = ctx.writer::<u64>()?;
    for v in 0..n {
        w.push(v)?;
    }
    w.finish()
}

/// Streaming mode-with-tie-breaks over one vertex's neighbor labels.
/// Labels must be pushed in ascending order; both gather paths do so
/// (a sorted scratch buffer, or the sorted annotation stream), which is
/// what keeps their proposals bit-identical.
struct ModeAccumulator {
    current: u64,
    current_count: u64,
    best_label: u64,
    best_count: u64,
    run_label: u64,
    run_count: u64,
}

impl ModeAccumulator {
    fn new(current: u64) -> Self {
        Self {
            current,
            current_count: 0,
            best_label: current,
            best_count: 0,
            run_label: 0,
            run_count: 0,
        }
    }

    fn close_run(&mut self) {
        if self.run_count > self.best_count {
            self.best_count = self.run_count;
            self.best_label = self.run_label;
        }
        if self.run_label == self.current {
            self.current_count = self.run_count;
        }
    }

    fn push(&mut self, label: u64) {
        if self.run_count > 0 && self.run_label == label {
            self.run_count += 1;
        } else {
            self.close_run();
            self.run_label = label;
            self.run_count = 1;
        }
    }

    /// The proposal: the most frequent neighbor label (smallest label on
    /// count ties), unless the vertex's current label is just as
    /// frequent — keep-on-tie damps churn and is deterministic.
    fn finish(mut self) -> u64 {
        self.close_run();
        if self.best_count > self.current_count {
            self.best_label
        } else {
            self.current
        }
    }
}

fn stream_underflow(what: &str) -> EmError {
    EmError::config(format!(
        "graph cluster invariant violated: short {what} stream"
    ))
}

/// An adaptively sized label window: ask for `want` records, halve on
/// memory denial down to a one-block floor (mirrors the recoverable
/// sort's load buffer).
fn adaptive_window(ctx: &EmContext, want: usize, floor: usize) -> Result<(TrackedVec<u64>, usize)> {
    let mut cap = want.max(floor);
    loop {
        match ctx.try_tracked_vec::<u64>(cap, "graph label window") {
            Ok(v) => return Ok((v, cap)),
            Err(e @ EmError::MemoryExceeded { .. }) => {
                if cap <= floor {
                    return Err(e);
                }
                cap = (cap / 2).max(floor);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Compute every vertex's proposed label for one round and feed
/// `(vertex, round-start label, proposal)` to `emit` in ascending
/// vertex order. Chooses the resident fast path or the windowed
/// annotation path from the lease's live grant; both produce identical
/// proposals.
fn propose_round(
    ctx: &EmContext,
    graph: &Graph,
    old: &EmFile<u64>,
    lease: &Lease,
    mut emit: impl FnMut(u64, u64, u64) -> Result<()>,
) -> Result<()> {
    let n = graph.vertices();
    if n == 0 {
        return Ok(());
    }
    let b = ctx.config().block_size();
    let scratch_cap = graph.max_degree() as usize;
    // Streaming readers/writers and the mode scratch ride on top of the
    // window; budget them out of the grant before sizing it.
    let reserve = 6 * b + scratch_cap;
    let want = lease
        .granted()
        .saturating_sub(reserve)
        .max(b)
        .min(n as usize);

    if want >= n as usize {
        // Resident fast path: whole label array + neighborhood scratch
        // in RAM, one sequential edge pass, no annotation file. Falls
        // back to the windowed path if either charge is denied (the
        // tracker's global budget can be tighter than the lease share).
        if let Ok(labels) = ctx.try_tracked_vec::<u64>(n as usize, "graph resident labels") {
            if let Ok(scratch) =
                ctx.try_tracked_vec::<u64>(scratch_cap.max(1), "graph mode scratch")
            {
                return propose_resident(graph, old, labels, scratch, &mut emit);
            }
        }
    }
    propose_windowed(ctx, graph, old, want, b, &mut emit)
}

fn propose_resident(
    graph: &Graph,
    old: &EmFile<u64>,
    mut labels: TrackedVec<u64>,
    mut scratch: TrackedVec<u64>,
    emit: &mut impl FnMut(u64, u64, u64) -> Result<()>,
) -> Result<()> {
    let n = graph.vertices();
    let mut lr = old.reader()?;
    for _ in 0..n {
        labels.push(lr.next()?.ok_or_else(|| stream_underflow("label"))?);
    }
    let mut er = graph.edges().reader()?;
    let mut pending = er.next()?;
    for v in 0..n {
        scratch.clear();
        while let Some(e) = pending {
            if e.src != v {
                break;
            }
            scratch.push(labels[e.dst as usize]);
            pending = er.next()?;
        }
        let old_l = labels[v as usize];
        // Neighbors arrive in dst order, not label order: sort so the
        // accumulator sees the same ascending stream as the windowed path.
        scratch.sort_unstable();
        let mut acc = ModeAccumulator::new(old_l);
        for &l in scratch.iter() {
            acc.push(l);
        }
        emit(v, old_l, acc.finish())?;
    }
    Ok(())
}

fn propose_windowed(
    ctx: &EmContext,
    graph: &Graph,
    old: &EmFile<u64>,
    want: usize,
    floor: usize,
    emit: &mut impl FnMut(u64, u64, u64) -> Result<()>,
) -> Result<()> {
    let n = graph.vertices();
    let (mut win, window) = adaptive_window(ctx, want, floor)?;
    // Window passes: annotate every edge whose destination is resident.
    let mut ann = ctx.writer::<Edge>()?;
    let mut lo = 0u64;
    while lo < n {
        let hi = (lo + window as u64).min(n);
        win.clear();
        let mut lr = old.reader_at(lo)?;
        for _ in lo..hi {
            win.push(lr.next()?.ok_or_else(|| stream_underflow("label"))?);
        }
        let mut er = graph.edges().reader()?;
        while let Some(e) = er.next()? {
            if e.dst >= lo && e.dst < hi {
                ann.push(Edge {
                    src: e.src,
                    dst: win[(e.dst - lo) as usize],
                })?;
            }
        }
        lo = hi;
    }
    let ann = ann.finish()?;
    // One sort groups each vertex's neighbor labels, ascending — the
    // composite (src, dst) key means (vertex, label) order.
    let sorted = external_sort(&ann)?;
    drop(ann);
    let mut ar = sorted.reader()?;
    let mut pending = ar.next()?;
    let mut lr = old.reader()?;
    for v in 0..n {
        let old_l = lr.next()?.ok_or_else(|| stream_underflow("label"))?;
        let mut acc = ModeAccumulator::new(old_l);
        while let Some(a) = pending {
            if a.src != v {
                break;
            }
            acc.push(a.dst);
            pending = ar.next()?;
        }
        emit(v, old_l, acc.finish())?;
    }
    Ok(())
}

/// Run one label-propagation round: returns the new label file and the
/// number of vertices that moved. `cap == 0` applies proposals
/// directly; `cap > 0` routes them through the external admission
/// pipeline described in the module docs.
pub(crate) fn lp_round(
    ctx: &EmContext,
    graph: &Graph,
    old: &EmFile<u64>,
    cap: u64,
    lease: &Lease,
) -> Result<(EmFile<u64>, u64)> {
    if cap == 0 {
        let mut out = ctx.writer::<u64>()?;
        let mut moves = 0u64;
        propose_round(ctx, graph, old, lease, |_, old_l, prop| {
            if prop != old_l {
                moves += 1;
            }
            out.push(prop)
        })?;
        return Ok((out.finish()?, moves));
    }

    // Phase A: proposals become applications to move.
    let mut movers_w = ctx.writer::<Edge>()?;
    propose_round(ctx, graph, old, lease, |v, old_l, prop| {
        if prop != old_l {
            movers_w.push(Edge { src: prop, dst: v })?;
        }
        Ok(())
    })?;
    let movers = movers_w.finish()?;
    // Group movers by (target label, vertex); sort the round-start label
    // multiset so target sizes stream in the same label order.
    let movers_sorted = external_sort(&movers)?;
    drop(movers);
    let sizes_sorted = external_sort(old)?;

    // Phase B: admit into remaining capacity, ascending vertex id.
    let mut accepted_w = ctx.writer::<Edge>()?;
    let mut accepted = 0u64;
    {
        let mut mr = movers_sorted.reader()?;
        let mut sr = sizes_sorted.reader()?;
        let mut s_pending = sr.next()?;
        let mut m_pending = mr.next()?;
        while let Some(head) = m_pending {
            let label = head.src;
            while s_pending.is_some_and(|s| s < label) {
                s_pending = sr.next()?;
            }
            let mut size = 0u64;
            while s_pending == Some(label) {
                size += 1;
                s_pending = sr.next()?;
            }
            let mut budget = cap.saturating_sub(size);
            while let Some(m) = m_pending {
                if m.src != label {
                    break;
                }
                if budget > 0 {
                    budget -= 1;
                    accepted += 1;
                    accepted_w.push(Edge {
                        src: m.dst,
                        dst: label,
                    })?;
                }
                m_pending = mr.next()?;
            }
        }
    }
    drop(movers_sorted);
    drop(sizes_sorted);
    let acc = accepted_w.finish()?;
    let acc_sorted = external_sort(&acc)?;
    drop(acc);

    // Apply: merge accepted moves (by vertex) over the old labels.
    let mut out = ctx.writer::<u64>()?;
    let mut ar = acc_sorted.reader()?;
    let mut a_pending = ar.next()?;
    let mut lr = old.reader()?;
    let mut v = 0u64;
    while let Some(old_l) = lr.next()? {
        let mut new_l = old_l;
        if let Some(a) = a_pending {
            if a.src == v {
                new_l = a.dst;
                a_pending = ar.next()?;
            }
        }
        out.push(new_l)?;
        v += 1;
    }
    Ok((out.finish()?, accepted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, BuildOptions};
    use crate::edge::edges_from_pairs;
    use emcore::{EmConfig, EmContext};

    fn graph_on(ctx: &EmContext, pairs: &[(u64, u64)]) -> Graph {
        let raw = edges_from_pairs(ctx, pairs).unwrap();
        build_graph(ctx, &raw, &BuildOptions::default()).unwrap()
    }

    fn round(ctx: &EmContext, g: &Graph, labels: &EmFile<u64>, cap: u64) -> (Vec<u64>, u64) {
        let lease = ctx.governor().lease("test", 0, 1).unwrap();
        let (f, moves) = lp_round(ctx, g, labels, cap, &lease).unwrap();
        (f.to_vec().unwrap(), moves)
    }

    #[test]
    fn mode_accumulator_tie_breaks() {
        // Most frequent wins.
        let mut a = ModeAccumulator::new(9);
        for l in [1, 2, 2, 3] {
            a.push(l);
        }
        assert_eq!(a.finish(), 2);
        // Count tie: smallest label wins.
        let mut a = ModeAccumulator::new(9);
        for l in [1, 1, 2, 2] {
            a.push(l);
        }
        assert_eq!(a.finish(), 1);
        // Current label as frequent as the best: keep it.
        let mut a = ModeAccumulator::new(2);
        for l in [1, 2] {
            a.push(l);
        }
        assert_eq!(a.finish(), 2);
        // No neighbors: keep.
        assert_eq!(ModeAccumulator::new(5).finish(), 5);
    }

    #[test]
    fn one_round_on_a_triangle_plus_satellite() {
        // Triangle 0-1-2 and a satellite 3-0. Initial labels = ids.
        let ctx = EmContext::new_in_memory_strict(EmConfig::tiny());
        let g = graph_on(&ctx, &[(0, 1), (1, 2), (0, 2), (3, 0)]);
        let init = initial_labels(&ctx, g.vertices()).unwrap();
        let (labels, moves) = round(&ctx, &g, &init, 0);
        // All counts 1 ⇒ everyone adopts its smallest neighbor (vertex
        // 0's smallest neighbor is 1 — synchronous updates move it too).
        assert_eq!(labels, vec![1, 0, 0, 0]);
        assert_eq!(moves, 4);
    }

    #[test]
    fn cap_admits_in_vertex_order() {
        // Star: center 0 with leaves 1..=4, cap 3. Round 1 proposals:
        // every leaf wants label 0 (center keeps 0 on the tie rule? the
        // center sees neighbors {1,2,3,4}, all count 1, best = 1 >
        // current count 0 ⇒ center proposes 1). Cluster 0 starts at
        // size 1: admits 3 − 1 = 2 leaves, ascending ⇒ vertices 1, 2.
        // Cluster 1 starts at size 1 (vertex 1): admits the center.
        let ctx = EmContext::new_in_memory_strict(EmConfig::tiny());
        let g = graph_on(&ctx, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let init = initial_labels(&ctx, g.vertices()).unwrap();
        let (labels, moves) = round(&ctx, &g, &init, 3);
        assert_eq!(labels, vec![1, 0, 0, 3, 4]);
        assert_eq!(moves, 3);
        // Unbounded for contrast: all leaves join 0.
        let (labels, moves) = round(&ctx, &g, &init, 0);
        assert_eq!(labels, vec![1, 0, 0, 0, 0]);
        assert_eq!(moves, 5);
    }

    #[test]
    fn cap_is_never_exceeded_over_rounds() {
        let ctx = EmContext::new_in_memory_strict(EmConfig::tiny());
        let mut rng = emcore::SplitMix64::new(3);
        let pairs: Vec<(u64, u64)> = (0..2000)
            .map(|_| (rng.below(150), rng.below(150)))
            .collect();
        let g = graph_on(&ctx, &pairs);
        let cap = 20u64;
        let mut labels = initial_labels(&ctx, g.vertices()).unwrap();
        let lease = ctx.governor().lease("test", 0, 1).unwrap();
        for _ in 0..4 {
            let (next, _) = lp_round(&ctx, &g, &labels, cap, &lease).unwrap();
            labels = next;
            let mut counts = std::collections::BTreeMap::new();
            for l in labels.to_vec().unwrap() {
                *counts.entry(l).or_insert(0u64) += 1;
            }
            assert!(counts.values().all(|&c| c <= cap), "cap exceeded");
        }
    }

    #[test]
    fn proposals_invariant_to_window_size() {
        // Same graph, same round — once with a grant covering the whole
        // label array, once with a budget so small the round must run
        // multi-window. Digest-identical labels either way.
        let mut rng = emcore::SplitMix64::new(17);
        let pairs: Vec<(u64, u64)> = (0..3000)
            .map(|_| (rng.below(400), rng.below(400)))
            .collect();

        let big = EmContext::new_in_memory(EmConfig::new(1 << 16, 64).unwrap());
        let small = EmContext::new_in_memory(EmConfig::new(256, 16).unwrap());
        let mut digests = Vec::new();
        for ctx in [&big, &small] {
            let g = graph_on(ctx, &pairs);
            let mut labels = initial_labels(ctx, g.vertices()).unwrap();
            let lease = ctx.governor().lease("test", 0, 1).unwrap();
            for _ in 0..3 {
                let (next, _) = lp_round(ctx, &g, &labels, 0, &lease).unwrap();
                labels = next;
            }
            digests.push(labels_digest(&labels).unwrap());
        }
        assert_eq!(digests[0], digests[1]);
    }

    #[test]
    fn capped_rounds_invariant_to_window_size() {
        let mut rng = emcore::SplitMix64::new(23);
        let pairs: Vec<(u64, u64)> = (0..2500)
            .map(|_| (rng.below(300), rng.below(300)))
            .collect();
        let big = EmContext::new_in_memory(EmConfig::new(1 << 16, 64).unwrap());
        let small = EmContext::new_in_memory(EmConfig::new(256, 16).unwrap());
        let mut digests = Vec::new();
        for ctx in [&big, &small] {
            let g = graph_on(ctx, &pairs);
            let mut labels = initial_labels(ctx, g.vertices()).unwrap();
            let lease = ctx.governor().lease("test", 0, 1).unwrap();
            for _ in 0..3 {
                let (next, _) = lp_round(ctx, &g, &labels, 25, &lease).unwrap();
                labels = next;
            }
            digests.push(labels_digest(&labels).unwrap());
        }
        assert_eq!(digests[0], digests[1]);
    }

    #[test]
    fn isolated_vertices_keep_their_label() {
        let ctx = EmContext::new_in_memory_strict(EmConfig::tiny());
        let raw = edges_from_pairs(&ctx, &[(0, 1)]).unwrap();
        let opts = BuildOptions {
            vertices: Some(5),
            ..BuildOptions::default()
        };
        let g = build_graph(&ctx, &raw, &opts).unwrap();
        let init = initial_labels(&ctx, 5).unwrap();
        // 0 and 1 swap (the synchronous two-cycle); 2..4 are isolated
        // and must keep their labels.
        let (labels, moves) = round(&ctx, &g, &init, 0);
        assert_eq!(labels, vec![1, 0, 2, 3, 4]);
        assert_eq!(moves, 2);
    }

    #[test]
    fn digest_and_cluster_count() {
        let ctx = EmContext::new_in_memory_strict(EmConfig::tiny());
        let f = EmFile::from_slice(&ctx, &[3u64, 3, 1, 1, 1, 9]).unwrap();
        assert_eq!(count_clusters(&f).unwrap(), 3);
        let g = EmFile::from_slice(&ctx, &[3u64, 3, 1, 1, 1, 9]).unwrap();
        assert_eq!(labels_digest(&f).unwrap(), labels_digest(&g).unwrap());
        let h = EmFile::from_slice(&ctx, &[3u64, 3, 1, 1, 9, 1]).unwrap();
        assert_ne!(labels_digest(&f).unwrap(), labels_digest(&h).unwrap());
    }
}
