//! Vertex bucketing via approximate K-partitioning.
//!
//! The paper's K-partitioning machinery buckets vertices by any `u64`
//! score in its I/O bound — no full sort of the score file. `emgraph`
//! uses it twice: over **degree** keys (load-balanced sharding where
//! every shard holds a near-even slice of the degree distribution) and
//! over **cluster ids** after label propagation (co-locating each
//! cluster's vertices while keeping shard sizes near-even).

use apsplit::{approx_partitioning, ProblemSpec};
use emcore::{EmFile, KeyValue, Result};
use emselect::Partition;

use crate::build::Graph;

/// `K` ordered vertex buckets produced by approximate K-partitioning of
/// `(score, vertex)` records: bucket `i`'s scores all precede bucket
/// `i + 1`'s (ties may straddle), and every realized size is an exact
/// near-even quantile cut `⌊(i+1)·N/K⌋ − ⌊i·N/K⌋` — the
/// quantile-sufficient regime of the paper's two-sided algorithm.
#[derive(Debug)]
pub struct Buckets {
    parts: Vec<Partition<KeyValue>>,
    n: u64,
}

impl Buckets {
    /// The buckets in score order; each record is `(score, vertex)`.
    pub fn parts(&self) -> &[Partition<KeyValue>] {
        &self.parts
    }

    /// Number of buckets `K`.
    pub fn k(&self) -> u64 {
        self.parts.len() as u64
    }

    /// Total vertices bucketed.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Realized bucket sizes, in order.
    pub fn sizes(&self) -> Vec<u64> {
        self.parts.iter().map(|p| p.len()).collect()
    }

    /// Per-bucket `(min, max)` score, `None` for empty buckets. One scan.
    pub fn score_ranges(&self) -> Result<Vec<Option<(u64, u64)>>> {
        self.parts
            .iter()
            .map(|p| {
                let mut range: Option<(u64, u64)> = None;
                p.for_each(|kv| {
                    range = Some(match range {
                        None => (kv.key, kv.key),
                        Some((lo, hi)) => (lo.min(kv.key), hi.max(kv.key)),
                    });
                    Ok(())
                })?;
                Ok(range)
            })
            .collect()
    }
}

/// Bucket `(score, vertex)` records into `k` near-even score-ordered
/// buckets with approximate K-partitioning. Charged under `graph/bucket`.
pub fn score_buckets(scores: &EmFile<KeyValue>, k: u64) -> Result<Buckets> {
    let stats = scores.ctx().stats().clone();
    let _phase = stats.phase_guard("graph/bucket");
    let n = scores.len();
    let spec = ProblemSpec::near_even(n, k)?;
    let parts = approx_partitioning(scores, &spec)?;
    Ok(Buckets { parts, n })
}

/// Bucket `graph`'s vertices by **degree** into `k` near-even buckets.
pub fn degree_buckets(graph: &Graph, k: u64) -> Result<Buckets> {
    let degrees = graph.degree_file()?;
    score_buckets(&degrees, k)
}

/// Bucket vertices by **cluster label** into `k` near-even buckets:
/// records come out as `(label, vertex)`, so a cluster's vertices are
/// contiguous across the bucket sequence (a cluster larger than a
/// bucket straddles adjacent buckets).
pub fn cluster_buckets(labels: &EmFile<u64>, k: u64) -> Result<Buckets> {
    let ctx = labels.ctx().clone();
    let mut w = ctx.writer::<KeyValue>()?;
    let mut r = labels.reader()?;
    let mut v = 0u64;
    while let Some(label) = r.next()? {
        w.push(KeyValue {
            key: label,
            value: v,
        })?;
        v += 1;
    }
    let scored = w.finish()?;
    score_buckets(&scored, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, BuildOptions};
    use crate::cluster::ClusterOptions;
    use crate::edge::edges_from_pairs;
    use crate::recover::cluster;
    use emcore::{EmConfig, EmContext, EmError};

    fn near_even_sizes(n: u64, k: u64) -> Vec<u64> {
        (1..=k).map(|i| i * n / k - (i - 1) * n / k).collect()
    }

    fn assert_ordered_and_complete(b: &Buckets) {
        let ranges = b.score_ranges().unwrap();
        let mut floor = 0u64;
        for r in ranges.iter().flatten() {
            assert!(r.0 >= floor, "bucket scores out of order");
            floor = r.1;
        }
        let mut seen: Vec<u64> = Vec::new();
        for p in b.parts() {
            p.for_each(|kv| {
                seen.push(kv.value);
                Ok(())
            })
            .unwrap();
        }
        seen.sort_unstable();
        let want: Vec<u64> = (0..b.n()).collect();
        assert_eq!(seen, want, "every vertex in exactly one bucket");
    }

    #[test]
    fn degree_buckets_are_near_even_and_degree_ordered() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        // A star (vertex 0 has degree 49) plus a path: heavily skewed.
        let mut pairs: Vec<(u64, u64)> = (1..50).map(|v| (0, v)).collect();
        pairs.extend((50..70).map(|v| (v, v + 1)));
        let raw = edges_from_pairs(&ctx, &pairs).unwrap();
        let g = build_graph(&ctx, &raw, &BuildOptions::default()).unwrap();
        let b = degree_buckets(&g, 4).unwrap();
        assert_eq!(b.sizes(), near_even_sizes(g.vertices(), 4));
        assert_ordered_and_complete(&b);
        // The hub lands in the last (highest-degree) bucket.
        let mut hub_bucket = None;
        for (i, p) in b.parts().iter().enumerate() {
            p.for_each(|kv| {
                if kv.value == 0 {
                    hub_bucket = Some(i);
                }
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(hub_bucket, Some(3));
    }

    #[test]
    fn cluster_buckets_keep_clusters_contiguous() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        // Two triangles cluster into two labels; k = 2 puts one per bucket.
        let raw =
            edges_from_pairs(&ctx, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let g = build_graph(&ctx, &raw, &BuildOptions::default()).unwrap();
        let c = cluster(&g, &ClusterOptions::default()).unwrap();
        let b = cluster_buckets(&c.labels, 2).unwrap();
        assert_eq!(b.sizes(), vec![3, 3]);
        assert_ordered_and_complete(&b);
        let ranges = b.score_ranges().unwrap();
        for r in ranges.iter().flatten() {
            assert_eq!(r.0, r.1, "each bucket holds exactly one cluster id");
        }
    }

    #[test]
    fn rejects_more_buckets_than_vertices() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let raw = edges_from_pairs(&ctx, &[(0, 1)]).unwrap();
        let g = build_graph(&ctx, &raw, &BuildOptions::default()).unwrap();
        assert!(matches!(degree_buckets(&g, 5), Err(EmError::Config(_))));
    }
}
