//! EX-OBS: the live-observability campaign.
//!
//! Turns the metrics runtime loose on the two nastiest serve scenarios
//! the suite already has — the EX-CHAOS fatal fault storm and the
//! EX-SQUEEZE multi-tenant starvation — and audits the *instrumentation*
//! rather than the answers:
//!
//! * **Conservation** — every accepted query lands in exactly one
//!   end-to-end outcome histogram, so the `em_serve_query_e2e_us` family
//!   total equals [`emserve::ServeReport::queries`] and the batch
//!   occupancy count equals `ServeReport::batches`, even mid-storm.
//! * **Monotone percentiles** — for every histogram in every scrape,
//!   p50 ≤ p90 ≤ p99 ≤ p99.9 ≤ max.
//! * **Honest breaker gauge** — the `em_serve_breaker_state` gauge is
//!   seen Open while the device is crashed, returns to Closed after the
//!   heal, and the trip/restore counters match the server's report.
//! * **Warm beats cold** — with a throttled device, the p99 of the warm
//!   (index-hit) phase is *strictly* below the cold (selecting) phase,
//!   isolated via [`emcore::HistogramSnapshot::since`].
//!
//! A background [`emcore::Sampler`] scrapes the chaos cell live; the
//! campaign re-parses its JSONL series to prove the time-series pipeline
//! observes the breaker lifecycle. Like the other campaigns it reports
//! rather than panics: sick cells flip audit columns to `NO` and the
//! binary exits nonzero.

use std::time::Duration;

use emcore::{
    EmConfig, EmContext, FaultPlan, HistogramSnapshot, MetricSample, MetricsSnapshot, RetryPolicy,
    SplitMix64,
};
use emserve::{QueryOptions, QueryServer, ServeOptions, Ticket};

use crate::harness::{emit, Scale, Table};

const SEED: u64 = 20140623;

/// How long a ticket may take before the campaign declares it hung.
const HANG_TIMEOUT: Duration = Duration::from_secs(20);

/// The end-to-end latency histogram family (one child per dataset ×
/// outcome).
const E2E: &str = "em_serve_query_e2e_us";

/// The audited result of one observability cell.
#[derive(Debug)]
pub struct ObsOutcome {
    /// Cell label.
    pub cell: &'static str,
    /// Queries the server reported accepting.
    pub queries: u64,
    /// Batches the server reported answering.
    pub batches: u64,
    /// Histogram counts conserve against the server's report.
    pub conserved: bool,
    /// Every histogram percentile ladder was monotone in every scrape.
    pub monotone: bool,
    /// Breaker gauge/counters told the same story as the report.
    pub breaker_ok: bool,
    /// p50 of the cell's exact end-to-end latency, µs (bucket floor).
    pub p50_us: u64,
    /// p99 of the cell's exact end-to-end latency, µs (bucket floor).
    pub p99_us: u64,
    /// p99 of the cold phase (warm-cold cell only; 0 elsewhere).
    pub cold_p99_us: u64,
    /// Cell-specific extra audits (degraded seen under starvation, warm
    /// strictly under cold, live series saw the breaker open, ...).
    pub extra_ok: bool,
}

impl ObsOutcome {
    /// Did the instrumentation uphold its contract in this cell?
    pub fn clean(&self) -> bool {
        self.conserved && self.monotone && self.breaker_ok && self.extra_ok
    }
}

fn outcome(cell: &'static str) -> ObsOutcome {
    ObsOutcome {
        cell,
        queries: 0,
        batches: 0,
        conserved: false,
        monotone: false,
        breaker_ok: false,
        p50_us: 0,
        p99_us: 0,
        cold_p99_us: 0,
        extra_ok: false,
    }
}

/// Every histogram in the snapshot has p50 ≤ p90 ≤ p99 ≤ p99.9 ≤ max.
fn percentiles_monotone(snap: &MetricsSnapshot) -> bool {
    snap.samples.iter().all(|s| match &s.hist {
        Some(h) if h.count() > 0 => {
            let ladder = [
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0),
                h.percentile(99.9),
                h.max(),
            ];
            ladder.windows(2).all(|w| w[0] <= w[1])
        }
        _ => true,
    })
}

/// Histogram counts vs the server's own counters: the e2e family total
/// must equal accepted queries and the occupancy count must equal
/// answered batches.
fn conserves(snap: &MetricsSnapshot, queries: u64, batches: u64) -> bool {
    let occupancy = snap
        .find("em_serve_batch_occupancy", &[])
        .and_then(|s| s.hist.as_ref())
        .map(|h| h.count())
        .unwrap_or(0);
    snap.family_total(E2E) == queries && occupancy == batches
}

/// The e2e histogram for one `(dataset, outcome)` child, empty when the
/// child has recorded nothing.
fn e2e_hist(snap: &MetricsSnapshot, ds: &str, outcome: &str) -> HistogramSnapshot {
    snap.find(E2E, &[("ds", ds), ("outcome", outcome)])
        .and_then(|s| s.hist.clone())
        .unwrap_or_default()
}

/// Resolve a ticket, ignoring its verdict (the chaos campaign audits
/// answers; this one audits the instrumentation around them).
fn drain(t: Ticket<u64>) {
    let _ = t.wait_timeout(HANG_TIMEOUT);
}

/// Chaos-with-scrape: a fatal fault storm with a live 2 ms sampler
/// attached, scraped mid-storm and after the heal. Audits conservation
/// under failure/shedding, monotone percentiles in *every* scrape, and
/// the breaker gauge's Open→Closed arc against the trip/restore
/// counters — both in direct snapshots and in the sampled series.
pub fn chaos_scrape_cell(n: u64) -> ObsOutcome {
    let mut o = outcome("chaos-scrape");
    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    ctx.set_retry_policy(RetryPolicy::retries(4));
    ctx.metrics().set_enabled(true);

    let series_path =
        std::env::temp_dir().join(format!("em-obs-series-{}.jsonl", std::process::id()));
    let sampler = emcore::Sampler::to_file(
        ctx.metrics().clone(),
        ctx.clock(),
        Duration::from_millis(2),
        &series_path,
    )
    .expect("sampler start");

    let mut data: Vec<u64> = (0..n).collect();
    SplitMix64::new(SEED).shuffle(&mut data);
    let mut server = QueryServer::<u64>::start(
        &ctx,
        ServeOptions::builder()
            .breaker_threshold(2)
            .probe_cooldown(Duration::from_millis(5))
            .build(),
    )
    .expect("server start");
    let client = server.client().expect("server running");
    client.register("ds", data).expect("register");
    let warm: Vec<u64> = (1..8).map(|i| i * n / 8).collect();
    drain(client.query("ds", warm).expect("submit warm"));

    // The storm: a fatal device crash partway through, then fail-fast.
    let plan = FaultPlan::new(SEED).fatal_at(40);
    ctx.install_fault_plan(plan.clone());
    for chunk in (0..24u64)
        .map(|i| vec![1 + (i * 739) % n])
        .collect::<Vec<_>>()
        .chunks(8)
    {
        for t in client
            .submit_batch("ds", chunk.to_vec())
            .expect("submit storm batch")
        {
            drain(t);
        }
    }

    // Mid-storm scrape: the breaker must read tripped (Open, or HalfOpen
    // if a doomed probe is in flight), conservation must already hold,
    // and the exposition must carry the family.
    let mid = {
        let r = client.report().expect("mid report");
        let snap = ctx.metrics().snapshot(ctx.clock().now_us());
        let tripped = snap
            .find("em_serve_breaker_state", &[("ds", "ds")])
            .map(|s| s.value >= 1)
            .unwrap_or(false);
        let text = ctx.metrics().expose();
        (
            conserves(&snap, r.queries, r.batches) && percentiles_monotone(&snap),
            tripped && r.breaker_trips >= 1,
            text.contains("# TYPE em_serve_query_e2e_us summary")
                && text.contains("em_serve_breaker_state"),
        )
    };

    // Heal the device; the breaker probes its way closed.
    plan.clear_crash();
    plan.clear_specs();
    let t0 = std::time::Instant::now();
    loop {
        let t = client.query("ds", vec![n / 2]).expect("submit heal");
        match t.wait_timeout(HANG_TIMEOUT) {
            Ok(_) => break,
            Err(_) if t0.elapsed() < Duration::from_secs(10) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    ctx.clear_fault_plan();

    // An overload coda: zero-deadline rushes that shed or degrade — the
    // conservation law must absorb those outcomes too.
    let rush = QueryOptions {
        deadline: Some(Duration::ZERO),
        degraded: Some(true),
    };
    let queries: Vec<(Vec<u64>, QueryOptions)> = (0..16u64)
        .map(|i| (vec![1 + (i * 211 + 5) % n], rush))
        .collect();
    for t in client
        .submit_batch_with("ds", queries)
        .expect("submit overload batch")
    {
        drain(t);
    }

    let report = client.report().expect("final report");
    let snap = ctx.metrics().snapshot(ctx.clock().now_us());
    drop(client);
    server.shutdown().expect("clean shutdown");
    sampler.stop().expect("sampler stop");

    // Replay the sampled series: the live pipeline must have caught the
    // breaker open and seen it closed again by the final snapshot.
    let series = std::fs::read_to_string(&series_path).expect("read series");
    let _ = std::fs::remove_file(&series_path);
    let mut series_max_state = 0u64;
    let mut series_last_state = 0u64;
    let mut series_lines = 0u64;
    for line in series.lines().filter(|l| !l.trim().is_empty()) {
        let (_, s) = MetricSample::parse(line).expect("parse series line");
        series_lines += 1;
        if s.name == "em_serve_breaker_state" {
            series_max_state = series_max_state.max(s.value);
            series_last_state = s.value;
        }
    }

    o.queries = report.queries;
    o.batches = report.batches;
    o.conserved = mid.0 && conserves(&snap, report.queries, report.batches);
    o.monotone = percentiles_monotone(&snap);
    let trips = snap
        .find("em_serve_breaker_trips_total", &[("ds", "ds")])
        .map(|s| s.value)
        .unwrap_or(0);
    let restores = snap
        .find("em_serve_breaker_restores_total", &[("ds", "ds")])
        .map(|s| s.value)
        .unwrap_or(0);
    let closed_now = snap
        .find("em_serve_breaker_state", &[("ds", "ds")])
        .map(|s| s.value == 0)
        .unwrap_or(false);
    o.breaker_ok = mid.1
        && trips == report.breaker_trips
        && restores == report.breaker_restores
        && report.breaker_trips >= 1
        && closed_now
        && series_max_state >= 1
        && series_last_state == 0;
    let exact = e2e_hist(&snap, "ds", "exact");
    o.p50_us = exact.percentile(50.0);
    o.p99_us = exact.percentile(99.0);
    // Shed + degraded outcomes must be visible in their own children.
    let shed = e2e_hist(&snap, "ds", "shed").count();
    let degraded = e2e_hist(&snap, "ds", "degraded").count();
    o.extra_ok = mid.2 && shed == report.shed && degraded == report.degraded && series_lines > 0;
    o
}

/// Squeeze-with-scrape: multi-tenant starvation under a governor squeeze,
/// scraped mid-squeeze. Audits conservation across the degraded outcome,
/// and that the budget gauge tracks the squeeze and the restore.
pub fn squeeze_scrape_cell(n: u64) -> ObsOutcome {
    let mut o = outcome("squeeze-scrape");
    let config = EmConfig::medium();
    let ctx = EmContext::new_in_memory_strict(config);
    ctx.metrics().set_enabled(true);
    let full = config.mem_capacity();

    let mut server = QueryServer::<u64>::start(
        &ctx,
        ServeOptions::builder()
            .degraded(true)
            .refine(true)
            .lease_floor(512)
            .build(),
    )
    .expect("server start");
    let client = server.client().expect("server running");
    let mut data: Vec<u64> = (1..=n).collect();
    SplitMix64::new(SEED).shuffle(&mut data);
    client.register("tenant", data).expect("register");
    let warm: Vec<u64> = (1..5).map(|i| i * n / 5).collect();
    drain(client.query("tenant", warm).expect("submit warm"));

    let wave = |salt: u64| {
        for q in 0..8u64 {
            let ranks = vec![1 + (q * 877 + salt * 397) % n];
            drain(client.query("tenant", ranks).expect("submit"));
        }
    };
    wave(1);

    // Squeeze M to an eighth and let a rival pin all but half a block:
    // every exact pass is starved, so the wave must go degraded.
    ctx.set_mem_budget(full / 8).expect("squeeze");
    let sliver = config.block_size() / 2;
    let rival = ctx
        .mem()
        .try_charge(ctx.mem().available().saturating_sub(sliver), "rival tenant")
        .expect("rival admission");
    wave(2);

    // Mid-squeeze scrape: the budget gauge must read the squeezed value
    // and conservation must hold with degraded answers in flight.
    let (mid_ok, budget_mid) = {
        let r = client.report().expect("mid report");
        let snap = ctx.metrics().snapshot(ctx.clock().now_us());
        let budget = snap
            .find("em_serve_mem_budget_words", &[])
            .map(|s| s.value)
            .unwrap_or(0);
        (
            conserves(&snap, r.queries, r.batches) && percentiles_monotone(&snap),
            budget,
        )
    };

    drop(rival);
    ctx.set_mem_budget(full).expect("restore");
    wave(3);

    let report = client.report().expect("final report");
    let snap = ctx.metrics().snapshot(ctx.clock().now_us());
    drop(client);
    server.shutdown().expect("clean shutdown");

    o.queries = report.queries;
    o.batches = report.batches;
    o.conserved = mid_ok && conserves(&snap, report.queries, report.batches);
    o.monotone = percentiles_monotone(&snap);
    // No faults here: the breaker story is "never tripped, gauge Closed".
    o.breaker_ok = report.breaker_trips == 0
        && snap
            .find("em_serve_breaker_state", &[("ds", "tenant")])
            .map(|s| s.value == 0)
            .unwrap_or(false);
    let exact = e2e_hist(&snap, "tenant", "exact");
    o.p50_us = exact.percentile(50.0);
    o.p99_us = exact.percentile(99.0);
    let degraded = e2e_hist(&snap, "tenant", "degraded").count();
    let budget_now = snap
        .find("em_serve_mem_budget_words", &[])
        .map(|s| s.value)
        .unwrap_or(0);
    o.extra_ok = degraded == report.degraded
        && report.degraded > 0
        && budget_mid == (full / 8) as u64
        && budget_now == full as u64;
    o
}

/// Warm-vs-cold: a throttled disk device makes cold (selecting) queries
/// pay real latency; repeating the same ranks hits stored boundaries at
/// zero I/O. [`HistogramSnapshot::since`] isolates the two phases from
/// one live histogram; warm p99 must land *strictly* below cold p99.
pub fn warm_cold_cell(n: u64, device_latency_us: u64) -> ObsOutcome {
    let mut o = outcome("warm-vs-cold");
    let config = EmConfig::medium().with_device_latency_us(device_latency_us);
    let ctx = EmContext::new_on_disk_temp(config).expect("tempdir");
    ctx.metrics().set_enabled(true);

    let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::builder().refine(true).build())
        .expect("server start");
    let client = server.client().expect("server running");
    let mut data: Vec<u64> = (1..=n).collect();
    SplitMix64::new(SEED ^ 0xc01d).shuffle(&mut data);
    client.register("ds", data).expect("register");

    let rank_sets: Vec<Vec<u64>> = (0..12u64).map(|i| vec![1 + (i * 509 + 7) % n]).collect();
    let phase_hist =
        |snap: &MetricsSnapshot| -> HistogramSnapshot { e2e_hist(snap, "ds", "exact") };

    let base = ctx.metrics().snapshot(ctx.clock().now_us());
    for ranks in &rank_sets {
        drain(client.query("ds", ranks.clone()).expect("submit cold"));
    }
    let after_cold = ctx.metrics().snapshot(ctx.clock().now_us());
    for ranks in &rank_sets {
        drain(client.query("ds", ranks.clone()).expect("submit warm"));
    }
    let after_warm = ctx.metrics().snapshot(ctx.clock().now_us());

    let report = client.report().expect("final report");
    let snap = ctx.metrics().snapshot(ctx.clock().now_us());
    drop(client);
    server.shutdown().expect("clean shutdown");

    let cold = phase_hist(&after_cold).since(&phase_hist(&base));
    let warm = phase_hist(&after_warm).since(&phase_hist(&after_cold));
    o.queries = report.queries;
    o.batches = report.batches;
    o.conserved = conserves(&snap, report.queries, report.batches);
    o.monotone = percentiles_monotone(&base)
        && percentiles_monotone(&after_cold)
        && percentiles_monotone(&after_warm)
        && percentiles_monotone(&snap);
    o.breaker_ok = report.breaker_trips == 0;
    o.p50_us = warm.percentile(50.0);
    o.p99_us = warm.percentile(99.0);
    o.cold_p99_us = cold.percentile(99.0);
    // Both phases fully exact, warm answered from the index, and the
    // headline inequality: warm p99 strictly below cold p99.
    o.extra_ok = cold.count() == rank_sets.len() as u64
        && warm.count() == rank_sets.len() as u64
        && report.index_hits >= rank_sets.len() as u64
        && o.p99_us < o.cold_p99_us;
    o
}

/// EX-OBS: the three observability cells as a table.
pub fn ex_obs(scale: Scale) -> (Table, Vec<ObsOutcome>) {
    let (n_chaos, n_squeeze, n_cold, latency_us) = match scale {
        Scale::Quick => (3_000u64, 8_000u64, 8_000u64, 150u64),
        Scale::Full => (20_000, 40_000, 40_000, 300),
    };
    let mut t = Table::new(
        "EX-OBS",
        "observability campaign: live scrapes audited against server ground truth",
        &[
            "cell",
            "queries",
            "batches",
            "conserved",
            "monotone",
            "breaker_ok",
            "p50_us",
            "p99_us",
            "cold_p99_us",
            "ok",
        ],
    );
    let cells = vec![
        chaos_scrape_cell(n_chaos),
        squeeze_scrape_cell(n_squeeze),
        warm_cold_cell(n_cold, latency_us),
    ];
    let mut sick = 0u64;
    for o in &cells {
        if !o.clean() {
            sick += 1;
            eprintln!("[EX-OBS] sick cell: {o:?}");
        }
        let yn = |b: bool| if b { "yes" } else { "NO" }.to_string();
        t.row(vec![
            o.cell.into(),
            o.queries.to_string(),
            o.batches.to_string(),
            yn(o.conserved),
            yn(o.monotone),
            yn(o.breaker_ok),
            o.p50_us.to_string(),
            o.p99_us.to_string(),
            o.cold_p99_us.to_string(),
            yn(o.clean()),
        ]);
    }
    t.note("conserved: e2e histogram family total == reported queries and occupancy count == reported batches, in mid-storm and final scrapes alike");
    t.note("monotone: p50 ≤ p90 ≤ p99 ≤ p99.9 ≤ max for every histogram in every scrape");
    t.note("breaker_ok: gauge seen Open while crashed and Closed after the heal; trip/restore counters equal the server report");
    t.note("warm-vs-cold: phases isolated from one live histogram via since(); warm p99 must be strictly below cold p99 under a throttled device");
    if sick > 0 {
        t.note(format!("SICK CELLS: {sick} (see stderr)"));
    }
    (t, cells)
}

/// Run the campaign, emit the table (stdout + `bench_results/EX-OBS.csv`),
/// and report whether every cell was clean (the `metrics_obs` binary and
/// the CI metrics-smoke job gate on this).
pub fn run_obs(scale: Scale) -> (Vec<ObsOutcome>, bool) {
    let (t, cells) = ex_obs(scale);
    emit(&t);
    let clean = cells.iter().all(|o| o.clean());
    (cells, clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_scrape_cell_is_clean() {
        let o = chaos_scrape_cell(1200);
        assert!(o.clean(), "{o:?}");
        assert!(o.queries > 0 && o.batches > 0, "{o:?}");
    }

    #[test]
    fn squeeze_scrape_cell_is_clean() {
        let o = squeeze_scrape_cell(4000);
        assert!(o.clean(), "{o:?}");
    }

    #[test]
    fn warm_cold_cell_separates_phases() {
        let o = warm_cold_cell(4000, 150);
        assert!(o.clean(), "{o:?}");
        assert!(o.p99_us < o.cold_p99_us, "{o:?}");
    }
}
