//! Shared experiment harness: measurement, table formatting, CSV output.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use emcore::{Counters, EmConfig, EmContext};

/// Experiment scale, selected via the `EM_BENCH_SCALE` environment
/// variable (`quick` default, `full` for the larger sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-quick runs (seconds).
    Quick,
    /// Full sweeps (minutes).
    Full,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Self {
        match std::env::var("EM_BENCH_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// The default input size for this scale.
    pub fn n(self) -> u64 {
        match self {
            Scale::Quick => 400_000,
            Scale::Full => 4_000_000,
        }
    }
}

/// The simulator configuration every experiment runs on (`M = 4096`,
/// `B = 64`, `M/B = 64`) — small enough that multi-level effects appear at
/// laptop-scale `N`.
pub fn bench_config() -> EmConfig {
    EmConfig::medium()
}

/// Fresh in-memory context with the bench configuration.
pub fn bench_ctx() -> EmContext {
    EmContext::new_in_memory(bench_config())
}

/// Run `f` and return its I/O delta and wall time.
pub fn measure<R>(ctx: &EmContext, f: impl FnOnce() -> R) -> (R, Counters, Duration) {
    let before = ctx.stats().snapshot();
    let t0 = Instant::now();
    let r = f();
    let dt = t0.elapsed();
    (r, ctx.stats().snapshot().since(&before), dt)
}

/// A printable result table (markdown to stdout, CSV to `bench_results/`).
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "EX-T1-SR".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Per-row phase I/O totals (parallel to `rows`; empty when a row has
    /// none). Rendered as extra `phase:<name>` CSV columns only — the
    /// markdown table keeps its declared columns.
    pub phases: Vec<Vec<(String, Counters)>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            phases: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self.phases.push(Vec::new());
    }

    /// Append a row with per-phase I/O totals (e.g.
    /// [`emcore::IoStats::phase_totals`]). The CSV gains a `phase:<name>`
    /// column for every phase name seen across the table, in first-seen
    /// order; rows that lack a phase leave its cell empty.
    pub fn row_with_phases(&mut self, cells: Vec<String>, phases: Vec<(String, Counters)>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self.phases.push(phases);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as github-style markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {} — {}\n\n", self.id, self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:>width$} |", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }

    /// Write as CSV under the workspace-root `bench_results/<id>.csv`;
    /// returns the path. The directory is anchored on the crate's manifest
    /// location rather than the current working directory, so results land
    /// in the same place whether invoked as `cargo run -p bench` from the
    /// workspace root, from inside a crate, or via a built binary.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::fs::File::create(&path)?;
        // Union of phase names across rows, first-seen order.
        let mut phase_cols: Vec<&str> = Vec::new();
        for row in &self.phases {
            for (name, _) in row {
                if !phase_cols.contains(&name.as_str()) {
                    phase_cols.push(name);
                }
            }
        }
        let mut header = self.headers.join(",");
        for p in &phase_cols {
            header.push_str(&format!(",phase:{p}"));
        }
        writeln!(f, "{header}")?;
        for (row, phases) in self.rows.iter().zip(&self.phases) {
            let mut line = row.join(",");
            for p in &phase_cols {
                let cell = phases
                    .iter()
                    .find(|(name, _)| name == p)
                    .map(|(_, c)| c.total_ios().to_string())
                    .unwrap_or_default();
                line.push_str(&format!(",{cell}"));
            }
            writeln!(f, "{line}")?;
        }
        Ok(path)
    }
}

/// If `EM_TRACE_DIR` is set, stream a JSONL trace of everything run on
/// `ctx` to `<EM_TRACE_DIR>/<label>.jsonl` (rendered afterwards with the
/// `trace_report` bin). Returns the trace path when tracing was armed; the
/// caller should invoke [`EmContext::finish_trace`] once the measured work
/// is done so per-file summaries and the `End` record are written. Trace
/// failures are reported to stderr and never fail the experiment.
pub fn attach_trace(ctx: &EmContext, label: &str) -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os("EM_TRACE_DIR")?);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[trace] cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{label}.jsonl"));
    match ctx.trace_to_file(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("[trace] cannot open {}: {e}", path.display());
            None
        }
    }
}

/// The directory experiment CSVs are written to: `bench_results/` at the
/// workspace root (two levels above this crate's `Cargo.toml`), regardless
/// of the process working directory.
pub fn results_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(&manifest)
        .join("bench_results")
}

/// Format a float with sensible precision for tables.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{:.0}", x)
    } else if x.abs() >= 10.0 {
        format!("{:.1}", x)
    } else {
        format!("{:.2}", x)
    }
}

/// Emit a table: print + CSV (CSV errors are reported, not fatal).
pub fn emit(table: &Table) {
    table.print();
    match table.write_csv() {
        Ok(p) => println!("\n[csv] {}", p.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_shape() {
        let mut t = Table::new("EX-X", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let md = t.to_markdown();
        assert!(md.contains("EX-X"));
        assert!(md.contains("| 1 |"));
        assert!(md.contains("> hello"));
    }

    #[test]
    fn measure_counts() {
        let ctx = bench_ctx();
        let (r, c, _) = measure(&ctx, || {
            ctx.stats().charge_reads(5);
            42
        });
        assert_eq!(r, 42);
        assert_eq!(c.reads, 5);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(3.456), "3.46");
        assert_eq!(fnum(31.4159), "31.4");
        assert_eq!(fnum(3141.59), "3142");
    }

    #[test]
    fn scale_default_quick() {
        // Unless the env var is set by the test environment.
        if std::env::var("EM_BENCH_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
        assert!(Scale::Full.n() > Scale::Quick.n());
    }
}
