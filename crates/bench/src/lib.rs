//! # bench — the experiment harness regenerating the paper's evaluation
//!
//! The paper's evaluation is its Table 1 (six complexity cells) plus three
//! in-text phenomena (the multi-selection/multi-partition separation, the
//! sublinearity of right-grounded splitters, and the §3 reduction). Every
//! row of DESIGN.md's per-experiment index is a function in
//! [`experiments`] and a binary in `src/bin/`.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p bench --bin all_experiments
//! EM_BENCH_SCALE=full cargo run --release -p bench --bin all_experiments
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod crash_sweep;
pub mod experiments;
pub mod graph;
pub mod harness;
pub mod mem_squeeze;
pub mod obs;
pub mod serve_bench;
pub mod serve_chaos;
pub mod shard_bench;

pub use crash_sweep::{ex_recovery, run_campaign, sweep, Algo, Backend, SweepOutcome};
pub use experiments::*;
pub use graph::{ex_graph, graph_cell, run_graph, GraphKind, GraphOutcome};
pub use harness::{bench_config, bench_ctx, emit, fnum, measure, Scale, Table};
pub use mem_squeeze::{ex_squeeze, run_squeeze, SqueezeOutcome};
pub use obs::{
    chaos_scrape_cell, ex_obs, run_obs, squeeze_scrape_cell, warm_cold_cell, ObsOutcome,
};
pub use serve_bench::ex_serve;
pub use serve_chaos::{chaos_cell, ex_chaos, reopen_after_kill, run_chaos, ChaosOutcome, Schedule};
pub use shard_bench::{ex_shard, fleet_cell, run_shard, single_cell, ShardOutcome};
