//! EX-CHAOS: the serve-chaos campaign.
//!
//! Drives a live [`emserve::QueryServer`] through fault schedules
//! (transient, torn-write, corrupt-read, fatal) crossed with overload
//! (a wave of zero-deadline degraded-mode queries), on both backends, and
//! checks the serving layer's resilience contract:
//!
//! * **no hangs** — every submitted ticket resolves (answer or typed
//!   error) within a generous timeout; a timed-out ticket counts as hung;
//! * **exactness** — every answer not flagged `approx` is bit-identical
//!   to the unfaulted oracle;
//! * **honest bounds** — every `approx` answer's realized rank error is
//!   within its stated [`emserve::QueryAnswer::rank_error`] bound;
//! * **healing** — after the fault schedule is cleared, the server
//!   answers exactly again (breaker probes restore crashed datasets);
//! * **durability** — killing the process mid-refinement leaves a
//!   journaled catalog and splitter index that reopen cleanly and still
//!   answer exactly ([`reopen_after_kill`], directory backend).
//!
//! Like the crash sweep, the campaign reports rather than panics: bad
//! cells fill the `hung`/`mismatch`/`bound-viol` columns and the binary
//! exits nonzero, so one sick cell does not hide the rest.

use std::time::{Duration, Instant};

use emcore::{
    EmConfig, EmContext, EmError, FaultKind, FaultPlan, FaultSpec, RetryPolicy, SplitMix64, Trigger,
};
use emselect::MsOptions;
use emserve::{Catalog, QueryOptions, QueryServer, ServeOptions, SplitterIndex, Ticket};

use crate::crash_sweep::Backend;
use crate::harness::{emit, Scale, Table};

const SEED: u64 = 20140623;

/// How long a ticket may take before the campaign declares it hung. Far
/// above any real batch latency at campaign scale — a trip of this wire
/// means a lost reply, not a slow one.
const HANG_TIMEOUT: Duration = Duration::from_secs(20);

/// The fault schedules the campaign crosses with overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Independent 5% transient read/write failures.
    Transient,
    /// Every 19th write torn (prefix persisted, attempt failed).
    Torn,
    /// Every 31st read bit-flipped in flight. Only meaningful on the
    /// directory backend, whose block checksums detect the damage; the
    /// memory backend would corrupt silently, which no serving layer can
    /// observe.
    Corrupt,
    /// A fatal fault mid-storm: the device crashes, the breaker trips,
    /// and the campaign later heals the device and requires recovery.
    Fatal,
}

impl Schedule {
    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Transient => "transient",
            Schedule::Torn => "torn",
            Schedule::Corrupt => "corrupt",
            Schedule::Fatal => "fatal",
        }
    }

    fn plan(self) -> FaultPlan {
        match self {
            Schedule::Transient => FaultPlan::new(SEED).transient_rate(0.05),
            Schedule::Torn => FaultPlan::new(SEED).with(FaultSpec {
                trigger: Trigger::EveryNth(19),
                kind: FaultKind::TornWrite,
            }),
            Schedule::Corrupt => FaultPlan::new(SEED).with(FaultSpec {
                trigger: Trigger::EveryNth(31),
                kind: FaultKind::CorruptRead,
            }),
            Schedule::Fatal => FaultPlan::new(SEED).fatal_at(40),
        }
    }
}

/// The audited result of one `(schedule, backend, overload)` cell.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Fault schedule driven.
    pub schedule: Schedule,
    /// Backend driven.
    pub backend: Backend,
    /// Whether the overload wave ran.
    pub overload: bool,
    /// Tickets submitted (storm + overload + heal checks).
    pub queries: u64,
    /// Exact answers received (all verified against the oracle).
    pub exact: u64,
    /// Degraded answers received (all verified against their bound).
    pub approx: u64,
    /// Typed errors received (quarantined, unhealthy, or shed).
    pub errors: u64,
    /// Tickets that failed to resolve within [`HANG_TIMEOUT`].
    pub hung: u64,
    /// Exact answers that differed from the unfaulted oracle.
    pub mismatches: u64,
    /// Degraded answers whose realized rank error exceeded their bound.
    pub bound_violations: u64,
    /// Breaker trips observed by the server.
    pub breaker_trips: u64,
    /// Breaker restores (probe or live traffic) observed by the server.
    pub breaker_restores: u64,
    /// Whether the post-storm heal check answered exactly.
    pub healed: bool,
}

impl ChaosOutcome {
    /// No hung ticket, no oracle mismatch, no dishonest bound, healed.
    pub fn clean(&self) -> bool {
        self.hung == 0 && self.mismatches == 0 && self.bound_violations == 0 && self.healed
    }
}

/// Collect one ticket, auditing it against the oracle. The data is a
/// shuffled permutation of `0..n`, so the element of rank `r` is `r - 1`
/// and the realized rank of a returned value `v` is `v + 1`.
fn audit(ticket: Ticket<u64>, ranks: &[u64], o: &mut ChaosOutcome) {
    match ticket.wait_timeout(HANG_TIMEOUT) {
        Ok(a) if a.approx => {
            o.approx += 1;
            for (&r, &v) in ranks.iter().zip(&a.values) {
                if (v + 1).abs_diff(r) > a.rank_error {
                    o.bound_violations += 1;
                }
            }
        }
        Ok(a) => {
            o.exact += 1;
            let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
            if a.values != want {
                o.mismatches += 1;
            }
        }
        Err(EmError::DeadlineExceeded { .. }) => o.hung += 1,
        Err(_) => o.errors += 1,
    }
}

/// Drive one `(schedule, backend, overload)` cell: warm the index, run
/// two storm waves of coalesced batches under the fault schedule (healing
/// the device between waves for [`Schedule::Fatal`]), optionally an
/// overload wave of zero-deadline degraded queries, then clear the
/// schedule and require exact answers again.
pub fn chaos_cell(schedule: Schedule, backend: Backend, overload: bool, n: u64) -> ChaosOutcome {
    let mut o = ChaosOutcome {
        schedule,
        backend,
        overload,
        queries: 0,
        exact: 0,
        approx: 0,
        errors: 0,
        hung: 0,
        mismatches: 0,
        bound_violations: 0,
        breaker_trips: 0,
        breaker_restores: 0,
        healed: false,
    };
    let ctx = backend.ctx(EmConfig::tiny());
    ctx.set_retry_policy(RetryPolicy::retries(4));
    let mut data: Vec<u64> = (0..n).collect();
    SplitMix64::new(SEED).shuffle(&mut data);

    let mut server = QueryServer::<u64>::start(
        &ctx,
        ServeOptions::builder()
            .breaker_threshold(2)
            .probe_cooldown(Duration::from_millis(5))
            .build(),
    )
    .expect("server start");
    let client = server.client().expect("server running");
    client.register("ds", data).expect("register");

    // Warm the skeleton with one clean refining batch, so degraded
    // answers exist during the storm.
    let warm: Vec<u64> = (1..8).map(|i| i * n / 8).collect();
    client
        .query("ds", warm)
        .expect("submit warm")
        .wait()
        .expect("warm answer");

    let plan = schedule.plan();
    ctx.install_fault_plan(plan.clone());

    // Two waves of 24 single-rank queries in pre-coalesced batches of 8.
    let submit_wave = |wave: u64, o: &mut ChaosOutcome| {
        let queries: Vec<Vec<u64>> = (0..24u64)
            .map(|i| vec![1 + (i * 739 + wave * 97) % n])
            .collect();
        for chunk in queries.chunks(8) {
            let tickets = client
                .submit_batch("ds", chunk.to_vec())
                .expect("submit storm batch");
            for (ranks, t) in chunk.iter().zip(tickets) {
                o.queries += 1;
                audit(t, ranks, o);
            }
        }
    };
    submit_wave(0, &mut o);

    if schedule == Schedule::Fatal {
        // The device comes back; the breaker must probe its way closed.
        plan.clear_crash();
        plan.clear_specs();
        let t0 = Instant::now();
        while let Ok(t) = client.query("ds", vec![n / 2]) {
            match t.wait_timeout(HANG_TIMEOUT) {
                Ok(_) => break,
                Err(_) if t0.elapsed() < Duration::from_secs(10) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break, // healed stays false via the check below
            }
        }
    }

    if overload {
        // A rush of already-expired queries in degraded mode: each must
        // resolve instantly with a skeleton answer and an honest bound.
        let rush = QueryOptions {
            deadline: Some(Duration::ZERO),
            degraded: Some(true),
        };
        let queries: Vec<(Vec<u64>, QueryOptions)> = (0..16u64)
            .map(|i| (vec![1 + (i * 211 + 5) % n], rush))
            .collect();
        let ranks: Vec<Vec<u64>> = queries.iter().map(|(r, _)| r.clone()).collect();
        let tickets = client
            .submit_batch_with("ds", queries)
            .expect("submit overload batch");
        for (ranks, t) in ranks.iter().zip(tickets) {
            o.queries += 1;
            audit(t, ranks, &mut o);
        }
    }

    submit_wave(1, &mut o);

    // Heal: clear the schedule entirely and require exact service.
    ctx.clear_fault_plan();
    let heal_ranks: Vec<u64> = vec![1, n / 3, n];
    let t0 = Instant::now();
    loop {
        let t = client.query("ds", heal_ranks.clone()).expect("submit heal");
        o.queries += 1;
        let before = (o.exact, o.mismatches);
        audit(t, &heal_ranks, &mut o);
        if o.exact > before.0 {
            o.healed = o.mismatches == before.1;
            break;
        }
        if t0.elapsed() > Duration::from_secs(10) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let report = client.report().expect("report");
    o.breaker_trips = report.breaker_trips;
    o.breaker_restores = report.breaker_restores;
    drop(client);
    server.shutdown().expect("clean shutdown");
    o
}

/// Kill the server mid-refinement (a fatal fault at device attempt
/// `crash_at` of a refining query, never healed) and verify that a fresh
/// context over the same directory reopens the journaled catalog and
/// splitter index cleanly and answers exactly. Returns `true` on success.
pub fn reopen_after_kill(crash_at: u64) -> bool {
    let dir = std::env::temp_dir().join(format!(
        "em-serve-chaos-reopen-{}-{crash_at}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 2000u64;
    let mut data: Vec<u64> = (0..n).collect();
    SplitMix64::new(SEED).shuffle(&mut data);

    // --- process 1: register, warm, then die mid-refinement ---
    {
        let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).expect("open store");
        let mut server =
            QueryServer::<u64>::start(&ctx, ServeOptions::default()).expect("server start");
        let client = server.client().expect("server running");
        client.register("ds", data).expect("register");
        client
            .query("ds", vec![n / 2])
            .expect("submit warm")
            .wait()
            .expect("warm answer");
        // Crash partway through the next refining batch and stay dead.
        ctx.install_fault_plan(FaultPlan::new(SEED).fatal_at(crash_at));
        let t = client
            .query("ds", vec![n / 4, 3 * n / 4])
            .expect("submit doomed");
        // The ticket must resolve (answer if the crash landed after the
        // batch, typed error otherwise) — never hang.
        if t.wait_timeout(HANG_TIMEOUT).is_err() {
            // expected for most crash points
        }
        drop(client);
        let _ = server.shutdown();
        // ctx dropped crashed: whatever the journals hold, holds.
    }

    // --- process 2: reopen and demand exact answers ---
    let ok = (|| -> Result<bool, EmError> {
        let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir)?;
        let cat = Catalog::open(&ctx)?;
        let Some(entry) = cat.entry("ds") else {
            return Ok(false);
        };
        if entry.len != n {
            return Ok(false);
        }
        let file = cat.open_dataset::<u64>("ds")?;
        let mut idx = SplitterIndex::open(&ctx, "ds", file)?;
        let ranks = vec![1, n / 4, n / 2, 3 * n / 4, n];
        let (got, _) = idx.answer(&ranks, MsOptions::default(), true)?;
        let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
        Ok(got == want)
    })()
    .unwrap_or(false);
    let _ = std::fs::remove_dir_all(&dir);
    ok
}

/// EX-CHAOS: fault schedules × overload × backends against a live server,
/// plus the mid-refinement kill-and-reopen audit.
pub fn ex_chaos(scale: Scale) -> Table {
    let n = match scale {
        Scale::Quick => 3000u64,
        Scale::Full => 20_000u64,
    };
    let mut t = Table::new(
        "EX-CHAOS",
        &format!("serve-chaos campaign: fault schedules × overload against a live server  [N={n}]"),
        &[
            "schedule",
            "backend",
            "overload",
            "queries",
            "exact",
            "approx",
            "errors",
            "hung",
            "mismatch",
            "bound-viol",
            "trips",
            "restores",
            "healed",
        ],
    );
    let mut sick = 0u64;
    for schedule in [
        Schedule::Transient,
        Schedule::Torn,
        Schedule::Corrupt,
        Schedule::Fatal,
    ] {
        for backend in [Backend::Memory, Backend::Disk] {
            if schedule == Schedule::Corrupt && backend == Backend::Memory {
                continue; // silent bit flips: undetectable without checksums
            }
            for overload in [false, true] {
                let o = chaos_cell(schedule, backend, overload, n);
                if !o.clean() {
                    sick += 1;
                    eprintln!("[EX-CHAOS] sick cell: {o:?}");
                }
                t.row(vec![
                    o.schedule.name().into(),
                    o.backend.name().into(),
                    if o.overload { "yes" } else { "no" }.into(),
                    o.queries.to_string(),
                    o.exact.to_string(),
                    o.approx.to_string(),
                    o.errors.to_string(),
                    o.hung.to_string(),
                    o.mismatches.to_string(),
                    o.bound_violations.to_string(),
                    o.breaker_trips.to_string(),
                    o.breaker_restores.to_string(),
                    if o.healed { "yes" } else { "NO" }.into(),
                ]);
            }
        }
    }
    let mut reopen_ok = 0u64;
    let crash_points = [2u64, 6, 10, 14, 18];
    for &p in &crash_points {
        if reopen_after_kill(p) {
            reopen_ok += 1;
        } else {
            sick += 1;
            eprintln!("[EX-CHAOS] reopen after mid-refinement kill @{p} failed");
        }
    }
    t.note("every ticket must resolve within the hang timeout; exact answers are compared bit-for-bit against the unfaulted oracle; approx answers must honor their stated rank-error bound; after the schedule clears, the server must answer exactly again");
    t.note(format!(
        "mid-refinement kill-and-reopen audit (disk): {reopen_ok}/{} crash points reopened cleanly and answered exactly",
        crash_points.len()
    ));
    t.note("corrupt × memory is skipped: the memory backend has no block checksums, so an in-flight bit flip is silent — detection is a storage property, not a serving one");
    if sick > 0 {
        t.note(format!("SICK CELLS: {sick} (see stderr)"));
    }
    t
}

/// Run the campaign, emit the table, and report whether every cell was
/// clean (used by the `serve_chaos` binary and the CI smoke job).
pub fn run_chaos(scale: Scale) -> (Table, bool) {
    let t = ex_chaos(scale);
    emit(&t);
    let clean = !t.notes.iter().any(|s| s.starts_with("SICK CELLS"));
    (t, clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_overload_cell_memory_is_clean() {
        let o = chaos_cell(Schedule::Transient, Backend::Memory, true, 1200);
        assert!(o.clean(), "{o:?}");
        assert!(o.approx >= 16, "overload wave must degrade, {o:?}");
        assert_eq!(o.queries, o.exact + o.approx + o.errors, "{o:?}");
    }

    #[test]
    fn fatal_cell_disk_trips_heals_and_stays_clean() {
        let o = chaos_cell(Schedule::Fatal, Backend::Disk, false, 1200);
        assert!(o.clean(), "{o:?}");
        assert!(o.breaker_trips >= 1, "fatal storm must trip, {o:?}");
        assert!(o.errors >= 1, "crashed batches must fail typed, {o:?}");
    }

    #[test]
    fn reopen_after_mid_refinement_kill_is_exact() {
        assert!(reopen_after_kill(6));
    }
}
