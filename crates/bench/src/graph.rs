//! EX-GRAPH: the semi-external graph campaign.
//!
//! For each graph family (R-MAT power-law, 2-D grid) and each backend
//! (memory, disk) the campaign builds the canonical edge file, runs the
//! checkpointed label-propagation clustering, and checks the subsystem's
//! determinism and recovery contracts:
//!
//! 1. **Digest invariance** — the label digest is bit-identical across
//!    worker counts (1 vs 4) and across the memory and disk backends for
//!    the same generated graph;
//! 2. **Bounded crash rework** — a fatal fault injected mid-clustering
//!    resumes in exactly one crash→resume cycle, reproduces the fault-free
//!    digest, and both `redone_ios` and the extra billed I/Os stay within
//!    the largest completed work unit (≤ one round, by
//!    [`emgraph::ClusterManifest::max_unit_ios`]);
//! 3. **No leaks** — after clustering, the context holds only the input,
//!    the canonical graph, and the label file (no orphaned blocks or
//!    journal temp files);
//! 4. **Integration** — the clustering registers on a
//!    [`emserve::QueryServer`] (rank-`p` answers the cluster of the
//!    `p`-th vertex; the cluster-size dataset sums back to the vertex
//!    count), and degree/cluster bucketing realizes the exact near-even
//!    quantile cuts.
//!
//! Violations increment the `failures` column — the campaign reports
//! rather than panics, and the `graph_bench` binary exits nonzero when
//! any cell is sick (the CI graph-smoke gate).

use emcore::{run_recoverable, EmConfig, EmContext, EmError, FaultPlan};
use emgraph::{
    build_graph, cluster_buckets, degree_buckets, edges_from_pairs, labels_digest,
    register_cluster_sizes, register_clustering, BuildOptions, ClusterJob, ClusterManifest,
    ClusterOptions, Clustering, Graph,
};
use emserve::{QueryServer, QueryService, ServeOptions};
use workloads::{grid_edges, rmat_edges};

use crate::crash_sweep::Backend;
use crate::harness::{emit, Scale, Table};

const SEED: u64 = 20140623;

/// The graph families the campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Seeded R-MAT: power-law degrees, duplicate edges, self-loops —
    /// the canonicalization stress case.
    Rmat,
    /// 2-D grid: bounded degree, bipartite (label propagation never
    /// converges, the round budget is the stop) — the streaming case.
    Grid,
}

impl GraphKind {
    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Rmat => "rmat",
            GraphKind::Grid => "grid",
        }
    }

    /// The raw edge pairs for this family at `scale`.
    pub fn pairs(self, scale: Scale) -> Vec<(u64, u64)> {
        match (self, scale) {
            (GraphKind::Rmat, Scale::Quick) => rmat_edges(9, 4_000, SEED),
            (GraphKind::Rmat, Scale::Full) => rmat_edges(13, 60_000, SEED),
            (GraphKind::Grid, Scale::Quick) => grid_edges(24, 24),
            (GraphKind::Grid, Scale::Full) => grid_edges(128, 128),
        }
    }
}

/// The EM configuration every graph cell runs on: the tiny geometry
/// (`M = 256`, `B = 16`) keeps clustering multi-unit at campaign `N`.
fn graph_config(workers: usize) -> EmConfig {
    EmConfig::builder()
        .mem(256)
        .block(16)
        .workers(workers)
        .build()
        .expect("valid bench config")
}

fn cluster_opts() -> ClusterOptions {
    ClusterOptions {
        rounds: 6,
        max_cluster_size: 0,
    }
}

/// One completed (possibly crash-and-resumed) clustering of a generated
/// graph.
struct RunOut {
    vertices: u64,
    edges: u64,
    digest: u64,
    clusters: u64,
    rounds_run: u32,
    total_ios: u64,
    redone_ios: u64,
    attempts: u64,
    max_unit_ios: u64,
    resumes: u64,
    orphans: u64,
}

/// Orphan audit: files the context still tracks that are neither the raw
/// input, the canonical graph, nor the output labels, plus leftover
/// journal temp files on disk.
fn count_orphans(ctx: &EmContext, live: &[u64]) -> u64 {
    let mut orphans = ctx
        .list_file_ids()
        .expect("list ids")
        .into_iter()
        .filter(|id| !live.contains(id))
        .count() as u64;
    if let Some(dir) = ctx.backing_dir() {
        for entry in std::fs::read_dir(dir).expect("read backing dir") {
            let name = entry.expect("dir entry").file_name();
            if name.to_string_lossy().ends_with(".journal.tmp") {
                orphans += 1;
            }
        }
    }
    orphans
}

/// Build + cluster `kind` once on a fresh context. The fault plan is
/// installed after the (non-recoverable) build, so `crash_at` indexes
/// device attempts of the clustering itself; crashes resume until
/// completion. `Err` carries a description of any non-crash failure.
fn run_once(
    kind: GraphKind,
    backend: Backend,
    workers: usize,
    scale: Scale,
    crash_at: Option<u64>,
) -> Result<RunOut, String> {
    let ctx = backend.ctx(graph_config(workers));
    let raw = edges_from_pairs(&ctx, &kind.pairs(scale)).map_err(|e| format!("pairs: {e}"))?;
    let g = build_graph(&ctx, &raw, &BuildOptions::default()).map_err(|e| format!("build: {e}"))?;

    let mut plan = FaultPlan::new(SEED);
    if let Some(i) = crash_at {
        plan = plan.fatal_at(i);
    }
    ctx.install_fault_plan(plan.clone());
    let before = ctx.stats().snapshot();
    let mut resumes = 0u64;
    let mut manifest = ClusterManifest::new(&ctx, &cluster_opts());
    let c = loop {
        match run_recoverable(&ctx, &mut ClusterJob::new(&g, &mut manifest)) {
            Ok(c) => break c,
            Err(EmError::Crashed) => {
                resumes += 1;
                if resumes > 50 {
                    return Err("crash loop did not terminate".into());
                }
                plan.clear_crash();
            }
            Err(e) => return Err(format!("unexpected error: {e}")),
        }
    };
    let spent = ctx.stats().snapshot().since(&before);
    ctx.clear_fault_plan();

    let digest = ctx
        .oracle(|| labels_digest(&c.labels))
        .map_err(|e| format!("digest: {e}"))?;
    let live = [raw.id(), g.edges().id(), g.offsets().id(), c.labels.id()];
    let orphans = count_orphans(&ctx, &live);

    // Integration checks ride on the fault-free run only — a crashed run
    // has already proven what it set out to prove.
    if crash_at.is_none() {
        serve_check(&ctx, &c, g.vertices())?;
        bucket_check(&g, &c)?;
    }

    Ok(RunOut {
        vertices: g.vertices(),
        edges: g.num_edges(),
        digest,
        clusters: c.clusters,
        rounds_run: c.rounds_run,
        total_ios: spent.total_ios(),
        redone_ios: spent.redone_ios,
        attempts: plan.attempts(),
        max_unit_ios: manifest.max_unit_ios(),
        resumes,
        orphans,
    })
}

/// Serve integration: the clustering registers as a rank-queryable
/// dataset and the size distribution sums back to the vertex count.
fn serve_check(ctx: &EmContext, c: &Clustering, vertices: u64) -> Result<(), String> {
    let err = |e| format!("serve: {e}");
    let mut server = QueryServer::<u64>::start(ctx, ServeOptions::default()).map_err(err)?;
    let n = register_clustering(&server, "graph-vc", c).map_err(err)?;
    if n != vertices {
        return Err(format!(
            "serve: registered {n} labels for {vertices} vertices"
        ));
    }
    let a = server
        .rank("graph-vc", vec![1, n])
        .map_err(err)?
        .wait()
        .map_err(err)?;
    if a.values[0] > a.values[1] {
        return Err("serve: rank answers out of order".into());
    }
    let k = register_cluster_sizes(&server, "graph-cs", &c.labels).map_err(err)?;
    if k != c.clusters {
        return Err(format!(
            "serve: {k} size records for {} clusters",
            c.clusters
        ));
    }
    let sizes = server
        .rank("graph-cs", (1..=k).collect())
        .map_err(err)?
        .wait()
        .map_err(err)?;
    let total: u64 = sizes.values.iter().sum();
    if total != vertices {
        return Err(format!(
            "serve: cluster sizes sum to {total}, not {vertices}"
        ));
    }
    server.shutdown().map_err(err).map(|_| ())
}

/// Bucketing integration: degree and cluster bucketing both realize the
/// exact near-even quantile cuts of the vertex set.
fn bucket_check(g: &Graph, c: &Clustering) -> Result<(), String> {
    let n = g.vertices();
    let k = 8u64.min(n.max(1));
    let want: Vec<u64> = (1..=k).map(|i| i * n / k - (i - 1) * n / k).collect();
    let by_degree = degree_buckets(g, k).map_err(|e| format!("degree buckets: {e}"))?;
    if by_degree.sizes() != want {
        return Err(format!(
            "degree buckets {:?} miss the quantile cuts {want:?}",
            by_degree.sizes()
        ));
    }
    let by_cluster = cluster_buckets(&c.labels, k).map_err(|e| format!("cluster buckets: {e}"))?;
    if by_cluster.sizes() != want {
        return Err(format!(
            "cluster buckets {:?} miss the quantile cuts {want:?}",
            by_cluster.sizes()
        ));
    }
    Ok(())
}

/// The aggregated result of one `(kind, backend)` campaign cell.
#[derive(Debug)]
pub struct GraphOutcome {
    /// Graph family.
    pub kind: GraphKind,
    /// Backend under test.
    pub backend: Backend,
    /// Vertex-id space of the canonical graph.
    pub vertices: u64,
    /// Canonical (deduplicated, symmetrized) edge count.
    pub edges: u64,
    /// Billed clustering I/Os of the fault-free run.
    pub clean_ios: u64,
    /// Rounds the fault-free run completed.
    pub rounds_run: u32,
    /// Clusters found.
    pub clusters: u64,
    /// FNV digest of the fault-free label file.
    pub digest: u64,
    /// Largest completed work unit over all runs, in I/Os.
    pub max_unit_ios: u64,
    /// Crash points injected.
    pub crash_points: u64,
    /// Largest observed `redone_ios` over all crash points.
    pub max_redone: u64,
    /// Checks violated in this cell.
    pub failures: u64,
}

/// Run one `(kind, backend)` cell: a fault-free baseline (with serve and
/// bucket integration checks), a 4-worker run that must reproduce the
/// baseline digest, and a crash at three points across the clustering's
/// attempt space, each resumed under the recovery invariants.
/// `expect_digest` pins the digest of a sibling cell (the cross-backend
/// invariance check).
pub fn graph_cell(
    kind: GraphKind,
    backend: Backend,
    scale: Scale,
    expect_digest: Option<u64>,
) -> GraphOutcome {
    let mut failures = 0u64;
    let mut fail = |msg: String| {
        eprintln!("[EX-GRAPH] {}/{}: {msg}", kind.name(), backend.name());
        failures += 1;
    };

    let clean = match run_once(kind, backend, 1, scale, None) {
        Ok(run) => run,
        Err(e) => {
            fail(format!("fault-free run: {e}"));
            return GraphOutcome {
                kind,
                backend,
                vertices: 0,
                edges: 0,
                clean_ios: 0,
                rounds_run: 0,
                clusters: 0,
                digest: 0,
                max_unit_ios: 0,
                crash_points: 0,
                max_redone: 0,
                failures,
            };
        }
    };
    if clean.resumes != 0 {
        fail(format!("{} resumes in the fault-free run", clean.resumes));
    }
    if clean.orphans != 0 {
        fail(format!(
            "{} orphaned files after the fault-free run",
            clean.orphans
        ));
    }
    if let Some(want) = expect_digest {
        if clean.digest != want {
            fail(format!(
                "digest {:016x} differs across backends from {want:016x}",
                clean.digest
            ));
        }
    }

    // Worker invariance: same graph, 4 workers, same digest.
    match run_once(kind, backend, 4, scale, None) {
        Err(e) => fail(format!("4-worker run: {e}")),
        Ok(run) => {
            if run.digest != clean.digest {
                fail(format!(
                    "digest {:016x} differs across worker counts from {:016x}",
                    run.digest, clean.digest
                ));
            }
        }
    }

    // Crash recovery: a fatal fault early, mid, and late in the
    // clustering's device-attempt space.
    let mut max_unit = clean.max_unit_ios;
    let mut max_redone = 0u64;
    let mut crash_points = 0u64;
    for crash_at in [
        clean.attempts / 5,
        clean.attempts / 2,
        (clean.attempts * 4 / 5).min(clean.attempts.saturating_sub(1)),
    ] {
        crash_points += 1;
        match run_once(kind, backend, 1, scale, Some(crash_at)) {
            Err(e) => fail(format!("crash @{crash_at}: {e}")),
            Ok(run) => {
                max_unit = max_unit.max(run.max_unit_ios);
                max_redone = max_redone.max(run.redone_ios);
                let mut bad = Vec::new();
                if run.digest != clean.digest {
                    bad.push("output differs from fault-free run".to_string());
                }
                if run.resumes != 1 {
                    bad.push(format!("{} resumes (expected 1)", run.resumes));
                }
                let rework = run.total_ios.saturating_sub(clean.total_ios);
                if rework > run.max_unit_ios {
                    bad.push(format!(
                        "rework {rework} exceeds one-round bound {}",
                        run.max_unit_ios
                    ));
                }
                if run.redone_ios > run.max_unit_ios {
                    bad.push(format!(
                        "redone_ios {} exceeds one-round bound {}",
                        run.redone_ios, run.max_unit_ios
                    ));
                }
                if run.orphans > 0 {
                    bad.push(format!("{} orphaned files", run.orphans));
                }
                if !bad.is_empty() {
                    fail(format!("crash @{crash_at}: {}", bad.join("; ")));
                }
            }
        }
    }

    GraphOutcome {
        kind,
        backend,
        vertices: clean.vertices,
        edges: clean.edges,
        clean_ios: clean.total_ios,
        rounds_run: clean.rounds_run,
        clusters: clean.clusters,
        digest: clean.digest,
        max_unit_ios: max_unit,
        crash_points,
        max_redone,
        failures,
    }
}

/// EX-GRAPH: sweep both graph families on both backends and tabulate the
/// determinism, recovery, and integration checks.
pub fn ex_graph(scale: Scale) -> Table {
    let mut t = Table::new(
        "EX-GRAPH",
        "semi-external graph campaign: build, cluster, crash, serve",
        &[
            "graph",
            "backend",
            "V",
            "E",
            "clean I/Os",
            "rounds",
            "clusters",
            "digest",
            "max unit I/Os",
            "crash points",
            "max redone",
            "failures",
        ],
    );
    for kind in [GraphKind::Rmat, GraphKind::Grid] {
        let mut family_digest = None;
        for backend in [Backend::Memory, Backend::Disk] {
            let o = graph_cell(kind, backend, scale, family_digest);
            family_digest = family_digest.or(Some(o.digest));
            t.row(vec![
                o.kind.name().into(),
                o.backend.name().into(),
                o.vertices.to_string(),
                o.edges.to_string(),
                o.clean_ios.to_string(),
                o.rounds_run.to_string(),
                o.clusters.to_string(),
                format!("{:016x}", o.digest),
                o.max_unit_ios.to_string(),
                o.crash_points.to_string(),
                o.max_redone.to_string(),
                o.failures.to_string(),
            ]);
        }
    }
    t.note("per cell: label digest identical across 1 and 4 workers and across the memory/disk backends; three mid-clustering crashes each resume in one cycle with rework and redone_ios ≤ the largest completed round; no orphaned files; clustering registers on the serve layer and bucketing hits the exact near-even quantile cuts");
    t.note("grid graphs are bipartite, so synchronous label propagation runs to the round budget by design; R-MAT converges or not depending on scale — either way the digest is the contract");
    t
}

/// Run the campaign, emit the table, and report whether every cell was
/// clean (used by the `graph_bench` binary and the CI graph-smoke gate).
pub fn run_graph(scale: Scale) -> (Table, bool) {
    let t = ex_graph(scale);
    emit(&t);
    let clean = t
        .rows
        .iter()
        .all(|row| row.last().map(String::as_str) == Some("0"));
    (t, clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_memory_cell_is_clean() {
        let o = graph_cell(GraphKind::Rmat, Backend::Memory, Scale::Quick, None);
        assert_eq!(o.failures, 0, "{o:?}");
        assert!(o.vertices > 0 && o.edges > 0);
        assert_eq!(o.crash_points, 3);
        assert!(o.max_redone <= o.max_unit_ios);
    }

    #[test]
    fn grid_disk_cell_matches_memory_digest() {
        let mem = graph_cell(GraphKind::Grid, Backend::Memory, Scale::Quick, None);
        assert_eq!(mem.failures, 0, "{mem:?}");
        let disk = graph_cell(
            GraphKind::Grid,
            Backend::Disk,
            Scale::Quick,
            Some(mem.digest),
        );
        assert_eq!(disk.failures, 0, "{disk:?}");
        assert_eq!(disk.digest, mem.digest);
        // Bipartite grid: the round budget is the stop.
        assert_eq!(mem.rounds_run, 6);
    }
}
