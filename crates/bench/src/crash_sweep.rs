//! EX-RECOVERY: the crash-sweep campaign.
//!
//! For each recoverable algorithm (external sort, multi-selection,
//! approximate partitioning) and each backend (memory, disk):
//!
//! 1. run fault-free to learn the device-attempt count, billed I/Os, and
//!    the output digest;
//! 2. inject a fatal fault at every device attempt index (stride-sampled
//!    once the count exceeds the points budget), resume after each crash,
//!    and check the **recovery invariants**: the resumed output equals the
//!    fault-free output exactly, total billed I/Os exceed the fault-free
//!    cost by at most one work unit ([`emsort::SortManifest::max_unit_ios`]
//!    and friends), `redone_ios` is within the same unit bound, and the
//!    backing directory holds no orphaned block files or journal temp
//!    files afterwards.
//!
//! Any violated invariant increments the `failures` column — the campaign
//! reports rather than panics, so one bad crash point does not hide the
//! rest of the sweep. The library tests (`tests/fault_recovery.rs`) run
//! the same driver exhaustively at small `N` and assert zero failures.

use apsplit::{PartitionJob, PartitionManifest, ProblemSpec};
use emcore::{run_recoverable, EmConfig, EmContext, EmError, EmFile, FaultPlan};
use emselect::{MsOptions, MultiSelectJob, MultiSelectManifest, Partition};
use emsort::{SortJob, SortManifest};
use workloads::{materialize, Workload};

use crate::harness::{emit, fnum, Scale, Table};

const SEED: u64 = 20140623;

/// The recoverable algorithms the campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Recoverable external merge sort ([`emsort::SortJob`]).
    Sort,
    /// Recoverable multi-selection ([`emselect::MultiSelectJob`]).
    MultiSelect,
    /// Recoverable approximate partitioning ([`apsplit::PartitionJob`]).
    Partition,
}

impl Algo {
    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Sort => "sort",
            Algo::MultiSelect => "multi-select",
            Algo::Partition => "partitioning",
        }
    }
}

/// Backing store under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Host-RAM blocks.
    Memory,
    /// Real files in a temporary directory (checksummed blocks, real
    /// orphans).
    Disk,
}

impl Backend {
    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Memory => "memory",
            Backend::Disk => "disk",
        }
    }

    pub(crate) fn ctx(self, config: EmConfig) -> EmContext {
        match self {
            Backend::Memory => EmContext::new_in_memory(config),
            Backend::Disk => EmContext::new_on_disk_temp(config).expect("tempdir"),
        }
    }
}

/// One completed (possibly crash-and-resumed) run of an algorithm.
struct RunOut {
    /// FNV digest of the full output contents, in order.
    digest: u64,
    /// Billed block I/Os of the algorithm (materialisation excluded).
    total_ios: u64,
    /// `Counters::redone_ios` delta.
    redone_ios: u64,
    /// Device attempts consumed (the crash-index space).
    attempts: u64,
    /// The manifest's largest completed work unit, in I/Os.
    max_unit_ios: u64,
    /// Crash→resume cycles needed.
    resumes: u64,
    /// Orphaned `em-*.bin` / `*.journal.tmp` files left behind (disk).
    orphans: u64,
}

fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

fn digest_file(f: &EmFile<u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut r = f.reader().expect("oracle reader");
    while let Some(x) = r.next().expect("oracle read") {
        h = fnv(h, x);
    }
    h
}

fn digest_parts(parts: &[Partition<u64>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in parts {
        h = fnv(h, 0xDEAD); // partition boundary marker
        for x in p.to_vec().expect("oracle read") {
            h = fnv(h, x);
        }
    }
    h
}

/// Orphan audit: block files on disk that belong to neither the input nor
/// the output, plus leftover journal temp files. Zero on the memory
/// backend by construction.
fn count_orphans(ctx: &EmContext, live: &[u64]) -> u64 {
    let mut orphans = ctx
        .list_file_ids()
        .expect("list ids")
        .into_iter()
        .filter(|id| !live.contains(id))
        .count() as u64;
    if let Some(dir) = ctx.backing_dir() {
        for entry in std::fs::read_dir(dir).expect("read backing dir") {
            let name = entry.expect("dir entry").file_name();
            if name.to_string_lossy().ends_with(".journal.tmp") {
                orphans += 1;
            }
        }
    }
    orphans
}

/// Selection ranks used by the multi-select case: `k` evenly spaced.
fn select_ranks(n: u64) -> Vec<u64> {
    (1..=12u64).map(|i| i * n / 12).filter(|&r| r > 0).collect()
}

/// Problem spec used by the partitioning case: a two-sided instance that
/// exercises both grounded fronts and near-even tails.
fn partition_spec(n: u64) -> ProblemSpec {
    ProblemSpec::new(n, 8, n / 10, n / 2).expect("feasible spec")
}

/// Run `algo` once on a fresh context, crashing at device attempt
/// `crash_at` (if any) and resuming until completion. `Err` carries a
/// description of the non-crash failure, if one occurs.
fn run_algo(
    algo: Algo,
    backend: Backend,
    config: EmConfig,
    n: u64,
    crash_at: Option<u64>,
) -> Result<RunOut, String> {
    let ctx = backend.ctx(config);
    let input = ctx
        .stats()
        .paused(|| materialize(&ctx, Workload::UniformPerm, n, SEED))
        .map_err(|e| format!("materialize: {e}"))?;
    let mut plan = FaultPlan::new(SEED);
    if let Some(i) = crash_at {
        plan = plan.fatal_at(i);
    }
    ctx.install_fault_plan(plan.clone());
    let before = ctx.stats().snapshot();
    let mut resumes = 0u64;

    macro_rules! drive {
        ($resume:expr) => {
            loop {
                match $resume {
                    Ok(out) => break out,
                    Err(EmError::Crashed) => {
                        resumes += 1;
                        if resumes > 50 {
                            return Err("crash loop did not terminate".into());
                        }
                        plan.clear_crash();
                    }
                    Err(e) => return Err(format!("unexpected error: {e}")),
                }
            }
        };
    }

    let (digest, max_unit_ios, live) = match algo {
        Algo::Sort => {
            let mut m = SortManifest::new(&ctx, None);
            let sorted = drive!(run_recoverable(&ctx, &mut SortJob::new(&input, &mut m)));
            let d = ctx.oracle(|| digest_file(&sorted));
            (d, m.max_unit_ios(), vec![input.id(), sorted.id()])
        }
        Algo::MultiSelect => {
            // A small base-case capacity forces several groups, so the
            // checkpoint machinery is exercised even at sweep-sized N.
            let opts = MsOptions {
                base_capacity_override: Some(4),
                ..MsOptions::default()
            };
            let mut m = MultiSelectManifest::new(&input, &select_ranks(n), opts)
                .map_err(|e| format!("manifest: {e}"))?;
            let found = drive!(run_recoverable(
                &ctx,
                &mut MultiSelectJob::new(&input, &mut m)
            ));
            let mut d = 0xcbf2_9ce4_8422_2325u64;
            for x in &found {
                d = fnv(d, *x);
            }
            (d, m.max_unit_ios(), vec![input.id()])
        }
        Algo::Partition => {
            let spec = partition_spec(n);
            let mut m =
                PartitionManifest::new(&input, &spec).map_err(|e| format!("manifest: {e}"))?;
            let parts = drive!(run_recoverable(
                &ctx,
                &mut PartitionJob::new(&input, &mut m)
            ));
            let d = ctx.oracle(|| digest_parts(&parts));
            let mut live = vec![input.id()];
            for p in &parts {
                live.extend(p.segments().iter().map(|s| s.id()));
            }
            (d, m.max_unit_ios(), live)
        }
    };

    let spent = ctx.stats().snapshot().since(&before);
    Ok(RunOut {
        digest,
        total_ios: spent.total_ios(),
        redone_ios: spent.redone_ios,
        attempts: plan.attempts(),
        max_unit_ios,
        resumes,
        orphans: count_orphans(&ctx, &live),
    })
}

/// The aggregated result of sweeping one `(algo, backend)` cell.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Algorithm swept.
    pub algo: Algo,
    /// Backend swept.
    pub backend: Backend,
    /// Input size.
    pub n: u64,
    /// Billed I/Os of the fault-free run.
    pub clean_ios: u64,
    /// Device attempts of the fault-free run (the crash-index space).
    pub clean_attempts: u64,
    /// Crash points actually injected.
    pub points: u64,
    /// Stride between injected points (1 = exhaustive).
    pub stride: u64,
    /// Largest observed single work unit, in I/Os.
    pub max_unit_ios: u64,
    /// Largest observed rework (`total - clean`) over all crash points.
    pub max_rework: u64,
    /// Mean rework over all crash points.
    pub mean_rework: f64,
    /// Crash points violating any recovery invariant.
    pub failures: u64,
}

/// Sweep one `(algo, backend)` cell: fault-free baseline, then a fatal
/// fault at every `stride`-th device attempt with full invariant checks.
/// `points_budget` bounds the number of injected crash points (use
/// `u64::MAX` for an exhaustive sweep).
pub fn sweep(algo: Algo, backend: Backend, n: u64, points_budget: u64) -> SweepOutcome {
    // The tiny configuration keeps every algorithm multi-unit at sweep
    // feasible N.
    let config = EmConfig::tiny();
    let clean = run_algo(algo, backend, config, n, None).expect("fault-free run");
    assert_eq!(clean.resumes, 0);

    let stride = clean.attempts.div_ceil(points_budget.max(1)).max(1);
    let mut points = 0u64;
    let mut failures = 0u64;
    let mut max_rework = 0u64;
    let mut rework_sum = 0u64;
    let mut max_unit = clean.max_unit_ios;

    let mut crash_at = 0u64;
    while crash_at < clean.attempts {
        points += 1;
        match run_algo(algo, backend, config, n, Some(crash_at)) {
            Err(e) => {
                eprintln!(
                    "[EX-RECOVERY] {}/{} @{crash_at}: {e}",
                    algo.name(),
                    backend.name()
                );
                failures += 1;
            }
            Ok(run) => {
                max_unit = max_unit.max(run.max_unit_ios);
                let rework = run.total_ios.saturating_sub(clean.total_ios);
                max_rework = max_rework.max(rework);
                rework_sum += rework;
                let mut bad = Vec::new();
                if run.digest != clean.digest {
                    bad.push("output differs from fault-free run".to_string());
                }
                if run.resumes != 1 {
                    bad.push(format!("{} resumes (expected 1)", run.resumes));
                }
                if rework > run.max_unit_ios {
                    bad.push(format!(
                        "rework {rework} exceeds unit bound {}",
                        run.max_unit_ios
                    ));
                }
                if run.redone_ios > run.max_unit_ios {
                    bad.push(format!(
                        "redone_ios {} exceeds unit bound {}",
                        run.redone_ios, run.max_unit_ios
                    ));
                }
                if run.orphans > 0 {
                    bad.push(format!("{} orphaned files", run.orphans));
                }
                if !bad.is_empty() {
                    eprintln!(
                        "[EX-RECOVERY] {}/{} @{crash_at}: {}",
                        algo.name(),
                        backend.name(),
                        bad.join("; ")
                    );
                    failures += 1;
                }
            }
        }
        crash_at += stride;
    }

    SweepOutcome {
        algo,
        backend,
        n,
        clean_ios: clean.total_ios,
        clean_attempts: clean.attempts,
        points,
        stride,
        max_unit_ios: max_unit,
        max_rework,
        mean_rework: if points == 0 {
            0.0
        } else {
            rework_sum as f64 / points as f64
        },
        failures,
    }
}

/// EX-RECOVERY: crash-sweep every recoverable algorithm on both backends
/// and tabulate the recovery invariants.
pub fn ex_recovery(scale: Scale) -> Table {
    let (n, budget) = match scale {
        Scale::Quick => (3000u64, 24u64),
        Scale::Full => (20_000u64, 200u64),
    };
    let mut t = Table::new(
        "EX-RECOVERY",
        &format!("crash-sweep campaign: fatal fault at every sampled I/O, then resume  [N={n}]"),
        &[
            "algo",
            "backend",
            "clean I/Os",
            "crash points",
            "stride",
            "max unit I/Os",
            "max rework",
            "mean rework",
            "failures",
        ],
    );
    for algo in [Algo::Sort, Algo::MultiSelect, Algo::Partition] {
        for backend in [Backend::Memory, Backend::Disk] {
            let o = sweep(algo, backend, n, budget);
            t.row(vec![
                o.algo.name().into(),
                o.backend.name().into(),
                o.clean_ios.to_string(),
                o.points.to_string(),
                o.stride.to_string(),
                o.max_unit_ios.to_string(),
                o.max_rework.to_string(),
                fnum(o.mean_rework),
                o.failures.to_string(),
            ]);
        }
    }
    t.note("invariants per crash point: resumed output identical to the fault-free output, exactly one crash→resume cycle, rework and redone_ios each ≤ the largest completed work unit, zero orphaned block/journal-temp files");
    t.note("stride 1 = exhaustive (every device attempt); larger strides sample the attempt space uniformly under the points budget");
    t
}

/// Run the campaign and emit the table (used by the `crash_sweep` binary).
pub fn run_campaign(scale: Scale) -> Table {
    let t = ex_recovery(scale);
    emit(&t);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_sweep_sort_memory_tiny() {
        let o = sweep(Algo::Sort, Backend::Memory, 400, u64::MAX);
        assert_eq!(o.stride, 1, "tiny instance must sweep exhaustively");
        assert_eq!(o.failures, 0, "{o:?}");
        assert!(o.points > 0);
    }

    #[test]
    fn sampled_sweep_partition_disk() {
        let o = sweep(Algo::Partition, Backend::Disk, 800, 6);
        assert_eq!(o.failures, 0, "{o:?}");
        assert!(o.points <= 7);
    }
}
