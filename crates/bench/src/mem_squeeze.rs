//! EX-SQUEEZE: the memory-squeeze campaign.
//!
//! Proves the memory governor's contract end to end: `M` is a *dynamic,
//! contended* resource and every algorithm degrades gracefully instead of
//! panicking when it shrinks. Three probes:
//!
//! * **Degradation curve** — external sort, multi-selection, and
//!   approximate partitioning run at static budgets of 100/75/50/25% of
//!   the configured `M`, on both backends (strict in-memory, lenient
//!   disk). Every cell must produce output bit-identical to the full-`M`
//!   oracle; I/O cost may only *grow* as the budget shrinks (shorter
//!   runs, narrower fan-in/fan-out — never a wrong answer).
//! * **Mid-run ratchet** — a governor thread squeezes the live budget to
//!   50% then 25% and restores it *while the algorithm runs*. Lenient
//!   backends must still match the oracle exactly; the strict backend may
//!   instead surface a typed [`EmError::MemoryExceeded`] (allocations
//!   past the admission point are genuinely over budget), which the
//!   campaign records — any other error, panic, or wrong answer is a
//!   failure.
//! * **Multi-tenant starvation** — a live [`emserve::QueryServer`] holds
//!   governor leases for three tenants; the budget is squeezed and a
//!   rival charge pins what remains. Every in-flight query must resolve
//!   with *zero errors*: starved tenants get honest degraded (skeleton)
//!   answers, and exact service resumes once the squeeze lifts.
//!
//! Like the crash sweep, the campaign reports rather than panics: bad
//! cells fill the `mismatch`/`unexpected`/`serve-err` columns and the
//! binary exits nonzero.

use std::time::{Duration, Instant};

use apsplit::{approx_partitioning, verify_partitioning, ProblemSpec};
use emcore::{EmConfig, EmContext, EmError, EmFile, SplitMix64};
use emselect::multi_select;
use emserve::{QueryServer, ServeOptions, Ticket};
use emsort::external_sort;

use crate::crash_sweep::{Algo, Backend};
use crate::harness::{emit, Scale, Table};

const SEED: u64 = 20140623;

/// How long a serve ticket may take before the campaign declares it hung.
const HANG_TIMEOUT: Duration = Duration::from_secs(20);

/// Campaign verdict, one per run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SqueezeOutcome {
    /// Cells driven (algorithm runs + serve waves).
    pub cells: u64,
    /// Outputs that diverged from the full-budget oracle.
    pub mismatches: u64,
    /// Typed errors where the contract requires success (static budgets,
    /// lenient ratchets).
    pub unexpected: u64,
    /// Typed `MemoryExceeded` rejections that the contract *allows*
    /// (strict backend, mid-run ratchet) — informational.
    pub allowed_rejections: u64,
    /// Degradation-curve violations: I/O cost *fell* as the budget shrank.
    pub non_monotone: u64,
    /// Serve-cell failures: errored or hung queries, dishonest degraded
    /// bounds, missing lease gauges, or no degraded answer under
    /// guaranteed starvation.
    pub serve_failures: u64,
    /// Queries answered approximately because the exact pass ran out of
    /// budget (the starved tenant's experience) — must be nonzero.
    pub mem_degraded: u64,
}

impl SqueezeOutcome {
    /// Did every cell uphold the squeeze contract?
    pub fn clean(&self) -> bool {
        self.mismatches == 0
            && self.unexpected == 0
            && self.non_monotone == 0
            && self.serve_failures == 0
            && self.mem_degraded > 0
    }
}

/// Strict in-memory / lenient on-disk context for a squeeze cell. The
/// strict tracker turns budget violations into typed errors — exactly
/// what the campaign is hunting; the disk backend shows the lenient
/// (record-only) mode still *adapts* its sizing.
fn squeeze_ctx(backend: Backend, config: EmConfig) -> EmContext {
    match backend {
        Backend::Memory => EmContext::new_in_memory_strict(config),
        Backend::Disk => EmContext::new_on_disk_temp(config).expect("tempdir"),
    }
}

fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

fn digest(vals: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in vals {
        h = fnv(h, v);
    }
    h
}

/// One algorithm run under the live budget: `Ok(digest)` or a typed
/// memory rejection. Any *other* error is propagated (campaign failure).
fn run_algo(
    algo: Algo,
    ctx: &EmContext,
    f: &EmFile<u64>,
    ranks: &[u64],
    spec: &ProblemSpec,
) -> Result<Option<u64>, EmError> {
    let r = match algo {
        Algo::Sort => external_sort(f).and_then(|s| {
            let out = ctx.oracle(|| s.to_vec())?;
            Ok(digest(out))
        }),
        Algo::MultiSelect => multi_select(f, ranks).map(digest),
        Algo::Partition => approx_partitioning(f, spec).and_then(|parts| {
            let rep = ctx.oracle(|| verify_partitioning(&parts, spec))?;
            // An invalid partitioning digests to a sentinel that can
            // never equal the oracle (which always verifies).
            if !rep.ok {
                return Ok(u64::MAX);
            }
            Ok(digest(parts.iter().map(|p| p.len())))
        }),
    };
    match r {
        Ok(d) => Ok(Some(d)),
        Err(EmError::MemoryExceeded { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Drive one algorithm × backend through the static budget ladder and the
/// mid-run ratchet, filling `table` and `out`.
fn squeeze_cell(algo: Algo, backend: Backend, n: u64, table: &mut Table, out: &mut SqueezeOutcome) {
    let config = EmConfig::medium();
    let ctx = squeeze_ctx(backend, config);
    let full = config.mem_capacity();
    let strict = ctx.mem().is_strict();

    let mut data: Vec<u64> = (1..=n).collect();
    SplitMix64::new(SEED ^ n).shuffle(&mut data);
    let f = ctx
        .stats()
        .paused(|| EmFile::from_slice(&ctx, &data))
        .expect("materialize");
    // Ranks / spec for the selection and partitioning probes. The data is
    // a shuffled permutation of 1..=n, so answers are the ranks themselves.
    let ranks: Vec<u64> = (1..8).map(|i| i * n / 8).collect();
    let spec = ProblemSpec::new(n, 16, n / 64, n).expect("spec");

    let row = |budget_label: &str, ios: u64, ms: f64, verdict: &str, table: &mut Table| {
        table.row(vec![
            algo.name().into(),
            backend.name().into(),
            budget_label.into(),
            ios.to_string(),
            format!("{ms:.1}"),
            verdict.into(),
        ]);
    };

    // Static budget ladder: 100% first (the oracle), then descending.
    let mut oracle = 0u64;
    let mut ios_full = 0u64;
    let mut ios_quarter = 0u64;
    for pct in [100usize, 75, 50, 25] {
        out.cells += 1;
        ctx.set_mem_budget(full * pct / 100).expect("set budget");
        let before = ctx.stats().snapshot();
        let t0 = Instant::now();
        let got = run_algo(algo, &ctx, &f, &ranks, &spec);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let ios = ctx.stats().snapshot().since(&before).total_ios();
        let verdict = match got {
            Ok(Some(d)) if pct == 100 => {
                oracle = d;
                ios_full = ios;
                "oracle"
            }
            Ok(Some(d)) if d == oracle => {
                if pct == 25 {
                    ios_quarter = ios;
                }
                "ok"
            }
            Ok(Some(_)) => {
                out.mismatches += 1;
                "MISMATCH"
            }
            Ok(None) => {
                // Static budgets down to 25% of `medium` are all far above
                // every algorithm's feasibility floor: a rejection here
                // means adaptivity failed.
                out.unexpected += 1;
                "REJECTED"
            }
            Err(_) => {
                out.unexpected += 1;
                "ERROR"
            }
        };
        row(&format!("{pct}%"), ios, ms, verdict, table);
    }
    // Monotone degradation: a quarter of the memory may cost more I/O,
    // never less (shorter runs / narrower fan-in ⇒ more passes).
    if ios_quarter < ios_full {
        out.non_monotone += 1;
        table.note(format!(
            "NON-MONOTONE: {}/{} cost fewer I/Os at 25% ({ios_quarter}) than 100% ({ios_full})",
            algo.name(),
            backend.name()
        ));
    }

    // Mid-run ratchet: squeeze to 50% then 25%, restore to full, while
    // the algorithm is in flight.
    out.cells += 1;
    ctx.set_mem_budget(full).expect("restore budget");
    let squeezer = {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            for w in [full / 2, full / 4, full / 2, full] {
                std::thread::sleep(Duration::from_millis(1));
                let _ = ctx.set_mem_budget(w);
            }
        })
    };
    let before = ctx.stats().snapshot();
    let t0 = Instant::now();
    let got = run_algo(algo, &ctx, &f, &ranks, &spec);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let ios = ctx.stats().snapshot().since(&before).total_ios();
    squeezer.join().expect("squeezer");
    let verdict = match got {
        Ok(Some(d)) if d == oracle => "ok",
        Ok(Some(_)) => {
            out.mismatches += 1;
            "MISMATCH"
        }
        Ok(None) if strict => {
            // A strict mid-run squeeze may land between a job's admission
            // point and a later allocation; the typed rejection is the
            // contract. Lenient backends must adapt instead.
            out.allowed_rejections += 1;
            "typed"
        }
        Ok(None) => {
            out.unexpected += 1;
            "REJECTED"
        }
        Err(_) => {
            out.unexpected += 1;
            "ERROR"
        }
    };
    row("ratchet", ios, ms, verdict, table);
    ctx.set_mem_budget(full).expect("restore budget");
}

/// Audit one serve ticket against the permutation oracle (rank `r` ↦ `r`).
fn audit_ticket(
    t: Ticket<u64>,
    ranks: &[u64],
    out: &mut SqueezeOutcome,
    exact: &mut u64,
    degraded: &mut u64,
) {
    match t.wait_timeout(HANG_TIMEOUT) {
        Ok(a) if a.approx => {
            *degraded += 1;
            for (&r, &v) in ranks.iter().zip(&a.values) {
                if v.abs_diff(r) > a.rank_error {
                    out.serve_failures += 1;
                }
            }
        }
        Ok(a) => {
            *exact += 1;
            if a.values != ranks {
                out.mismatches += 1;
            }
        }
        Err(_) => out.serve_failures += 1,
    }
}

/// The multi-tenant starvation cell: three leased datasets on one strict
/// context, a governor squeeze plus a rival charge pinning the remainder,
/// and a wave of queries that must all resolve — degraded, not errored.
fn serve_cell(n: u64, table: &mut Table, out: &mut SqueezeOutcome) {
    let config = EmConfig::medium();
    let ctx = EmContext::new_in_memory_strict(config);
    let full = config.mem_capacity();
    let mut server = QueryServer::<u64>::start(
        &ctx,
        ServeOptions::builder()
            .degraded(true)
            // Refinement keeps the skeleton warm: every exact batch adds
            // boundaries, which is what a starved tenant's degraded
            // answers are made of.
            .refine(true)
            .lease_floor(512)
            .lease_weight(1)
            .build(),
    )
    .expect("server start");
    let client = server.client().expect("server running");

    let tenants = ["tenant-a", "tenant-b", "tenant-c"];
    let warm: Vec<u64> = (1..5).map(|i| i * n / 5).collect();
    for (i, t) in tenants.iter().enumerate() {
        let mut data: Vec<u64> = (1..=n).collect();
        SplitMix64::new(SEED + i as u64).shuffle(&mut data);
        client.register(t, data).expect("register tenant");
        // Warm the skeleton so degraded answers exist under starvation.
        let tk = client.query(t, warm.clone()).expect("submit warm");
        audit_ticket(tk, &warm, out, &mut 0, &mut 0);
    }

    // Each wave asks *fresh* ranks (salted by wave index): a repeated rank
    // is a stored-boundary hit the index answers exactly at zero I/O, which
    // would mask starvation instead of demonstrating the degraded path.
    let wave =
        |salt: u64, label: &str, out: &mut SqueezeOutcome, table: &mut Table| -> (u64, u64) {
            out.cells += 1;
            let (mut exact, mut degraded) = (0u64, 0u64);
            let t0 = Instant::now();
            for (i, t) in tenants.iter().enumerate() {
                for q in 0..4u64 {
                    let ranks = vec![1 + (q * 877 + i as u64 * 131 + salt * 397) % n];
                    let tk = client.query(t, ranks.clone()).expect("submit");
                    audit_ticket(tk, &ranks, out, &mut exact, &mut degraded);
                }
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            table.row(vec![
                "serve".into(),
                "memory".into(),
                label.into(),
                format!("exact={exact}"),
                format!("{ms:.1}"),
                format!("degraded={degraded}"),
            ]);
            (exact, degraded)
        };

    // Full budget: everything exact.
    let (exact0, _) = wave(1, "full", out, table);
    if exact0 != 12 {
        out.serve_failures += 1;
    }

    // Squeeze `M` to an eighth and let a rival pin all but a sliver —
    // less than one block stays free, so every exact pass is starved.
    ctx.set_mem_budget(full / 8).expect("squeeze");
    let sliver = config.block_size() / 2;
    let rival = ctx
        .mem()
        .try_charge(ctx.mem().available().saturating_sub(sliver), "rival tenant")
        .expect("rival admission");
    let (_, degraded1) = wave(2, "starved", out, table);
    if degraded1 == 0 {
        // Guaranteed starvation must surface as degraded answers.
        out.serve_failures += 1;
    }

    // Lift the squeeze: exact service resumes on the same server.
    drop(rival);
    ctx.set_mem_budget(full).expect("restore");
    let (exact2, _) = wave(3, "restored", out, table);
    if exact2 != 12 {
        out.serve_failures += 1;
    }

    // The request channel must fully disconnect before shutdown joins the
    // scheduler: any live client sender keeps it serving.
    drop(client);
    let report = server.shutdown().expect("shutdown");
    out.mem_degraded += report.mem_degraded;
    if report.mem_degraded == 0 || report.failed > 0 {
        out.serve_failures += 1;
    }
    if report.leases != tenants.len() as u64
        || report.lease_floor_words != 512 * tenants.len() as u64
    {
        out.serve_failures += 1;
    }
    table.note(format!(
        "serve: {} queries, {} degraded on memory, {} failed; {} leases holding {} floor words",
        report.queries, report.mem_degraded, report.failed, report.leases, report.lease_floor_words
    ));
}

/// Build the EX-SQUEEZE table without printing (library/test entry).
pub fn ex_squeeze(scale: Scale) -> (Table, SqueezeOutcome) {
    let n = match scale {
        Scale::Quick => 40_000,
        Scale::Full => 400_000,
    };
    let n_serve = match scale {
        Scale::Quick => 8_000,
        Scale::Full => 40_000,
    };
    let mut table = Table::new(
        "EX-SQUEEZE",
        "memory-squeeze campaign: digest-invariant degradation under a shrinking M",
        &["cell", "backend", "budget", "ios", "ms", "verdict"],
    );
    let mut out = SqueezeOutcome::default();
    for algo in [Algo::Sort, Algo::MultiSelect, Algo::Partition] {
        for backend in [Backend::Memory, Backend::Disk] {
            squeeze_cell(algo, backend, n, &mut table, &mut out);
        }
    }
    serve_cell(n_serve, &mut table, &mut out);
    table.note(format!(
        "{} cells: {} mismatches, {} unexpected rejections, {} allowed strict ratchet rejections, \
         {} non-monotone curves, {} serve failures, {} memory-degraded answers",
        out.cells,
        out.mismatches,
        out.unexpected,
        out.allowed_rejections,
        out.non_monotone,
        out.serve_failures,
        out.mem_degraded
    ));
    (table, out)
}

/// Run the campaign, emit the table (stdout + `bench_results/EX-SQUEEZE.csv`),
/// and return whether every cell upheld the contract.
pub fn run_squeeze(scale: Scale) -> (SqueezeOutcome, bool) {
    let (table, out) = ex_squeeze(scale);
    emit(&table);
    (out, out.clean())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_is_clean() {
        let (table, out) = ex_squeeze(Scale::Quick);
        assert!(out.clean(), "{out:?}\n{}", table.to_markdown());
        // 3 algos × 2 backends × (4 static + 1 ratchet) + 3 serve waves.
        assert_eq!(out.cells, 33);
        assert!(out.mem_degraded > 0, "starved tenant was never degraded");
    }
}
