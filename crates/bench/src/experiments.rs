//! The experiment suite: one function per row of DESIGN.md's
//! per-experiment index. Every function returns a printable [`Table`]
//! with measured I/O next to the paper's predicted bound.

use apsplit::{
    approx_partitioning, approx_splitters, approx_splitters_with, bounds, precise_partitioning,
    precise_via_approx, precise_via_approx_with_step, sort_based_partitioning,
    sort_based_splitters, verify_partitioning, verify_splitters, ProblemSpec,
};
use emcore::{EmContext, EmFile, FaultPlan, RetryPolicy};
use emselect::{
    max_deterministic_fanout, multi_partition_with, multi_select, sample_splitters, MpOptions,
    MsOptions, SplitterStrategy,
};
use workloads::{materialize, Workload};

use crate::harness::{bench_config, bench_ctx, emit, fnum, measure, Scale, Table};

const SEED: u64 = 20140623; // SPAA'14 started June 23, 2014

fn fresh_input(n: u64) -> (EmContext, EmFile<u64>) {
    let ctx = bench_ctx();
    let f = materialize(&ctx, Workload::UniformPerm, n, SEED).expect("materialize");
    (ctx, f)
}

fn scan(n: u64) -> f64 {
    bench_config().scan_bound(n)
}

/// EX-T1-SR: right-grounded approximate K-splitters, sweeping `a`.
/// Claim: `Θ((1 + aK/B)·lg_{M/B}(K/B))` — sublinear for small `a`.
pub fn ex_splitters_right(scale: Scale) -> Table {
    let n = scale.n();
    let k = 64u64;
    let mut t = Table::new(
        "EX-T1-SR",
        &format!("splitters, right-grounded (b = N): I/O vs a  [N={n}, K={k}]"),
        &[
            "a",
            "measured I/O",
            "predicted Θ",
            "meas/pred",
            "scans (N/B units)",
            "sublinear?",
        ],
    );
    let mut sweep: Vec<u64> = vec![2, 16, 128, 1024, n / k];
    sweep.dedup();
    for a in sweep {
        let (ctx, f) = fresh_input(n);
        let spec = ProblemSpec::new(n, k, a, n).expect("feasible");
        let (r, io, _) = measure(&ctx, || approx_splitters(&f, &spec));
        let sp = r.expect("splitters");
        let rep = ctx
            .stats()
            .paused(|| verify_splitters(&f, &sp, &spec))
            .expect("verify");
        assert!(rep.ok, "invalid output at a={a}: {:?}", rep.sizes);
        let pred = bounds::splitters_right(bench_config(), n, k, a);
        let meas = io.total_ios() as f64;
        t.row(vec![
            a.to_string(),
            fnum(meas),
            fnum(pred),
            fnum(meas / pred),
            fnum(meas / scan(n)),
            if meas < scan(n) {
                "YES".into()
            } else {
                "no".into()
            },
        ]);
    }
    t.note("paper: cost grows with aK, independent of N; sublinear whenever aK ≪ N (Thm 1/5)");
    t
}

/// EX-T1-SL: left-grounded approximate K-splitters, sweeping `b`.
/// Claim: `Θ((N/B)·lg_{M/B}(N/(bB)))`.
pub fn ex_splitters_left(scale: Scale) -> Table {
    let n = scale.n();
    let k = 64u64;
    let mut t = Table::new(
        "EX-T1-SL",
        &format!("splitters, left-grounded (a = 0): I/O vs b  [N={n}, K={k}]"),
        &["b", "measured I/O", "predicted Θ", "meas/pred", "scans"],
    );
    let mut b_sweep = vec![n / k, 4 * n / k, 16 * n / k, n / 4, n / 2];
    b_sweep.dedup();
    for b in b_sweep {
        let (ctx, f) = fresh_input(n);
        let spec = ProblemSpec::new(n, k, 0, b).expect("feasible");
        let (r, io, _) = measure(&ctx, || approx_splitters(&f, &spec));
        let sp = r.expect("splitters");
        let rep = ctx
            .stats()
            .paused(|| verify_splitters(&f, &sp, &spec))
            .expect("verify");
        assert!(rep.ok, "invalid output at b={b}");
        let pred = bounds::splitters_left(bench_config(), n, k, b);
        let meas = io.total_ios() as f64;
        t.row(vec![
            b.to_string(),
            fnum(meas),
            fnum(pred),
            fnum(meas / pred),
            fnum(meas / scan(n)),
        ]);
    }
    t.note("paper: cost decreases as b grows (coarser constraint), Θ(N/B) once b = Ω(N/(M/B)) (Thm 2/5)");
    t
}

/// EX-T1-S2: two-sided approximate K-splitters over an (a, b) grid.
pub fn ex_splitters_two_sided(scale: Scale) -> Table {
    let n = scale.n();
    let k = 64u64;
    let mut t = Table::new(
        "EX-T1-S2",
        &format!("splitters, two-sided: I/O over (a, b)  [N={n}, K={k}]"),
        &["a", "b", "case", "measured I/O", "predicted Θ", "meas/pred"],
    );
    let grid = [
        (2u64, n / 2),
        (2, 4 * n / k),
        (n / (4 * k), n / 2),
        (n / (2 * k), n / k + 1), // quantile-easy
        (16, 16 * n / k),
    ];
    for (a, b) in grid {
        let (ctx, f) = fresh_input(n);
        let spec = ProblemSpec::new(n, k, a, b).expect("feasible");
        let case = if spec.quantile_suffices() {
            "quantile"
        } else {
            "split"
        };
        let (r, io, _) = measure(&ctx, || approx_splitters(&f, &spec));
        let sp = r.expect("splitters");
        let rep = ctx
            .stats()
            .paused(|| verify_splitters(&f, &sp, &spec))
            .expect("verify");
        assert!(
            rep.ok,
            "invalid output at a={a}, b={b}: sizes {:?}",
            rep.sizes
        );
        let pred = bounds::splitters_two_sided(bench_config(), n, k, a, b);
        let meas = io.total_ios() as f64;
        t.row(vec![
            a.to_string(),
            b.to_string(),
            case.into(),
            fnum(meas),
            fnum(pred),
            fnum(meas / pred),
        ]);
    }
    t.note("paper: Θ((1+aK/B)·lg(K/B) + (N/B)·lg(N/(bB))) (Thms 1/2/5)");
    t
}

/// EX-T1-PR: right-grounded approximate K-partitioning, sweeping `a`.
pub fn ex_partition_right(scale: Scale) -> Table {
    let n = scale.n();
    let k = 64u64;
    let mut t = Table::new(
        "EX-T1-PR",
        &format!("partitioning, right-grounded (b = N): I/O vs a  [N={n}, K={k}]"),
        &["a", "measured I/O", "predicted O", "meas/pred", "scans"],
    );
    let mut sweep: Vec<u64> = vec![0, 16, 128, 1024, n / k];
    sweep.dedup();
    for a in sweep {
        let (ctx, f) = fresh_input(n);
        let spec = ProblemSpec::new(n, k, a, n).expect("feasible");
        let (r, io, _) = measure(&ctx, || approx_partitioning(&f, &spec));
        let parts = r.expect("partitioning");
        let rep = ctx
            .stats()
            .paused(|| verify_partitioning(&parts, &spec))
            .expect("verify");
        assert!(rep.ok, "invalid output at a={a}: {:?}", rep.sizes);
        let pred = bounds::partitioning_right(bench_config(), n, k, a);
        let meas = io.total_ios() as f64;
        t.row(vec![
            a.to_string(),
            fnum(meas),
            fnum(pred),
            fnum(meas / pred),
            fnum(meas / scan(n)),
        ]);
    }
    t.note("paper: O(N/B + (aK/B)·lg min{K, aK/B}); the N/B term dominates for small aK (Thm 6)");
    t
}

/// EX-T1-PL: left-grounded approximate K-partitioning, sweeping `b`.
pub fn ex_partition_left(scale: Scale) -> Table {
    let n = scale.n();
    let k = 64u64;
    let mut t = Table::new(
        "EX-T1-PL",
        &format!("partitioning, left-grounded (a = 0): I/O vs b  [N={n}, K={k}]"),
        &["b", "measured I/O", "predicted Θ", "meas/pred", "scans"],
    );
    let mut b_sweep = vec![n / k, 4 * n / k, 16 * n / k, n / 4, n / 2];
    b_sweep.dedup();
    for b in b_sweep {
        let (ctx, f) = fresh_input(n);
        let spec = ProblemSpec::new(n, k, 0, b).expect("feasible");
        let (r, io, _) = measure(&ctx, || approx_partitioning(&f, &spec));
        let parts = r.expect("partitioning");
        let rep = ctx
            .stats()
            .paused(|| verify_partitioning(&parts, &spec))
            .expect("verify");
        assert!(rep.ok, "invalid output at b={b}: {:?}", rep.sizes);
        let pred = bounds::partitioning_left(bench_config(), n, k, b);
        let meas = io.total_ios() as f64;
        t.row(vec![
            b.to_string(),
            fnum(meas),
            fnum(pred),
            fnum(meas / pred),
            fnum(meas / scan(n)),
        ]);
    }
    t.note("paper: Θ((N/B)·lg min{N/b, N/B}) — like sorting into ⌈N/b⌉ buckets (Thms 3/6)");
    t
}

/// EX-T1-P2: two-sided approximate K-partitioning over an (a, b) grid.
pub fn ex_partition_two_sided(scale: Scale) -> Table {
    let n = scale.n();
    let k = 64u64;
    let mut t = Table::new(
        "EX-T1-P2",
        &format!("partitioning, two-sided: I/O over (a, b)  [N={n}, K={k}]"),
        &["a", "b", "case", "measured I/O", "predicted O", "meas/pred"],
    );
    let grid = [
        (2u64, n / 2),
        (2, 4 * n / k),
        (n / (4 * k), n / 2),
        (n / (2 * k), n / k + 1),
        (16, 16 * n / k),
    ];
    for (a, b) in grid {
        let (ctx, f) = fresh_input(n);
        let spec = ProblemSpec::new(n, k, a, b).expect("feasible");
        let case = if spec.quantile_suffices() {
            "quantile"
        } else {
            "split"
        };
        let (r, io, _) = measure(&ctx, || approx_partitioning(&f, &spec));
        let parts = r.expect("partitioning");
        let rep = ctx
            .stats()
            .paused(|| verify_partitioning(&parts, &spec))
            .expect("verify");
        assert!(rep.ok, "invalid output at a={a}, b={b}: {:?}", rep.sizes);
        let pred = bounds::partitioning_two_sided(bench_config(), n, k, a, b);
        let meas = io.total_ios() as f64;
        t.row(vec![
            a.to_string(),
            b.to_string(),
            case.into(),
            fnum(meas),
            fnum(pred),
            fnum(meas / pred),
        ]);
    }
    t.note("paper: O((aK/B)·lg min{K, aK/B} + (N/B)·lg min{N/b, N/B}) (Thm 6)");
    t
}

/// EX-SEP: the §1.3 separation — multi-selection vs multi-partition as a
/// function of K.
pub fn ex_separation(scale: Scale) -> Table {
    let n = scale.n();
    let mut t = Table::new(
        "EX-SEP",
        &format!("multi-selection vs multi-partition: I/O vs K  [N={n}]"),
        &[
            "K",
            "multi-select I/O",
            "multi-partition I/O",
            "ratio (mp/ms)",
            "ms bound",
            "mp bound",
        ],
    );
    for k in [4u64, 64, 512, 4096, 16384] {
        if k > n / 8 {
            continue;
        }
        // Near-even ranks/sizes (k need not divide n).
        let ranks: Vec<u64> = (1..=k).map(|i| (i * n) / k).collect();
        let (ctx, f) = fresh_input(n);
        let (r, io_ms, _) = measure(&ctx, || multi_select(&f, &ranks));
        r.expect("multi-select");
        let mut sizes = Vec::with_capacity(k as usize);
        let mut prev = 0u64;
        for &r in &ranks {
            sizes.push(r - prev);
            prev = r;
        }
        let (ctx2, f2) = fresh_input(n);
        let (r2, io_mp, _) = measure(&ctx2, || {
            multi_partition_with(&f2, &sizes, MpOptions::default())
        });
        r2.expect("multi-partition");
        let ms = io_ms.total_ios() as f64;
        let mp = io_mp.total_ios() as f64;
        t.row(vec![
            k.to_string(),
            fnum(ms),
            fnum(mp),
            fnum(mp / ms),
            fnum(bounds::multi_select_bound(bench_config(), n, k)),
            fnum(bounds::multi_partition_bound(bench_config(), n, k)),
        ]);
    }
    t.note("paper §1.3: for K ≤ M/B both bounds clamp to Θ(N/B) (ratio ≈ 1 is the predicted shape); the bounds separate for K ∈ (M/B, B·M/B] — visible in the bound columns — while measured costs stay within constant-factor noise of each other at simulator scale (see EXPERIMENTS.md). The *dramatic* small-K separation the paper headlines is splitters-vs-partitioning: see EX-T1-SR (sublinear) vs EX-T1-PR (Ω(N/B)).");
    t
}

/// EX-SORT: every approximate algorithm against its sort-based baseline.
pub fn ex_vs_sort(scale: Scale) -> Table {
    let n = scale.n();
    let k = 64u64;
    let mut t = Table::new(
        "EX-SORT",
        &format!("approximate algorithms vs the §1.2 sorting baseline  [N={n}, K={k}]"),
        &["problem", "spec", "approx I/O", "sort-based I/O", "speedup"],
    );
    let specs: Vec<(&str, ProblemSpec, bool)> = vec![
        (
            "splitters/right",
            ProblemSpec::new(n, k, 4, n).unwrap(),
            true,
        ),
        (
            "splitters/left",
            ProblemSpec::new(n, k, 0, 8 * n / k).unwrap(),
            true,
        ),
        (
            "splitters/2-sided",
            ProblemSpec::new(n, k, 4, n / 2).unwrap(),
            true,
        ),
        (
            "partition/right",
            ProblemSpec::new(n, k, 4, n).unwrap(),
            false,
        ),
        (
            "partition/left",
            ProblemSpec::new(n, k, 0, 8 * n / k).unwrap(),
            false,
        ),
        (
            "partition/2-sided",
            ProblemSpec::new(n, k, 4, n / 2).unwrap(),
            false,
        ),
    ];
    for (name, spec, is_splitters) in specs {
        let (ctx, f) = fresh_input(n);
        let approx = if is_splitters {
            let (r, io, _) = measure(&ctx, || approx_splitters(&f, &spec));
            r.expect("approx");
            io
        } else {
            let (r, io, _) = measure(&ctx, || approx_partitioning(&f, &spec));
            r.expect("approx");
            io
        };
        let (ctx2, f2) = fresh_input(n);
        let base = if is_splitters {
            let (r, io, _) = measure(&ctx2, || sort_based_splitters(&f2, &spec));
            r.expect("baseline");
            io
        } else {
            let (r, io, _) = measure(&ctx2, || sort_based_partitioning(&f2, &spec));
            r.expect("baseline");
            io
        };
        let am = approx.total_ios() as f64;
        let bm = base.total_ios() as f64;
        t.row(vec![
            name.into(),
            format!("a={} b={}", spec.a, spec.b),
            fnum(am),
            fnum(bm),
            format!("{:.1}x", bm / am),
        ]);
    }
    t.note("paper §1.2: sorting solves everything in Θ((N/B)·lg(N/B)); the approximate algorithms must win, most dramatically for right-grounded splitters");
    t
}

/// EX-BASE: linearity of the Theorem-4 base case (the Hu-et-al. substrate
/// + intermixed selection): I/O per scan stays constant as N grows.
pub fn ex_base_case(scale: Scale) -> Table {
    let mut t = Table::new(
        "EX-BASE",
        "base-case multi-selection is linear: I/O / (N/B) vs N  [K=8]",
        &["N", "measured I/O", "scans", "m (base capacity)"],
    );
    let ns: Vec<u64> = match scale {
        Scale::Quick => vec![50_000, 100_000, 200_000, 400_000],
        Scale::Full => vec![100_000, 400_000, 1_600_000, 4_000_000],
    };
    for n in ns {
        let (ctx, f) = fresh_input(n);
        let trace = crate::harness::attach_trace(&ctx, &format!("ex-base-n{n}"));
        let ranks: Vec<u64> = (1..=8u64).map(|i| i * (n / 8)).collect();
        let (r, io, _) = measure(&ctx, || multi_select(&f, &ranks));
        r.expect("multi-select");
        if trace.is_some() {
            ctx.finish_trace();
        }
        let m = emselect::base_case_capacity(&f, &MsOptions::default());
        t.row_with_phases(
            vec![
                n.to_string(),
                fnum(io.total_ios() as f64),
                fnum(io.total_ios() as f64 / scan(n)),
                m.to_string(),
            ],
            ctx.stats().phase_totals(),
        );
    }
    t.note("paper §4.2: for K ≤ m the whole multi-selection costs O(N/B) — the 'scans' column must stay flat as N grows");
    t
}

/// EX-LB: measured cost vs the lower-bound formulas on the hard inputs.
pub fn ex_lower_bounds(scale: Scale) -> Table {
    let n = scale.n();
    let k = 64u64;
    let cfg = bench_config();
    let mut t = Table::new(
        "EX-LB",
        &format!("measured I/O vs Table-1 lower bounds (Π_hard inputs)  [N={n}, K={k}]"),
        &[
            "problem",
            "params",
            "workload",
            "measured",
            "lower bound",
            "meas/LB",
        ],
    );
    let wls = [
        Workload::UniformPerm,
        Workload::HardBlockColumns {
            block: cfg.block_size(),
        },
    ];
    for wl in wls {
        // Right-grounded splitters, a = 64.
        let a = 64u64;
        let ctx = bench_ctx();
        let f = materialize(&ctx, wl, n, SEED).unwrap();
        let spec = ProblemSpec::new(n, k, a, n).unwrap();
        let (r, io, _) = measure(&ctx, || approx_splitters(&f, &spec));
        r.expect("splitters");
        let lb = bounds::lb_splitters_right(cfg, n, k, a);
        t.row(vec![
            "splitters/right".into(),
            format!("a={a}"),
            workloads::name(wl),
            fnum(io.total_ios() as f64),
            fnum(lb),
            fnum(io.total_ios() as f64 / lb),
        ]);
        // Left-grounded splitters, b = 4N/K.
        let b = 4 * n / k;
        let ctx = bench_ctx();
        let f = materialize(&ctx, wl, n, SEED).unwrap();
        let spec = ProblemSpec::new(n, k, 0, b).unwrap();
        let (r, io, _) = measure(&ctx, || approx_splitters(&f, &spec));
        r.expect("splitters");
        let lb = bounds::lb_splitters_left(cfg, n, k, b);
        t.row(vec![
            "splitters/left".into(),
            format!("b={b}"),
            workloads::name(wl),
            fnum(io.total_ios() as f64),
            fnum(lb),
            fnum(io.total_ios() as f64 / lb),
        ]);
        // Left-grounded partitioning, b = 4N/K.
        let ctx = bench_ctx();
        let f = materialize(&ctx, wl, n, SEED).unwrap();
        let spec = ProblemSpec::new(n, k, 0, b).unwrap();
        let (r, io, _) = measure(&ctx, || approx_partitioning(&f, &spec));
        r.expect("partitioning");
        let lb = bounds::lb_partitioning(cfg, n, k, b);
        t.row(vec![
            "partition/left".into(),
            format!("b={b}"),
            workloads::name(wl),
            fnum(io.total_ios() as f64),
            fnum(lb),
            fnum(io.total_ios() as f64 / lb),
        ]);
    }
    t.note("consistency check: measured ≥ Ω(·) formula (ratios ≥ ~1), incl. on the Π_hard block-column family used in the proofs of Thms 1–2");
    t
}

/// EX-A1: sampling-strategy ablation (the DESIGN.md substitution).
pub fn ex_ablation_sampling(scale: Scale) -> Table {
    let n = scale.n();
    let mut t = Table::new(
        "EX-A1",
        &format!("splitter sampling ablation: deterministic vs randomized  [N={n}]"),
        &[
            "strategy",
            "max fan-out f",
            "max bucket / (n/f)",
            "sampling I/O",
            "2-sided splitters I/O",
        ],
    );
    for (name, strat) in [
        ("deterministic", Some(SplitterStrategy::Deterministic)),
        (
            "randomized(7)",
            Some(SplitterStrategy::Randomized { seed: 7 }),
        ),
        ("det-refined (2 rounds)", None),
    ] {
        let (ctx, f) = fresh_input(n);
        let fmax = match strat {
            Some(_) => max_deterministic_fanout(&f),
            None => 8 * max_deterministic_fanout(&f),
        };
        let (r, io_s, _) = measure(&ctx, || match strat {
            Some(st) => sample_splitters(&f, fmax, st),
            None => emselect::refined_splitters(&ctx, std::slice::from_ref(&f), fmax),
        });
        let sp = r.expect("splitters");
        let counts = ctx
            .stats()
            .paused(|| emselect::count_buckets(&f, &sp))
            .expect("counts");
        let maxb = *counts.iter().max().unwrap() as f64;
        let f_eff = counts.len();
        let spec = ProblemSpec::new(n, 64, 4, n / 2).unwrap();
        let (ctx2, f2) = fresh_input(n);
        let (r2, io_t, _) = measure(&ctx2, || {
            approx_splitters_with(
                &f2,
                &spec,
                MsOptions {
                    strategy: strat.unwrap_or(SplitterStrategy::Deterministic),
                    base_capacity_override: None,
                    base_case: Default::default(),
                },
            )
        });
        r2.expect("two-sided");
        t.row(vec![
            name.into(),
            f_eff.to_string(),
            fnum(maxb / (n as f64 / f_eff as f64)),
            fnum(io_s.total_ios() as f64),
            fnum(io_t.total_ios() as f64),
        ]);
    }
    t.note("the one-round deterministic substitute guarantees buckets ≤ 2n/f up to f = Θ(M/log(N/M)); the two-round refinement reaches Θ(M) deterministically (restoring the paper's base-case capacity) and randomized reservoirs reach Θ(M) w.h.p. — all preserve the Table-1 shapes");
    t
}

/// EX-A3: base-case engine ablation — the paper-faithful §4.2 intermixed
/// construction vs the pruned-distribution engine, across K.
pub fn ex_ablation_engine(scale: Scale) -> Table {
    let n = scale.n();
    let mut t = Table::new(
        "EX-A3",
        &format!("base-case engine ablation: pruned vs intermixed (§4.2)  [N={n}]"),
        &["K", "pruned I/O", "intermixed I/O", "intermixed/pruned"],
    );
    for k in [4u64, 16, 64, 128] {
        let ranks: Vec<u64> = (1..=k).map(|i| (i * n) / k).collect();
        let run = |engine: emselect::MsBaseCase| -> u64 {
            let (ctx, f) = fresh_input(n);
            let opts = MsOptions {
                strategy: SplitterStrategy::Deterministic,
                base_capacity_override: None,
                base_case: engine,
            };
            let (r, io, _) = measure(&ctx, || emselect::multi_select_with(&f, &ranks, opts));
            r.expect("multi-select");
            io.total_ios()
        };
        let pruned = run(emselect::MsBaseCase::Pruned);
        let inter = run(emselect::MsBaseCase::Intermixed);
        t.row(vec![
            k.to_string(),
            fnum(pruned as f64),
            fnum(inter as f64),
            fnum(inter as f64 / pruned as f64),
        ]);
    }
    t.note("both engines are O(N/B) per base case; the intermixed construction (duplicated-bucket instance D + §4.1 selection over refined Θ(M) splitters) carries the larger constant but is the one that scales to m = Θ(M) groups beyond the distribution fan-out — the regime the paper is designed for");
    t
}

/// EX-A2: distribution fan-out ablation for multi-partition.
pub fn ex_ablation_fanout(scale: Scale) -> Table {
    let n = scale.n();
    let k = 256u64;
    let mut t = Table::new(
        "EX-A2",
        &format!("fan-out ablation: multi-partition I/O vs distribution fan-out  [N={n}, K={k}]"),
        &["fan-out", "measured I/O", "scans"],
    );
    let sizes: Vec<u64> = {
        let mut v = Vec::with_capacity(k as usize);
        let mut prev = 0u64;
        for i in 1..=k {
            let r = (i * n) / k;
            v.push(r - prev);
            prev = r;
        }
        v
    };
    for fo in [2usize, 4, 8, 16, 32, 64] {
        let (ctx, f) = fresh_input(n);
        let (r, io, _) = measure(&ctx, || {
            multi_partition_with(
                &f,
                &sizes,
                MpOptions {
                    strategy: SplitterStrategy::Deterministic,
                    fanout_override: Some(fo),
                },
            )
        });
        r.expect("multi-partition");
        t.row(vec![
            fo.to_string(),
            fnum(io.total_ios() as f64),
            fnum(io.total_ios() as f64 / scan(n)),
        ]);
    }
    t.note("why distribution uses fan-out Θ(M/B): each halving of the fan-out adds ~one more level of lg_{f} K passes");
    t
}

/// EX-RED: the §3 reduction — precise partitioning through the
/// approximate algorithm at +O(N/B).
pub fn ex_reduction(scale: Scale) -> Table {
    let n = scale.n();
    let mut t = Table::new(
        "EX-RED",
        &format!("§3 reduction: precise (N/b)-partitioning via approximate  [N={n}]"),
        &[
            "b",
            "K=N/b",
            "direct I/O",
            "via-approx (aligned)",
            "via-approx (misaligned)",
            "sweep overhead (scans)",
        ],
    );
    for div in [8u64, 32, 128] {
        let b = n / div;
        let (ctx, f) = fresh_input(n);
        let (r, io_d, _) = measure(&ctx, || precise_partitioning(&f, div));
        r.expect("direct");
        let (ctx2, f2) = fresh_input(n);
        let (r2, io_v, _) = measure(&ctx2, || precise_via_approx(&f2, b));
        r2.expect("via approx");
        // Misaligned step 1 (more, smaller partitions) exercises the
        // residue sweep; overhead must stay O(N/B).
        let (ctx3, f3) = fresh_input(n);
        let (r3, io_m, _) = measure(&ctx3, || precise_via_approx_with_step(&f3, b, (2 * b) / 3));
        r3.expect("via approx misaligned");
        let overhead = (io_m.total_ios() as f64 - io_v.total_ios() as f64).max(0.0);
        t.row(vec![
            b.to_string(),
            div.to_string(),
            fnum(io_d.total_ios() as f64),
            fnum(io_v.total_ios() as f64),
            fnum(io_m.total_ios() as f64),
            fnum(overhead / scan(n)),
        ]);
    }
    t.note("paper §3: the reduction costs F(N,K,b) + O(N/B); with an aligned step 1 (exact-b parts) the sweep is free, with a misaligned step 1 its overhead stays a bounded number of scans");
    t
}

/// EX-IM: the internal-memory contrast (§1.2–1.3) — multi-selection and
/// multi-partition demand the same Θ(N lg K) comparisons in RAM, while
/// their EM I/O bounds separate.
pub fn ex_internal_memory(scale: Scale) -> Table {
    let n = (scale.n() / 4).max(50_000);
    let mut t = Table::new(
        "EX-IM",
        &format!("internal memory: comparisons / (N·lg K), both problems  [N={n}]"),
        &[
            "K",
            "select cmps",
            "partition cmps",
            "select / N·lgK",
            "partition / N·lgK",
            "select/partition",
        ],
    );
    for k in [2u64, 8, 64, 512, 4096] {
        let ranks: Vec<u64> = (1..=k).map(|i| (i * n) / k).collect();
        let interior: Vec<u64> = ranks[..(k - 1) as usize].to_vec();
        let data = workloads::generate(Workload::UniformPerm, n, SEED);

        let mut d1 = data.clone();
        let c1 = emselect::CmpCounter::new();
        let _ = emselect::multi_select_counting(&mut d1, &ranks, &c1);

        let mut d2 = data.clone();
        let c2 = emselect::CmpCounter::new();
        emselect::multi_partition_counting(&mut d2, &interior, &c2);

        let denom = n as f64 * (k as f64).log2().max(1.0);
        t.row(vec![
            k.to_string(),
            fnum(c1.count() as f64),
            fnum(c2.count() as f64),
            fnum(c1.count() as f64 / denom),
            fnum(c2.count() as f64 / denom),
            fnum(c1.count() as f64 / c2.count() as f64),
        ]);
    }
    t.note("paper §1.3: \"in internal memory the two problems have exactly the same complexity: both demand Θ(N lg K) comparisons\" — the normalised columns stay flat and the cross-ratio stays ≈ 1, in contrast to the EM separation of EX-SEP");
    t
}

/// EX-SORT-N: where the win over sorting grows — speedup vs N for the
/// left-grounded partitioning cell (the sort depth grows with lg(N/B),
/// the approximate cost stays a fixed number of scans).
pub fn ex_vs_sort_scaling(scale: Scale) -> Table {
    let mut t = Table::new(
        "EX-SORT-N",
        "crossover scaling: partition/left speedup over sorting vs N  [K=64, b=8N/K]",
        &[
            "N",
            "approx I/O",
            "approx scans",
            "sort I/O",
            "sort scans",
            "speedup",
        ],
    );
    let ns: Vec<u64> = match scale {
        Scale::Quick => vec![50_000, 200_000, 800_000, 3_200_000],
        Scale::Full => vec![200_000, 800_000, 3_200_000, 12_800_000],
    };
    for n in ns {
        let k = 64u64;
        let spec = ProblemSpec::new(n, k, 0, 8 * n / k).expect("feasible");
        let (ctx, f) = fresh_input(n);
        let (r, io_a, _) = measure(&ctx, || approx_partitioning(&f, &spec));
        r.expect("approx");
        let (ctx2, f2) = fresh_input(n);
        let (r2, io_s, _) = measure(&ctx2, || emsort::external_sort(&f2));
        r2.expect("sort");
        let a = io_a.total_ios() as f64;
        let s_io = io_s.total_ios() as f64;
        t.row(vec![
            n.to_string(),
            fnum(a),
            fnum(a / scan(n)),
            fnum(s_io),
            fnum(s_io / scan(n)),
            format!("{:.2}x", s_io / a),
        ]);
    }
    t.note("the approximate algorithm stays at a fixed number of scans while sorting adds a pass every time N/M crosses a power of the merge fan-in — 'who wins' grows with N exactly as the bound ratio lg(N/B)/lg(N/bB) predicts");
    t
}

/// EX-GEO: geometry robustness — the Table-1 ratios must hold across
/// machine shapes (M, B), not just the default simulator geometry.
pub fn ex_geometry(scale: Scale) -> Table {
    let n = scale.n();
    let k = 64u64;
    let mut t = Table::new(
        "EX-GEO",
        &format!("geometry sweep: two-sided cells across (M, B)  [N={n}, K={k}, a=16, b=N/2]"),
        &[
            "M",
            "B",
            "M/B",
            "splitters I/O",
            "s meas/pred",
            "partitioning I/O",
            "p meas/pred",
        ],
    );
    for (m, b) in [(1024usize, 32usize), (4096, 64), (16384, 128), (4096, 256)] {
        let cfg = emcore::EmConfig::new(m, b).expect("valid");
        let spec = ProblemSpec::new(n, k, 16, n / 2).expect("feasible");

        let ctx = emcore::EmContext::new_in_memory(cfg);
        let f = workloads::materialize(&ctx, Workload::UniformPerm, n, SEED).expect("gen");
        let (r, io_s, _) = measure(&ctx, || approx_splitters(&f, &spec));
        let sp = r.expect("splitters");
        let rep = ctx
            .stats()
            .paused(|| verify_splitters(&f, &sp, &spec))
            .expect("verify");
        assert!(rep.ok, "splitters invalid at M={m} B={b}");
        let pred_s = bounds::splitters_two_sided(cfg, n, k, 16, n / 2);

        let ctx2 = emcore::EmContext::new_in_memory(cfg);
        let f2 = workloads::materialize(&ctx2, Workload::UniformPerm, n, SEED).expect("gen");
        let (r2, io_p, _) = measure(&ctx2, || approx_partitioning(&f2, &spec));
        let parts = r2.expect("partitioning");
        let rep = ctx2
            .stats()
            .paused(|| verify_partitioning(&parts, &spec))
            .expect("verify");
        assert!(rep.ok, "partitioning invalid at M={m} B={b}");
        let pred_p = bounds::partitioning_two_sided(cfg, n, k, 16, n / 2);

        t.row(vec![
            m.to_string(),
            b.to_string(),
            (m / b).to_string(),
            fnum(io_s.total_ios() as f64),
            fnum(io_s.total_ios() as f64 / pred_s),
            fnum(io_p.total_ios() as f64),
            fnum(io_p.total_ios() as f64 / pred_p),
        ]);
    }
    t.note("meas/pred stays in a small band across machine shapes; the visible 2x steps are level quantisation — the implementation pays an integer number of distribution levels while the clamped lg_{M/B} formula moves continuously, so the ratio steps exactly where a level boundary is crossed");
    t
}

/// EX-T1: the compact Table-1 summary — all six cells at representative
/// parameters, measured vs predicted vs the sort baseline.
pub fn table1(scale: Scale) -> Table {
    let n = scale.n();
    let k = 64u64;
    let cfg = bench_config();
    let mut t = Table::new(
        "EX-T1",
        &format!("Table 1 summary: all six cells  [N={n}, K={k}, M=4096, B=64]"),
        &[
            "cell",
            "params",
            "measured",
            "predicted",
            "meas/pred",
            "sort (measured)",
        ],
    );
    // Measure the sorting baseline once on the same input.
    let sort_meas = {
        let (ctx, f) = fresh_input(n);
        let (r, io, _) = measure(&ctx, || emsort::external_sort(&f));
        r.expect("sort");
        io.total_ios() as f64
    };
    let _ = bounds::sort_bound(cfg, n); // formula available in bounds::*
    type Runner = Box<dyn Fn(&EmContext, &EmFile<u64>, &ProblemSpec) -> u64>;
    let run_split: Runner = Box::new(|ctx, f, spec| {
        let (r, io, _) = measure(ctx, || approx_splitters(f, spec));
        r.expect("ok");
        io.total_ios()
    });
    let run_part: Runner = Box::new(|ctx, f, spec| {
        let (r, io, _) = measure(ctx, || approx_partitioning(f, spec));
        r.expect("ok");
        io.total_ios()
    });
    let cells: Vec<(&str, ProblemSpec, &Runner, f64)> = vec![
        (
            "K-splitters / right",
            ProblemSpec::new(n, k, 16, n).unwrap(),
            &run_split,
            bounds::splitters_right(cfg, n, k, 16),
        ),
        (
            "K-splitters / left",
            ProblemSpec::new(n, k, 0, 8 * n / k).unwrap(),
            &run_split,
            bounds::splitters_left(cfg, n, k, 8 * n / k),
        ),
        (
            "K-splitters / 2-sided",
            ProblemSpec::new(n, k, 16, n / 2).unwrap(),
            &run_split,
            bounds::splitters_two_sided(cfg, n, k, 16, n / 2),
        ),
        (
            "K-partitioning / right",
            ProblemSpec::new(n, k, 16, n).unwrap(),
            &run_part,
            bounds::partitioning_right(cfg, n, k, 16),
        ),
        (
            "K-partitioning / left",
            ProblemSpec::new(n, k, 0, 8 * n / k).unwrap(),
            &run_part,
            bounds::partitioning_left(cfg, n, k, 8 * n / k),
        ),
        (
            "K-partitioning / 2-sided",
            ProblemSpec::new(n, k, 16, n / 2).unwrap(),
            &run_part,
            bounds::partitioning_two_sided(cfg, n, k, 16, n / 2),
        ),
    ];
    for (name, spec, runner, pred) in cells {
        let (ctx, f) = fresh_input(n);
        let meas = runner(&ctx, &f, &spec) as f64;
        t.row(vec![
            name.into(),
            format!("a={} b={}", spec.a, spec.b),
            fnum(meas),
            fnum(pred),
            fnum(meas / pred),
            fnum(sort_meas),
        ]);
    }
    t.note("reproduction criterion: meas/pred stays O(1) within each row family, and every cell beats the measured sort baseline (cf. paper Table 1)");
    t
}

/// EX-FAULT: I/O overhead of the fault-injection + retry + checksum stack
/// on the recoverable external sort, sweeping the transient fault rate on
/// both backings. Fault-free I/O counts are unchanged by construction
/// (each retried attempt charges only the `retries` counter plus backoff
/// ticks), so the `I/Os` column should be flat and `retries` should grow
/// linearly with the rate.
pub fn ex_fault_overhead(scale: Scale) -> Table {
    let n = scale.n() / 4;
    let mut t = Table::new(
        "EX-FAULT",
        &format!("recoverable sort under injected transient faults  [N={n}]"),
        &[
            "backend",
            "rate",
            "I/Os",
            "retries",
            "backoff ticks",
            "I/O overhead",
        ],
    );
    let rates = [0.0, 0.005, 0.01, 0.02, 0.05, 0.1];
    for backend in ["memory", "disk"] {
        let mut clean_ios = 0.0f64;
        for &rate in &rates {
            let ctx = match backend {
                "memory" => bench_ctx(),
                _ => EmContext::new_on_disk_temp(bench_config()).expect("tempdir"),
            };
            let plan = FaultPlan::new(SEED ^ ((rate * 1e6) as u64)).transient_rate(rate);
            ctx.install_fault_plan(plan.clone());
            ctx.set_retry_policy(RetryPolicy::retries(30));
            // Materialize as an oracle so the measured faults and retries
            // all belong to the sort itself.
            let f = ctx
                .oracle(|| materialize(&ctx, Workload::UniformPerm, n, SEED))
                .expect("materialize");
            let (r, io, _) = measure(&ctx, || emsort::external_sort_recoverable(&f));
            r.expect("recoverable sort");
            let ios = io.total_ios() as f64;
            if rate == 0.0 {
                clean_ios = ios;
            }
            t.row(vec![
                backend.into(),
                format!("{rate}"),
                fnum(ios),
                io.retries.to_string(),
                ctx.backoff_ticks().to_string(),
                format!("{:+.2}%", 100.0 * (ios - clean_ios) / clean_ios),
            ]);
        }
    }
    t.note("transient device faults are cured by bounded retries; retried attempts charge only `retries` + backoff ticks, so billed I/Os stay flat as the fault rate grows");
    t.note("the disk backend additionally verifies a per-block checksum on every read (stride carries 8 checksum bytes; billed bytes count payload only)");
    t
}

/// EX-PARALLEL: parallel external sort — wall-clock speedup vs worker
/// count `W` on both backends, with the buffer-pool cache armed. The
/// parallel sort keeps run boundaries, merge grouping, and fan-in
/// identical to the sequential plan, so logical I/Os and the sorted
/// output digest must match at every `W`; only wall-clock moves. Both
/// invariants are asserted row by row against the `W = 1` baseline.
pub fn ex_parallel(scale: Scale) -> Table {
    let n = scale.n();
    let cache_blocks = 128usize;
    // The disk backend lands in the OS page cache, where a "transfer" is a
    // memcpy and overlapping I/O with compute can win nothing — especially
    // on a single-core host. Simulate a fast-SSD-like per-block latency so
    // wall-clock reflects the I/O model the sort is designed for (the
    // memory backend stays unthrottled as the compute-bound contrast).
    let disk_latency_us = 25u64;
    let mut t = Table::new(
        "EX-PARALLEL",
        &format!(
            "parallel external sort: speedup vs workers  \
             [N={n}, cache={cache_blocks} blocks, disk latency {disk_latency_us}µs/block]"
        ),
        &[
            "backend",
            "W",
            "wall ms",
            "speedup",
            "logical I/O",
            "physical I/O",
            "cache hit %",
        ],
    );
    for backend in ["memory", "disk"] {
        let mut base = None; // (wall seconds, logical I/Os, digest) at W = 1
        for w in [1usize, 2, 4] {
            let cfg = bench_config()
                .with_workers(w)
                .with_cache_blocks(cache_blocks);
            let ctx = match backend {
                "memory" => EmContext::new_in_memory(cfg),
                _ => EmContext::new_on_disk_temp(cfg.with_device_latency_us(disk_latency_us))
                    .expect("tempdir"),
            };
            let f = materialize(&ctx, Workload::UniformPerm, n, SEED).expect("materialize");
            let (r, io, dt) = measure(&ctx, || emsort::external_sort(&f));
            let sorted = r.expect("sort");
            let digest = ctx
                .stats()
                .paused(|| sorted.to_vec())
                .expect("oracle read")
                .iter()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, &x| {
                    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
                });
            let secs = dt.as_secs_f64();
            let (base_secs, base_io, base_digest) =
                *base.get_or_insert((secs, io.total_ios(), digest));
            assert_eq!(
                io.total_ios(),
                base_io,
                "{backend}: logical I/Os at W={w} diverge from W=1"
            );
            assert_eq!(
                digest, base_digest,
                "{backend}: sorted output at W={w} diverges from W=1"
            );
            t.row(vec![
                backend.into(),
                w.to_string(),
                fnum(secs * 1e3),
                format!("{:.2}x", base_secs / secs),
                io.total_ios().to_string(),
                io.physical_ios().to_string(),
                format!("{:.1}", 100.0 * io.cache_hit_rate()),
            ]);
        }
    }
    t.note("logical I/Os and output digests are identical at every W (asserted): parallelism changes who does each unit of the sequential plan, never the plan itself");
    t.note("disk speedup comes from overlap — W run-formation workers read/sort/write concurrently, and merges overlap prefetch reads, the loser tree, and write-behind — so block-transfer latency is reclaimed even on a single-core host; the unthrottled memory backend is compute-bound and shows no such gain there");
    t.note("a streaming sort re-references almost nothing, so the buffer pool's hit rate stays near zero — the EM model's point that caching cannot rescue one-pass algorithms; hits appear on re-referencing workloads (see emcore::BlockCache tests)");
    t
}

/// Run every experiment and emit all tables.
pub fn all_experiments(scale: Scale) -> Vec<Table> {
    let tables = vec![
        table1(scale),
        ex_splitters_right(scale),
        ex_splitters_left(scale),
        ex_splitters_two_sided(scale),
        ex_partition_right(scale),
        ex_partition_left(scale),
        ex_partition_two_sided(scale),
        ex_separation(scale),
        ex_vs_sort(scale),
        ex_base_case(scale),
        ex_lower_bounds(scale),
        ex_ablation_sampling(scale),
        ex_ablation_fanout(scale),
        ex_ablation_engine(scale),
        ex_internal_memory(scale),
        ex_vs_sort_scaling(scale),
        ex_geometry(scale),
        ex_reduction(scale),
        ex_fault_overhead(scale),
        ex_parallel(scale),
        crate::serve_bench::ex_serve(scale),
        crate::crash_sweep::ex_recovery(scale),
    ];
    for t in &tables {
        emit(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke-test the cheap experiments end to end at a tiny scale by
    // monkey-scaling through Scale::Quick. These guard the harness
    // plumbing; full runs happen via the binaries.

    #[test]
    fn table1_runs_and_beats_sort() {
        let t = table1(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let meas: f64 = row[2].replace(",", "").parse().unwrap();
            let sort: f64 = row[5].replace(",", "").parse().unwrap();
            assert!(
                meas < sort,
                "cell {} measured {meas} does not beat measured sort {sort}",
                row[0]
            );
        }
    }

    #[test]
    fn separation_table_shape() {
        let t = ex_separation(Scale::Quick);
        assert!(t.rows.len() >= 3);
        // Multi-select must track multi-partition within constant-factor
        // noise everywhere (both are Θ(N/B·lg) problems; the bound gap is
        // ≤ 2x at simulator scale).
        for row in &t.rows {
            let ratio: f64 = row[3].parse().unwrap();
            assert!(
                (0.7..=4.0).contains(&ratio),
                "K={} ratio {} outside constant-factor band",
                row[0],
                ratio
            );
        }
    }
}
