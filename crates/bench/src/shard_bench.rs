//! EX-SHARD: the sharded scale-out serving campaign.
//!
//! Splits one dataset across an 8-shard [`emserve::Router`] fleet
//! (splitter-partitioned stores, co-ranking scatter/gather) and drives it
//! with waves of concurrent clients, against the single-store
//! [`emserve::QueryServer`] baseline on the same data and query mix. The
//! campaign audits the shard layer's contract in-harness:
//!
//! * **bit-identity** — every exact answer from the fleet equals the
//!   one-store oracle's (the data is a shuffled permutation of `0..n`, so
//!   the element of rank `r` is `r − 1`);
//! * **conservation** — the fleet shares one metrics registry, and the
//!   end-to-end outcome histograms must hold exactly one sample per
//!   accepted sub-query across all shards:
//!   `family_total(em_serve_query_e2e_us) == merged.queries`;
//! * **typed failure** — no query may error under the clean schedule.
//!
//! Reported per cell: p50/p99 client-observed latency and amortized
//! logical I/Os per client query (build I/Os listed separately), so the
//! scatter/gather overhead of routing is visible against the one-store
//! baseline at equal concurrency.

use std::time::Instant;

use emcore::{EmConfig, EmContext, SplitMix64};
use emserve::{
    shard_fleet_in_memory, QueryServer, QueryService, Router, ServeOptions, ServiceTicket,
};

use crate::harness::{bench_config, emit, Scale, Table};

const SEED: u64 = 20140624;

/// The audited result of one `(mode, clients)` cell.
#[derive(Debug)]
pub struct ShardOutcome {
    /// `"single"` (one [`QueryServer`]) or `"fleet"` (a [`Router`]).
    pub mode: &'static str,
    /// Shards behind the service (1 for the single-store baseline).
    pub shards: usize,
    /// Concurrent client threads driving the wave.
    pub clients: usize,
    /// Client-visible queries submitted.
    pub queries: u64,
    /// Exact answers received (each verified against the oracle).
    pub exact: u64,
    /// Exact answers that differed from the one-store oracle.
    pub mismatches: u64,
    /// Queries that failed or came back degraded under a clean schedule.
    pub errors: u64,
    /// Median client-observed answer latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile client-observed answer latency, microseconds.
    pub p99_us: u64,
    /// Logical I/Os spent building/registering the dataset.
    pub build_ios: u64,
    /// Logical I/Os spent answering the wave, summed across the fleet.
    pub query_ios: u64,
    /// Whether the e2e histograms conserve against the merged report.
    pub conserved: bool,
}

impl ShardOutcome {
    /// Bit-identical, error-free, and metrics-conserving.
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.errors == 0 && self.conserved
    }

    /// Amortized logical I/Os per client query.
    pub fn ios_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.query_ios as f64 / self.queries as f64
        }
    }
}

/// The deterministic two-rank query a given `(client, step)` issues —
/// spread over the whole rank space so fleet queries routinely straddle
/// shard boundaries.
fn wave_ranks(client: usize, step: usize, n: u64) -> Vec<u64> {
    let h = client as u64 * 7919 + step as u64 * 613;
    vec![1 + (h * 2654435761 % n), 1 + ((h * 97 + 13) * 40503 % n)]
}

/// Drive `clients × per_client` queries against any service and audit
/// every answer against the permutation oracle. Returns the sorted
/// latency ladder (µs); mismatch/error counts land in `o`.
fn drive<S: QueryService<u64> + Sync>(
    svc: &S,
    clients: usize,
    per_client: usize,
    n: u64,
    o: &mut ShardOutcome,
) -> Vec<u64> {
    let results: Vec<(Vec<u64>, u64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    let (mut exact, mut mismatches, mut errors) = (0u64, 0u64, 0u64);
                    for i in 0..per_client {
                        let ranks = wave_ranks(c, i, n);
                        let t0 = Instant::now();
                        let answer = svc.rank("ds", ranks.clone()).and_then(ServiceTicket::wait);
                        lat.push(t0.elapsed().as_micros() as u64);
                        match answer {
                            Ok(a) if !a.approx => {
                                exact += 1;
                                let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
                                if a.values != want {
                                    mismatches += 1;
                                }
                            }
                            Ok(_) | Err(_) => errors += 1,
                        }
                    }
                    (lat, exact, mismatches, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let mut lat = Vec::new();
    for (l, exact, mismatches, errors) in results {
        lat.extend(l);
        o.queries += per_client as u64;
        o.exact += exact;
        o.mismatches += mismatches;
        o.errors += errors;
    }
    lat.sort_unstable();
    lat
}

/// `p`-th percentile of a sorted ladder (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn outcome(mode: &'static str, shards: usize, clients: usize) -> ShardOutcome {
    ShardOutcome {
        mode,
        shards,
        clients,
        queries: 0,
        exact: 0,
        mismatches: 0,
        errors: 0,
        p50_us: 0,
        p99_us: 0,
        build_ios: 0,
        query_ios: 0,
        conserved: false,
    }
}

/// One fleet cell: build an in-memory `shards`-way fleet, split the
/// dataset, drive the wave, audit, and check conservation over the
/// fleet-shared registry.
pub fn fleet_cell(shards: usize, clients: usize, n: u64, per_client: usize) -> ShardOutcome {
    let mut o = outcome("fleet", shards, clients);
    let config: EmConfig = bench_config();
    let (rc, scs) = shard_fleet_in_memory(config, shards);
    rc.metrics().set_enabled(true);
    let fleet_ios = |rc: &EmContext, scs: &[EmContext]| -> u64 {
        rc.stats().snapshot().total_ios()
            + scs
                .iter()
                .map(|c| c.stats().snapshot().total_ios())
                .sum::<u64>()
    };
    let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).expect("fleet start");

    let mut data: Vec<u64> = (0..n).collect();
    SplitMix64::new(SEED).shuffle(&mut data);
    let before = fleet_ios(&rc, &scs);
    router.register("ds", data).expect("shard build");
    o.build_ios = fleet_ios(&rc, &scs) - before;

    let before = fleet_ios(&rc, &scs);
    let lat = drive(&router, clients, per_client, n, &mut o);
    o.query_ios = fleet_ios(&rc, &scs) - before;
    o.p50_us = percentile(&lat, 50.0);
    o.p99_us = percentile(&lat, 99.0);

    // Conservation across the fleet: one e2e histogram sample per
    // accepted sub-query, on the registry every shard context shares.
    let merged = router.stats().expect("merged report");
    let snap = rc.metrics().snapshot(rc.clock().now_us());
    o.conserved = snap.family_total("em_serve_query_e2e_us") == merged.queries;
    assert!(
        o.conserved,
        "fleet e2e histograms must conserve: family_total={} merged.queries={}",
        snap.family_total("em_serve_query_e2e_us"),
        merged.queries
    );
    router.shutdown().expect("fleet shutdown");
    o
}

/// The single-store baseline cell: one [`QueryServer`] on one context,
/// same data, same wave, same audits — through the same
/// [`QueryService`] trait the fleet serves.
pub fn single_cell(clients: usize, n: u64, per_client: usize) -> ShardOutcome {
    let mut o = outcome("single", 1, clients);
    let ctx = EmContext::new_in_memory(bench_config());
    ctx.metrics().set_enabled(true);
    let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).expect("start");

    let mut data: Vec<u64> = (0..n).collect();
    SplitMix64::new(SEED).shuffle(&mut data);
    let before = ctx.stats().snapshot().total_ios();
    QueryService::register(&server, "ds", data).expect("register");
    o.build_ios = ctx.stats().snapshot().total_ios() - before;

    let before = ctx.stats().snapshot().total_ios();
    let lat = drive(&server, clients, per_client, n, &mut o);
    o.query_ios = ctx.stats().snapshot().total_ios() - before;
    o.p50_us = percentile(&lat, 50.0);
    o.p99_us = percentile(&lat, 99.0);

    let report = QueryService::<u64>::stats(&server).expect("report");
    let snap = ctx.metrics().snapshot(ctx.clock().now_us());
    o.conserved = snap.family_total("em_serve_query_e2e_us") == report.queries;
    assert!(
        o.conserved,
        "single-store e2e histograms must conserve: family_total={} report.queries={}",
        snap.family_total("em_serve_query_e2e_us"),
        report.queries
    );
    server.shutdown().expect("shutdown");
    o
}

/// EX-SHARD: single-store baseline vs an 8-shard fleet, at 1 and many
/// concurrent clients.
pub fn ex_shard(scale: Scale) -> Table {
    let (n, per_client) = match scale {
        Scale::Quick => (40_000u64, 16usize),
        Scale::Full => (400_000u64, 64usize),
    };
    let client_waves = [1usize, 8];
    let mut t = Table::new(
        "EX-SHARD",
        &format!(
            "sharded scale-out serving: 8-shard co-ranking router vs one-store baseline  [N={n}]"
        ),
        &[
            "mode",
            "shards",
            "clients",
            "queries",
            "exact",
            "mismatch",
            "errors",
            "p50_us",
            "p99_us",
            "build_ios",
            "query_ios",
            "ios/query",
            "conserved",
        ],
    );
    let mut sick = 0u64;
    for &clients in &client_waves {
        for o in [
            single_cell(clients, n, per_client),
            fleet_cell(8, clients, n, per_client),
        ] {
            if !o.clean() {
                sick += 1;
                eprintln!("[EX-SHARD] sick cell: {o:?}");
            }
            t.row(vec![
                o.mode.into(),
                o.shards.to_string(),
                o.clients.to_string(),
                o.queries.to_string(),
                o.exact.to_string(),
                o.mismatches.to_string(),
                o.errors.to_string(),
                o.p50_us.to_string(),
                o.p99_us.to_string(),
                o.build_ios.to_string(),
                o.query_ios.to_string(),
                crate::harness::fnum(o.ios_per_query()),
                if o.conserved { "yes" } else { "NO" }.into(),
            ]);
        }
    }
    t.note("every exact answer is compared bit-for-bit against the one-store oracle (rank r of the shuffled permutation is r−1); any mismatch, error, or degraded answer under this clean schedule marks the cell sick");
    t.note("conservation is asserted in-harness per cell: family_total(em_serve_query_e2e_us) on the fleet-shared registry == merged ServeReport queries across all shards");
    t.note("build_ios counts the splitter-partitioned shard build (fleet) or plain registration (single); query_ios and ios/query cover only the client wave");
    if sick > 0 {
        t.note(format!("SICK CELLS: {sick} (see stderr)"));
    }
    t
}

/// Run the campaign, emit the table, and report whether every cell was
/// clean (used by the `shard_bench` binary and the CI smoke job).
pub fn run_shard(scale: Scale) -> (Table, bool) {
    let t = ex_shard(scale);
    emit(&t);
    let clean = !t.notes.iter().any(|s| s.starts_with("SICK CELLS"));
    (t, clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_cell_is_bit_identical_and_conserved() {
        let o = fleet_cell(8, 2, 4000, 4);
        assert!(o.clean(), "{o:?}");
        assert_eq!(o.queries, 8);
        assert_eq!(o.exact, 8);
    }

    #[test]
    fn single_cell_baseline_is_clean() {
        let o = single_cell(2, 4000, 4);
        assert!(o.clean(), "{o:?}");
        assert_eq!(o.queries, o.exact);
    }

    #[test]
    fn percentile_ladder_is_sane() {
        let lat = vec![1, 2, 3, 4, 100];
        assert_eq!(percentile(&lat, 50.0), 3);
        assert_eq!(percentile(&lat, 99.0), 100);
        assert_eq!(percentile(&[], 99.0), 0);
    }
}
