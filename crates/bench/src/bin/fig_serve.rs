//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_serve(bench::Scale::from_env()));
}
