//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_internal_memory(bench::Scale::from_env()));
}
