//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_vs_sort_scaling(bench::Scale::from_env()));
}
