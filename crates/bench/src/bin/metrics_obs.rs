//! EX-OBS observability campaign: see DESIGN.md per-experiment index.
//! Exits nonzero if any live scrape violated conservation, percentile
//! monotonicity, breaker-gauge honesty, or the warm-beats-cold
//! inequality — the CI metrics-smoke gate.
use std::process::ExitCode;

fn main() -> ExitCode {
    let (_, clean) = bench::run_obs(bench::Scale::from_env());
    if clean {
        ExitCode::SUCCESS
    } else {
        eprintln!("[EX-OBS] campaign found sick cells");
        ExitCode::FAILURE
    }
}
