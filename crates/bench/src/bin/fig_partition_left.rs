//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_partition_left(bench::Scale::from_env()));
}
