//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_fault_overhead(bench::Scale::from_env()));
}
