//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_ablation_fanout(bench::Scale::from_env()));
}
