//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_partition_right(bench::Scale::from_env()));
}
