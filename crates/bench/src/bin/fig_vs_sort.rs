//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_vs_sort(bench::Scale::from_env()));
}
