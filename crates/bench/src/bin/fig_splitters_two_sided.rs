//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_splitters_two_sided(bench::Scale::from_env()));
}
