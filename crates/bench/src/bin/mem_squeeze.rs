//! EX-SQUEEZE memory-squeeze campaign: see DESIGN.md per-experiment index.
//! Exits nonzero on any oracle mismatch, unexpected rejection, broken
//! degradation curve, or starved query that errored instead of degrading
//! — the CI smoke gate for the memory governor.
use std::process::ExitCode;

fn main() -> ExitCode {
    let (_, clean) = bench::run_squeeze(bench::Scale::from_env());
    if clean {
        ExitCode::SUCCESS
    } else {
        eprintln!("[EX-SQUEEZE] campaign found sick cells");
        ExitCode::FAILURE
    }
}
