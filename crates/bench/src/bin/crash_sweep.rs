//! EX-RECOVERY crash-sweep campaign: see DESIGN.md per-experiment index.
fn main() {
    bench::run_campaign(bench::Scale::from_env());
}
