//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_parallel(bench::Scale::from_env()));
}
