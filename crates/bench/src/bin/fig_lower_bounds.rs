//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_lower_bounds(bench::Scale::from_env()));
}
