//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_splitters_left(bench::Scale::from_env()));
}
