//! EX-GRAPH semi-external graph campaign: see DESIGN.md per-experiment
//! index. Exits nonzero on any digest divergence (across backends or
//! worker counts), recovery-invariant violation, orphaned file, or
//! serve/bucket integration failure — the CI graph-smoke gate.
use std::process::ExitCode;

fn main() -> ExitCode {
    let (_, clean) = bench::run_graph(bench::Scale::from_env());
    if clean {
        ExitCode::SUCCESS
    } else {
        eprintln!("[EX-GRAPH] campaign found sick cells");
        ExitCode::FAILURE
    }
}
