//! EX-CHAOS serve-chaos campaign: see DESIGN.md per-experiment index.
//! Exits nonzero on any hung ticket, oracle mismatch, dishonest degraded
//! bound, failed heal, or failed reopen — the CI smoke gate.
use std::process::ExitCode;

fn main() -> ExitCode {
    let (_, clean) = bench::run_chaos(bench::Scale::from_env());
    if clean {
        ExitCode::SUCCESS
    } else {
        eprintln!("[EX-CHAOS] campaign found sick cells");
        ExitCode::FAILURE
    }
}
