//! Run the complete experiment suite (all DESIGN.md index rows).
fn main() {
    let scale = bench::Scale::from_env();
    println!("# em-splitters experiment suite (scale: {scale:?})");
    bench::all_experiments(scale);
}
