//! EX-SHARD sharded-serving campaign: see DESIGN.md per-experiment index.
//! Exits nonzero on any oracle mismatch, unexpected error, or broken
//! metrics conservation — the CI shard-smoke gate.
use std::process::ExitCode;

fn main() -> ExitCode {
    let (_, clean) = bench::run_shard(bench::Scale::from_env());
    if clean {
        ExitCode::SUCCESS
    } else {
        eprintln!("[EX-SHARD] campaign found sick cells");
        ExitCode::FAILURE
    }
}
