//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_geometry(bench::Scale::from_env()));
}
