//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_base_case(bench::Scale::from_env()));
}
