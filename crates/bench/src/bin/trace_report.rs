//! `trace_report` — render an `emcore` JSONL trace as a span tree, a
//! per-file access summary, and (optionally) flamegraph folded stacks.
//!
//! ```text
//! trace_report <trace.jsonl> [--folded <out.folded>]
//! ```
//!
//! Exits non-zero when the trace fails to parse or contains unclosed
//! spans (a traced run that crashed mid-phase), so CI smoke jobs can
//! assert trace health with a single invocation.

use std::path::PathBuf;
use std::process::ExitCode;

use emcore::TraceReport;

fn usage() -> ! {
    eprintln!("usage: trace_report <trace.jsonl> [--folded <out.folded>]");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut trace: Option<PathBuf> = None;
    let mut folded: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--folded" => match it.next() {
                Some(p) => folded = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if trace.is_none() => trace = Some(PathBuf::from(a)),
            _ => usage(),
        }
    }
    let Some(trace) = trace else { usage() };

    let report = match TraceReport::load(&trace) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_report: cannot load {}: {e}", trace.display());
            return ExitCode::FAILURE;
        }
    };

    print!("{}", report.render_tree());
    println!();
    print!("{}", report.render_files());

    if let Some(out) = folded {
        let stacks = report.folded_stacks();
        if let Err(e) = std::fs::write(&out, stacks) {
            eprintln!("trace_report: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[folded] {}", out.display());
    }

    let unclosed = report.unclosed();
    if !unclosed.is_empty() {
        eprintln!(
            "trace_report: {} unclosed span(s): {}",
            unclosed.len(),
            unclosed
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
