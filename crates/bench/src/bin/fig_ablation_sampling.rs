//! Experiment binary: see DESIGN.md per-experiment index.
fn main() {
    bench::emit(&bench::ex_ablation_sampling(bench::Scale::from_env()));
}
