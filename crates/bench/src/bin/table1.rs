//! Regenerate the paper's Table 1 (compact summary of all six cells).
fn main() {
    bench::emit(&bench::table1(bench::Scale::from_env()));
}
