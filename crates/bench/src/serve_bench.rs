//! EX-SERVE: amortized query cost in the serving layer (`emserve`).
//!
//! Two effects, both predicted by the paper's bound `B(N, K)` for selecting
//! `K` ranks together (Theorem 4) and by online multiselection:
//!
//! 1. **Coalescing** — answering a batch of `b` queries with one
//!    multi-select pass costs far less than `b` independent selections, so
//!    logical I/Os *per query* fall strictly as the batch size grows.
//! 2. **Index warmth** — with refinement on, every answered batch leaves a
//!    journaled pivot skeleton behind; replaying the same zipfian query mix
//!    against the warm index answers repeats from memory and recurses only
//!    into the narrowest known segment, costing strictly less than the
//!    cold pass.
//!
//! The experiment also re-checks the correctness contract end to end:
//! every batched answer must be bit-identical to a per-query
//! `emselect::multi_select` on the same data.

use emcore::{EmContext, EmFile};
use emserve::{QueryServer, ServeOptions};
use workloads::zipf_query_ranks;

use crate::harness::{bench_ctx, fnum, Scale, Table};

const SEED: u64 = 20140623;

/// Answer `queries` (one rank list per query) through a fresh server in
/// batches of `batch`, with or without index refinement. Returns the
/// answers, the logical I/Os spent answering (registration excluded), and
/// the server's index-hit count.
fn run_server(
    ctx: &EmContext,
    data: &[u64],
    queries: &[Vec<u64>],
    batch: usize,
    refine: bool,
) -> (Vec<Vec<u64>>, u64, u64) {
    let opts = ServeOptions::builder().refine(refine).build();
    let mut server = QueryServer::<u64>::start(ctx, opts).expect("server start");
    let client = server.client().expect("server running");
    client.register("ds", data.to_vec()).expect("register");
    let before = ctx.stats().snapshot();
    let mut answers = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(batch.max(1)) {
        let tickets = client
            .submit_batch("ds", chunk.to_vec())
            .expect("submit batch");
        for t in tickets {
            answers.push(t.wait().expect("answer").into_values());
        }
    }
    let ios = ctx.stats().snapshot().since(&before).total_ios();
    drop(client);
    let report = server.shutdown().expect("clean shutdown");
    (answers, ios, report.index_hits)
}

/// EX-SERVE: amortized logical I/Os per query vs batch size and index
/// warmth, against a select-per-query baseline.
pub fn ex_serve(scale: Scale) -> Table {
    let n = scale.n() / 8;
    let nq = 64usize;
    let mut t = Table::new(
        "EX-SERVE",
        &format!("serving layer: amortized I/Os per query  [N={n}, {nq} queries]"),
        &[
            "mode",
            "batch",
            "refine",
            "queries",
            "I/Os",
            "I/Os per query",
            "index hits",
        ],
    );

    // A zipfian single-rank query mix: hot ranks repeat, like real
    // quantile traffic.
    let ranks = zipf_query_ranks(n, 16, 1.1, nq, SEED);
    let queries: Vec<Vec<u64>> = ranks.iter().map(|&r| vec![r]).collect();

    // Ground truth once, via plain per-query multi-select.
    let want: Vec<Vec<u64>> = {
        let ctx = bench_ctx();
        let data = workloads::generate(workloads::Workload::UniformPerm, n, SEED);
        let f = EmFile::from_slice(&ctx, &data).expect("materialize");
        queries
            .iter()
            .map(|q| emselect::multi_select(&f, q).expect("select"))
            .collect()
    };
    let data = workloads::generate(workloads::Workload::UniformPerm, n, SEED);

    // --- coalescing sweep, cold index each run, no refinement ---
    let mut per_query = Vec::new();
    for &batch in &[1usize, 4, 16] {
        let ctx = bench_ctx();
        let (answers, ios, hits) = run_server(&ctx, &data, &queries, batch, false);
        assert_eq!(
            answers, want,
            "batched answers must be bit-identical to per-query multi-select"
        );
        let ipq = ios as f64 / nq as f64;
        per_query.push(ipq);
        let mode = if batch == 1 {
            "select-per-query"
        } else {
            "coalesced"
        };
        t.row(vec![
            mode.into(),
            batch.to_string(),
            "no".into(),
            nq.to_string(),
            ios.to_string(),
            fnum(ipq),
            hits.to_string(),
        ]);
    }
    assert!(
        per_query.windows(2).all(|w| w[1] < w[0]),
        "amortized I/Os per query must fall strictly with batch size: {per_query:?}"
    );

    // --- index warmth: the same mix twice on one server, refinement on ---
    let ctx = bench_ctx();
    let opts = ServeOptions::builder().refine(true).build();
    let mut server = QueryServer::<u64>::start(&ctx, opts).expect("server start");
    let client = server.client().expect("server running");
    client.register("ds", data.clone()).expect("register");
    let pass =
        |label: &str| -> (u64, u64) {
            let before = ctx.stats().snapshot();
            let hits_before = client.report().expect("report").index_hits;
            for chunk in queries.chunks(4) {
                let tickets = client
                    .submit_batch("ds", chunk.to_vec())
                    .expect("submit batch");
                for (t, w) in tickets.into_iter().zip(chunk.iter().map(|q| {
                    want[queries.iter().position(|x| x == q).expect("query known")].clone()
                })) {
                    assert_eq!(t.wait().expect("answer").values, w, "{label}: wrong answer");
                }
            }
            let ios = ctx.stats().snapshot().since(&before).total_ios();
            let hits = client.report().expect("report").index_hits - hits_before;
            (ios, hits)
        };
    let (cold_ios, cold_hits) = pass("cold");
    let (warm_ios, warm_hits) = pass("warm");
    drop(client);
    server.shutdown().expect("clean shutdown");
    assert!(
        warm_ios < cold_ios,
        "warm splitter index must beat cold: warm {warm_ios} vs cold {cold_ios}"
    );
    for (mode, ios, hits) in [("cold", cold_ios, cold_hits), ("warm", warm_ios, warm_hits)] {
        t.row(vec![
            format!("index-{mode}"),
            "4".into(),
            "yes".into(),
            nq.to_string(),
            ios.to_string(),
            fnum(ios as f64 / nq as f64),
            hits.to_string(),
        ]);
    }

    t.note("coalesced batches answer b queries in one multi-select pass: B(N, b) ≪ b·B(N, 1)");
    t.note("the warm pass replays the identical zipfian mix against the refined pivot skeleton");
    t
}
