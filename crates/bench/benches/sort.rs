//! Wall-clock: external merge sort on both backends and both run-formation
//! strategies (the paper's baseline algorithm).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emcore::{EmConfig, EmContext};
use emsort::{external_sort_with, RunFormation};
use workloads::{materialize, Workload};

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("external_sort");
    g.sample_size(10);
    for &n in &[50_000u64, 200_000] {
        for (name, strat) in [
            ("load-sort", RunFormation::LoadSort),
            ("replacement", RunFormation::ReplacementSelection),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |bch, &n| {
                let ctx = EmContext::new_in_memory(EmConfig::medium());
                let f = materialize(&ctx, Workload::UniformPerm, n, 1).unwrap();
                bch.iter(|| external_sort_with(&f, strat, None).unwrap());
            });
        }
    }
    g.finish();

    let mut g = c.benchmark_group("external_sort_file_backend");
    g.sample_size(10);
    let n = 50_000u64;
    g.bench_function(BenchmarkId::new("load-sort", n), |bch| {
        let ctx = EmContext::new_on_disk_temp(EmConfig::medium()).unwrap();
        let f = materialize(&ctx, Workload::UniformPerm, n, 1).unwrap();
        bch.iter(|| external_sort_with(&f, RunFormation::LoadSort, None).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
