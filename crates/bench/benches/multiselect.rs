//! Wall-clock: multi-selection (Theorem 4) vs the sort-based baseline,
//! across K.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emcore::{EmConfig, EmContext};
use workloads::{materialize, Workload};

fn bench_multiselect(c: &mut Criterion) {
    let n = 200_000u64;
    let mut g = c.benchmark_group("multi_select");
    g.sample_size(10);
    for &k in &[4u64, 64, 1024] {
        let ranks: Vec<u64> = (1..=k).map(|i| i * (n / k)).collect();
        g.bench_with_input(BenchmarkId::new("theorem4", k), &ranks, |bch, ranks| {
            let ctx = EmContext::new_in_memory(EmConfig::medium());
            let f = materialize(&ctx, Workload::UniformPerm, n, 2).unwrap();
            bch.iter(|| emselect::multi_select(&f, ranks).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("sort-baseline", k), &ranks, |bch, ranks| {
            let ctx = EmContext::new_in_memory(EmConfig::medium());
            let f = materialize(&ctx, Workload::UniformPerm, n, 2).unwrap();
            bch.iter(|| apsplit::sort_based_multi_select(&f, ranks).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_multiselect);
criterion_main!(benches);
