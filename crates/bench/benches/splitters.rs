//! Wall-clock: approximate K-splitters, all three groundedness regimes,
//! vs the sort baseline.
use apsplit::{approx_splitters, sort_based_splitters, ProblemSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emcore::{EmConfig, EmContext};
use workloads::{materialize, Workload};

fn bench_splitters(c: &mut Criterion) {
    let n = 200_000u64;
    let k = 64u64;
    let mut g = c.benchmark_group("approx_splitters");
    g.sample_size(10);
    let cases = [
        ("right a=4", ProblemSpec::new(n, k, 4, n).unwrap()),
        ("left b=8N/K", ProblemSpec::new(n, k, 0, 8 * n / k).unwrap()),
        ("two-sided", ProblemSpec::new(n, k, 4, n / 2).unwrap()),
    ];
    for (name, spec) in cases {
        g.bench_with_input(BenchmarkId::new("approx", name), &spec, |bch, spec| {
            let ctx = EmContext::new_in_memory(EmConfig::medium());
            let f = materialize(&ctx, Workload::UniformPerm, n, 3).unwrap();
            bch.iter(|| approx_splitters(&f, spec).unwrap());
        });
    }
    g.bench_function("sort-baseline", |bch| {
        let spec = ProblemSpec::new(n, k, 0, n).unwrap();
        let ctx = EmContext::new_in_memory(EmConfig::medium());
        let f = materialize(&ctx, Workload::UniformPerm, n, 3).unwrap();
        bch.iter(|| sort_based_splitters(&f, &spec).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_splitters);
criterion_main!(benches);
