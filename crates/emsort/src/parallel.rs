//! Parallel external merge sort: `W` workers over one shared context.
//!
//! [`parallel_external_sort`] is the multi-threaded counterpart of
//! [`crate::external_sort`], built on `std::thread` + `std::sync::mpsc`
//! only. Its defining property is that it is *I/O-identical* to the
//! sequential sort: run boundaries, merge pass structure and fan-in are
//! exactly those of `external_sort`, so logical I/O counts and the sorted
//! output are byte-for-byte the same at any worker count — only wall-clock
//! time changes.
//!
//! ## Threading structure
//!
//! * **Run formation** — chunk boundaries are those of
//!   [`crate::form_runs_load_sort`]. When they fall on block boundaries
//!   (the common case: the working capacity is a whole number of blocks),
//!   `W` workers claim chunk indices from an atomic counter and read,
//!   sort, and write their chunks entirely on their own — the read scan
//!   itself is parallel, and every input block is still read exactly once.
//!   Otherwise a coordinator thread scans the input sequentially and hands
//!   `(seq, chunk)` pairs to the workers over a bounded channel. Either
//!   way runs are re-ordered by sequence number so the merge sees them in
//!   scan order.
//! * **Merge passes** — a pass merges groups of `fan_in` runs exactly as
//!   [`crate::merge_runs_with_fan_in`] would; groups within a pass are
//!   independent, so up to `W` of them merge concurrently.
//! * **Merge overlap** — when the context simulates device latency
//!   (`EmConfig::device_latency_us > 0`), each merge additionally overlaps
//!   transfers with computation: one *prefetch thread per input run* reads
//!   blocks ahead into a small bounded channel, and a dedicated writer
//!   thread drains full output blocks from the merging thread — device
//!   reads, loser-tree comparisons, and device writes all proceed
//!   concurrently, so even the final single-group pass benefits from
//!   parallelism. On a zero-latency backend a transfer is a memcpy and the
//!   channel handoffs would be pure overhead, so plain in-thread merges
//!   are used instead; either way the logical I/O schedule is the same.
//!
//! ## Memory model
//!
//! In the spirit of distributed EM sorting (cf. Rahn, Sanders & Singler),
//! the parallel sort is modelled as `W` cooperating EM machines, each with
//! its own budget of `M` words; the aggregate in-flight footprint is
//! `O(W·M)`. All charges still go through the shared [`emcore::MemoryTracker`]
//! so peak usage is reported honestly, but a *strict* context enforces a
//! single-machine budget and therefore falls back to the sequential sort.
//!
//! Fault injection composes with the parallel path, but positional
//! triggers (`Trigger::OnCount`) fire on a global counter and are
//! therefore nondeterministic under concurrency; crash-recovery tests
//! should keep `workers = 1`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Mutex;

use emcore::{EmContext, EmError, EmFile, MemCharge, Record, Result};

use crate::loser_tree::{LoserTree, Source};
use crate::merge::{max_merge_fan_in_now, merge_once};
use crate::runs::working_capacity;
use crate::sort::external_sort_with;
use crate::RunFormation;

/// How many block batches a prefetch thread may run ahead of the merge.
const PREFETCH_DEPTH: usize = 2;

/// Sort `input` using `ctx.config().workers()` threads.
///
/// Produces the same sorted file and charges the same logical I/Os as
/// [`crate::external_sort`] — run boundaries, pass structure and fan-in
/// are identical — but forms runs and merges independent groups
/// concurrently, and overlaps the final merge with prefetch threads.
///
/// Falls back to the sequential sort when `workers <= 1` or when the
/// context meters memory *strictly* (the parallel sort's aggregate
/// footprint is `W` machines × `M` words, which a strict single-machine
/// budget would reject).
pub fn parallel_external_sort<T: Record>(input: &EmFile<T>) -> Result<EmFile<T>> {
    let ctx = input.ctx().clone();
    let workers = ctx.config().workers();
    if workers <= 1 || ctx.mem().is_strict() {
        return external_sort_with(input, RunFormation::LoadSort, None);
    }
    let stats = ctx.stats().clone();
    let t0 = std::time::Instant::now();
    let formation = stats.phase_guard("sort/run-formation");
    // Worker threads parent their trace spans on the phase opened here:
    // the tracer resolves parents per thread, so without the explicit id
    // a worker's span could land under another thread's span.
    let form_span = stats.current_span_id();
    let runs = parallel_form_runs(input, workers, form_span);
    drop(formation);
    let t1 = std::time::Instant::now();
    let runs = runs?;
    let merge = stats.phase_guard("sort/merge");
    let merge_span = stats.current_span_id();
    let out = parallel_merge(&ctx, runs, ctx.config().fan_in(), workers, merge_span);
    drop(merge);
    if std::env::var_os("EMSORT_PAR_DEBUG").is_some() {
        eprintln!(
            "[par-debug] W={workers} form={:?} merge={:?}",
            t1 - t0,
            t1.elapsed()
        );
    }
    out
}

/// Cut `input` into chunks at the same boundaries as
/// [`crate::form_runs_load_sort`] and sort/write the chunks on `workers`
/// threads. Returns the runs in scan order.
fn parallel_form_runs<T: Record>(
    input: &EmFile<T>,
    workers: usize,
    parent: u64,
) -> Result<Vec<EmFile<T>>> {
    let ctx = input.ctx().clone();
    let cap = working_capacity::<T>(&ctx);
    // Records per block for THIS record type — not the word-denominated
    // block size (they differ for multi-word records).
    let bpr = ctx.config().block_records_for_width(T::WORDS);
    if cap.is_multiple_of(bpr) {
        form_runs_block_ranges(input, workers, cap, parent)
    } else {
        form_runs_shipped(input, workers, cap, parent)
    }
}

/// Fast path: chunk boundaries coincide with block boundaries, so workers
/// claim chunk indices from an atomic counter and read their own chunks
/// straight from `input` — no serial coordinator scan. Each input block
/// belongs to exactly one chunk and is read exactly once, so logical I/O
/// matches the sequential scan.
fn form_runs_block_ranges<T: Record>(
    input: &EmFile<T>,
    workers: usize,
    cap: usize,
    parent: u64,
) -> Result<Vec<EmFile<T>>> {
    let ctx = input.ctx().clone();
    let bs = ctx.config().block_records_for_width(T::WORDS);
    let n = input.len() as usize;
    let chunks = n.div_ceil(cap);
    let next = AtomicUsize::new(0);
    let failed = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|s| {
        let next = &next;
        let failed = &failed;
        let mut handles = Vec::with_capacity(workers.min(chunks));
        for _ in 0..workers.min(chunks) {
            let wctx = ctx.clone();
            handles.push(s.spawn(move || -> Result<Vec<(usize, EmFile<T>)>> {
                let mut produced = Vec::new();
                let mut scratch: Vec<T> = Vec::new();
                let _scratch_charge = wctx
                    .mem()
                    .try_charge(bs * T::WORDS, "parallel chunk read block")?;
                loop {
                    let seq = next.fetch_add(1, Ordering::Relaxed);
                    let start = seq.saturating_mul(cap);
                    if start >= n || failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let len = cap.min(n - start);
                    // Trace-only span per chunk, pinned under the
                    // coordinating sort/run-formation phase.
                    let _unit = wctx
                        .stats()
                        .trace_span_under(parent, || format!("unit/run#{seq}"));
                    let run = (|| -> Result<EmFile<T>> {
                        let charge = wctx
                            .mem()
                            .try_charge(cap * T::WORDS, "parallel run formation chunk")?;
                        let mut chunk: Vec<T> = Vec::with_capacity(len);
                        let first = (start / bs) as u64;
                        for b in first..first + len.div_ceil(bs) as u64 {
                            input.read_block_into(b, &mut scratch)?;
                            chunk.extend_from_slice(&scratch);
                        }
                        debug_assert_eq!(chunk.len(), len);
                        chunk.sort_unstable_by_key(|r| r.key());
                        let mut w = wctx.writer::<T>()?;
                        w.push_all(&chunk)?;
                        drop(chunk);
                        drop(charge);
                        w.finish()
                    })();
                    match run {
                        Ok(f) => produced.push((seq, f)),
                        Err(e) => {
                            // Tell the other workers to stop claiming work.
                            failed.store(true, Ordering::Relaxed);
                            return Err(e);
                        }
                    }
                }
                Ok(produced)
            }));
        }

        let mut tagged: Vec<(usize, EmFile<T>)> = Vec::new();
        let mut worker_err: Option<EmError> = None;
        for h in handles {
            match h.join() {
                Ok(Ok(mut runs)) => tagged.append(&mut runs),
                Ok(Err(e)) => worker_err = worker_err.or(Some(e)),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        if let Some(e) = worker_err {
            return Err(e);
        }
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        Ok(tagged.into_iter().map(|(_, f)| f).collect())
    })
}

/// Fallback when chunk boundaries cut through blocks: a coordinator scans
/// `input` sequentially (so boundary blocks are still read once) and ships
/// whole chunks to the workers.
fn form_runs_shipped<T: Record>(
    input: &EmFile<T>,
    workers: usize,
    cap: usize,
    parent: u64,
) -> Result<Vec<EmFile<T>>> {
    let ctx = input.ctx().clone();

    // (sequence number, unsorted chunk, its memory charge)
    type Job<T> = (usize, Vec<T>, MemCharge);

    let (tx, rx) = sync_channel::<Job<T>>(1);
    let rx = Mutex::new(rx);

    std::thread::scope(|s| {
        let rx = &rx;

        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let wctx = ctx.clone();
            handles.push(s.spawn(move || -> Result<Vec<(usize, EmFile<T>)>> {
                let mut produced = Vec::new();
                let mut first_err: Option<EmError> = None;
                loop {
                    // Take the receiver lock only for the handoff.
                    let job = rx.lock().unwrap_or_else(|p| p.into_inner()).recv();
                    let Ok((seq, mut chunk, charge)) = job else {
                        break; // channel closed: no more chunks
                    };
                    // After a failure keep draining (and dropping) chunks so
                    // the coordinator's bounded send never wedges.
                    if first_err.is_some() {
                        continue;
                    }
                    let _unit = wctx
                        .stats()
                        .trace_span_under(parent, || format!("unit/run#{seq}"));
                    chunk.sort_unstable_by_key(|r| r.key());
                    let run = (|| {
                        let mut w = wctx.writer::<T>()?;
                        w.push_all(&chunk)?;
                        w.finish()
                    })();
                    drop(chunk);
                    drop(charge);
                    match run {
                        Ok(f) => produced.push((seq, f)),
                        Err(e) => first_err = Some(e),
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(produced),
                }
            }));
        }

        // Coordinator: sequential scan, same chunk boundaries as the
        // sequential load-sort formation.
        let mut scan_err: Option<EmError> = None;
        {
            let mut reader = input.reader()?;
            let mut seq = 0usize;
            'scan: loop {
                let charge = match ctx
                    .mem()
                    .try_charge(cap * T::WORDS, "parallel run formation chunk")
                {
                    Ok(c) => c,
                    Err(e) => {
                        scan_err = Some(e);
                        break 'scan;
                    }
                };
                let mut chunk: Vec<T> = Vec::with_capacity(cap);
                while chunk.len() < cap {
                    match reader.next() {
                        Ok(Some(x)) => chunk.push(x),
                        Ok(None) => break,
                        Err(e) => {
                            scan_err = Some(e);
                            break 'scan;
                        }
                    }
                }
                if chunk.is_empty() {
                    break;
                }
                let exhausted = chunk.len() < cap;
                if tx.send((seq, chunk, charge)).is_err() {
                    break; // all workers gone (only on panic)
                }
                seq += 1;
                if exhausted {
                    break;
                }
            }
        }
        drop(tx); // close the channel so idle workers exit

        let mut tagged: Vec<(usize, EmFile<T>)> = Vec::new();
        let mut worker_err: Option<EmError> = None;
        for h in handles {
            match h.join() {
                Ok(Ok(mut runs)) => tagged.append(&mut runs),
                Ok(Err(e)) => worker_err = worker_err.or(Some(e)),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        if let Some(e) = scan_err {
            return Err(e);
        }
        if let Some(e) = worker_err {
            return Err(e);
        }
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        Ok(tagged.into_iter().map(|(_, f)| f).collect())
    })
}

/// Merge `runs` with the pass/group structure of
/// [`crate::merge_runs_with_fan_in`], merging independent groups of a pass
/// on up to `workers` threads and prefetching the single-group final pass.
fn parallel_merge<T: Record>(
    ctx: &EmContext,
    mut runs: Vec<EmFile<T>>,
    fan_in: usize,
    workers: usize,
    parent: u64,
) -> Result<EmFile<T>> {
    if runs.is_empty() {
        return ctx.create_file::<T>();
    }
    while runs.len() > 1 {
        // Same grouping as the sequential merge: consecutive groups of
        // `fan_in`, with a lone leftover run carried over unmerged. The
        // clamp is re-read per pass so a governor squeeze narrows later
        // passes instead of overcommitting.
        let fan_in = fan_in.clamp(2, max_merge_fan_in_now::<T>(ctx));
        let mut groups: Vec<Vec<EmFile<T>>> = Vec::with_capacity(runs.len().div_ceil(fan_in));
        let mut group: Vec<EmFile<T>> = Vec::with_capacity(fan_in);
        for r in runs.drain(..) {
            group.push(r);
            if group.len() == fan_in {
                groups.push(std::mem::take(&mut group));
            }
        }
        if !group.is_empty() {
            groups.push(group); // may be a lone run: passed through below
        }

        // Prefetch/write-behind threads only pay when a transfer has
        // latency to hide; against a page-cache-speed backend the channel
        // handoffs are pure overhead.
        let overlap = ctx.config().device_latency_us() > 0;
        let tp = std::time::Instant::now();
        let ng = groups.len();
        runs = if groups.len() == 1 {
            let only = groups.pop().expect("non-empty by construction");
            if only.len() == 1 {
                only // lone leftover: carried unmerged
            } else {
                vec![merge_group(ctx, &only, overlap)?]
            }
        } else {
            merge_groups_parallel(ctx, groups, workers, overlap, parent)?
        };
        if std::env::var_os("EMSORT_PAR_DEBUG").is_some() {
            eprintln!("[par-debug]   pass groups={ng} took {:?}", tp.elapsed());
        }
    }
    runs.pop()
        .ok_or_else(|| EmError::config("merge pass produced no output run"))
}

/// Merge each group on its own thread (at most `workers` at a time),
/// preserving group order in the output.
fn merge_groups_parallel<T: Record>(
    ctx: &EmContext,
    groups: Vec<Vec<EmFile<T>>>,
    workers: usize,
    overlap: bool,
    parent: u64,
) -> Result<Vec<EmFile<T>>> {
    let n = groups.len();
    let tasks: Vec<Mutex<Option<Vec<EmFile<T>>>>> =
        groups.into_iter().map(|g| Mutex::new(Some(g))).collect();
    let results: Vec<Mutex<Option<Result<EmFile<T>>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let group = tasks[i]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("each task is claimed exactly once");
                let merged = if group.len() == 1 {
                    // Lone leftover run: carried to the next pass unmerged,
                    // exactly as the sequential merge does.
                    Ok(group.into_iter().next().expect("len checked"))
                } else {
                    // Trace-only span per merge group, pinned under the
                    // coordinating sort/merge phase.
                    let _unit = ctx
                        .stats()
                        .trace_span_under(parent, || format!("unit/merge-group#{i}"));
                    merge_group(ctx, &group, overlap)
                };
                *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(merged);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("every group index below n is processed")
        })
        .collect()
}

/// A [`Source`] fed block batches by a prefetch thread.
struct ChannelSource<T: Record> {
    rx: Receiver<Result<(Vec<T>, MemCharge)>>,
    batch: Vec<T>,
    pos: usize,
    /// Keeps the current batch's words charged while records drain from it.
    _charge: Option<MemCharge>,
    failed: bool,
}

impl<T: Record> Source<T> for ChannelSource<T> {
    fn pull(&mut self) -> Result<Option<T>> {
        loop {
            if self.pos < self.batch.len() {
                self.pos += 1;
                return Ok(Some(self.batch[self.pos - 1]));
            }
            if self.failed {
                return Ok(None);
            }
            match self.rx.recv() {
                Ok(Ok((batch, charge))) => {
                    self.batch = batch;
                    self.pos = 0;
                    self._charge = Some(charge);
                }
                Ok(Err(e)) => {
                    self.failed = true;
                    return Err(e);
                }
                Err(_) => {
                    // Prefetcher finished and hung up: source exhausted.
                    self._charge = None;
                    return Ok(None);
                }
            }
        }
    }
}

/// Merge one group, preferring the overlapped (prefetch + write-behind)
/// path. If the prefetch pipeline's extra block buffers no longer fit a
/// squeezed budget, fall back to the plain single-threaded merge, which
/// needs only one buffer per run — degrade, don't fail.
fn merge_group<T: Record>(
    ctx: &EmContext,
    group: &[EmFile<T>],
    overlap: bool,
) -> Result<EmFile<T>> {
    if overlap {
        match merge_once_prefetch(ctx, group) {
            Err(EmError::MemoryExceeded { .. }) => merge_once(ctx, group),
            r => r,
        }
    } else {
        merge_once(ctx, group)
    }
}

/// [`merge_once`], but each input run is read ahead by its own prefetch
/// thread and full output blocks are handed to a dedicated writer thread,
/// so device reads, the loser-tree computation, and device writes all
/// overlap. Charges the same logical I/Os as a plain [`merge_once`] (one
/// read per input block, one write per output block).
fn merge_once_prefetch<T: Record>(ctx: &EmContext, runs: &[EmFile<T>]) -> Result<EmFile<T>> {
    // One batch = one block: `bs` records of `T::WORDS` words each, charged
    // at the model's block size `B` (in words).
    let bs = ctx.config().block_records_for_width(T::WORDS);
    let block_words = ctx.config().block_size();
    std::thread::scope(|s| {
        let mut sources = Vec::with_capacity(runs.len());
        for run in runs {
            let (tx, rx) = sync_channel::<Result<(Vec<T>, MemCharge)>>(PREFETCH_DEPTH);
            let pctx = ctx.clone();
            s.spawn(move || {
                for block in 0..run.num_blocks() {
                    let mut batch = Vec::new();
                    let msg = match pctx.mem().try_charge(block_words, "merge prefetch batch") {
                        Ok(charge) => match run.read_block_into(block, &mut batch) {
                            Ok(()) => Ok((batch, charge)),
                            Err(e) => Err(e),
                        },
                        Err(e) => Err(e),
                    };
                    let failed = msg.is_err();
                    if tx.send(msg).is_err() || failed {
                        break; // consumer hung up, or nothing further to read
                    }
                }
            });
            sources.push(ChannelSource {
                rx,
                batch: Vec::new(),
                pos: 0,
                _charge: None,
                failed: false,
            });
        }

        // Writer thread: drains full output blocks so the merging thread
        // never stalls on a device write. Exits (closing the channel) on
        // the first write error; the merging thread then stops sending.
        let (wtx, wrx) = sync_channel::<(Vec<T>, MemCharge)>(PREFETCH_DEPTH);
        let wctx = ctx.clone();
        let writer = s.spawn(move || -> Result<EmFile<T>> {
            let mut w = wctx.writer::<T>()?;
            while let Ok((batch, charge)) = wrx.recv() {
                w.push_all(&batch)?;
                drop(charge);
            }
            w.finish()
        });

        let merged: Result<()> = (|| {
            let mut tree = LoserTree::with_tracking(sources, ctx.mem())?;
            let mut buf: Vec<T> = Vec::with_capacity(bs);
            let mut charge = ctx.mem().try_charge(block_words, "merge output batch")?;
            while let Some(x) = tree.pop()? {
                buf.push(x);
                if buf.len() == bs {
                    let full = std::mem::replace(&mut buf, Vec::with_capacity(bs));
                    let c = std::mem::replace(
                        &mut charge,
                        ctx.mem().try_charge(block_words, "merge output batch")?,
                    );
                    if wtx.send((full, c)).is_err() {
                        return Ok(()); // writer bailed: its error surfaces below
                    }
                }
            }
            if !buf.is_empty() {
                let _ = wtx.send((buf, charge));
            }
            Ok(())
        })();
        drop(wtx); // close the channel so the writer finishes the file

        let out = match writer.join() {
            Ok(r) => r,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        // A writer error is the root cause when the merge side merely saw
        // the channel close; a merge error outranks the writer's clean
        // (but partial) file.
        match (merged, out) {
            (_, Err(e)) => Err(e),
            (Err(e), Ok(_)) => Err(e),
            (Ok(()), Ok(f)) => Ok(f),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{external_sort, is_sorted};
    use emcore::{Counters, EmConfig};

    fn data(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 2654435761) % 1_000_003).collect()
    }

    fn mem_ctx(workers: usize) -> EmContext {
        EmContext::new_in_memory(EmConfig::tiny().with_workers(workers))
    }

    fn io_delta(ctx: &EmContext, before: &Counters) -> (u64, u64) {
        let d = ctx.stats().snapshot().since(before);
        (d.reads, d.writes)
    }

    #[test]
    fn parallel_matches_sequential_output() {
        let n = 5000;
        let seq_ctx = mem_ctx(1);
        let par_ctx = mem_ctx(4);
        let sf = EmFile::from_slice(&seq_ctx, &data(n)).unwrap();
        let pf = EmFile::from_slice(&par_ctx, &data(n)).unwrap();
        let want = external_sort(&sf).unwrap().to_vec().unwrap();
        let got = parallel_external_sort(&pf).unwrap().to_vec().unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_charges_identical_logical_ios() {
        let n = 6000;
        let seq_ctx = mem_ctx(1);
        let par_ctx = mem_ctx(4);
        let sf = EmFile::from_slice(&seq_ctx, &data(n)).unwrap();
        let pf = EmFile::from_slice(&par_ctx, &data(n)).unwrap();

        let sb = seq_ctx.stats().snapshot();
        let sorted_seq = external_sort(&sf).unwrap();
        let seq_io = io_delta(&seq_ctx, &sb);

        let pb = par_ctx.stats().snapshot();
        let sorted_par = parallel_external_sort(&pf).unwrap();
        let par_io = io_delta(&par_ctx, &pb);

        assert_eq!(par_io, seq_io, "parallel sort must be I/O-identical");
        assert_eq!(sorted_par.to_vec().unwrap(), sorted_seq.to_vec().unwrap());
    }

    #[test]
    fn parallel_phase_totals_cover_worker_ios() {
        let par_ctx = mem_ctx(4);
        let pf = EmFile::from_slice(&par_ctx, &data(4000)).unwrap();
        let _ = parallel_external_sort(&pf).unwrap();
        let phases = par_ctx.stats().phase_totals();
        let formation = phases
            .iter()
            .find(|(n, _)| n == "sort/run-formation")
            .map(|(_, c)| c.total_ios())
            .unwrap_or(0);
        let merge = phases
            .iter()
            .find(|(n, _)| n == "sort/merge")
            .map(|(_, c)| c.total_ios())
            .unwrap_or(0);
        assert!(formation > 0, "worker I/O must land in the formation phase");
        assert!(merge > 0, "merge I/O must land in the merge phase");
    }

    #[test]
    fn parallel_on_disk_backend() {
        let dir = std::env::temp_dir().join(format!("emsort-par-{}", std::process::id()));
        let ctx = EmContext::new_on_disk(EmConfig::tiny().with_workers(4), &dir).unwrap();
        let f = EmFile::from_slice(&ctx, &data(3000)).unwrap();
        let s = parallel_external_sort(&f).unwrap();
        assert!(is_sorted(&s).unwrap());
        assert_eq!(s.len(), 3000);
        drop((f, s));
        drop(ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_empty_and_tiny_inputs() {
        let c = mem_ctx(4);
        let f = c.create_file::<u64>().unwrap();
        assert!(parallel_external_sort(&f).unwrap().is_empty());
        let g = EmFile::from_slice(&c, &[9u64, 1, 5]).unwrap();
        assert_eq!(
            parallel_external_sort(&g).unwrap().to_vec().unwrap(),
            vec![1, 5, 9]
        );
    }

    #[test]
    fn strict_context_falls_back_to_sequential() {
        let c = EmContext::new_in_memory_strict(EmConfig::tiny().with_workers(4));
        let f = EmFile::from_slice(&c, &data(2000)).unwrap();
        // Would blow the strict single-machine budget if run in parallel.
        let s = parallel_external_sort(&f).unwrap();
        assert!(is_sorted(&s).unwrap());
        assert_eq!(s.len(), 2000);
    }

    #[test]
    fn external_sort_dispatches_on_workers() {
        // external_sort on a workers=4 lenient context takes the parallel
        // path and still matches the sequential result.
        let seq_ctx = mem_ctx(1);
        let par_ctx = mem_ctx(4);
        let sf = EmFile::from_slice(&seq_ctx, &data(3500)).unwrap();
        let pf = EmFile::from_slice(&par_ctx, &data(3500)).unwrap();
        assert_eq!(
            external_sort(&pf).unwrap().to_vec().unwrap(),
            external_sort(&sf).unwrap().to_vec().unwrap()
        );
    }

    #[test]
    fn parallel_with_device_latency_overlaps_and_matches() {
        // A nonzero simulated device latency switches every merge to the
        // prefetch/write-behind path; output and logical I/Os must still
        // match the unthrottled sequential sort exactly.
        let n = 3000;
        let dir = std::env::temp_dir().join(format!("emsort-lat-{}", std::process::id()));
        let ctx = EmContext::new_on_disk(
            EmConfig::tiny().with_workers(4).with_device_latency_us(1),
            &dir,
        )
        .unwrap();
        let seq_ctx = mem_ctx(1);
        let pf = EmFile::from_slice(&ctx, &data(n)).unwrap();
        let sf = EmFile::from_slice(&seq_ctx, &data(n)).unwrap();

        let pb = ctx.stats().snapshot();
        let got = parallel_external_sort(&pf).unwrap();
        let par_io = io_delta(&ctx, &pb);
        let sb = seq_ctx.stats().snapshot();
        let want = external_sort(&sf).unwrap();
        let seq_io = io_delta(&seq_ctx, &sb);

        assert_eq!(got.to_vec().unwrap(), want.to_vec().unwrap());
        assert_eq!(par_io, seq_io, "latency throttle must not change the plan");
        drop((pf, got));
        drop(ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_once_prefetch_matches_merge_once() {
        let c = mem_ctx(2);
        let mk = |off: u64| -> EmFile<u64> {
            let v: Vec<u64> = (0..500).map(|i| i * 3 + off).collect();
            EmFile::from_slice(&c, &v).unwrap()
        };
        let runs = [mk(0), mk(1), mk(2)];
        let before = c.stats().snapshot();
        let m = merge_once_prefetch(&c, &runs).unwrap();
        let d = c.stats().snapshot().since(&before);
        assert_eq!(m.to_vec().unwrap(), (0..1500u64).collect::<Vec<_>>());
        // Same logical I/O as a plain merge: read every input block once,
        // write every output block once.
        let blocks: u64 = runs.iter().map(|r| r.num_blocks()).sum();
        assert_eq!(d.reads, blocks);
        assert_eq!(d.writes, m.num_blocks());
    }
}
