//! Run formation: turning an unsorted file into a set of sorted runs.
//!
//! Two strategies:
//!
//! * [`form_runs_load_sort`] — the textbook approach: fill memory, sort,
//!   write out; runs of length `≈ M`.
//! * [`form_runs_replacement_selection`] — a tournament-style heap that
//!   produces runs of expected length `≈ 2M` on random inputs (and a single
//!   run on already-sorted input), reducing the number of merge passes.
//!
//! Both stay within the memory budget: the load buffer / heap is sized to
//! `M` minus the reader and writer block buffers.

use std::collections::BinaryHeap;

use emcore::{EmContext, EmError, EmFile, Record, Result, TrackedVec};

/// How initial runs are formed by [`crate::external_sort_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunFormation {
    /// Fill memory, sort, flush: runs of length `≈ M`.
    #[default]
    LoadSort,
    /// Replacement selection: runs of expected length `≈ 2M`.
    ReplacementSelection,
}

/// Number of records the in-memory working area may hold, leaving room for
/// one reader and one writer block buffer.
pub(crate) fn working_capacity<T: Record>(ctx: &EmContext) -> usize {
    let b = ctx.config().block_size();
    ctx.mem_records::<T>().saturating_sub(2 * b).max(b)
}

/// Reserve a load buffer of up to `want` records, halving the request on a
/// budget rejection down to `floor` (one block). Under a governor squeeze
/// or tenant contention, run formation degrades to shorter runs instead of
/// failing; only a budget too small for even one block surfaces the typed
/// [`EmError::MemoryExceeded`].
pub(crate) fn adaptive_load_buffer<T: Record>(
    ctx: &EmContext,
    want: usize,
    context: &str,
) -> Result<(TrackedVec<T>, usize)> {
    let floor = ctx.config().block_size().max(1);
    let mut cap = want.max(floor);
    loop {
        match ctx.try_tracked_vec::<T>(cap, context) {
            Ok(v) => return Ok((v, cap)),
            Err(e @ EmError::MemoryExceeded { .. }) => {
                if cap <= floor {
                    return Err(e);
                }
                cap = (cap / 2).max(floor);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Form sorted runs by loading `≈ M` records at a time and sorting in
/// memory. Costs one read and one write per input block: `2·ceil(N/B)` I/Os.
pub fn form_runs_load_sort<T: Record>(input: &EmFile<T>) -> Result<Vec<EmFile<T>>> {
    let ctx = input.ctx().clone();
    let mut runs = Vec::new();
    let mut reader = input.reader()?;
    loop {
        // Every allocation this batch needs happens here, at the batch
        // boundary: the writer's block buffer first, then the load buffer
        // sized against the live (possibly squeezed or restored) budget,
        // halving on rejection. A squeeze landing mid-batch therefore
        // cannot fail the batch — it takes effect at the next boundary as
        // a shorter run. (An unused writer drops cleanly on EOF.)
        let mut w = ctx.writer::<T>()?;
        let want = working_capacity::<T>(&ctx);
        let (mut load, cap) = adaptive_load_buffer::<T>(&ctx, want, "run formation load buffer")?;
        while load.len() < cap {
            match reader.next()? {
                Some(x) => load.push(x),
                None => break,
            }
        }
        if load.is_empty() {
            break;
        }
        load.sort_unstable_by_key(|r| r.key());
        w.push_all(&load)?;
        runs.push(w.finish()?);
        if load.len() < cap {
            break; // input exhausted
        }
    }
    Ok(runs)
}

struct HeapItem<T: Record> {
    rec: T,
}

impl<T: Record> PartialEq for HeapItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rec.key() == other.rec.key()
    }
}
impl<T: Record> Eq for HeapItem<T> {}
impl<T: Record> PartialOrd for HeapItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Record> Ord for HeapItem<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want the minimum key.
        other.rec.key().cmp(&self.rec.key())
    }
}

/// Form sorted runs by replacement selection.
///
/// A min-heap of capacity `≈ M` holds the "current run" candidates; records
/// smaller than the last emitted key are parked for the next run. On random
/// input the expected run length is `2M` (Knuth's snowplough argument), so
/// roughly half as many runs come out of the same scan, at the same
/// `2·ceil(N/B)` I/O cost.
pub fn form_runs_replacement_selection<T: Record>(input: &EmFile<T>) -> Result<Vec<EmFile<T>>> {
    let ctx = input.ctx().clone();
    // The heap + parked buffer jointly hold at most `cap` records; charge
    // them as one region (BinaryHeap's storage is not a TrackedVec, so the
    // charge is taken explicitly), halving on rejection like the load-sort
    // path. The heap lives for the whole job, so the budget read here is
    // the admission point; squeezes land on the next job.
    let floor = ctx.config().block_size().max(1);
    let mut cap = working_capacity::<T>(&ctx).max(floor);
    let _charge = loop {
        match ctx
            .mem()
            .try_charge(cap * T::WORDS, "replacement selection working set")
        {
            Ok(c) => break c,
            Err(e @ EmError::MemoryExceeded { .. }) => {
                if cap <= floor {
                    return Err(e);
                }
                cap = (cap / 2).max(floor);
            }
            Err(e) => return Err(e),
        }
    };

    let mut reader = input.reader()?;
    let mut runs: Vec<EmFile<T>> = Vec::new();
    let mut heap: BinaryHeap<HeapItem<T>> = BinaryHeap::with_capacity(cap);
    let mut parked: Vec<T> = Vec::with_capacity(cap);

    // Prime the heap.
    while heap.len() < cap {
        match reader.next()? {
            Some(x) => heap.push(HeapItem { rec: x }),
            None => break,
        }
    }

    while !heap.is_empty() {
        let mut w = ctx.writer::<T>()?;
        while let Some(item) = heap.pop() {
            let rec = item.rec;
            w.push(rec)?;
            let last_key = rec.key();
            // Refill from input if there is room (heap + parked < cap).
            if heap.len() + parked.len() < cap {
                if let Some(x) = reader.next()? {
                    if x.key() >= last_key {
                        heap.push(HeapItem { rec: x });
                    } else {
                        parked.push(x);
                    }
                }
            }
        }
        runs.push(w.finish()?);
        // Start the next run from the parked records.
        for rec in parked.drain(..) {
            heap.push(HeapItem { rec });
        }
    }
    Ok(runs)
}

/// Verify that `file` is sorted by key (one scan; charges its reads).
pub fn is_sorted<T: Record>(file: &EmFile<T>) -> Result<bool> {
    let mut r = file.reader()?;
    let mut prev: Option<T::Key> = None;
    while let Some(x) = r.next()? {
        if let Some(p) = prev {
            if x.key() < p {
                return Ok(false);
            }
        }
        prev = Some(x.key());
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::EmConfig;

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny()) // M=256, B=16
    }

    fn check_runs(runs: &[EmFile<u64>], expect_total: u64) {
        let mut total = 0;
        for r in runs {
            assert!(is_sorted(r).unwrap());
            total += r.len();
        }
        assert_eq!(total, expect_total);
    }

    #[test]
    fn load_sort_forms_sorted_runs() {
        let c = ctx();
        let data: Vec<u64> = (0..1000).rev().collect();
        let f = EmFile::from_slice(&c, &data).unwrap();
        let runs = form_runs_load_sort(&f).unwrap();
        check_runs(&runs, 1000);
        // working capacity = 256 - 32 = 224 → ceil(1000/224) = 5 runs
        assert_eq!(runs.len(), 5);
    }

    #[test]
    fn load_sort_single_run_when_fits() {
        let c = ctx();
        let data: Vec<u64> = vec![5, 3, 1, 2, 4];
        let f = EmFile::from_slice(&c, &data).unwrap();
        let runs = form_runs_load_sort(&f).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].to_vec().unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn load_sort_empty_input() {
        let c = ctx();
        let f = c.create_file::<u64>().unwrap();
        assert!(form_runs_load_sort(&f).unwrap().is_empty());
    }

    #[test]
    fn load_sort_io_cost_is_two_scans() {
        let c = ctx();
        let data: Vec<u64> = (0..960).rev().collect(); // 60 blocks
        let f = EmFile::from_slice(&c, &data).unwrap();
        let before = c.stats().snapshot();
        let _ = form_runs_load_sort(&f).unwrap();
        let d = c.stats().snapshot().since(&before);
        assert_eq!(d.reads, 60);
        assert_eq!(d.writes, 60);
    }

    #[test]
    fn replacement_selection_runs_sorted_and_complete() {
        let c = ctx();
        // pseudo-random but deterministic
        let data: Vec<u64> = (0..2000u64).map(|i| (i * 2654435761) % 10_000).collect();
        let f = EmFile::from_slice(&c, &data).unwrap();
        let runs = form_runs_replacement_selection(&f).unwrap();
        check_runs(&runs, 2000);
        let lr = form_runs_load_sort(&f).unwrap();
        assert!(
            runs.len() < lr.len(),
            "replacement selection ({}) should beat load-sort ({}) on random input",
            runs.len(),
            lr.len()
        );
    }

    #[test]
    fn replacement_selection_sorted_input_single_run() {
        let c = ctx();
        let data: Vec<u64> = (0..1500).collect();
        let f = EmFile::from_slice(&c, &data).unwrap();
        let runs = form_runs_replacement_selection(&f).unwrap();
        assert_eq!(runs.len(), 1);
        assert!(is_sorted(&runs[0]).unwrap());
        assert_eq!(runs[0].len(), 1500);
    }

    #[test]
    fn replacement_selection_reverse_input_worst_case() {
        let c = ctx();
        let data: Vec<u64> = (0..1000).rev().collect();
        let f = EmFile::from_slice(&c, &data).unwrap();
        let runs = form_runs_replacement_selection(&f).unwrap();
        check_runs(&runs, 1000);
        // Worst case degenerates to ≈ N/M runs, never worse than 1 per record.
        assert!(runs.len() <= 6);
    }

    #[test]
    fn replacement_selection_with_duplicates() {
        let c = ctx();
        let data: Vec<u64> = (0..1200).map(|i| i % 7).collect();
        let f = EmFile::from_slice(&c, &data).unwrap();
        let runs = form_runs_replacement_selection(&f).unwrap();
        check_runs(&runs, 1200);
    }

    #[test]
    fn is_sorted_detects_disorder() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &[1u64, 2, 3, 2]).unwrap();
        assert!(!is_sorted(&f).unwrap());
        let g = EmFile::from_slice(&c, &[1u64, 1, 2]).unwrap();
        assert!(is_sorted(&g).unwrap());
    }
}
