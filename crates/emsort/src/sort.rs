//! The full external merge sort and its I/O-cost model.

use emcore::{EmConfig, EmFile, Record, Result};

use crate::merge::merge_runs_with_fan_in;
use crate::runs::{form_runs_load_sort, form_runs_replacement_selection, RunFormation};

/// Sort `input` into a fresh file with default settings (load-sort runs,
/// maximum fan-in). The input file is left untouched.
///
/// Cost: `2·(N/B)·(1 + ceil(log_{M/B−2}(N/M)))` I/Os — the classical
/// `O((N/B)·lg_{M/B}(N/B))` bound, and the baseline that "trivially solves"
/// every problem in the paper (§1.2).
///
/// When the context is configured with more than one worker
/// (`EmConfig::with_workers`) and meters memory leniently, dispatches to
/// [`crate::parallel_external_sort`], which charges identical logical
/// I/Os and produces an identical output file.
pub fn external_sort<T: Record>(input: &EmFile<T>) -> Result<EmFile<T>> {
    if input.ctx().config().workers() > 1 {
        return crate::parallel::parallel_external_sort(input);
    }
    external_sort_with(input, RunFormation::LoadSort, None)
}

/// [`external_sort`] with an explicit run-formation strategy and an
/// optional fan-in override (for ablations).
pub fn external_sort_with<T: Record>(
    input: &EmFile<T>,
    strategy: RunFormation,
    fan_in: Option<usize>,
) -> Result<EmFile<T>> {
    let ctx = input.ctx().clone();
    let stats = ctx.stats().clone();
    let formation = stats.phase_guard("sort/run-formation");
    let runs = match strategy {
        RunFormation::LoadSort => form_runs_load_sort(input),
        RunFormation::ReplacementSelection => form_runs_replacement_selection(input),
    };
    drop(formation);
    let mut runs = runs?;
    let merge = stats.phase_guard("sort/merge");
    let out = merge_runs_with_fan_in(
        &ctx,
        &mut runs,
        fan_in.unwrap_or_else(|| ctx.config().fan_in()),
    );
    drop(merge);
    out
}

/// Predicted I/O count of [`external_sort`] on `n` records: the formula the
/// benchmarks compare measurements against.
pub fn predicted_sort_ios(config: EmConfig, n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let scan = 2.0 * config.scan_bound(n);
    let runs = (n as f64 / config.mem_capacity() as f64).max(1.0);
    let passes = if runs <= 1.0 {
        0.0
    } else {
        (runs.ln() / (config.fan_in() as f64).ln()).ceil()
    };
    scan * (1.0 + passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::EmContext;

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny())
    }

    #[test]
    fn sorts_reverse_input() {
        let c = ctx();
        let data: Vec<u64> = (0..5000).rev().collect();
        let f = EmFile::from_slice(&c, &data).unwrap();
        let s = external_sort(&f).unwrap();
        assert_eq!(s.to_vec().unwrap(), (0..5000u64).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_with_duplicates() {
        let c = ctx();
        let data: Vec<u64> = (0..3000u64).map(|i| i % 13).collect();
        let f = EmFile::from_slice(&c, &data).unwrap();
        let s = external_sort(&f).unwrap();
        let mut want = data.clone();
        want.sort_unstable();
        assert_eq!(s.to_vec().unwrap(), want);
    }

    #[test]
    fn sorts_empty_and_tiny() {
        let c = ctx();
        let f = c.create_file::<u64>().unwrap();
        assert!(external_sort(&f).unwrap().is_empty());
        let g = EmFile::from_slice(&c, &[42u64]).unwrap();
        assert_eq!(external_sort(&g).unwrap().to_vec().unwrap(), vec![42]);
    }

    #[test]
    fn replacement_selection_path_sorts() {
        let c = ctx();
        let data: Vec<u64> = (0..4000u64).map(|i| (i * 48271) % 65536).collect();
        let f = EmFile::from_slice(&c, &data).unwrap();
        let s = external_sort_with(&f, RunFormation::ReplacementSelection, None).unwrap();
        let mut want = data.clone();
        want.sort_unstable();
        assert_eq!(s.to_vec().unwrap(), want);
    }

    #[test]
    fn io_within_predicted_bound() {
        let c = ctx();
        let n = 10_000u64;
        let data: Vec<u64> = (0..n).rev().collect();
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let before = c.stats().snapshot();
        let _s = external_sort(&f).unwrap();
        let ios = c.stats().snapshot().since(&before).total_ios() as f64;
        let bound = predicted_sort_ios(c.config(), n);
        assert!(
            ios <= bound * 1.5 + 10.0,
            "measured {ios} vs predicted {bound}"
        );
        // And it is genuinely super-scanning for this N:
        assert!(ios >= 2.0 * c.config().scan_bound(n));
    }

    #[test]
    fn phases_recorded() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &(0..1000u64).rev().collect::<Vec<_>>()).unwrap();
        let _ = external_sort(&f).unwrap();
        let phases = c.stats().phase_totals();
        let names: Vec<&str> = phases.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"sort/run-formation"));
        assert!(names.contains(&"sort/merge"));
    }

    #[test]
    fn predicted_formula_sane() {
        let cfg = EmConfig::medium(); // M=4096, B=64, fan_in=62
        assert_eq!(predicted_sort_ios(cfg, 0), 0.0);
        // n = M: one run, no merge passes → exactly one read+write scan
        let one_run = predicted_sort_ios(cfg, 4096);
        assert!((one_run - 2.0 * 64.0).abs() < 1e-9);
        // larger n needs at least one pass
        assert!(predicted_sort_ios(cfg, 100_000) > predicted_sort_ios(cfg, 4096));
    }
}
