//! # emsort — external merge sort on the `emcore` runtime
//!
//! The `O((N/B)·lg_{M/B}(N/B))` comparison-based sorting baseline of the EM
//! model [Aggarwal & Vitter 1988]. In the SPAA'14 splitters paper this is
//! the algorithm that "trivially solves" every problem considered (§1.2);
//! the whole point of the paper is beating it, so this crate provides the
//! baseline every experiment compares against.
//!
//! Components:
//! * [`form_runs_load_sort`] / [`form_runs_replacement_selection`] — run
//!   formation.
//! * [`LoserTree`] — tournament tree for `k`-way merging.
//! * [`merge_runs`] / [`external_sort`] — multiway merge passes.
//!
//! ```
//! use emcore::{EmConfig, EmContext, EmFile};
//! use emsort::{external_sort, is_sorted};
//!
//! let ctx = EmContext::new_in_memory(EmConfig::medium());
//! let data: Vec<u64> = (0..50_000).map(|i| (i * 2654435761u64) % 1_000_000).collect();
//! let file = EmFile::from_slice(&ctx, &data).unwrap();
//! let sorted = external_sort(&file).unwrap();
//! assert!(is_sorted(&sorted).unwrap());
//! assert_eq!(sorted.len(), 50_000);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod loser_tree;
mod manifest;
mod merge;
mod parallel;
mod runs;
mod sort;

pub use loser_tree::{LoserTree, SliceSource, Source};
#[allow(deprecated)]
pub use manifest::resume_sort;
pub use manifest::{external_sort_recoverable, SortJob, SortManifest, SORT_JOURNAL};
pub use merge::{
    max_merge_fan_in, max_merge_fan_in_now, merge_once, merge_runs, merge_runs_with_fan_in,
};
pub use parallel::parallel_external_sort;
pub use runs::{form_runs_load_sort, form_runs_replacement_selection, is_sorted, RunFormation};
pub use sort::{external_sort, external_sort_with, predicted_sort_ios};
