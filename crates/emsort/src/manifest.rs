//! Crash-recoverable external merge sort.
//!
//! [`external_sort`](crate::external_sort) loses all work when an I/O fails
//! terminally mid-sort: its runs live in local variables of a call that just
//! unwound. This module factors the sort into an explicit, checkpointed
//! state machine — a [`SortManifest`] — so a crash (a
//! [`emcore::FaultKind::Fatal`] fault, surfacing as
//! [`emcore::EmError::Crashed`]) loses at most one *work unit*: the sorted
//! run being formed, or the merge group being merged.
//!
//! ## Structure
//!
//! The sort is a sequence of work units, and the manifest is checkpointed
//! after every one:
//!
//! 1. **Run formation** (unit = one sorted run of ≈ `M` records): the
//!    manifest records how many input records have been consumed into
//!    completed runs. A crash mid-run drops only that run's partial output
//!    (its temporary file is deleted as the writer unwinds) and resume
//!    restarts from `consumed`.
//! 2. **Merge passes** (unit = one fan-in-sized merge group): completed
//!    group outputs accumulate in the manifest; the input runs of a group
//!    are only released *after* its output is durably complete, so a crash
//!    mid-merge keeps every input run and resume re-merges just that group.
//!    When a level's runs are exhausted the outputs become the next level's
//!    runs (the per-level checkpoint).
//!
//! ## Durability
//!
//! Every checkpoint commits the manifest to a [`emcore::Journal`] named
//! `sort-manifest` (atomically, checksummed — see `emcore::journal`), and
//! every file the manifest references is marked
//! [`persistent`](emcore::EmFile::set_persistent) so it outlives its
//! handle. On a directory-backed context this makes an interrupted sort
//! resumable **across processes**: a fresh context over the same directory
//! can [`SortManifest::load`] the journal, reopen every run file, sweep
//! orphaned temporaries of the crashed attempt, and drive the sort to
//! completion via [`emcore::run_recoverable`] + [`SortJob`]. In-process
//! recovery uses the live manifest value directly.
//!
//! Journal commits are host-side metadata writes, charged to
//! [`emcore::Counters::journal_writes`] — not block I/Os. I/O spent
//! re-executing the one interrupted unit on resume is additionally counted
//! in [`emcore::Counters::redone_ios`].
//!
//! ## Example: crash and resume
//!
//! ```
//! use emcore::{run_recoverable, EmConfig, EmContext, EmFile, EmError, FaultPlan};
//! use emsort::{SortJob, SortManifest};
//!
//! let ctx = EmContext::new_in_memory(EmConfig::tiny());
//! let data: Vec<u64> = (0..1000).rev().collect();
//! let input = EmFile::from_slice(&ctx, &data).unwrap();
//!
//! let plan = FaultPlan::new(0).fatal_at(150); // crash mid-sort
//! ctx.install_fault_plan(plan.clone());
//!
//! let mut manifest = SortManifest::new(&ctx, None);
//! let crashed = run_recoverable(&ctx, &mut SortJob::new(&input, &mut manifest));
//! assert!(matches!(crashed, Err(EmError::Crashed)));
//!
//! plan.clear_crash(); // "restart the machine"
//! let sorted = run_recoverable(&ctx, &mut SortJob::new(&input, &mut manifest)).unwrap();
//! assert_eq!(sorted.to_vec().unwrap(), (0..1000u64).collect::<Vec<_>>());
//! ```

use emcore::{
    run_recoverable, Counters, EmContext, EmError, EmFile, Journal, JournalState, Record,
    RecoverableJob, Result,
};

use crate::merge::{max_merge_fan_in, merge_once};

/// Name of the sort's checkpoint journal within its backing store.
pub const SORT_JOURNAL: &str = "sort-manifest";

/// Checkpointed state of a recoverable external sort. Owns every completed
/// run; survives any number of failed resume attempts, and (on the
/// directory backend) process restarts via [`SortManifest::load`].
#[derive(Debug)]
pub struct SortManifest<T: Record> {
    /// Input file identity `(id, len)`, pinned at the first resume so a
    /// journal cannot be replayed against the wrong input.
    input: Option<(u64, u64)>,
    /// Input records consumed into *completed* runs.
    consumed: u64,
    /// Run formation finished.
    formed: bool,
    /// Sorted runs of the current merge level still awaiting merging.
    runs: Vec<EmFile<T>>,
    /// Completed merge outputs of the current level.
    next: Vec<EmFile<T>>,
    /// Merge fan-in (clamped to the memory budget at construction).
    fan_in: usize,
    /// Completed work units (runs formed + groups merged + level swaps).
    checkpoints: u64,
    /// The sort has produced its final output.
    done: bool,
    /// Checkpoint index of the unit currently (or last) being executed —
    /// when a unit starts and this already equals `checkpoints`, the unit
    /// is a redo of one a crash interrupted.
    in_flight: Option<u64>,
    /// Largest I/O cost of any single completed work unit (the empirical
    /// rework bound a crash can force).
    max_unit_ios: u64,
    journal: Journal,
}

/// Plain serialised image of a [`SortManifest`] — what the journal stores.
/// Files appear as `(id, len)` pairs; [`SortManifest::load`] reopens them.
#[derive(Debug, PartialEq, Eq)]
struct SortImage {
    input: Option<(u64, u64)>,
    consumed: u64,
    formed: bool,
    fan_in: usize,
    checkpoints: u64,
    runs: Vec<(u64, u64)>,
    next: Vec<(u64, u64)>,
}

impl JournalState for SortImage {
    const KIND: &'static str = "sort-manifest";
    const VERSION: u32 = 1;

    fn encode(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "consumed {}", self.consumed);
        let _ = writeln!(out, "formed {}", self.formed);
        let _ = writeln!(out, "fan_in {}", self.fan_in);
        let _ = writeln!(out, "checkpoints {}", self.checkpoints);
        if let Some((id, len)) = self.input {
            let _ = writeln!(out, "input {id} {len}");
        }
        for (id, len) in &self.runs {
            let _ = writeln!(out, "run {id} {len}");
        }
        for (id, len) in &self.next {
            let _ = writeln!(out, "merged {id} {len}");
        }
    }

    fn decode(body: &str) -> Result<Self> {
        fn bad(line: &str) -> EmError {
            EmError::config(format!("sort-manifest journal: bad line {line:?}"))
        }
        fn pair(rest: &str, line: &str) -> Result<(u64, u64)> {
            let (a, b) = rest.split_once(' ').ok_or_else(|| bad(line))?;
            Ok((
                a.parse().map_err(|_| bad(line))?,
                b.parse().map_err(|_| bad(line))?,
            ))
        }
        let mut img = SortImage {
            input: None,
            consumed: 0,
            formed: false,
            fan_in: 2,
            checkpoints: 0,
            runs: Vec::new(),
            next: Vec::new(),
        };
        for line in body.lines() {
            let (key, rest) = line.split_once(' ').ok_or_else(|| bad(line))?;
            match key {
                "consumed" => img.consumed = rest.parse().map_err(|_| bad(line))?,
                "formed" => img.formed = rest.parse().map_err(|_| bad(line))?,
                "fan_in" => img.fan_in = rest.parse().map_err(|_| bad(line))?,
                "checkpoints" => img.checkpoints = rest.parse().map_err(|_| bad(line))?,
                "input" => img.input = Some(pair(rest, line)?),
                "run" => img.runs.push(pair(rest, line)?),
                "merged" => img.next.push(pair(rest, line)?),
                _ => return Err(bad(line)),
            }
        }
        Ok(img)
    }
}

impl<T: Record> SortManifest<T> {
    /// A fresh manifest: nothing consumed, nothing formed. `fan_in` is
    /// clamped to `[2, max_merge_fan_in]`; `None` means the maximum.
    pub fn new(ctx: &EmContext, fan_in: Option<usize>) -> Self {
        let max = max_merge_fan_in::<T>(ctx.config());
        Self {
            input: None,
            consumed: 0,
            formed: false,
            runs: Vec::new(),
            next: Vec::new(),
            fan_in: fan_in.unwrap_or(max).clamp(2, max),
            checkpoints: 0,
            done: false,
            in_flight: None,
            max_unit_ios: 0,
            journal: Journal::new(ctx, SORT_JOURNAL).expect("valid journal name"),
        }
    }

    /// Reload an interrupted sort from `ctx`'s backing directory: read the
    /// `sort-manifest` journal, reopen every run file it references, and
    /// garbage-collect block files the crashed attempt orphaned (anything
    /// in the directory referenced by neither the journal nor the recorded
    /// input). Returns `Ok(None)` when no journal exists.
    ///
    /// The sweep assumes one recoverable job per backing directory — every
    /// live file must be reachable from this journal. Requires a
    /// directory-backed context (memory-backed block files cannot outlive
    /// their context).
    pub fn load(ctx: &EmContext) -> Result<Option<Self>> {
        if ctx.backing_dir().is_none() {
            return Err(EmError::config(
                "SortManifest::load: cross-process resume requires a directory-backed context",
            ));
        }
        let journal = Journal::new(ctx, SORT_JOURNAL).expect("valid journal name");
        let Some(img) = journal.load::<SortImage>()? else {
            return Ok(None);
        };
        let mut keep: Vec<u64> = img
            .runs
            .iter()
            .chain(&img.next)
            .map(|&(id, _)| id)
            .collect();
        if let Some((id, _)) = img.input {
            keep.push(id);
        }
        ctx.gc_orphans(&keep)?;
        let reopen = |files: &[(u64, u64)]| -> Result<Vec<EmFile<T>>> {
            files
                .iter()
                .map(|&(id, len)| ctx.open_file::<T>(id, len))
                .collect()
        };
        Ok(Some(Self {
            input: img.input,
            consumed: img.consumed,
            formed: img.formed,
            runs: reopen(&img.runs)?,
            next: reopen(&img.next)?,
            fan_in: img.fan_in.max(2),
            checkpoints: img.checkpoints,
            done: false,
            in_flight: None,
            max_unit_ios: 0,
            journal,
        }))
    }

    /// Input records consumed into completed runs.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Whether run formation has completed.
    pub fn formed(&self) -> bool {
        self.formed
    }

    /// Whether the sort has completed and yielded its output.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Completed work units so far (each one a checkpoint).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Sorted runs currently held (current level + completed outputs).
    pub fn num_runs(&self) -> usize {
        self.runs.len() + self.next.len()
    }

    /// The `(id, len)` of the input file this manifest sorts, once known —
    /// what a resuming process passes to [`emcore::EmContext::open_file`].
    pub fn input(&self) -> Option<(u64, u64)> {
        self.input
    }

    /// Largest I/O cost of any single work unit completed through this
    /// manifest value — the empirical bound on crash rework.
    pub fn max_unit_ios(&self) -> u64 {
        self.max_unit_ios
    }

    /// A human-readable snapshot of the manifest.
    pub fn describe(&self) -> String {
        let mut s = String::from("em-sort-manifest v1\n");
        self.image().encode(&mut s);
        s
    }

    fn image(&self) -> SortImage {
        SortImage {
            input: self.input,
            consumed: self.consumed,
            formed: self.formed,
            fan_in: self.fan_in,
            checkpoints: self.checkpoints,
            runs: self.runs.iter().map(|r| (r.id(), r.len())).collect(),
            next: self.next.iter().map(|r| (r.id(), r.len())).collect(),
        }
    }

    /// Begin a work unit: returns whether this is a redo of an interrupted
    /// unit, plus the counter snapshot to diff at the end.
    fn begin_unit(&mut self, ctx: &EmContext) -> (bool, Counters) {
        let redo = self.in_flight == Some(self.checkpoints);
        self.in_flight = Some(self.checkpoints);
        (redo, ctx.stats().snapshot())
    }

    /// Account a completed unit's I/O (and its rework, if it was a redo).
    fn end_unit(&mut self, ctx: &EmContext, redo: bool, before: Counters) {
        let spent = ctx.stats().snapshot().since(&before).total_ios();
        self.max_unit_ios = self.max_unit_ios.max(spent);
        if redo {
            ctx.stats().record_redone_ios(spent);
        }
    }

    /// Record a completed work unit: durably commit the manifest image.
    fn checkpoint(&mut self, _ctx: &EmContext) -> Result<()> {
        self.checkpoints += 1;
        self.journal.commit(&self.image())
    }

    fn finish(&mut self) -> Result<()> {
        self.done = true;
        self.journal.remove()
    }
}

/// The checkpointed external sort as a [`RecoverableJob`]: drive it with
/// [`emcore::run_recoverable`]. Borrows the input and its manifest for the
/// duration of one resume attempt; build a fresh job value per attempt.
#[derive(Debug)]
pub struct SortJob<'a, T: Record> {
    input: &'a EmFile<T>,
    manifest: &'a mut SortManifest<T>,
}

impl<'a, T: Record> SortJob<'a, T> {
    /// A job that sorts `input`, checkpointing through `manifest`.
    pub fn new(input: &'a EmFile<T>, manifest: &'a mut SortManifest<T>) -> Self {
        Self { input, manifest }
    }
}

impl<T: Record> RecoverableJob for SortJob<'_, T> {
    type Output = EmFile<T>;

    fn kind(&self) -> &'static str {
        "resume_sort"
    }

    fn journal_name(&self) -> &'static str {
        SORT_JOURNAL
    }

    fn is_done(&self) -> bool {
        self.manifest.done
    }

    fn check_input(&mut self) -> Result<()> {
        match self.manifest.input {
            None => {
                self.manifest.input = Some((self.input.id(), self.input.len()));
                Ok(())
            }
            Some((id, len)) if (id, len) != (self.input.id(), self.input.len()) => {
                Err(EmError::config(format!(
                    "resume_sort: manifest belongs to input (id {id}, len {len}), \
                     got (id {}, len {})",
                    self.input.id(),
                    self.input.len()
                )))
            }
            Some(_) => Ok(()),
        }
    }

    fn drive(&mut self, ctx: &EmContext) -> Result<EmFile<T>> {
        let stats = ctx.stats().clone();

        // Phase 1: run formation, resumable at `consumed` records.
        if !self.manifest.formed {
            let phase = stats.phase_guard("sort/run-formation");
            let r = form_remaining_runs(self.input, self.manifest, ctx);
            drop(phase);
            r?;
        }

        // Phase 2: merge passes, resumable at merge-group granularity.
        let phase = stats.phase_guard("sort/merge");
        let r = merge_remaining(self.manifest, ctx);
        drop(phase);
        let out = r?;
        self.manifest.finish()?;
        // The output leaves the manifest's custody: normal drop semantics.
        out.set_persistent(false);
        Ok(out)
    }
}

/// Sort `input` with checkpointing — semantically identical to
/// [`crate::external_sort`] (load-sort runs), but any recoverable failure
/// leaves a resumable [`SortManifest`] behind via [`SortJob`] +
/// [`emcore::run_recoverable`]. For a one-shot call the manifest is
/// internal; keep your own manifest to survive failures.
pub fn external_sort_recoverable<T: Record>(input: &EmFile<T>) -> Result<EmFile<T>> {
    let ctx = input.ctx().clone();
    let mut manifest = SortManifest::new(&ctx, None);
    run_recoverable(&ctx, &mut SortJob::new(input, &mut manifest))
}

/// Drive the sort of `input` forward from wherever `manifest` left off,
/// until completion or the next terminal error.
///
/// Idempotent over failures: call once on a fresh manifest to start, and
/// call again with the same manifest after handling an error (e.g. clearing
/// a simulated crash with [`emcore::FaultPlan::clear_crash`]) — only the
/// interrupted work unit is redone. Returns the sorted output; afterwards
/// the manifest is [`SortManifest::is_done`] and must not be reused.
#[deprecated(note = "use emcore::run_recoverable with emsort::SortJob")]
pub fn resume_sort<T: Record>(
    input: &EmFile<T>,
    manifest: &mut SortManifest<T>,
) -> Result<EmFile<T>> {
    let ctx = input.ctx().clone();
    run_recoverable(&ctx, &mut SortJob::new(input, manifest))
}

fn form_remaining_runs<T: Record>(
    input: &EmFile<T>,
    manifest: &mut SortManifest<T>,
    ctx: &EmContext,
) -> Result<()> {
    let b = ctx.config().block_size();
    while manifest.consumed < input.len() {
        // Budget re-read per work unit: a governor squeeze between
        // checkpoints shrinks the next unit instead of failing the job,
        // and a unit interrupted by MemoryExceeded is redone whole on
        // resume (bounded rework: at most one unit).
        let mut w = ctx.writer::<T>()?;
        let want = ctx.mem_records::<T>().saturating_sub(2 * b).max(b);
        let (mut load, cap) = crate::runs::adaptive_load_buffer::<T>(
            ctx,
            want,
            "recoverable run formation load buffer",
        )?;
        let (redo, before) = manifest.begin_unit(ctx);
        // Trace-only span per work unit: redo points land inside it.
        let _unit = ctx
            .stats()
            .trace_span(|| format!("unit/run#{}", manifest.checkpoints));
        // A fresh positioned reader each unit: a crashed unit must not
        // leave reader state behind, and positioning costs ≤ 1 extra I/O.
        let mut reader = input.reader_at(manifest.consumed)?;
        while load.len() < cap {
            match reader.next()? {
                Some(x) => load.push(x),
                None => break,
            }
        }
        if load.is_empty() {
            break;
        }
        load.sort_unstable_by_key(|r| r.key());
        w.push_all(&load)?;
        let run = w.finish()?;
        // ---- checkpoint: the run is fully on storage ----
        run.set_persistent(true);
        manifest.consumed += run.len();
        manifest.runs.push(run);
        manifest.checkpoint(ctx)?;
        manifest.end_unit(ctx, redo, before);
    }
    manifest.formed = true;
    manifest.checkpoint(ctx)?;
    Ok(())
}

fn merge_remaining<T: Record>(
    manifest: &mut SortManifest<T>,
    ctx: &EmContext,
) -> Result<EmFile<T>> {
    loop {
        if manifest.runs.is_empty() {
            match manifest.next.len() {
                0 => return ctx.create_file::<T>(), // empty input
                1 => return manifest.next.pop().ok_or_else(level_underflow),
                // ---- checkpoint: level complete, outputs become inputs ----
                _ => {
                    manifest.runs = std::mem::take(&mut manifest.next);
                    manifest.checkpoint(ctx)?;
                }
            }
            continue;
        }
        if manifest.runs.len() == 1 {
            if manifest.next.is_empty() {
                return manifest.runs.pop().ok_or_else(level_underflow);
            }
            // A lone leftover run moves to the next pass unmerged — merging
            // it alone would copy every block for nothing.
            let run = manifest.runs.pop().ok_or_else(level_underflow)?;
            manifest.next.push(run);
            manifest.checkpoint(ctx)?;
            continue;
        }
        let g = manifest.fan_in.min(manifest.runs.len());
        let (redo, before) = manifest.begin_unit(ctx);
        // Trace-only span per work unit: redo points land inside it.
        let _unit = ctx
            .stats()
            .trace_span(|| format!("unit/merge#{}", manifest.checkpoints));
        // Merge the group *before* releasing its inputs: a crash inside
        // merge_once drops only the partial output file, and the manifest
        // still owns every input run for the redo.
        let merged = merge_once(ctx, &manifest.runs[..g])?;
        merged.set_persistent(true);
        manifest.next.push(merged);
        // The group's inputs are retired from the manifest: restore normal
        // drop-deletes semantics before releasing them.
        for r in &manifest.runs[..g] {
            r.set_persistent(false);
        }
        manifest.runs.drain(..g); // frees the merged runs' storage
                                  // ---- checkpoint: group complete ----
        manifest.checkpoint(ctx)?;
        manifest.end_unit(ctx, redo, before);
    }
}

fn level_underflow() -> EmError {
    EmError::config("sort manifest invariant violated: empty level")
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext, FaultPlan, RetryPolicy};

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny()) // M=256, B=16
    }

    /// The canonical resume idiom: drive the job via `run_recoverable`.
    /// (`resume_sort` is only a deprecated shim over exactly this.)
    fn resume(f: &EmFile<u64>, m: &mut SortManifest<u64>) -> Result<EmFile<u64>> {
        let c = f.ctx().clone();
        run_recoverable(&c, &mut SortJob::new(f, m))
    }

    fn shuffled(n: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        let mut rng = emcore::SplitMix64::new(0xfeed);
        rng.shuffle(&mut v);
        v
    }

    #[test]
    fn recoverable_sort_matches_plain_sort_fault_free() {
        let c = ctx();
        let data = shuffled(3000);
        let f = EmFile::from_slice(&c, &data).unwrap();
        let sorted = external_sort_recoverable(&f).unwrap();
        let mut want = data;
        want.sort_unstable();
        assert_eq!(sorted.to_vec().unwrap(), want);
        // No crash ⇒ no rework; checkpoints did happen.
        let stats = c.stats().snapshot();
        assert_eq!(stats.redone_ios, 0);
        assert!(stats.journal_writes > 0);
    }

    #[test]
    fn fault_free_io_cost_matches_plain_sort_shape() {
        // Same run structure as external_sort ⇒ same merge levels; the only
        // extra I/Os allowed are ≤ 1 positioning read per formed run.
        let c1 = ctx();
        let c2 = ctx();
        let data = shuffled(2000);
        let f1 = c1
            .stats()
            .paused(|| EmFile::from_slice(&c1, &data))
            .unwrap();
        let f2 = c2
            .stats()
            .paused(|| EmFile::from_slice(&c2, &data))
            .unwrap();
        let _ = crate::external_sort(&f1).unwrap();
        let _ = external_sort_recoverable(&f2).unwrap();
        let plain = c1.stats().snapshot().total_ios();
        let recov = c2.stats().snapshot().total_ios();
        let runs = 2000u64.div_ceil(224); // working capacity at tiny config
        assert!(
            recov <= plain + runs,
            "recoverable {recov} vs plain {plain} (+{runs} positioning allowance)"
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let c = ctx();
        let f = c.create_file::<u64>().unwrap();
        assert!(external_sort_recoverable(&f).unwrap().is_empty());
        let g = EmFile::from_slice(&c, &[9u64, 1]).unwrap();
        assert_eq!(
            external_sort_recoverable(&g).unwrap().to_vec().unwrap(),
            vec![1, 9]
        );
    }

    // Keeps the deprecated `resume_sort` shim covered until it is removed;
    // every other test resumes via `run_recoverable` directly.
    #[test]
    #[allow(deprecated)]
    fn crash_then_resume_completes() {
        let c = ctx();
        let data = shuffled(1500);
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let plan = FaultPlan::new(0).fatal_at(40);
        c.install_fault_plan(plan.clone());
        let mut m = SortManifest::new(&c, None);
        assert!(matches!(resume(&f, &mut m), Err(EmError::Crashed)));
        assert!(!m.is_done());
        assert!(m.checkpoints() > 0, "work before the crash was kept");
        plan.clear_crash();
        let sorted = resume(&f, &mut m).unwrap();
        assert!(m.is_done());
        let mut want = data;
        want.sort_unstable();
        assert_eq!(sorted.to_vec().unwrap(), want);
        // The interrupted unit was redone and accounted.
        let stats = c.stats().snapshot();
        assert!(stats.redone_ios > 0, "redone work must be accounted");
        assert!(
            stats.redone_ios <= m.max_unit_ios(),
            "rework {} exceeds one unit {}",
            stats.redone_ios,
            m.max_unit_ios()
        );
    }

    #[test]
    fn transient_faults_handled_by_retries_inside_sort() {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let plan = FaultPlan::new(3).transient_rate(0.05);
        c.install_fault_plan(plan.clone());
        c.set_retry_policy(RetryPolicy::retries(10));
        let data = shuffled(2000);
        // Materialise as an oracle so input staging neither consumes the
        // fault schedule nor counts I/O.
        let f = c.oracle(|| EmFile::from_slice(&c, &data)).unwrap();
        let sorted = external_sort_recoverable(&f).unwrap();
        let mut want = data;
        want.sort_unstable();
        assert_eq!(c.oracle(|| sorted.to_vec()).unwrap(), want);
        let stats = c.stats().snapshot();
        assert_eq!(stats.retries, plan.injected().transient_total());
        assert!(stats.retries > 0);
    }

    #[test]
    fn completed_manifest_rejects_reuse() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &[3u64, 1, 2]).unwrap();
        let mut m = SortManifest::new(&c, None);
        let _ = resume(&f, &mut m).unwrap();
        assert!(matches!(resume(&f, &mut m), Err(EmError::Config(_))));
    }

    #[test]
    fn manifest_rejects_wrong_input() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &shuffled(600)).unwrap();
        let plan = FaultPlan::new(0).fatal_at(20);
        c.install_fault_plan(plan.clone());
        let mut m = SortManifest::new(&c, None);
        assert!(resume(&f, &mut m).is_err());
        plan.clear_crash();
        c.clear_fault_plan();
        let other = EmFile::from_slice(&c, &[1u64, 2, 3]).unwrap();
        assert!(matches!(resume(&other, &mut m), Err(EmError::Config(_))));
        // The right input still resumes fine.
        let sorted = resume(&f, &mut m).unwrap();
        assert_eq!(sorted.len(), 600);
    }

    #[test]
    fn journal_persisted_and_cleaned_on_disk() {
        let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let data = shuffled(1200);
        let f = EmFile::from_slice(&c, &data).unwrap();
        let meta = c.backing_dir().unwrap().join("sort-manifest.journal");
        let plan = FaultPlan::new(0).fatal_at(200);
        c.install_fault_plan(plan.clone());
        let mut m = SortManifest::new(&c, None);
        assert!(resume(&f, &mut m).is_err());
        let doc = std::fs::read_to_string(&meta).expect("journal exists after crash");
        assert!(doc.starts_with("emjournal v1 sort-manifest"));
        assert!(doc.contains("consumed"));
        plan.clear_crash();
        let _ = resume(&f, &mut m).unwrap();
        assert!(!meta.exists(), "journal removed after completion");
    }

    #[test]
    fn image_roundtrips_through_journal_encoding() {
        let img = SortImage {
            input: Some((7, 4096)),
            consumed: 1234,
            formed: true,
            fan_in: 6,
            checkpoints: 9,
            runs: vec![(8, 224), (9, 224)],
            next: vec![(12, 448)],
        };
        let mut body = String::new();
        img.encode(&mut body);
        assert_eq!(SortImage::decode(&body).unwrap(), img);
    }

    #[test]
    fn describe_reports_progress() {
        let c = ctx();
        let m = SortManifest::<u64>::new(&c, Some(4));
        let d = m.describe();
        assert!(d.contains("consumed 0"));
        assert!(d.contains("fan_in 4"));
    }
}
