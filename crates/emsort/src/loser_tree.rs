//! Tournament (loser) tree for multiway merging.
//!
//! The classical structure: `k` input streams, a complete binary tree whose
//! internal nodes remember the *loser* of each match and whose root path
//! replay costs `O(lg k)` comparisons per extracted record. Ties are broken
//! by stream index, making the merge deterministic and stable across runs.

use emcore::{EmError, Reader, Record, Result, TrackedVec};

/// A pull-based source of records, the input of a [`LoserTree`].
pub trait Source<T: Record> {
    /// Produce the next record, or `None` when exhausted.
    fn pull(&mut self) -> Result<Option<T>>;
}

impl<T: Record> Source<T> for Reader<'_, T> {
    fn pull(&mut self) -> Result<Option<T>> {
        self.next()
    }
}

/// A source over an in-memory slice (used for tests and for merging
/// memory-resident runs).
pub struct SliceSource<'a, T> {
    data: &'a [T],
    pos: usize,
}

impl<'a, T> SliceSource<'a, T> {
    /// Wrap a slice as a source.
    pub fn new(data: &'a [T]) -> Self {
        Self { data, pos: 0 }
    }
}

impl<T: Record> Source<T> for SliceSource<'_, T> {
    fn pull(&mut self) -> Result<Option<T>> {
        if self.pos < self.data.len() {
            self.pos += 1;
            Ok(Some(self.data[self.pos - 1]))
        } else {
            Ok(None)
        }
    }
}

/// Loser tree over `k` sources. Yields records in nondecreasing key order,
/// assuming every source is itself key-sorted.
///
/// Bookkeeping memory (`3k` words: heads are records but we charge their
/// word width) is metered against the context if constructed via
/// [`LoserTree::with_tracking`].
pub struct LoserTree<T: Record, S: Source<T>> {
    sources: Vec<S>,
    heads: Vec<Option<T>>,
    /// `tree[n]` = stream index of the loser stored at internal node `n`.
    tree: Vec<usize>,
    winner: usize,
    remaining_sources: usize,
    _charge: Option<emcore::MemCharge>,
    _tracked: Option<TrackedVec<u8>>,
}

impl<T: Record, S: Source<T>> LoserTree<T, S> {
    /// Build the tree, pulling the first record of every source.
    pub fn new(sources: Vec<S>) -> Result<Self> {
        Self::build(sources, None)
    }

    /// Build the tree, charging its `O(k)` bookkeeping words to `mem`.
    pub fn with_tracking(sources: Vec<S>, mem: &emcore::MemoryTracker) -> Result<Self> {
        let k = sources.len();
        let charge = mem.try_charge(k * (T::WORDS + 2), "loser tree state")?;
        Self::build(sources, Some(charge))
    }

    fn build(mut sources: Vec<S>, charge: Option<emcore::MemCharge>) -> Result<Self> {
        let k = sources.len();
        if k == 0 {
            return Err(EmError::config("loser tree needs at least one source"));
        }
        let mut heads = Vec::with_capacity(k);
        let mut remaining = 0usize;
        for s in sources.iter_mut() {
            let h = s.pull()?;
            if h.is_some() {
                remaining += 1;
            }
            heads.push(h);
        }
        // Compute initial winners bottom-up over a conceptual complete tree
        // with leaves at positions k..2k-1; internal node n has children
        // 2n and 2n+1.
        let mut winners = vec![0usize; 2 * k];
        for (i, w) in winners.iter_mut().enumerate().skip(k) {
            *w = i - k;
        }
        let mut tree = vec![0usize; k.max(1)];
        for n in (1..k).rev() {
            let a = winners[2 * n];
            let b = winners[2 * n + 1];
            let (w, l) = if Self::beats(&heads, a, b) {
                (a, b)
            } else {
                (b, a)
            };
            winners[n] = w;
            tree[n] = l;
        }
        let winner = winners[1.min(2 * k - 1)];
        Ok(Self {
            sources,
            heads,
            tree,
            winner,
            remaining_sources: remaining,
            _charge: charge,
            _tracked: None,
        })
    }

    /// Does stream `a`'s head beat (sort before) stream `b`'s head?
    /// Exhausted streams lose to everything; ties break by stream index.
    #[inline]
    fn beats(heads: &[Option<T>], a: usize, b: usize) -> bool {
        match (&heads[a], &heads[b]) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(x), Some(y)) => (x.key(), a) < (y.key(), b),
        }
    }

    /// Extract the smallest head record, refilling from its source.
    pub fn pop(&mut self) -> Result<Option<T>> {
        if self.remaining_sources == 0 {
            return Ok(None);
        }
        let w = self.winner;
        let out = match self.heads[w].take() {
            Some(r) => r,
            None => return Ok(None),
        };
        let refill = self.sources[w].pull()?;
        if refill.is_none() {
            self.remaining_sources -= 1;
        }
        self.heads[w] = refill;
        // Replay the path from leaf w to the root.
        let k = self.sources.len();
        let mut cur = w;
        let mut n = (k + w) / 2;
        while n >= 1 {
            let stored = self.tree[n];
            if Self::beats(&self.heads, stored, cur) {
                self.tree[n] = cur;
                cur = stored;
            }
            n /= 2;
        }
        self.winner = cur;
        Ok(Some(out))
    }

    /// Number of sources not yet exhausted.
    pub fn live_sources(&self) -> usize {
        self.remaining_sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut lt: LoserTree<u64, SliceSource<'_, u64>>) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(x) = lt.pop().unwrap() {
            out.push(x);
        }
        out
    }

    #[test]
    fn merges_two_sorted_streams() {
        let a = vec![1u64, 3, 5, 7];
        let b = vec![2u64, 4, 6, 8];
        let lt = LoserTree::new(vec![SliceSource::new(&a), SliceSource::new(&b)]).unwrap();
        assert_eq!(drain(lt), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn merges_single_stream() {
        let a = vec![5u64, 6, 7];
        let lt = LoserTree::new(vec![SliceSource::new(&a)]).unwrap();
        assert_eq!(drain(lt), vec![5, 6, 7]);
    }

    #[test]
    fn merges_many_uneven_streams() {
        let streams: Vec<Vec<u64>> = vec![
            vec![10, 20, 30],
            vec![],
            vec![5],
            vec![1, 2, 3, 4, 100],
            vec![15, 25],
            vec![],
        ];
        let sources: Vec<_> = streams.iter().map(|s| SliceSource::new(&s[..])).collect();
        let lt = LoserTree::new(sources).unwrap();
        let got = drain(lt);
        let mut want: Vec<u64> = streams.concat();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn handles_duplicates_deterministically() {
        let a = vec![1u64, 1, 1];
        let b = vec![1u64, 1];
        let lt = LoserTree::new(vec![SliceSource::new(&a), SliceSource::new(&b)]).unwrap();
        assert_eq!(drain(lt), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn all_empty_streams() {
        let a: Vec<u64> = vec![];
        let b: Vec<u64> = vec![];
        let lt = LoserTree::new(vec![SliceSource::new(&a), SliceSource::new(&b)]).unwrap();
        assert!(drain(lt).is_empty());
    }

    #[test]
    fn zero_streams_rejected() {
        let r = LoserTree::<u64, SliceSource<'_, u64>>::new(vec![]);
        assert!(r.is_err());
    }

    #[test]
    fn non_power_of_two_widths() {
        for k in 1..=9usize {
            let streams: Vec<Vec<u64>> = (0..k)
                .map(|i| (0..5).map(|j| (j * k + i) as u64).collect())
                .collect();
            let sources: Vec<_> = streams.iter().map(|s| SliceSource::new(&s[..])).collect();
            let lt = LoserTree::new(sources).unwrap();
            let got = drain(lt);
            let want: Vec<u64> = (0..5 * k as u64).collect();
            assert_eq!(got, want, "k = {k}");
        }
    }

    #[test]
    fn tracking_charges_memory() {
        let mem = emcore::MemoryTracker::new(1000, true);
        let a = vec![1u64];
        let lt = LoserTree::with_tracking(vec![SliceSource::new(&a)], &mem).unwrap();
        assert!(mem.current() > 0);
        drop(lt);
        assert_eq!(mem.current(), 0);
    }
}
