//! Multiway merging of sorted runs.

use emcore::{EmConfig, EmContext, EmError, EmFile, Record, Result};

use crate::loser_tree::LoserTree;

/// Largest merge fan-in that fits the memory budget for record type `T`:
/// `k` reader block buffers + one writer block buffer + `O(k)` loser-tree
/// state must total at most `M` words.
pub fn max_merge_fan_in<T: Record>(config: EmConfig) -> usize {
    max_fan_in_for_budget::<T>(config, config.mem_capacity())
}

/// [`max_merge_fan_in`] against the *live* budget of `ctx` rather than the
/// static configuration: when the memory governor has squeezed `M` mid-job,
/// this shrinks accordingly, and merge passes started after the squeeze use
/// the narrower fan-in.
pub fn max_merge_fan_in_now<T: Record>(ctx: &EmContext) -> usize {
    max_fan_in_for_budget::<T>(ctx.config(), ctx.mem_budget())
}

fn max_fan_in_for_budget<T: Record>(config: EmConfig, budget: usize) -> usize {
    let block_words = config.block_size() * T::WORDS;
    let per_stream = block_words + T::WORDS + 2; // reader buffer + tree slot
    ((budget.saturating_sub(block_words)) / per_stream).max(2)
}

/// Merge up to `fan_in` sorted runs into one sorted file using a loser
/// tree. Memory: one block buffer per input run + one output buffer +
/// `O(k)` tree state — within `M` for `k ≤ M/B − 2`.
pub fn merge_once<T: Record>(ctx: &EmContext, runs: &[EmFile<T>]) -> Result<EmFile<T>> {
    let readers: Vec<_> = runs.iter().map(|r| r.reader()).collect::<Result<_>>()?;
    let mut tree = LoserTree::with_tracking(readers, ctx.mem())?;
    let mut w = ctx.writer::<T>()?;
    while let Some(x) = tree.pop()? {
        w.push(x)?;
    }
    w.finish()
}

/// Merge an arbitrary number of sorted runs into a single sorted file by
/// repeated `fan_in`-way passes.
///
/// Each pass reads and writes every record once (`2·ceil(N/B)` I/Os), and
/// `ceil(log_{fan_in}(#runs))` passes are needed — the classical
/// `O((N/B)·lg_{M/B}(N/B))` sort bound when runs come from run formation.
pub fn merge_runs<T: Record>(ctx: &EmContext, mut runs: Vec<EmFile<T>>) -> Result<EmFile<T>> {
    merge_runs_with_fan_in(ctx, &mut runs, usize::MAX)
}

/// [`merge_runs`] with an explicit fan-in (exposed for the fan-in ablation
/// experiment EX-A2). `fan_in` is re-clamped to `[2, max_merge_fan_in_now]`
/// at every pass boundary, so a governor squeeze between passes narrows the
/// fan-in of subsequent passes (more passes, same output) instead of
/// busting the budget.
pub fn merge_runs_with_fan_in<T: Record>(
    ctx: &EmContext,
    runs: &mut Vec<EmFile<T>>,
    fan_in: usize,
) -> Result<EmFile<T>> {
    if runs.is_empty() {
        return ctx.create_file::<T>();
    }
    while runs.len() > 1 {
        let mut next: Vec<EmFile<T>> = Vec::new();
        let mut iter = std::mem::take(runs).into_iter();
        loop {
            // The clamp is re-read per *group*, so a squeeze landing
            // mid-pass narrows the very next group, not just the next
            // pass.
            let fan = fan_in.clamp(2, max_merge_fan_in_now::<T>(ctx));
            let group: Vec<EmFile<T>> = iter.by_ref().take(fan).collect();
            match group.len() {
                0 => break,
                // A lone leftover run moves to the next pass unmerged —
                // merging it alone would copy every block for nothing.
                1 => {
                    next.extend(group);
                    break;
                }
                _ => merge_group_adaptive(ctx, group, &mut next)?,
            }
        }
        *runs = next;
    }
    runs.pop()
        .ok_or_else(|| EmError::config("merge pass produced no output run"))
}

/// Merge `group` into `out`, splitting the group in half and retrying when
/// the reader buffers no longer fit a freshly squeezed budget. The halves
/// land in the current pass's output and are merged by a later pass, so
/// the result is identical — just more passes. Only a budget too small for
/// even a 2-way merge surfaces the typed error.
fn merge_group_adaptive<T: Record>(
    ctx: &EmContext,
    mut group: Vec<EmFile<T>>,
    out: &mut Vec<EmFile<T>>,
) -> Result<()> {
    if group.len() == 1 {
        out.extend(group);
        return Ok(());
    }
    match merge_once(ctx, &group) {
        Ok(f) => {
            out.push(f);
            Ok(())
        }
        Err(EmError::MemoryExceeded { .. }) if group.len() > 2 => {
            let right = group.split_off(group.len() / 2);
            merge_group_adaptive(ctx, group, out)?;
            merge_group_adaptive(ctx, right, out)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::EmConfig;

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny()) // M=256, B=16, fan_in=14
    }

    fn run_of(ctx: &EmContext, data: &[u64]) -> EmFile<u64> {
        let mut v = data.to_vec();
        v.sort_unstable();
        EmFile::from_slice(ctx, &v).unwrap()
    }

    #[test]
    fn merge_once_two_runs() {
        let c = ctx();
        let a = run_of(&c, &[1, 3, 5]);
        let b = run_of(&c, &[2, 4, 6]);
        let m = merge_once(&c, &[a, b]).unwrap();
        assert_eq!(m.to_vec().unwrap(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_runs_many_passes() {
        let c = ctx();
        // 30 runs with fan-in 14 → 2 passes (30 → 3 → 1)
        let runs: Vec<EmFile<u64>> = (0..30)
            .map(|i| {
                run_of(
                    &c,
                    &(0..20).map(|j| (j * 30 + i) as u64).collect::<Vec<_>>(),
                )
            })
            .collect();
        let m = merge_runs(&c, runs).unwrap();
        assert_eq!(m.len(), 600);
        assert!(crate::is_sorted(&m).unwrap());
        assert_eq!(m.to_vec().unwrap(), (0..600u64).collect::<Vec<_>>());
    }

    #[test]
    fn merge_empty_run_list() {
        let c = ctx();
        let m = merge_runs::<u64>(&c, vec![]).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn merge_single_run_is_identity() {
        let c = ctx();
        let a = run_of(&c, &[4, 2, 9]);
        let m = merge_runs(&c, vec![a]).unwrap();
        assert_eq!(m.to_vec().unwrap(), vec![2, 4, 9]);
    }

    #[test]
    fn small_fan_in_more_passes_more_io() {
        let c1 = ctx();
        let c2 = ctx();
        let mk = |c: &EmContext| -> Vec<EmFile<u64>> {
            (0..16)
                .map(|i| run_of(c, &(0..16).map(|j| (j * 16 + i) as u64).collect::<Vec<_>>()))
                .collect()
        };
        let mut r1 = mk(&c1);
        let mut r2 = mk(&c2);
        let s1 = c1.stats().snapshot();
        let s2 = c2.stats().snapshot();
        let m1 = merge_runs_with_fan_in(&c1, &mut r1, 2).unwrap(); // 4 passes
        let m2 = merge_runs_with_fan_in(&c2, &mut r2, 14).unwrap(); // 2 passes
        assert_eq!(m1.to_vec().unwrap(), m2.to_vec().unwrap());
        let io1 = c1.stats().snapshot().since(&s1).total_ios();
        let io2 = c2.stats().snapshot().since(&s2).total_ios();
        assert!(
            io1 > io2,
            "fan-in 2 ({io1} I/Os) should cost more than fan-in 14 ({io2})"
        );
    }
}
