//! Multiway merging of sorted runs.

use emcore::{EmConfig, EmContext, EmError, EmFile, Record, Result};

use crate::loser_tree::LoserTree;

/// Largest merge fan-in that fits the memory budget for record type `T`:
/// `k` reader block buffers + one writer block buffer + `O(k)` loser-tree
/// state must total at most `M` words.
pub fn max_merge_fan_in<T: Record>(config: EmConfig) -> usize {
    let block_words = config.block_size() * T::WORDS;
    let per_stream = block_words + T::WORDS + 2; // reader buffer + tree slot
    ((config.mem_capacity().saturating_sub(block_words)) / per_stream).max(2)
}

/// Merge up to `fan_in` sorted runs into one sorted file using a loser
/// tree. Memory: one block buffer per input run + one output buffer +
/// `O(k)` tree state — within `M` for `k ≤ M/B − 2`.
pub fn merge_once<T: Record>(ctx: &EmContext, runs: &[EmFile<T>]) -> Result<EmFile<T>> {
    let readers: Vec<_> = runs.iter().map(|r| r.reader()).collect();
    let mut tree = LoserTree::with_tracking(readers, ctx.mem())?;
    let mut w = ctx.writer::<T>()?;
    while let Some(x) = tree.pop()? {
        w.push(x)?;
    }
    w.finish()
}

/// Merge an arbitrary number of sorted runs into a single sorted file by
/// repeated `fan_in`-way passes.
///
/// Each pass reads and writes every record once (`2·ceil(N/B)` I/Os), and
/// `ceil(log_{fan_in}(#runs))` passes are needed — the classical
/// `O((N/B)·lg_{M/B}(N/B))` sort bound when runs come from run formation.
pub fn merge_runs<T: Record>(ctx: &EmContext, mut runs: Vec<EmFile<T>>) -> Result<EmFile<T>> {
    merge_runs_with_fan_in(ctx, &mut runs, max_merge_fan_in::<T>(ctx.config()))
}

/// [`merge_runs`] with an explicit fan-in (exposed for the fan-in ablation
/// experiment EX-A2). `fan_in` is clamped to `[2, M/B − 2]`.
pub fn merge_runs_with_fan_in<T: Record>(
    ctx: &EmContext,
    runs: &mut Vec<EmFile<T>>,
    fan_in: usize,
) -> Result<EmFile<T>> {
    let fan_in = fan_in.clamp(2, max_merge_fan_in::<T>(ctx.config()));
    if runs.is_empty() {
        return ctx.create_file::<T>();
    }
    while runs.len() > 1 {
        let mut next: Vec<EmFile<T>> = Vec::with_capacity(runs.len().div_ceil(fan_in));
        let mut group: Vec<EmFile<T>> = Vec::with_capacity(fan_in);
        for r in runs.drain(..) {
            group.push(r);
            if group.len() == fan_in {
                next.push(merge_once(ctx, &group)?);
                group.clear();
            }
        }
        if group.len() > 1 {
            next.push(merge_once(ctx, &group)?);
        } else if let Some(lone) = group.pop() {
            // A lone leftover run moves to the next pass unmerged — merging
            // it alone would copy every block for nothing.
            next.push(lone);
        }
        *runs = next;
    }
    runs.pop()
        .ok_or_else(|| EmError::config("merge pass produced no output run"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::EmConfig;

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny()) // M=256, B=16, fan_in=14
    }

    fn run_of(ctx: &EmContext, data: &[u64]) -> EmFile<u64> {
        let mut v = data.to_vec();
        v.sort_unstable();
        EmFile::from_slice(ctx, &v).unwrap()
    }

    #[test]
    fn merge_once_two_runs() {
        let c = ctx();
        let a = run_of(&c, &[1, 3, 5]);
        let b = run_of(&c, &[2, 4, 6]);
        let m = merge_once(&c, &[a, b]).unwrap();
        assert_eq!(m.to_vec().unwrap(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_runs_many_passes() {
        let c = ctx();
        // 30 runs with fan-in 14 → 2 passes (30 → 3 → 1)
        let runs: Vec<EmFile<u64>> = (0..30)
            .map(|i| {
                run_of(
                    &c,
                    &(0..20).map(|j| (j * 30 + i) as u64).collect::<Vec<_>>(),
                )
            })
            .collect();
        let m = merge_runs(&c, runs).unwrap();
        assert_eq!(m.len(), 600);
        assert!(crate::is_sorted(&m).unwrap());
        assert_eq!(m.to_vec().unwrap(), (0..600u64).collect::<Vec<_>>());
    }

    #[test]
    fn merge_empty_run_list() {
        let c = ctx();
        let m = merge_runs::<u64>(&c, vec![]).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn merge_single_run_is_identity() {
        let c = ctx();
        let a = run_of(&c, &[4, 2, 9]);
        let m = merge_runs(&c, vec![a]).unwrap();
        assert_eq!(m.to_vec().unwrap(), vec![2, 4, 9]);
    }

    #[test]
    fn small_fan_in_more_passes_more_io() {
        let c1 = ctx();
        let c2 = ctx();
        let mk = |c: &EmContext| -> Vec<EmFile<u64>> {
            (0..16)
                .map(|i| run_of(c, &(0..16).map(|j| (j * 16 + i) as u64).collect::<Vec<_>>()))
                .collect()
        };
        let mut r1 = mk(&c1);
        let mut r2 = mk(&c2);
        let s1 = c1.stats().snapshot();
        let s2 = c2.stats().snapshot();
        let m1 = merge_runs_with_fan_in(&c1, &mut r1, 2).unwrap(); // 4 passes
        let m2 = merge_runs_with_fan_in(&c2, &mut r2, 14).unwrap(); // 2 passes
        assert_eq!(m1.to_vec().unwrap(), m2.to_vec().unwrap());
        let io1 = c1.stats().snapshot().since(&s1).total_ios();
        let io2 = c2.stats().snapshot().since(&s2).total_ios();
        assert!(
            io1 > io2,
            "fan-in 2 ({io1} I/Os) should cost more than fan-in 14 ({io2})"
        );
    }
}
