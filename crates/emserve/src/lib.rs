//! # emserve — an online splitter/quantile query service
//!
//! The batch algorithms (PRs 0–4) answer one-shot jobs; this crate turns
//! them into a long-lived service, exploiting the paper's central
//! amortization *online*: selecting `K` ranks together costs `B(N, K)`
//! I/Os — far less than `K` independent selections (Theorem 4) — and, in
//! the spirit of near-optimal online multiselection (Barbay–Gupta–Jo–
//! Rao–Sorenson), every answered query leaves pivot structure behind that
//! makes future queries cheaper.
//!
//! Three layers:
//!
//! * [`Catalog`] — a journaled name → dataset map on an
//!   [`emcore::EmContext`]; registered datasets are persistent and
//!   reopenable across process restarts (directory backend).
//! * [`SplitterIndex`] — the per-dataset pivot skeleton: ordered rank
//!   windows with known boundary elements, refined by every answered
//!   batch and committed to its own journal. Boundary hits are answered
//!   from memory at zero I/O; misses select only inside the narrowest
//!   known segment.
//! * [`QueryServer`] / [`Client`] — a scheduler thread that coalesces
//!   concurrent in-flight queries per dataset under a batching window
//!   (bounded request queue = admission control) and answers each batch
//!   with one multi-select pass. [`serve_lines`] adapts it to the
//!   `emsplit serve` line protocol.
//!
//! The serving layer is fault-isolated (PR 6): reply channels carry typed
//! [`emcore::EmError`]s, failed batches are retried and then bisected so a
//! poisoned query is quarantined without failing its coalesced
//! neighbours, a per-dataset circuit breaker ([`BreakerState`]) fails
//! fast after repeated fatal faults and is restored by a background
//! probe, and over-deadline queries are shed — or, in degraded mode,
//! answered approximately from the splitter skeleton at zero I/O with an
//! explicit rank-error bound ([`QueryAnswer`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod catalog;
mod index;
mod protocol;
mod server;

pub use catalog::{validate_name, Catalog, DatasetEntry, CATALOG_JOURNAL};
pub use index::{AnswerStats, Segment, SplitterIndex};
pub use protocol::serve_lines;
pub use server::{
    BreakerState, Client, DatasetHealth, QueryAnswer, QueryOptions, QueryServer, ServeOptions,
    ServeReport, Ticket,
};
