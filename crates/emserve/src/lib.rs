//! # emserve — an online splitter/quantile query service
//!
//! The batch algorithms (PRs 0–4) answer one-shot jobs; this crate turns
//! them into a long-lived service, exploiting the paper's central
//! amortization *online*: selecting `K` ranks together costs `B(N, K)`
//! I/Os — far less than `K` independent selections (Theorem 4) — and, in
//! the spirit of near-optimal online multiselection (Barbay–Gupta–Jo–
//! Rao–Sorenson), every answered query leaves pivot structure behind that
//! makes future queries cheaper.
//!
//! Three layers:
//!
//! * [`Catalog`] — a journaled name → dataset map on an
//!   [`emcore::EmContext`]; registered datasets are persistent and
//!   reopenable across process restarts (directory backend).
//! * [`SplitterIndex`] — the per-dataset pivot skeleton: ordered rank
//!   windows with known boundary elements, refined by every answered
//!   batch and committed to its own journal. Boundary hits are answered
//!   from memory at zero I/O; misses select only inside the narrowest
//!   known segment.
//! * [`QueryServer`] / [`Client`] — a scheduler thread that coalesces
//!   concurrent in-flight queries per dataset under a batching window
//!   (bounded request queue = admission control) and answers each batch
//!   with one multi-select pass. [`serve_session`] adapts any
//!   [`QueryService`] to the `emsplit serve` line protocol, whose
//!   requests and replies are typed ([`Request`]/[`Response`]) and
//!   versioned ([`PROTOCOL_VERSION`]).
//! * [`Router`] — sharded scale-out (PR 9): a registered dataset is
//!   split into per-shard stores at exact splitter boundaries (the
//!   `apsplit` K-partitioning), the cuts are journaled in the catalog
//!   ([`ShardMap`]), and rank queries are scatter/gathered by co-ranking
//!   over the boundary skeleton — each shard answers its local ranks
//!   exactly, and the merged fleet answer is bit-identical to a single
//!   store. A breaker-open or memory-starved shard degrades only its own
//!   key range (approximate answers from the skeleton with an honest
//!   rank-error bound) while the rest of the fleet stays exact.
//!
//! The [`QueryService`] trait is the transport-agnostic surface over
//! both: the line protocol, the CLI, and tests are written once against
//! it, and whether the backing service is one [`QueryServer`] or a
//! [`Router`] fleet is a construction-time choice.
//!
//! The serving layer is fault-isolated (PR 6): reply channels carry typed
//! [`emcore::EmError`]s, failed batches are retried and then bisected so a
//! poisoned query is quarantined without failing its coalesced
//! neighbours, a per-dataset circuit breaker ([`BreakerState`]) fails
//! fast after repeated fatal faults and is restored by a background
//! probe, and over-deadline queries are shed — or, in degraded mode,
//! answered approximately from the splitter skeleton at zero I/O with an
//! explicit rank-error bound ([`QueryAnswer`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod api;
mod catalog;
mod index;
mod protocol;
mod server;
mod shard;

pub use api::{QueryService, ServiceTicket};
pub use catalog::{validate_name, Catalog, DatasetEntry, ShardMap, CATALOG_JOURNAL};
pub use index::{approx_from_skeleton, AnswerStats, Segment, SplitterIndex};
#[allow(deprecated)]
pub use protocol::serve_lines;
pub use protocol::{serve_session, Request, Response, PROTOCOL_VERSION};
pub use server::{
    BreakerState, Client, DatasetHealth, QueryAnswer, QueryOptions, QueryServer, ServeOptions,
    ServeOptionsBuilder, ServeReport, Ticket,
};
pub use shard::{shard_fleet_in_memory, shard_fleet_on_disk, RoutedTicket, Router};
