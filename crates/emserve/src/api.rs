//! Transport-agnostic serving API: the [`QueryService`] trait.
//!
//! The line protocol, the CLI, and tests are written once against this
//! trait; whether the backing service is a single-store [`QueryServer`]
//! or a sharded [`Router`](crate::shard::Router) is the caller's choice
//! at construction time. Both implementations answer exact queries
//! bit-identically to a plain multi-select of the same ranks, so a
//! transport can switch between them without re-validating answers.

use emcore::{EmError, Record, Result};

use crate::server::{DatasetHealth, QueryAnswer, QueryOptions, QueryServer, ServeReport, Ticket};
use crate::shard::RoutedTicket;

/// An in-flight answer from any [`QueryService`]: either a local
/// scheduler ticket or a routed scatter/gather. The only thing a caller
/// can do with it is [`ServiceTicket::wait`] — transports that need
/// `wait_timeout` (wedged-server protection) stay on the concrete
/// [`Ticket`] via a raw [`crate::server::Client`].
#[derive(Debug)]
pub enum ServiceTicket<T: Record> {
    /// A single-store [`QueryServer`] answer.
    Local(Ticket<T>),
    /// A sharded [`Router`] scatter/gather answer.
    Routed(RoutedTicket<T>),
}

impl<T: Record> ServiceTicket<T> {
    /// Block until the answer arrives (in the caller's rank order).
    pub fn wait(self) -> Result<QueryAnswer<T>> {
        match self {
            ServiceTicket::Local(t) => t.wait(),
            ServiceTicket::Routed(t) => t.wait(),
        }
    }
}

/// The serving surface shared by [`QueryServer`] (one store) and
/// [`Router`](crate::shard::Router) (splitter-partitioned shards).
///
/// Provided methods give every implementation the same rank semantics:
/// [`QueryService::quantiles`] computes the `q`-quantile ranks
/// `⌊i·n/q⌋ max 1` for `i = 1..q−1` — the ranks `emsplit quantiles`
/// prints — and submits them as one rank query.
pub trait QueryService<T: Record> {
    /// Register `data` under `name` (or reopen an already-cataloged
    /// dataset, ignoring `data`). Returns the dataset length.
    fn register(&self, name: &str, data: Vec<T>) -> Result<u64>;

    /// Length of a registered dataset, at zero I/O.
    fn dataset_len(&self, name: &str) -> Result<u64>;

    /// Submit one rank query with explicit per-query options.
    fn rank_with(
        &self,
        name: &str,
        ranks: Vec<u64>,
        opts: QueryOptions,
    ) -> Result<ServiceTicket<T>>;

    /// Submit one rank query with default options.
    fn rank(&self, name: &str, ranks: Vec<u64>) -> Result<ServiceTicket<T>> {
        self.rank_with(name, ranks, QueryOptions::default())
    }

    /// Submit several queries against one dataset as a pre-coalesced
    /// batch: one ticket per query, answers independent.
    fn rank_batch(&self, name: &str, queries: Vec<Vec<u64>>) -> Result<Vec<ServiceTicket<T>>>;

    /// Submit the `q`-quantile query for `name`: ranks `⌊i·n/q⌋ max 1`
    /// for `i = 1..q−1`. Errors on `q < 2` or an unknown dataset.
    fn quantiles(&self, name: &str, q: u64) -> Result<ServiceTicket<T>> {
        if q < 2 {
            return Err(EmError::config("quantiles: count must be ≥ 2"));
        }
        let n = self.dataset_len(name)?;
        let ranks: Vec<u64> = (1..q).map(|i| ((i * n) / q).max(1)).collect();
        self.rank(name, ranks)
    }

    /// Per-dataset breaker/lease health. A router reports every shard's
    /// datasets, names suffixed `@shard<i>`.
    fn health(&self) -> Result<Vec<DatasetHealth>>;

    /// Service counters so far. A router returns the merged fleet report
    /// (fields summed across shards, conservation preserved).
    fn stats(&self) -> Result<ServeReport>;

    /// Prometheus-style text exposition of the service's metrics
    /// registry. A shard fleet shares one registry, so this is already
    /// the fleet-wide scrape.
    fn metrics(&self) -> Result<String>;
}

impl<T: Record> QueryService<T> for QueryServer<T> {
    fn register(&self, name: &str, data: Vec<T>) -> Result<u64> {
        self.client()?.register(name, data)
    }

    fn dataset_len(&self, name: &str) -> Result<u64> {
        self.client()?.dataset_len(name)
    }

    fn rank_with(
        &self,
        name: &str,
        ranks: Vec<u64>,
        opts: QueryOptions,
    ) -> Result<ServiceTicket<T>> {
        Ok(ServiceTicket::Local(
            self.client()?.query_with(name, ranks, opts)?,
        ))
    }

    fn rank_batch(&self, name: &str, queries: Vec<Vec<u64>>) -> Result<Vec<ServiceTicket<T>>> {
        Ok(self
            .client()?
            .submit_batch(name, queries)?
            .into_iter()
            .map(ServiceTicket::Local)
            .collect())
    }

    fn health(&self) -> Result<Vec<DatasetHealth>> {
        self.client()?.health()
    }

    fn stats(&self) -> Result<ServeReport> {
        self.client()?.report()
    }

    fn metrics(&self) -> Result<String> {
        Ok(self.metrics.expose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeOptions;
    use emcore::{EmConfig, EmContext};

    #[test]
    fn query_server_serves_through_the_trait() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let svc: &dyn QueryService<u64> = &server;
        let data: Vec<u64> = (0..100).rev().collect();
        assert_eq!(svc.register("ds", data).unwrap(), 100);
        assert_eq!(svc.dataset_len("ds").unwrap(), 100);
        let a = svc.rank("ds", vec![1, 50, 100]).unwrap().wait().unwrap();
        assert!(!a.approx);
        assert_eq!(a.values, vec![0, 49, 99]);
        // quantiles computes the same ranks the protocol always used.
        let q = svc.quantiles("ds", 4).unwrap().wait().unwrap();
        assert_eq!(q.values, vec![24, 49, 74]);
        assert!(matches!(svc.quantiles("ds", 1), Err(EmError::Config(_))));
        assert!(matches!(svc.quantiles("nope", 4), Err(EmError::Config(_))));
        // Batches: one ticket per query.
        let ts = svc.rank_batch("ds", vec![vec![1], vec![2, 3]]).unwrap();
        let answers: Vec<Vec<u64>> = ts.into_iter().map(|t| t.wait().unwrap().values).collect();
        assert_eq!(answers, vec![vec![0], vec![1, 2]]);
        let report = QueryService::<u64>::stats(&server).unwrap();
        assert_eq!(report.queries, 4);
        assert_eq!(QueryService::<u64>::health(&server).unwrap().len(), 1);
        assert!(QueryService::<u64>::metrics(&server).is_ok());
        server.shutdown().unwrap();
    }
}
