//! Line-oriented request protocol for `emsplit serve`, typed end to end.
//!
//! Requests arrive one per line on a reader (stdin for the CLI); answers
//! are written to `out` (stdout) as plain numbers, one element per line —
//! exactly the shape `emsplit select` and `emsplit quantiles` print, so a
//! scripted session can be diffed against the one-shot commands. Status
//! and errors go to `err` (stderr), prefixed `ok`/`error`, so they never
//! pollute the answer stream.
//!
//! Commands ([`Request`]):
//!
//! ```text
//! hello <version>           announce the client's protocol version; a
//!                           mismatch is answered with a typed error
//!                           ([`emcore::EmError::ProtocolMismatch`]), not
//!                           a parse failure
//! open <name> <path>        register <path> (flat little-endian u64 file)
//!                           as dataset <name>, or reopen it from the
//!                           catalog if already registered
//! rank <name> <r1> [r2 …]   queue a rank query (answers on flush)
//! quantiles <name> <q>      queue the q-quantile ranks ⌈i·n/q⌉, i=1..q-1
//! flush                     answer queued queries, in submission order
//! stats                     flush, then print service counters to err
//! health                    flush, then print per-dataset breaker states
//! metrics                   flush, then print the Prometheus-style text
//!                           exposition of the service's metrics registry
//!                           to err (framed by "ok metrics begin/end")
//! quit                      flush and exit (EOF implies quit)
//! ```
//!
//! Both [`Request`] and [`Response`] are typed enums with `parse`/`encode`
//! round-trips; the wire strings are unchanged from the stringly protocol
//! they replace, so existing scripted sessions keep diffing clean.
//!
//! [`serve_session`] drives a session against any [`QueryService`] — a
//! single-store [`QueryServer`] or a sharded [`crate::Router`] — with the
//! same wire behaviour either way. Queued `rank`/`quantiles` lines are
//! submitted per dataset as *one* pre-coalesced batch on flush.

use std::io::{BufRead, Write};

use emcore::{EmContext, EmError, Result};

use crate::api::{QueryService, ServiceTicket};
use crate::server::{BreakerState, DatasetHealth, QueryServer, ServeOptions, ServeReport};

/// The protocol version this build speaks. A client's `hello` carrying a
/// different version is refused with
/// [`emcore::EmError::ProtocolMismatch`].
pub const PROTOCOL_VERSION: u32 = 1;

/// One parsed protocol request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `hello <version>` — version negotiation.
    Hello {
        /// The version the client speaks.
        version: u32,
    },
    /// `open <name> <path>` — register a dataset from a flat u64 file.
    Open {
        /// Dataset name.
        name: String,
        /// Path to the flat little-endian u64 file.
        path: String,
    },
    /// `rank <name> <r1> [r2 …]` — queue a rank query.
    Rank {
        /// Dataset name.
        name: String,
        /// 1-based ranks, any order, repeats allowed.
        ranks: Vec<u64>,
    },
    /// `quantiles <name> <q>` — queue the q-quantile ranks.
    Quantiles {
        /// Dataset name.
        name: String,
        /// Number of quantile buckets (≥ 2).
        q: u64,
    },
    /// `flush` — answer queued queries in submission order.
    Flush,
    /// `stats` — flush, then print service counters.
    Stats,
    /// `health` — flush, then print per-dataset breaker states.
    Health,
    /// `metrics` — flush, then print the metrics exposition.
    Metrics,
    /// `quit` — flush and end the session.
    Quit,
}

impl Request {
    /// Parse one request line. `Ok(None)` for a blank line; a typed
    /// `Config` error (with the same messages the stringly protocol
    /// produced) for a malformed one.
    pub fn parse(line: &str) -> Result<Option<Request>> {
        let mut it = line.split_whitespace();
        let Some(cmd) = it.next() else {
            return Ok(None);
        };
        let req = match cmd {
            "hello" => {
                let version = it
                    .next()
                    .and_then(|t| t.strip_prefix('v').unwrap_or(t).parse().ok())
                    .ok_or_else(|| EmError::config("hello: bad version"))?;
                Request::Hello { version }
            }
            "open" => {
                let name = it
                    .next()
                    .ok_or_else(|| EmError::config("open: missing name"))?
                    .to_string();
                let path = it
                    .next()
                    .ok_or_else(|| EmError::config("open: missing path"))?
                    .to_string();
                Request::Open { name, path }
            }
            "rank" => {
                let name = it
                    .next()
                    .ok_or_else(|| EmError::config("rank: missing name"))?
                    .to_string();
                let ranks: Vec<u64> = it
                    .map(|t| {
                        t.parse::<u64>()
                            .map_err(|_| EmError::config(format!("rank: bad rank {t:?}")))
                    })
                    .collect::<Result<_>>()?;
                if ranks.is_empty() {
                    return Err(EmError::config("rank: no ranks given"));
                }
                Request::Rank { name, ranks }
            }
            "quantiles" => {
                let name = it
                    .next()
                    .ok_or_else(|| EmError::config("quantiles: missing name"))?
                    .to_string();
                let q: u64 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| EmError::config("quantiles: bad count"))?;
                Request::Quantiles { name, q }
            }
            "flush" => Request::Flush,
            "stats" => Request::Stats,
            "health" => Request::Health,
            "metrics" => Request::Metrics,
            "quit" => Request::Quit,
            other => return Err(EmError::config(format!("unknown command {other:?}"))),
        };
        Ok(Some(req))
    }

    /// Encode back to the wire line ([`Request::parse`]'s inverse).
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { version } => format!("hello {version}"),
            Request::Open { name, path } => format!("open {name} {path}"),
            Request::Rank { name, ranks } => {
                let mut s = format!("rank {name}");
                for r in ranks {
                    s.push(' ');
                    s.push_str(&r.to_string());
                }
                s
            }
            Request::Quantiles { name, q } => format!("quantiles {name} {q}"),
            Request::Flush => "flush".to_string(),
            Request::Stats => "stats".to_string(),
            Request::Health => "health".to_string(),
            Request::Metrics => "metrics".to_string(),
            Request::Quit => "quit".to_string(),
        }
    }
}

/// One typed status line written to the `err` stream. Answer values
/// themselves go to `out` as bare numbers and are not wrapped in a
/// response variant — that keeps the answer stream diffable against the
/// one-shot commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `ok hello v<version>` — the server's version, on a matching hello.
    Hello {
        /// The version the server speaks.
        version: u32,
    },
    /// `ok open <name> <len>` — dataset registered (or reopened).
    Open {
        /// Dataset name.
        name: String,
        /// Dataset length.
        len: u64,
    },
    /// `ok approx <name> rank_error=<e>` — the next answer block on
    /// `out` is degraded, with this guaranteed rank-error bound.
    Approx {
        /// Dataset name.
        name: String,
        /// Guaranteed rank-error bound.
        rank_error: u64,
    },
    /// `ok stats …` — the 17 service counters, keyed.
    Stats(ServeReport),
    /// `ok health <name> <state> failures=… lease_floor=… lease_granted=…`.
    Health(DatasetHealth),
    /// `ok metrics begin` — exposition text follows on `err`.
    MetricsBegin,
    /// `ok metrics end` — exposition text finished.
    MetricsEnd,
    /// `error <message>` — a failed request or query.
    Error(String),
}

impl Response {
    /// Encode to the wire line (byte-identical to the stringly protocol).
    pub fn encode(&self) -> String {
        match self {
            Response::Hello { version } => format!("ok hello v{version}"),
            Response::Open { name, len } => format!("ok open {name} {len}"),
            Response::Approx { name, rank_error } => {
                format!("ok approx {name} rank_error={rank_error}")
            }
            Response::Stats(r) => format!(
                "ok stats queries={} batches={} index_hits={} selected={} answer_us={} \
                 failed={} quarantined={} shed={} degraded={} breaker_trips={} \
                 mem_budget={} leases={} lease_floor={} lease_denials={} mem_degraded={} \
                 queue_depth={} batch_occupancy={}",
                r.queries,
                r.batches,
                r.index_hits,
                r.selected,
                r.answer_us,
                r.failed,
                r.quarantined,
                r.shed,
                r.degraded,
                r.breaker_trips,
                r.mem_budget_words,
                r.leases,
                r.lease_floor_words,
                r.lease_denials,
                r.mem_degraded,
                r.queue_depth,
                r.batch_occupancy
            ),
            Response::Health(h) => format!(
                "ok health {} {} failures={} lease_floor={} lease_granted={}",
                h.name,
                h.state.label(),
                h.consecutive_failures,
                h.lease_floor_words,
                h.lease_granted_words
            ),
            Response::MetricsBegin => "ok metrics begin".to_string(),
            Response::MetricsEnd => "ok metrics end".to_string(),
            Response::Error(msg) => format!("error {msg}"),
        }
    }

    /// Parse a wire line back into a typed response. Counters absent
    /// from the stats line (they are internal-only) decode as zero.
    pub fn parse(line: &str) -> Result<Response> {
        let bad = || EmError::config(format!("protocol: bad response {line:?}"));
        if let Some(msg) = line.strip_prefix("error ") {
            return Ok(Response::Error(msg.to_string()));
        }
        let rest = line.strip_prefix("ok ").ok_or_else(bad)?;
        let (verb, rest) = rest.split_once(' ').unwrap_or((rest, ""));
        let num = |s: &str| s.parse::<u64>().map_err(|_| bad());
        let keyed = |tok: &str, key: &str| -> Result<u64> {
            tok.strip_prefix(key)
                .and_then(|t| t.strip_prefix('='))
                .ok_or_else(bad)
                .and_then(num)
        };
        match verb {
            "hello" => {
                let v = rest
                    .strip_prefix('v')
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(bad)?;
                Ok(Response::Hello { version: v })
            }
            "open" => {
                let (name, len) = rest.split_once(' ').ok_or_else(bad)?;
                Ok(Response::Open {
                    name: name.to_string(),
                    len: num(len)?,
                })
            }
            "approx" => {
                let (name, e) = rest.split_once(' ').ok_or_else(bad)?;
                Ok(Response::Approx {
                    name: name.to_string(),
                    rank_error: keyed(e, "rank_error")?,
                })
            }
            "stats" => {
                let mut it = rest.split_whitespace();
                let mut next =
                    |key: &str| -> Result<u64> { keyed(it.next().ok_or_else(bad)?, key) };
                let r = ServeReport {
                    queries: next("queries")?,
                    batches: next("batches")?,
                    index_hits: next("index_hits")?,
                    selected: next("selected")?,
                    answer_us: next("answer_us")?,
                    failed: next("failed")?,
                    quarantined: next("quarantined")?,
                    shed: next("shed")?,
                    degraded: next("degraded")?,
                    breaker_trips: next("breaker_trips")?,
                    mem_budget_words: next("mem_budget")?,
                    leases: next("leases")?,
                    lease_floor_words: next("lease_floor")?,
                    lease_denials: next("lease_denials")?,
                    mem_degraded: next("mem_degraded")?,
                    queue_depth: next("queue_depth")?,
                    batch_occupancy: next("batch_occupancy")?,
                    ..ServeReport::default()
                };
                Ok(Response::Stats(r))
            }
            "health" => {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or_else(bad)?.to_string();
                let state = match it.next().ok_or_else(bad)? {
                    "closed" => BreakerState::Closed,
                    "open" => BreakerState::Open,
                    "half-open" => BreakerState::HalfOpen,
                    _ => return Err(bad()),
                };
                let mut next =
                    |key: &str| -> Result<u64> { keyed(it.next().ok_or_else(bad)?, key) };
                Ok(Response::Health(DatasetHealth {
                    name,
                    state,
                    consecutive_failures: next("failures")? as u32,
                    lease_floor_words: next("lease_floor")?,
                    lease_granted_words: next("lease_granted")?,
                }))
            }
            "metrics" => match rest {
                "begin" => Ok(Response::MetricsBegin),
                "end" => Ok(Response::MetricsEnd),
                _ => Err(bad()),
            },
            _ => Err(bad()),
        }
    }
}

/// One queued query: dataset and ranks, answered on flush.
struct Pending {
    name: String,
    ranks: Vec<u64>,
}

/// Drive a scripted session against any [`QueryService`] — a
/// [`QueryServer`] for one store, a [`crate::Router`] for a shard fleet;
/// the wire behaviour is identical. Returns the service's report after
/// the session (for a router: the merged fleet report).
pub fn serve_session<S: QueryService<u64>>(
    svc: &S,
    input: impl BufRead,
    mut out: impl Write,
    mut err: impl Write,
) -> Result<ServeReport> {
    let mut queue: Vec<Pending> = Vec::new();

    let flush =
        |queue: &mut Vec<Pending>, out: &mut dyn Write, err: &mut dyn Write| -> Result<()> {
            if queue.is_empty() {
                return Ok(());
            }
            // One pre-coalesced batch per dataset, but answers printed in
            // submission order.
            let mut per_ds: std::collections::BTreeMap<String, Vec<Vec<u64>>> =
                std::collections::BTreeMap::new();
            for p in queue.iter() {
                per_ds
                    .entry(p.name.clone())
                    .or_default()
                    .push(p.ranks.clone());
            }
            let mut tickets: std::collections::BTreeMap<
                String,
                std::collections::VecDeque<ServiceTicket<u64>>,
            > = std::collections::BTreeMap::new();
            for (name, queries) in per_ds {
                let ts = svc.rank_batch(&name, queries)?;
                tickets.insert(name, ts.into_iter().collect());
            }
            for p in queue.drain(..) {
                let t = tickets
                    .get_mut(&p.name)
                    .and_then(|v| v.pop_front())
                    .expect("one ticket per queued query");
                match t.wait() {
                    Ok(ans) => {
                        // Degraded answers are flagged on the err stream so
                        // the answer stream stays diffable against the
                        // one-shot commands when everything is exact.
                        if ans.approx {
                            let resp = Response::Approx {
                                name: p.name,
                                rank_error: ans.rank_error,
                            };
                            writeln!(err, "{}", resp.encode())?;
                        }
                        for x in ans.values {
                            writeln!(out, "{x}")?;
                        }
                    }
                    Err(e) => writeln!(err, "{}", Response::Error(e.to_string()).encode())?,
                }
            }
            out.flush()?;
            Ok(())
        };

    for line in input.lines() {
        let line = line?;
        let r: Result<bool> = (|| {
            let Some(req) = Request::parse(&line)? else {
                return Ok(false);
            };
            match req {
                Request::Hello { version } => {
                    if version != PROTOCOL_VERSION {
                        return Err(EmError::ProtocolMismatch {
                            client: version,
                            server: PROTOCOL_VERSION,
                        });
                    }
                    let resp = Response::Hello {
                        version: PROTOCOL_VERSION,
                    };
                    writeln!(err, "{}", resp.encode())?;
                }
                Request::Open { name, path } => {
                    let data = read_u64_file(&path)?;
                    let n = svc.register(&name, data)?;
                    writeln!(err, "{}", Response::Open { name, len: n }.encode())?;
                }
                Request::Rank { name, ranks } => queue.push(Pending { name, ranks }),
                Request::Quantiles { name, q } => {
                    if q < 2 {
                        return Err(EmError::config("quantiles: count must be ≥ 2"));
                    }
                    let n = svc.dataset_len(&name).map_err(|_| {
                        EmError::config(format!(
                            "quantiles: unknown dataset {name:?} (open it first)"
                        ))
                    })?;
                    // Same ranks as emselect::quantiles / `emsplit quantiles`.
                    let ranks: Vec<u64> = (1..q).map(|i| ((i * n) / q).max(1)).collect();
                    queue.push(Pending { name, ranks });
                }
                Request::Flush => flush(&mut queue, &mut out, &mut err)?,
                Request::Stats => {
                    flush(&mut queue, &mut out, &mut err)?;
                    let r = svc.stats()?;
                    writeln!(err, "{}", Response::Stats(r).encode())?;
                }
                Request::Metrics => {
                    flush(&mut queue, &mut out, &mut err)?;
                    // Round-trip a report so the scheduler refreshes its
                    // gauges (and quiesces) before the scrape.
                    let _ = svc.stats()?;
                    writeln!(err, "{}", Response::MetricsBegin.encode())?;
                    err.write_all(svc.metrics()?.as_bytes())?;
                    writeln!(err, "{}", Response::MetricsEnd.encode())?;
                }
                Request::Health => {
                    flush(&mut queue, &mut out, &mut err)?;
                    for h in svc.health()? {
                        writeln!(err, "{}", Response::Health(h).encode())?;
                    }
                }
                Request::Quit => {
                    flush(&mut queue, &mut out, &mut err)?;
                    return Ok(true);
                }
            }
            Ok(false)
        })();
        match r {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => writeln!(err, "{}", Response::Error(e.to_string()).encode())?,
        }
    }
    // EOF implies quit.
    flush(&mut queue, &mut out, &mut err)?;
    svc.stats()
}

/// Drive a scripted session against a fresh [`QueryServer`] started on
/// `ctx`. Returns the server's final [`ServeReport`].
#[deprecated(
    note = "use serve_session with a QueryService (a QueryServer or a Router) — this \
            wrapper always starts a fresh single-store server"
)]
pub fn serve_lines(
    ctx: &EmContext,
    opts: ServeOptions,
    input: impl BufRead,
    out: impl Write,
    err: impl Write,
) -> Result<ServeReport> {
    let mut server = QueryServer::<u64>::start(ctx, opts)?;
    let session = serve_session(&server, input, out, err);
    let report = server.shutdown();
    session.and(report)
}

/// Read a flat little-endian u64 file (the `emsplit gen` format).
fn read_u64_file(path: &str) -> Result<Vec<u64>> {
    let bytes = std::fs::read(path)?;
    if !bytes.len().is_multiple_of(8) {
        return Err(EmError::config(format!(
            "{path}: length {} is not a multiple of 8",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, SplitMix64};

    fn start_server(ctx: &EmContext) -> QueryServer<u64> {
        QueryServer::<u64>::start(ctx, ServeOptions::default()).unwrap()
    }

    #[test]
    fn scripted_session_answers_in_order() {
        let dir = std::env::temp_dir().join(format!("emserve-proto-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.bin");
        let mut v: Vec<u64> = (0..500).collect();
        SplitMix64::new(9).shuffle(&mut v);
        let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&data_path, bytes).unwrap();

        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut server = start_server(&ctx);
        let script = format!(
            "hello 1\nopen ds {}\nrank ds 1 250 500\nquantiles ds 4\nstats\nquit\n",
            data_path.display()
        );
        let mut out = Vec::new();
        let mut errs = Vec::new();
        let report = serve_session(&server, script.as_bytes(), &mut out, &mut errs).unwrap();
        let out = String::from_utf8(out).unwrap();
        let want: Vec<u64> = vec![0, 249, 499, 124, 249, 374];
        let got: Vec<u64> = out.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(got, want);
        let errs = String::from_utf8(errs).unwrap();
        assert!(errs.contains("ok hello v1"), "{errs}");
        assert!(errs.contains("ok open ds 500"), "{errs}");
        assert!(errs.contains("ok stats queries=2 batches=1"), "{errs}");
        assert_eq!(report.queries, 2);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_verb_scrapes_exposition_without_touching_answers() {
        let dir = std::env::temp_dir().join(format!("emserve-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.bin");
        let v: Vec<u64> = (0..300).rev().collect();
        let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&data_path, bytes).unwrap();

        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        ctx.metrics().set_enabled(true);
        let mut server = start_server(&ctx);
        let script = format!(
            "open ds {}\nrank ds 150\nmetrics\nstats\nquit\n",
            data_path.display()
        );
        let mut out = Vec::new();
        let mut errs = Vec::new();
        let report = serve_session(&server, script.as_bytes(), &mut out, &mut errs).unwrap();
        // The answer stream stays clean: just the one rank answer.
        assert_eq!(String::from_utf8(out).unwrap().trim(), "149");
        let errs = String::from_utf8(errs).unwrap();
        assert!(errs.contains("ok metrics begin"), "{errs}");
        assert!(errs.contains("ok metrics end"), "{errs}");
        assert!(
            errs.contains("# TYPE em_serve_query_e2e_us summary"),
            "{errs}"
        );
        // The scrape conserves: one exact query recorded end to end.
        assert!(
            errs.contains("em_serve_query_e2e_us_count{ds=\"ds\",outcome=\"exact\"} 1"),
            "{errs}"
        );
        assert!(errs.contains("queue_depth=0 batch_occupancy=1"), "{errs}");
        assert_eq!(report.queries, 1);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn protocol_errors_go_to_err_stream_only() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut server = start_server(&ctx);
        let script = "bogus\nrank nope 5\nflush\n";
        let mut out = Vec::new();
        let mut errs = Vec::new();
        serve_session(&server, script.as_bytes(), &mut out, &mut errs).unwrap();
        assert!(out.is_empty());
        let errs = String::from_utf8(errs).unwrap();
        assert!(errs.contains("error"), "{errs}");
        server.shutdown().unwrap();
    }

    #[test]
    fn hello_version_mismatch_is_typed_and_non_fatal() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut server = start_server(&ctx);
        let script = "hello 9\nhello 1\nquit\n";
        let mut out = Vec::new();
        let mut errs = Vec::new();
        serve_session(&server, script.as_bytes(), &mut out, &mut errs).unwrap();
        let errs = String::from_utf8(errs).unwrap();
        // The mismatch is the typed ProtocolMismatch error, rendered —
        // not an "unknown command" parse failure — and the session keeps
        // serving afterwards.
        assert!(
            errs.contains("error protocol version mismatch: client speaks v9, server speaks v1"),
            "{errs}"
        );
        assert!(errs.contains("ok hello v1"), "{errs}");
        server.shutdown().unwrap();
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = vec![
            Request::Hello { version: 1 },
            Request::Open {
                name: "ds".into(),
                path: "/tmp/data.bin".into(),
            },
            Request::Rank {
                name: "ds".into(),
                ranks: vec![1, 250, 500],
            },
            Request::Quantiles {
                name: "ds".into(),
                q: 4,
            },
            Request::Flush,
            Request::Stats,
            Request::Health,
            Request::Metrics,
            Request::Quit,
        ];
        for r in reqs {
            assert_eq!(Request::parse(&r.encode()).unwrap(), Some(r));
        }
        assert_eq!(Request::parse("   ").unwrap(), None);
        assert!(Request::parse("bogus x").is_err());
        assert!(Request::parse("hello vx").is_err());

        let resps = vec![
            Response::Hello { version: 1 },
            Response::Open {
                name: "ds".into(),
                len: 500,
            },
            Response::Approx {
                name: "ds".into(),
                rank_error: 42,
            },
            Response::Stats(ServeReport {
                queries: 7,
                batches: 2,
                mem_budget_words: 256,
                batch_occupancy: 3,
                ..ServeReport::default()
            }),
            Response::Health(DatasetHealth {
                name: "ds".into(),
                state: BreakerState::HalfOpen,
                consecutive_failures: 2,
                lease_floor_words: 64,
                lease_granted_words: 96,
            }),
            Response::MetricsBegin,
            Response::MetricsEnd,
            Response::Error("configuration error: rank 0 out of range".into()),
        ];
        for r in resps {
            assert_eq!(Response::parse(&r.encode()).unwrap(), r);
        }
        assert!(Response::parse("gibberish").is_err());
        assert!(Response::parse("ok stats queries=x").is_err());
    }

    // Keeps the deprecated serve_lines shim covered until it is removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_serve_lines_still_serves_a_session() {
        let dir = std::env::temp_dir().join(format!("emserve-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.bin");
        let v: Vec<u64> = (0..100).rev().collect();
        let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&data_path, bytes).unwrap();
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let script = format!("open ds {}\nrank ds 1 100\nquit\n", data_path.display());
        let mut out = Vec::new();
        let mut errs = Vec::new();
        let report = serve_lines(
            &ctx,
            ServeOptions::default(),
            script.as_bytes(),
            &mut out,
            &mut errs,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().collect::<Vec<_>>(), vec!["0", "99"]);
        assert_eq!(report.queries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
