//! Line-oriented request protocol for `emsplit serve`.
//!
//! Requests arrive one per line on a reader (stdin for the CLI); answers
//! are written to `out` (stdout) as plain numbers, one element per line —
//! exactly the shape `emsplit select` and `emsplit quantiles` print, so a
//! scripted session can be diffed against the one-shot commands. Status
//! and errors go to `err` (stderr), prefixed `ok`/`error`, so they never
//! pollute the answer stream.
//!
//! Commands:
//!
//! ```text
//! open <name> <path>        register <path> (flat little-endian u64 file)
//!                           as dataset <name>, or reopen it from the
//!                           catalog if already registered
//! rank <name> <r1> [r2 …]   queue a rank query (answers on flush)
//! quantiles <name> <q>      queue the q-quantile ranks ⌈i·n/q⌉, i=1..q-1
//! flush                     answer queued queries, in submission order
//! stats                     flush, then print service counters to err
//! health                    flush, then print per-dataset breaker states
//! metrics                   flush, then print the Prometheus-style text
//!                           exposition of the context's metrics registry
//!                           to err (framed by "ok metrics begin/end")
//! quit                      flush and exit (EOF implies quit)
//! ```
//!
//! Queued `rank`/`quantiles` lines are submitted per dataset as *one*
//! pre-coalesced batch on flush — a scripted session gets the same
//! batching the concurrent scheduler gives live clients.

use std::io::{BufRead, Write};

use emcore::{EmContext, EmError, Result};

use crate::server::{QueryServer, ServeOptions, ServeReport, Ticket};

/// One queued query: dataset, its queue position, and the ticket (after
/// submission).
struct Pending {
    name: String,
    ranks: Vec<u64>,
}

/// Drive a scripted session against a [`QueryServer`] started on `ctx`.
/// Returns the server's final [`ServeReport`].
pub fn serve_lines(
    ctx: &EmContext,
    opts: ServeOptions,
    input: impl BufRead,
    mut out: impl Write,
    mut err: impl Write,
) -> Result<ServeReport> {
    let mut server = QueryServer::<u64>::start(ctx, opts)?;
    let client = server.client()?;
    let mut lens: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut queue: Vec<Pending> = Vec::new();

    let flush =
        |queue: &mut Vec<Pending>, out: &mut dyn Write, err: &mut dyn Write| -> Result<()> {
            if queue.is_empty() {
                return Ok(());
            }
            // One pre-coalesced batch per dataset, but answers printed in
            // submission order.
            let mut per_ds: std::collections::BTreeMap<String, Vec<Vec<u64>>> =
                std::collections::BTreeMap::new();
            for p in queue.iter() {
                per_ds
                    .entry(p.name.clone())
                    .or_default()
                    .push(p.ranks.clone());
            }
            let mut tickets: std::collections::BTreeMap<
                String,
                std::collections::VecDeque<Ticket<u64>>,
            > = std::collections::BTreeMap::new();
            for (name, queries) in per_ds {
                let ts = client.submit_batch(&name, queries)?;
                tickets.insert(name, ts.into_iter().collect());
            }
            for p in queue.drain(..) {
                let t = tickets
                    .get_mut(&p.name)
                    .and_then(|v| v.pop_front())
                    .expect("one ticket per queued query");
                match t.wait() {
                    Ok(ans) => {
                        // Degraded answers are flagged on the err stream so
                        // the answer stream stays diffable against the
                        // one-shot commands when everything is exact.
                        if ans.approx {
                            writeln!(err, "ok approx {} rank_error={}", p.name, ans.rank_error)?;
                        }
                        for x in ans.values {
                            writeln!(out, "{x}")?;
                        }
                    }
                    Err(e) => writeln!(err, "error {e}")?,
                }
            }
            out.flush()?;
            Ok(())
        };

    for line in input.lines() {
        let line = line?;
        let mut it = line.split_whitespace();
        let Some(cmd) = it.next() else { continue };
        let r: Result<bool> = (|| {
            match cmd {
                "open" => {
                    let name = it
                        .next()
                        .ok_or_else(|| EmError::config("open: missing name"))?;
                    let path = it
                        .next()
                        .ok_or_else(|| EmError::config("open: missing path"))?;
                    let data = read_u64_file(path)?;
                    let n = client.register(name, data)?;
                    lens.insert(name.to_string(), n);
                    writeln!(err, "ok open {name} {n}")?;
                }
                "rank" => {
                    let name = it
                        .next()
                        .ok_or_else(|| EmError::config("rank: missing name"))?
                        .to_string();
                    let ranks: Vec<u64> = it
                        .map(|t| {
                            t.parse::<u64>()
                                .map_err(|_| EmError::config(format!("rank: bad rank {t:?}")))
                        })
                        .collect::<Result<_>>()?;
                    if ranks.is_empty() {
                        return Err(EmError::config("rank: no ranks given"));
                    }
                    queue.push(Pending { name, ranks });
                }
                "quantiles" => {
                    let name = it
                        .next()
                        .ok_or_else(|| EmError::config("quantiles: missing name"))?
                        .to_string();
                    let q: u64 = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| EmError::config("quantiles: bad count"))?;
                    if q < 2 {
                        return Err(EmError::config("quantiles: count must be ≥ 2"));
                    }
                    let n = *lens.get(&name).ok_or_else(|| {
                        EmError::config(format!(
                            "quantiles: unknown dataset {name:?} (open it first)"
                        ))
                    })?;
                    // Same ranks as emselect::quantiles / `emsplit quantiles`.
                    let ranks: Vec<u64> = (1..q).map(|i| ((i * n) / q).max(1)).collect();
                    queue.push(Pending { name, ranks });
                }
                "flush" => flush(&mut queue, &mut out, &mut err)?,
                "stats" => {
                    flush(&mut queue, &mut out, &mut err)?;
                    let r = client.report()?;
                    writeln!(
                        err,
                        "ok stats queries={} batches={} index_hits={} selected={} answer_us={} \
                         failed={} quarantined={} shed={} degraded={} breaker_trips={} \
                         mem_budget={} leases={} lease_floor={} lease_denials={} mem_degraded={} \
                         queue_depth={} batch_occupancy={}",
                        r.queries,
                        r.batches,
                        r.index_hits,
                        r.selected,
                        r.answer_us,
                        r.failed,
                        r.quarantined,
                        r.shed,
                        r.degraded,
                        r.breaker_trips,
                        r.mem_budget_words,
                        r.leases,
                        r.lease_floor_words,
                        r.lease_denials,
                        r.mem_degraded,
                        r.queue_depth,
                        r.batch_occupancy
                    )?;
                }
                "metrics" => {
                    flush(&mut queue, &mut out, &mut err)?;
                    // Round-trip a report so the scheduler refreshes its
                    // gauges (and quiesces) before the scrape.
                    let _ = client.report()?;
                    writeln!(err, "ok metrics begin")?;
                    err.write_all(ctx.metrics().expose().as_bytes())?;
                    writeln!(err, "ok metrics end")?;
                }
                "health" => {
                    flush(&mut queue, &mut out, &mut err)?;
                    for h in client.health()? {
                        writeln!(
                            err,
                            "ok health {} {} failures={} lease_floor={} lease_granted={}",
                            h.name,
                            h.state.label(),
                            h.consecutive_failures,
                            h.lease_floor_words,
                            h.lease_granted_words
                        )?;
                    }
                }
                "quit" => {
                    flush(&mut queue, &mut out, &mut err)?;
                    return Ok(true);
                }
                other => return Err(EmError::config(format!("unknown command {other:?}"))),
            }
            Ok(false)
        })();
        match r {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => writeln!(err, "error {e}")?,
        }
    }
    // EOF implies quit.
    flush(&mut queue, &mut out, &mut err)?;
    drop(client);
    server.shutdown()
}

/// Read a flat little-endian u64 file (the `emsplit gen` format).
fn read_u64_file(path: &str) -> Result<Vec<u64>> {
    let bytes = std::fs::read(path)?;
    if !bytes.len().is_multiple_of(8) {
        return Err(EmError::config(format!(
            "{path}: length {} is not a multiple of 8",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, SplitMix64};

    #[test]
    fn scripted_session_answers_in_order() {
        let dir = std::env::temp_dir().join(format!("emserve-proto-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.bin");
        let mut v: Vec<u64> = (0..500).collect();
        SplitMix64::new(9).shuffle(&mut v);
        let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&data_path, bytes).unwrap();

        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let script = format!(
            "open ds {}\nrank ds 1 250 500\nquantiles ds 4\nstats\nquit\n",
            data_path.display()
        );
        let mut out = Vec::new();
        let mut errs = Vec::new();
        let report = serve_lines(
            &ctx,
            ServeOptions::default(),
            script.as_bytes(),
            &mut out,
            &mut errs,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let want: Vec<u64> = vec![0, 249, 499, 124, 249, 374];
        let got: Vec<u64> = out.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(got, want);
        let errs = String::from_utf8(errs).unwrap();
        assert!(errs.contains("ok open ds 500"), "{errs}");
        assert!(errs.contains("ok stats queries=2 batches=1"), "{errs}");
        assert_eq!(report.queries, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_verb_scrapes_exposition_without_touching_answers() {
        let dir = std::env::temp_dir().join(format!("emserve-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.bin");
        let v: Vec<u64> = (0..300).rev().collect();
        let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&data_path, bytes).unwrap();

        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        ctx.metrics().set_enabled(true);
        let script = format!(
            "open ds {}\nrank ds 150\nmetrics\nstats\nquit\n",
            data_path.display()
        );
        let mut out = Vec::new();
        let mut errs = Vec::new();
        let report = serve_lines(
            &ctx,
            ServeOptions::default(),
            script.as_bytes(),
            &mut out,
            &mut errs,
        )
        .unwrap();
        // The answer stream stays clean: just the one rank answer.
        assert_eq!(String::from_utf8(out).unwrap().trim(), "149");
        let errs = String::from_utf8(errs).unwrap();
        assert!(errs.contains("ok metrics begin"), "{errs}");
        assert!(errs.contains("ok metrics end"), "{errs}");
        assert!(
            errs.contains("# TYPE em_serve_query_e2e_us summary"),
            "{errs}"
        );
        // The scrape conserves: one exact query recorded end to end.
        assert!(
            errs.contains("em_serve_query_e2e_us_count{ds=\"ds\",outcome=\"exact\"} 1"),
            "{errs}"
        );
        assert!(errs.contains("queue_depth=0 batch_occupancy=1"), "{errs}");
        assert_eq!(report.queries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn protocol_errors_go_to_err_stream_only() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let script = "bogus\nrank nope 5\nflush\n";
        let mut out = Vec::new();
        let mut errs = Vec::new();
        serve_lines(
            &ctx,
            ServeOptions::default(),
            script.as_bytes(),
            &mut out,
            &mut errs,
        )
        .unwrap();
        assert!(out.is_empty());
        let errs = String::from_utf8(errs).unwrap();
        assert!(errs.contains("error"), "{errs}");
    }
}
