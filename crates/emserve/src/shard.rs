//! Sharded scale-out serving: splitter-partitioned shards behind a
//! co-ranking [`Router`].
//!
//! The shard build is the paper's K-partitioning applied as a sharding
//! function (Rahn–Sanders–Singler use the same splitter-based exchange
//! for distributed sorting): a registered dataset is range-partitioned
//! into one near-even store per shard with [`apsplit::approx_partitioning`]
//! under a [`ProblemSpec::near_even`] spec — always feasible, always in
//! the quantile-suffices regime, so the cuts are *exact* `1/K`-quantile
//! ranks. The cut ranks plus the boundary records (each shard's maximum)
//! are journaled in the router catalog as a [`ShardMap`]; committing the
//! map is the build's completion point, so a torn build (crash between
//! shard registration and map commit) is simply rebuilt — the build is
//! idempotent per name, not crash-atomic.
//!
//! Queries are decomposed by **co-ranking** over the boundary skeleton
//! (the cut-index computation of multi-way co-ranking, degenerated to
//! the one-sequence case): with prefix array `P = [0, e₁, …, e_K = N]`
//! of cut ranks, global rank `r` belongs to the shard `j` with
//! `P[j] < r ≤ P[j+1]` and becomes local rank `r − P[j]` there — an
//! `O(log K)` in-memory computation per rank, zero I/O. A rank equal to
//! a cut is answered by the shard that *owns* it (its maximum), so
//! boundary-equal queries and duplicate-heavy data stay exact. Per-shard
//! sub-queries run shard-parallel (each shard has its own scheduler
//! thread) and the gathered answers are reassembled in the caller's rank
//! order, bit-identical to a one-store multi-select of the same ranks.
//!
//! Resilience is *routed*: a shard that fails a sub-query with a fault,
//! an open breaker, memory starvation, or a dead scheduler degrades only
//! its own key range — the router answers that shard's ranks
//! approximately from the journaled boundary skeleton with an honest
//! rank-error bound ([`approx_from_skeleton`], whose bound is
//! offset-invariant) — while every other shard keeps answering exactly.
//!
//! Fleet accounting: [`shard_fleet_in_memory`] / [`shard_fleet_on_disk`]
//! build shard contexts over the router context's [`MetricsRegistry`],
//! so one scrape (and one conservation check) covers the whole fleet;
//! [`Router::stats`] merges per-shard [`ServeReport`]s by field-wise sum.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use apsplit::{approx_partitioning, ProblemSpec};
use emcore::{EmConfig, EmContext, EmError, EmFile, Record, Result};
use emselect::multi_select;

use crate::api::{QueryService, ServiceTicket};
use crate::catalog::{validate_name, Catalog, ShardMap};
use crate::index::approx_from_skeleton;
use crate::server::{
    Client, DatasetHealth, QueryAnswer, QueryOptions, QueryServer, ServeOptions, ServeReport,
    Ticket,
};

/// Build a router context plus `shards` shard contexts, all in memory,
/// every shard recording into the router's metrics registry (fleet-wide
/// scrape and conservation come for free). Each context gets its own
/// memory budget `M` — a fleet models `shards + 1` machines.
pub fn shard_fleet_in_memory(config: EmConfig, shards: usize) -> (EmContext, Vec<EmContext>) {
    let router = EmContext::new_in_memory(config);
    let fleet = (0..shards)
        .map(|_| EmContext::new_in_memory_with_metrics(config, router.metrics().clone()))
        .collect();
    (router, fleet)
}

/// Like [`shard_fleet_in_memory`], on the directory backend: the router
/// lives in `root/router`, shard `i` in `root/shard-<i>`. Reopening the
/// same `root` with the same `shards` restores the whole fleet — the
/// router catalog's shard maps and every shard's own catalog and
/// splitter-index journals all survive.
pub fn shard_fleet_on_disk(
    config: EmConfig,
    root: impl Into<std::path::PathBuf>,
    shards: usize,
) -> Result<(EmContext, Vec<EmContext>)> {
    let root = root.into();
    let router = EmContext::new_on_disk(config, root.join("router"))?;
    let fleet = (0..shards)
        .map(|i| {
            EmContext::new_on_disk_with_metrics(
                config,
                root.join(format!("shard-{i:03}")),
                router.metrics().clone(),
            )
        })
        .collect::<Result<Vec<_>>>()?;
    Ok((router, fleet))
}

/// Routing state for one sharded dataset, decoded from its [`ShardMap`].
#[derive(Debug, Clone)]
struct RouteTable<T: Record> {
    /// Total records across the fleet.
    len: u64,
    /// Co-ranking prefix array `[0, e₁, …, e_k = len]` over the shards
    /// that hold data (shards beyond `prefix.len() − 1` are empty).
    prefix: Arc<Vec<u64>>,
    /// Boundary skeleton `(global cut rank, boundary record)` — the
    /// degradation fallback, shared with in-flight tickets.
    cuts: Arc<Vec<(u64, T)>>,
}

/// One shard of the fleet: its scheduler plus a submission handle.
struct ShardHandle<T: Record> {
    // Field order is load-bearing: `client` must drop before `server`,
    // whose Drop joins a scheduler thread that only exits once every
    // client sender is gone.
    client: Client<T>,
    server: QueryServer<T>,
}

struct RouterInner<T: Record> {
    catalog: Catalog,
    shards: Vec<ShardHandle<T>>,
    tables: BTreeMap<String, RouteTable<T>>,
}

/// Scatter/gather front-end over a fleet of shard [`QueryServer`]s; the
/// sharded implementation of [`QueryService`]. See the module docs for
/// the decomposition and resilience semantics.
pub struct Router<T: Record> {
    ctx: EmContext,
    opts: ServeOptions,
    inner: Mutex<RouterInner<T>>,
    /// Count of per-shard key ranges answered by router-side skeleton
    /// degradation (one per failed sub-query that was rescued).
    degraded_ranges: Arc<AtomicU64>,
}

impl<T: Record> std::fmt::Debug for Router<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

impl<T: Record> Router<T> {
    /// Start a router on `ctx` (which holds the catalog with the shard
    /// maps) over one [`QueryServer`] per context in `shard_ctxs`, all
    /// with the same `opts`. Previously built datasets are routed again
    /// from their journaled maps without touching any data — each
    /// shard's scheduler reopens its stores from its own catalog on
    /// first query. Errors if the fleet is empty or a journaled map was
    /// built for a different fleet size or record type.
    pub fn start(ctx: &EmContext, shard_ctxs: &[EmContext], opts: ServeOptions) -> Result<Self> {
        if shard_ctxs.is_empty() {
            return Err(EmError::config("router needs at least one shard"));
        }
        let catalog = Catalog::open(ctx)?;
        let mut shards = Vec::with_capacity(shard_ctxs.len());
        for sc in shard_ctxs {
            let server = QueryServer::<T>::start(sc, opts)?;
            let client = server.client()?;
            shards.push(ShardHandle { server, client });
        }
        let mut tables = BTreeMap::new();
        for name in catalog.shard_map_names() {
            let map = catalog.shard_map(&name).expect("listed name");
            tables.insert(name.clone(), decode_map::<T>(&name, map, shards.len())?);
        }
        Ok(Router {
            ctx: ctx.clone(),
            opts,
            inner: Mutex::new(RouterInner {
                catalog,
                shards,
                tables,
            }),
            degraded_ranges: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Number of shards in the fleet.
    pub fn shards(&self) -> usize {
        self.lock().shards.len()
    }

    /// Key ranges (one per rescued sub-query) answered by router-side
    /// skeleton degradation so far. Deliberately *not* folded into the
    /// merged [`ServeReport`]: the failing shard already accounted the
    /// sub-query as failed/shed, and double-counting the rescue would
    /// break the report's conservation laws.
    pub fn degraded_key_ranges(&self) -> u64 {
        self.degraded_ranges.load(Ordering::Relaxed)
    }

    /// The boundary skeleton of a sharded dataset: `(global cut rank,
    /// boundary record)` per shard holding data, last rank = length.
    pub fn boundaries(&self, name: &str) -> Option<Vec<(u64, T)>> {
        self.lock().tables.get(name).map(|t| t.cuts.to_vec())
    }

    /// Shut the fleet down, merging every shard's final report. A shard
    /// whose scheduler already died (or was shut down out of band)
    /// contributes nothing instead of failing the fleet shutdown — the
    /// routed-resilience stance applied to teardown.
    pub fn shutdown(&mut self) -> Result<ServeReport> {
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        let mut merged = ServeReport::default();
        for mut h in inner.shards.drain(..) {
            drop(h.client);
            if let Ok(r) = h.server.shutdown() {
                merged.absorb(&r);
            }
        }
        Ok(merged)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RouterInner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Split the dataset across the fleet (the shard build). One
    /// approx-partitioning pass cuts `data` at the exact `1/k`-quantile
    /// ranks, each part becomes one shard's store, and the cut ranks +
    /// boundary records are journaled as the dataset's [`ShardMap`] —
    /// the commit that makes the dataset routable. Idempotent per name
    /// (a mapped dataset returns its length, `data` ignored), like
    /// [`Client::register`].
    fn build(&self, name: &str, data: Vec<T>) -> Result<u64> {
        let mut inner = self.lock();
        if let Some(t) = inner.tables.get(name) {
            return Ok(t.len);
        }
        validate_name(name)?;
        let _phase = self.ctx.stats().phase_guard("serve/shard-build");
        let k = inner.shards.len() as u64;
        let n = data.len() as u64;
        let words = T::WORDS as u64;
        let (cuts, parts): (Vec<(u64, T)>, Vec<Vec<T>>) = if n == 0 {
            (Vec::new(), Vec::new())
        } else {
            // Partition on the router's own context: the staging file and
            // every part are scratch, released when this scope ends.
            let staging = EmFile::from_slice(&self.ctx, &data)?;
            drop(data);
            let k_eff = k.min(n);
            let spec = ProblemSpec::near_even(n, k_eff)?;
            let partitioning = approx_partitioning(&staging, &spec)?;
            let mut cut_ranks = Vec::with_capacity(k_eff as usize);
            let mut end = 0u64;
            let mut parts = Vec::with_capacity(k_eff as usize);
            for p in &partitioning {
                end += p.len();
                cut_ranks.push(end);
                parts.push(p.to_vec()?);
            }
            debug_assert_eq!(end, n);
            let keys = multi_select(&staging, &cut_ranks)?;
            (cut_ranks.into_iter().zip(keys).collect(), parts)
        };
        let mut parts = parts.into_iter();
        for h in inner.shards.iter() {
            h.client.register(name, parts.next().unwrap_or_default())?;
        }
        let map = ShardMap {
            shards: k,
            len: n,
            words,
            cuts: cuts
                .iter()
                .map(|(r, v)| {
                    let mut bytes = vec![0u8; T::BYTES];
                    v.write_bytes(&mut bytes);
                    (*r, bytes)
                })
                .collect(),
        };
        inner.catalog.register_shard_map(name, map)?;
        let nonempty = cuts.len();
        inner.tables.insert(
            name.to_string(),
            RouteTable {
                len: n,
                prefix: Arc::new(
                    std::iter::once(0)
                        .chain(cuts.iter().map(|&(r, _)| r))
                        .collect(),
                ),
                cuts: Arc::new(cuts),
            },
        );
        debug_assert_eq!(inner.tables[name].prefix.len(), nonempty + 1);
        Ok(n)
    }

    /// Decompose `ranks` by co-ranking and scatter one sub-query per
    /// touched shard. Empty rank lists are routed to shard 0 so the
    /// query is still accounted (and answered empty) exactly once.
    fn scatter(&self, name: &str, ranks: Vec<u64>, opts: QueryOptions) -> Result<RoutedTicket<T>> {
        let inner = self.lock();
        let table = inner
            .tables
            .get(name)
            .ok_or_else(|| EmError::config(format!("unknown dataset {name:?}")))?;
        let n = table.len;
        for &r in &ranks {
            if r == 0 || r > n {
                return Err(EmError::config(format!("rank {r} out of range [1, {n}]")));
            }
        }
        // Co-ranking: global rank r → (shard j, local rank r − P[j]).
        let prefix = &table.prefix;
        let mut per_shard: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        let mut plan = Vec::with_capacity(ranks.len());
        for &r in &ranks {
            let j = prefix.partition_point(|&p| p < r).saturating_sub(1);
            let locals = per_shard.entry(j).or_default();
            locals.push(r - prefix[j]);
            plan.push((j, locals.len() - 1));
        }
        if per_shard.is_empty() {
            per_shard.insert(0, Vec::new());
        }
        // The gather plan indexes parts by position, not by shard id.
        let ordinals: BTreeMap<usize, usize> = per_shard
            .keys()
            .enumerate()
            .map(|(pos, &j)| (j, pos))
            .collect();
        for p in &mut plan {
            p.0 = ordinals[&p.0];
        }
        let degraded = opts.degraded.unwrap_or(self.opts.degraded);
        let mut parts = Vec::with_capacity(per_shard.len());
        for (j, locals) in per_shard {
            let globals: Vec<u64> = locals.iter().map(|&l| l + table.prefix[j]).collect();
            // A shard whose scheduler is already gone fails at submission;
            // that is as rescuable as failing at execution.
            let part = match inner.shards[j].client.query_with(name, locals, opts) {
                Ok(ticket) => ShardPart::Live(ticket, globals),
                Err(e) if degraded && rescuable(&e) => ShardPart::Failed(e, globals),
                Err(e) => return Err(e),
            };
            parts.push(part);
        }
        Ok(RoutedTicket {
            parts,
            plan,
            cuts: Arc::clone(&table.cuts),
            degraded,
            degraded_ranges: Arc::clone(&self.degraded_ranges),
        })
    }
}

fn decode_map<T: Record>(name: &str, map: &ShardMap, fleet: usize) -> Result<RouteTable<T>> {
    if map.shards != fleet as u64 {
        return Err(EmError::config(format!(
            "dataset {name:?} was sharded for {} shards, fleet has {fleet}",
            map.shards
        )));
    }
    if map.words != T::WORDS as u64 {
        return Err(EmError::config(format!(
            "dataset {name:?} has records of {} words, asked for {}",
            map.words,
            T::WORDS
        )));
    }
    let mut cuts = Vec::with_capacity(map.cuts.len());
    let mut prev = 0u64;
    for (rank, bytes) in &map.cuts {
        if *rank <= prev {
            return Err(EmError::config(format!(
                "dataset {name:?}: shard map cuts not ascending"
            )));
        }
        if bytes.len() != T::BYTES {
            return Err(EmError::config(format!(
                "dataset {name:?}: boundary of {} bytes, record has {}",
                bytes.len(),
                T::BYTES
            )));
        }
        cuts.push((*rank, T::read_bytes(bytes)));
        prev = *rank;
    }
    if cuts.last().map(|&(r, _)| r).unwrap_or(0) != map.len {
        return Err(EmError::config(format!(
            "dataset {name:?}: shard map covers [1, {}], length is {}",
            cuts.last().map(|&(r, _)| r).unwrap_or(0),
            map.len
        )));
    }
    Ok(RouteTable {
        len: map.len,
        prefix: Arc::new(
            std::iter::once(0)
                .chain(cuts.iter().map(|&(r, _)| r))
                .collect(),
        ),
        cuts: Arc::new(cuts),
    })
}

/// Whether a shard failure may be rescued by router-side skeleton
/// degradation: device/dataset faults, an open breaker, memory
/// starvation, a dead scheduler, or a blown deadline — everything
/// *operational*. Request-shaped errors (`Config`, `OutOfBounds`) are
/// the caller's to see.
fn rescuable(e: &EmError) -> bool {
    e.is_fault()
        || matches!(
            e,
            EmError::Unhealthy { .. }
                | EmError::MemoryExceeded { .. }
                | EmError::Unavailable { .. }
                | EmError::DeadlineExceeded { .. }
        )
}

/// One touched shard's share of a routed query.
#[derive(Debug)]
enum ShardPart<T: Record> {
    /// Submitted; the ticket will resolve. Carries the *global* ranks
    /// the shard was asked, for skeleton rescue.
    Live(Ticket<T>, Vec<u64>),
    /// Submission itself failed rescuably; rescued at gather time.
    Failed(EmError, Vec<u64>),
}

/// An in-flight scatter/gather answer from a [`Router`]. [`wait`]
/// gathers every shard's sub-answer and reassembles the caller's rank
/// order; a sub-query that failed with an operational error is rescued
/// from the boundary skeleton when degraded mode allows it.
///
/// [`wait`]: RoutedTicket::wait
#[derive(Debug)]
pub struct RoutedTicket<T: Record> {
    /// One per touched shard, in ascending shard order.
    parts: Vec<ShardPart<T>>,
    /// For each asked rank, `(position in `parts`, offset within that
    /// part's answer)` — the gather map.
    plan: Vec<(usize, usize)>,
    cuts: Arc<Vec<(u64, T)>>,
    degraded: bool,
    degraded_ranges: Arc<AtomicU64>,
}

impl<T: Record> RoutedTicket<T> {
    /// Block until every shard answered (or degraded), then reassemble.
    /// Exact iff every shard answered exactly; otherwise `approx` with
    /// the worst rank-error bound over the batch.
    pub fn wait(self) -> Result<QueryAnswer<T>> {
        let mut answers: Vec<Vec<T>> = Vec::with_capacity(self.parts.len());
        let mut approx = false;
        let mut worst = 0u64;
        for part in self.parts {
            let (failure, globals) = match part {
                ShardPart::Live(ticket, globals) => match ticket.wait() {
                    Ok(a) => {
                        approx |= a.approx;
                        worst = worst.max(a.rank_error);
                        answers.push(a.values);
                        continue;
                    }
                    Err(e) => (e, globals),
                },
                ShardPart::Failed(e, globals) => (e, globals),
            };
            if !(self.degraded && rescuable(&failure)) {
                return Err(failure);
            }
            // Degrade only this shard's key range: answer its global
            // ranks from the boundary skeleton, with the honest bound.
            let Some((vals, bound)) = approx_from_skeleton(&self.cuts, &globals) else {
                return Err(failure);
            };
            self.degraded_ranges.fetch_add(1, Ordering::Relaxed);
            approx = true;
            worst = worst.max(bound);
            answers.push(vals);
        }
        let mut values = Vec::with_capacity(self.plan.len());
        for (part, off) in self.plan {
            values.push(answers[part][off]);
        }
        Ok(QueryAnswer {
            values,
            approx,
            rank_error: worst,
        })
    }
}

impl<T: Record> QueryService<T> for Router<T> {
    fn register(&self, name: &str, data: Vec<T>) -> Result<u64> {
        self.build(name, data)
    }

    fn dataset_len(&self, name: &str) -> Result<u64> {
        self.lock()
            .tables
            .get(name)
            .map(|t| t.len)
            .ok_or_else(|| EmError::config(format!("unknown dataset {name:?}")))
    }

    fn rank_with(
        &self,
        name: &str,
        ranks: Vec<u64>,
        opts: QueryOptions,
    ) -> Result<ServiceTicket<T>> {
        Ok(ServiceTicket::Routed(self.scatter(name, ranks, opts)?))
    }

    fn rank_batch(&self, name: &str, queries: Vec<Vec<u64>>) -> Result<Vec<ServiceTicket<T>>> {
        // Each query is scattered independently; the per-shard schedulers
        // re-coalesce the sub-queries under their batching windows.
        queries
            .into_iter()
            .map(|q| self.rank_with(name, q, QueryOptions::default()))
            .collect()
    }

    fn health(&self) -> Result<Vec<DatasetHealth>> {
        let inner = self.lock();
        let mut out = Vec::new();
        for (j, h) in inner.shards.iter().enumerate() {
            for mut d in h.client.health()? {
                d.name = format!("{}@shard{j}", d.name);
                out.push(d);
            }
        }
        Ok(out)
    }

    fn stats(&self) -> Result<ServeReport> {
        let inner = self.lock();
        let mut merged = ServeReport::default();
        for h in &inner.shards {
            merged.absorb(&h.client.report()?);
        }
        Ok(merged)
    }

    fn metrics(&self) -> Result<String> {
        Ok(self.ctx.metrics().expose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::SplitMix64;

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        SplitMix64::new(seed).shuffle(&mut v);
        v
    }

    #[test]
    fn sharded_answers_match_the_one_store_oracle() {
        let (rc, scs) = shard_fleet_in_memory(EmConfig::tiny(), 8);
        let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).unwrap();
        let n = 4000u64;
        assert_eq!(router.register("ds", shuffled(n, 11)).unwrap(), n);
        // Idempotent re-register ignores the data.
        assert_eq!(router.register("ds", vec![1, 2, 3]).unwrap(), n);

        // Oracle: one-store server over the same records.
        let octx = EmContext::new_in_memory(EmConfig::tiny());
        let mut oracle = QueryServer::<u64>::start(&octx, ServeOptions::default()).unwrap();
        QueryService::register(&oracle, "ds", shuffled(n, 11)).unwrap();

        let cuts = router.boundaries("ds").unwrap();
        assert_eq!(cuts.len(), 8);
        assert_eq!(cuts.last().unwrap().0, n);
        // Every cut rank, its neighbours, and a spread of interior ranks.
        let mut ranks: Vec<u64> = vec![1, n, n / 3, 2 * n / 3 + 1];
        for &(r, _) in &cuts {
            ranks.push(r);
            ranks.push(r.saturating_sub(1).max(1));
            ranks.push((r + 1).min(n));
        }
        let got = router.rank("ds", ranks.clone()).unwrap().wait().unwrap();
        let want = oracle.rank("ds", ranks).unwrap().wait().unwrap();
        assert!(!got.approx && got.rank_error == 0);
        assert_eq!(
            got.values, want.values,
            "sharded answers must be bit-identical"
        );
        oracle.shutdown().unwrap();
        router.shutdown().unwrap();
    }

    #[test]
    fn boundary_equal_ranks_stay_exact_under_heavy_duplicates() {
        let (rc, scs) = shard_fleet_in_memory(EmConfig::tiny(), 8);
        let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).unwrap();
        // 90% of the records share one key, so several shard boundaries
        // fall *inside* the duplicate run.
        let n = 2000u64;
        let data: Vec<u64> = (0..n).map(|i| if i % 10 == 0 { i } else { 42 }).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        router.register("dups", data).unwrap();
        let cuts = router.boundaries("dups").unwrap();
        let ranks: Vec<u64> = cuts.iter().map(|&(r, _)| r).collect();
        let a = router.rank("dups", ranks.clone()).unwrap().wait().unwrap();
        assert!(!a.approx);
        let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();
        assert_eq!(a.values, want);
        router.shutdown().unwrap();
    }

    #[test]
    fn small_datasets_leave_trailing_shards_empty_but_serving() {
        let (rc, scs) = shard_fleet_in_memory(EmConfig::tiny(), 8);
        let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).unwrap();
        // n < shards: only n shards hold one record each.
        router.register("tiny", vec![5u64, 3, 9]).unwrap();
        let a = router
            .rank("tiny", vec![1, 2, 3, 2])
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.values, vec![3, 5, 9, 5]);
        // Empty dataset: mapped, length 0, every rank out of range.
        router.register("void", Vec::new()).unwrap();
        assert_eq!(QueryService::dataset_len(&router, "void").unwrap(), 0);
        assert!(router.rank("void", vec![1]).is_err());
        // An empty rank list is still answered (empty, exact) once.
        let a = router.rank("tiny", Vec::new()).unwrap().wait().unwrap();
        assert!(a.values.is_empty() && !a.approx);
        router.shutdown().unwrap();
    }

    #[test]
    fn skewed_traffic_on_one_shard_stays_exact_and_conserved() {
        let (rc, scs) = shard_fleet_in_memory(EmConfig::tiny(), 8);
        let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).unwrap();
        let n = 1600u64;
        router.register("ds", shuffled(n, 13)).unwrap();
        // All queries land in shard 0's range [1, 200].
        let queries: Vec<Vec<u64>> = (0..20).map(|i| vec![1 + (i * 7) % 200]).collect();
        let tickets = router.rank_batch("ds", queries.clone()).unwrap();
        let mut sorted: Vec<u64> = (0..n).collect();
        sorted.sort_unstable();
        for (t, q) in tickets.into_iter().zip(&queries) {
            let a = t.wait().unwrap();
            assert!(!a.approx);
            assert_eq!(a.values, vec![sorted[(q[0] - 1) as usize]]);
        }
        let merged = QueryService::<u64>::stats(&router).unwrap();
        // 8 registration no-ops aside, exactly 20 sub-queries ran,
        // all on one shard — the merged report still sees all of them.
        assert_eq!(merged.queries, 20);
        assert_eq!(router.degraded_key_ranges(), 0);
        router.shutdown().unwrap();
    }

    #[test]
    fn killing_one_shard_degrades_only_its_key_range() {
        use emcore::FaultPlan;
        let (rc, scs) = shard_fleet_in_memory(EmConfig::tiny(), 4);
        let opts = ServeOptions::builder()
            .degraded(true)
            .retry(emcore::RetryPolicy::NONE)
            .build();
        let mut router = Router::<u64>::start(&rc, &scs, opts).unwrap();
        let n = 2000u64;
        router.register("ds", shuffled(n, 17)).unwrap();
        let mut sorted: Vec<u64> = (0..n).collect();
        sorted.sort_unstable();

        // Crash shard 2's device mid-service: every I/O there now fails.
        scs[2].install_fault_plan(FaultPlan::new(0).fatal_at(0));

        // One rank per shard: 3 exact, shard 2's rescued from the skeleton.
        let ranks = vec![100u64, 700, 1200, 1900];
        let a = router.rank("ds", ranks.clone()).unwrap().wait().unwrap();
        assert!(a.approx, "a dead shard must degrade, not fail");
        assert_eq!(router.degraded_key_ranges(), 1, "≤ one degraded key range");
        // Shard width is 500, so the skeleton bound is at most 250.
        assert!(a.rank_error <= 250, "bound {}", a.rank_error);
        for (i, &r) in ranks.iter().enumerate() {
            let true_rank = sorted.iter().position(|&x| x == a.values[i]).unwrap() as u64 + 1;
            assert!(
                true_rank.abs_diff(r) <= a.rank_error,
                "rank {r}: got rank {true_rank}, bound {}",
                a.rank_error
            );
            // The live shards' ranks are answered exactly (shard 2 owns
            // ranks 1001..=1500).
            if !(1001..=1500).contains(&r) {
                assert_eq!(a.values[i], sorted[(r - 1) as usize]);
            }
        }
        // Without degraded mode the dead shard's error surfaces typed
        // (the crash itself, or the breaker it tripped).
        let e = router
            .rank_with(
                "ds",
                vec![1200],
                QueryOptions {
                    degraded: Some(false),
                    ..QueryOptions::default()
                },
            )
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(
            e.is_fault() || matches!(e, EmError::Unhealthy { .. }),
            "got {e}"
        );
        router.shutdown().unwrap();
    }

    #[test]
    fn fleet_restarts_from_journaled_shard_maps_without_rebuilding() {
        let dir = std::env::temp_dir().join(format!("emserve-fleet-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let n = 1200u64;
        let cuts_before;
        {
            let (rc, scs) = shard_fleet_on_disk(EmConfig::tiny(), &dir, 4).unwrap();
            let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).unwrap();
            router.register("ds", shuffled(n, 19)).unwrap();
            cuts_before = router.boundaries("ds").unwrap();
            router.shutdown().unwrap();
        }
        // Fresh fleet over the same root: the map is decoded, no data moves.
        let (rc, scs) = shard_fleet_on_disk(EmConfig::tiny(), &dir, 4).unwrap();
        let mut router = Router::<u64>::start(&rc, &scs, ServeOptions::default()).unwrap();
        assert_eq!(router.boundaries("ds").unwrap(), cuts_before);
        let a = router
            .rank("ds", vec![1, 300, 301, 600, 1200])
            .unwrap()
            .wait()
            .unwrap();
        assert!(!a.approx);
        assert_eq!(a.values, vec![0, 299, 300, 599, 1199]);
        // A wrong fleet size is refused up front.
        router.shutdown().unwrap();
        let (rc2, scs2) = shard_fleet_on_disk(EmConfig::tiny(), &dir, 8).unwrap();
        assert!(Router::<u64>::start(&rc2, &scs2, ServeOptions::default()).is_err());
        drop((rc, scs, rc2, scs2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
