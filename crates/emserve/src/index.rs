//! Persistent splitter index: a journaled pivot skeleton per dataset.
//!
//! In the spirit of online multiselection (Barbay–Gupta–Jo–Rao–Sorenson),
//! every answered batch can *refine* the index: the dataset is kept as an
//! ordered list of [`Segment`]s covering disjoint global-rank windows
//! `(prev_end, end_rank]`, each with the element at its right boundary
//! once discovered. A later query rank is answered by selecting only
//! inside the narrowest segment containing it — and a rank equal to a
//! known boundary is answered from memory at zero I/O. The skeleton is
//! committed to a journal (`serve-index-<name>`) after each refinement,
//! so warmth survives process restarts on the directory backend.
//!
//! Invariants (checked on load):
//! * segments are in strictly increasing `end_rank` order and the last
//!   `end_rank` equals the dataset length — the windows tile `[1, N]`;
//! * a segment's files hold exactly the elements of its window, in
//!   arbitrary order (`Σ seg len = end_rank − prev_end`);
//! * `boundary`, when present, is the element of global rank `end_rank` —
//!   refinement cuts at *exact ranks* (via [`emselect::multi_partition_segs`]),
//!   which keeps boundaries rank-exact even under duplicate keys.

use emcore::{from_hex, to_hex, EmContext, EmError, EmFile, Journal, JournalState, Record, Result};
use emselect::{multi_partition_segs, multi_select_window, MpOptions, MsOptions};

/// Answer `ranks` approximately from a boundary skeleton alone: each
/// rank gets the value of the nearest known `(rank, value)` boundary
/// (ties toward the left boundary), and the returned bound is the
/// largest boundary distance over the batch — the value returned for
/// rank `r` has exact rank `r'` with `|r' − r| ≤ bound`. Returns `None`
/// when the skeleton is empty (no approximation possible without I/O).
///
/// `bounds` must be ascending by rank. The bound is offset-invariant:
/// shifting every rank and boundary by the same base leaves it
/// unchanged, so a router can feed *shard-local* ranks against a
/// shard's global-rank skeleton rebased to local coordinates — or
/// global ranks against a global skeleton — and quote the same honest
/// error either way. Shared by [`SplitterIndex::answer_approx`] and the
/// router's per-shard degradation path.
pub fn approx_from_skeleton<T: Copy>(bounds: &[(u64, T)], ranks: &[u64]) -> Option<(Vec<T>, u64)> {
    if bounds.is_empty() {
        return None;
    }
    let mut out = Vec::with_capacity(ranks.len());
    let mut worst = 0u64;
    for &r in ranks {
        // Nearest known boundary by rank distance (ties toward the
        // left boundary, which `partition_point` gives us first).
        let i = bounds.partition_point(|&(br, _)| br < r);
        let lo = i.checked_sub(1).map(|j| bounds[j]);
        let hi = bounds.get(i).copied();
        let (br, bv) = match (lo, hi) {
            (Some((lr, lv)), Some((hr, hv))) => {
                if r - lr <= hr - r {
                    (lr, lv)
                } else {
                    (hr, hv)
                }
            }
            (Some(b), None) | (None, Some(b)) => b,
            (None, None) => unreachable!("bounds nonempty"),
        };
        worst = worst.max(br.abs_diff(r));
        out.push(bv);
    }
    Some((out, worst))
}

/// One rank window `(prev_end, end_rank]` of the dataset.
#[derive(Debug)]
pub struct Segment<T: Record> {
    /// Right edge of the window (inclusive, global 1-based rank).
    pub end_rank: u64,
    /// The element of rank `end_rank`, once a query has discovered it.
    pub boundary: Option<T>,
    /// Files holding exactly the window's elements.
    files: Vec<EmFile<T>>,
}

/// Counters for one [`SplitterIndex::answer`] call.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AnswerStats {
    /// Ranks answered from a stored boundary, at zero I/O.
    pub index_hits: u64,
    /// Distinct ranks answered by an in-segment multi-select pass.
    pub selected: u64,
    /// Segments that needed a select pass.
    pub segments_touched: u64,
}

/// `(end_rank, boundary bytes, [(file id, len)])` for one journaled segment.
type SegImage = (u64, Option<Vec<u8>>, Vec<(u64, u64)>);

struct IndexImage<T: Record> {
    dataset_file: u64,
    segs: Vec<SegImage>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Record> JournalState for IndexImage<T> {
    const KIND: &'static str = "serve-splitter-index";
    const VERSION: u32 = 1;

    fn encode(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "dataset {}", self.dataset_file);
        for (end, boundary, files) in &self.segs {
            let b = boundary.as_deref().map_or("-".to_string(), to_hex);
            let _ = write!(out, "seg {end} {b}");
            for (id, len) in files {
                let _ = write!(out, " {id}:{len}");
            }
            let _ = writeln!(out);
        }
    }

    fn decode(body: &str) -> Result<Self> {
        let bad = |line: &str| EmError::config(format!("splitter index: bad line {line:?}"));
        let mut dataset_file = None;
        let mut segs = Vec::new();
        for line in body.lines() {
            match line.split_once(' ') {
                Some(("dataset", id)) => {
                    dataset_file = Some(id.parse::<u64>().map_err(|_| bad(line))?);
                }
                Some(("seg", rest)) => {
                    let mut it = rest.split(' ');
                    let end = it
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or_else(|| bad(line))?;
                    let boundary = match it.next().ok_or_else(|| bad(line))? {
                        "-" => None,
                        hex => Some(from_hex(hex)?),
                    };
                    let mut files = Vec::new();
                    for tok in it {
                        let (id, len) = tok.split_once(':').ok_or_else(|| bad(line))?;
                        files.push((
                            id.parse::<u64>().map_err(|_| bad(line))?,
                            len.parse::<u64>().map_err(|_| bad(line))?,
                        ));
                    }
                    segs.push((end, boundary, files));
                }
                _ => return Err(bad(line)),
            }
        }
        Ok(IndexImage {
            dataset_file: dataset_file
                .ok_or_else(|| EmError::config("splitter index: missing dataset line"))?,
            segs,
            _marker: std::marker::PhantomData,
        })
    }
}

/// The per-dataset pivot skeleton. Owns the dataset's backing file handle
/// and every refinement partition; all of them are marked persistent, so
/// the skeleton survives handle drops and (on disk) process exits.
#[derive(Debug)]
pub struct SplitterIndex<T: Record> {
    ctx: EmContext,
    journal: Journal,
    segments: Vec<Segment<T>>,
    /// The original registered file: never released by refinement — the
    /// catalog references it forever.
    dataset_file_id: u64,
    /// Kept alive so the initial segment (or a journal that still
    /// references the dataset file) always has a live handle behind it.
    _dataset: Option<EmFile<T>>,
}

impl<T: Record> SplitterIndex<T> {
    /// Open the index for dataset `name`, taking ownership of its backing
    /// file. Loads the committed skeleton if one exists (reopening every
    /// segment file by id — directory backend), else starts with a single
    /// unrefined segment covering the whole dataset.
    pub fn open(ctx: &EmContext, name: &str, dataset: EmFile<T>) -> Result<Self> {
        let journal = Journal::new(ctx, format!("serve-index-{name}"))?;
        let n = dataset.len();
        let image = if ctx.backing_dir().is_some() {
            journal.load::<IndexImage<T>>()?
        } else {
            // The memory backend cannot reopen files by id; a leftover
            // journal (same-process restart) cannot be honoured.
            None
        };
        let (segments, dataset_kept) = match image {
            Some(img) => {
                if img.dataset_file != dataset.id() {
                    return Err(EmError::config(format!(
                        "splitter index for {name:?} references file {}, dataset is {}",
                        img.dataset_file,
                        dataset.id()
                    )));
                }
                let mut segments = Vec::with_capacity(img.segs.len());
                let mut prev = 0u64;
                for (end, boundary, files) in img.segs {
                    if end <= prev {
                        return Err(EmError::config("splitter index: unordered segments"));
                    }
                    let boundary = match boundary {
                        None => None,
                        Some(bytes) if bytes.len() == T::BYTES => Some(T::read_bytes(&bytes)),
                        Some(bytes) => {
                            return Err(EmError::config(format!(
                                "splitter index: boundary of {} bytes, record has {}",
                                bytes.len(),
                                T::BYTES
                            )))
                        }
                    };
                    let mut opened = Vec::with_capacity(files.len());
                    let mut held = 0u64;
                    for (id, len) in files {
                        // The dataset handle is already open; reuse would
                        // double-open, so segment files that *are* the
                        // dataset are skipped here and borrowed below.
                        if id == dataset.id() {
                            held += len;
                            continue;
                        }
                        held += len;
                        opened.push(ctx.open_file::<T>(id, len)?);
                    }
                    if held != end - prev {
                        return Err(EmError::config(format!(
                            "splitter index: segment ({prev}, {end}] holds {held} records"
                        )));
                    }
                    segments.push(Segment {
                        end_rank: end,
                        boundary,
                        files: opened,
                    });
                    prev = end;
                }
                if prev != n {
                    return Err(EmError::config(format!(
                        "splitter index covers [1, {prev}], dataset has {n} records"
                    )));
                }
                dataset.set_persistent(true);
                (segments, dataset)
            }
            None => {
                dataset.set_persistent(true);
                let segments = vec![Segment {
                    end_rank: n,
                    boundary: None,
                    files: Vec::new(), // the dataset handle, borrowed below
                }];
                (segments, dataset)
            }
        };
        let mut idx = SplitterIndex {
            ctx: ctx.clone(),
            journal,
            segments,
            dataset_file_id: dataset_kept.id(),
            _dataset: None,
        };
        idx._dataset = Some(dataset_kept);
        Ok(idx)
    }

    /// Total records covered.
    pub fn len(&self) -> u64 {
        self.segments.last().map(|s| s.end_rank).unwrap_or(0)
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segments (1 = unrefined).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Known `(rank, element)` boundaries, ascending.
    pub fn boundaries(&self) -> Vec<(u64, T)> {
        self.segments
            .iter()
            .filter_map(|s| s.boundary.map(|b| (s.end_rank, b)))
            .collect()
    }

    /// File ids referenced by the skeleton (for orphan GC).
    pub fn live_file_ids(&self) -> Vec<u64> {
        let mut ids = vec![self.dataset_file_id];
        for s in &self.segments {
            ids.extend(s.files.iter().map(|f| f.id()));
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Files of segment `i`, falling back to the dataset handle for the
    /// unrefined segment (whose `files` list is empty).
    fn segment_files(&self, i: usize) -> &[EmFile<T>] {
        let files = &self.segments[i].files;
        if files.is_empty() {
            std::slice::from_ref(self._dataset.as_ref().expect("dataset handle held"))
        } else {
            files
        }
    }

    /// Answer `ranks` (1-based, any order, repeats allowed), in the
    /// caller's order — bit-identical to a full-dataset multi-select of
    /// the same ranks. Boundary hits are answered at zero I/O; the rest
    /// are grouped per containing segment and each group is answered with
    /// one [`multi_select_window`] pass. With `refine` set, every touched
    /// segment is then cut at the answered ranks (exact sizes, duplicates
    /// safe), the new boundaries are remembered, and the skeleton is
    /// committed to its journal.
    pub fn answer(
        &mut self,
        ranks: &[u64],
        opts: MsOptions,
        refine: bool,
    ) -> Result<(Vec<T>, AnswerStats)> {
        let n = self.len();
        for &r in ranks {
            if r == 0 || r > n {
                return Err(EmError::config(format!("rank {r} out of range [1, {n}]")));
            }
        }
        let mut stats = AnswerStats::default();
        let mut answered: std::collections::BTreeMap<u64, T> = std::collections::BTreeMap::new();
        // Per-segment buckets of distinct uncovered ranks.
        let mut buckets: std::collections::BTreeMap<usize, Vec<u64>> =
            std::collections::BTreeMap::new();
        for &r in ranks {
            if answered.contains_key(&r) {
                continue;
            }
            let i = self.segments.partition_point(|s| s.end_rank < r);
            let seg = &self.segments[i];
            if seg.end_rank == r {
                if let Some(b) = seg.boundary {
                    stats.index_hits += 1;
                    answered.insert(r, b);
                    continue;
                }
            }
            buckets.entry(i).or_default().push(r);
        }
        for (&i, seg_ranks) in &buckets {
            let prev_end = if i == 0 {
                0
            } else {
                self.segments[i - 1].end_rank
            };
            let _span = self
                .ctx
                .stats()
                .trace_span(|| format!("serve/segment#{i}x{}", seg_ranks.len()));
            let got =
                multi_select_window(&self.ctx, self.segment_files(i), prev_end, seg_ranks, opts)?;
            stats.segments_touched += 1;
            stats.selected += seg_ranks.len() as u64;
            for (r, x) in seg_ranks.iter().zip(got) {
                answered.insert(*r, x);
            }
        }
        if refine && !buckets.is_empty() {
            self.refine(&buckets, &answered)?;
        }
        Ok((ranks.iter().map(|r| answered[r]).collect(), stats))
    }

    /// Answer `ranks` **approximately** from the skeleton alone, at zero
    /// I/O: each rank is answered with the element of the nearest known
    /// boundary. Returns the values (caller's order) and the guaranteed
    /// maximum rank error — the returned element for rank `r` has *exact*
    /// global rank `r'` with `|r' − r| ≤ bound`, where the bound is the
    /// largest boundary distance over the batch (derived from the widths
    /// of the segments the ranks fall in). Returns `Ok(None)` when the
    /// skeleton has no boundary yet (a cold index knows no element of any
    /// rank, so no approximation is possible without I/O).
    ///
    /// This is the serving layer's graceful-degradation path: an
    /// over-deadline (or breaker-quarantined) quantile query gets an
    /// explicit approximation instead of an error, exactly in the spirit
    /// of the paper's approximate splitters — the skeleton *is* an
    /// approximate splitter set whose quality improves as traffic refines
    /// it.
    pub fn answer_approx(&self, ranks: &[u64]) -> Result<Option<(Vec<T>, u64)>> {
        let n = self.len();
        for &r in ranks {
            if r == 0 || r > n {
                return Err(EmError::config(format!("rank {r} out of range [1, {n}]")));
            }
        }
        Ok(approx_from_skeleton(&self.boundaries(), ranks))
    }

    /// Cheap health probe: one block read from the dataset. Used by the
    /// serving layer's circuit breaker to decide whether a quarantined
    /// dataset can be restored — it exercises the same device path a real
    /// query would, at a cost of one I/O.
    pub fn probe(&self) -> Result<()> {
        if self.segments.is_empty() {
            return Ok(());
        }
        let files = self.segment_files(0);
        if let Some(f) = files.first() {
            let mut r = f.reader()?;
            r.next()?;
        }
        Ok(())
    }

    /// Cut every touched segment at its answered ranks and commit.
    fn refine(
        &mut self,
        buckets: &std::collections::BTreeMap<usize, Vec<u64>>,
        answered: &std::collections::BTreeMap<u64, T>,
    ) -> Result<()> {
        // Replaced segment files must outlive the *commit*: the old journal
        // image references them until the new image is durable, so a crash
        // (or a faulted commit) mid-refinement must find them still on
        // disk. They are collected here and released only after the commit
        // succeeds.
        let mut retired: Vec<EmFile<T>> = Vec::new();
        // Highest index first so earlier indices stay valid while splicing.
        for (&i, seg_ranks) in buckets.iter().rev() {
            let prev_end = if i == 0 {
                0
            } else {
                self.segments[i - 1].end_rank
            };
            let end = self.segments[i].end_rank;
            let window = end - prev_end;
            let mut cuts: Vec<u64> = seg_ranks.iter().map(|&r| r - prev_end).collect();
            cuts.sort_unstable();
            cuts.dedup();
            // A cut at the window edge costs nothing: it only discovers
            // the segment's own boundary.
            let cut_at_end = cuts.last() == Some(&window);
            if cut_at_end {
                cuts.pop();
                self.segments[i].boundary = Some(answered[&end]);
            }
            if cuts.is_empty() {
                continue;
            }
            let mut sizes: Vec<u64> = Vec::with_capacity(cuts.len() + 1);
            let mut prev_local = 0u64;
            for &c in &cuts {
                sizes.push(c - prev_local);
                prev_local = c;
            }
            sizes.push(window - prev_local); // > 0: edge cuts stripped above
            let parts = {
                let _span = self.ctx.stats().trace_span(|| format!("serve/refine#{i}"));
                multi_partition_segs(
                    &self.ctx,
                    self.segment_files(i),
                    &sizes,
                    MpOptions::default(),
                )?
            };
            let old = std::mem::replace(
                &mut self.segments[i],
                Segment {
                    end_rank: 0,
                    boundary: None,
                    files: Vec::new(),
                },
            );
            let mut replacement: Vec<Segment<T>> = Vec::with_capacity(parts.len());
            let mut local_end = 0u64;
            for (j, part) in parts.into_iter().enumerate() {
                local_end += part.len();
                let global_end = prev_end + local_end;
                let boundary = if j < cuts.len() {
                    debug_assert_eq!(local_end, cuts[j]);
                    Some(answered[&global_end])
                } else {
                    old.boundary
                };
                let files = part.into_segments();
                for f in &files {
                    f.set_persistent(true);
                }
                replacement.push(Segment {
                    end_rank: global_end,
                    boundary,
                    files,
                });
            }
            debug_assert_eq!(local_end, window);
            // Retire the replaced segment's files — except the original
            // dataset file, which the catalog owns forever.
            for f in old.files {
                if f.id() != self.dataset_file_id {
                    retired.push(f);
                }
            }
            self.segments.splice(i..=i, replacement);
        }
        self.commit()?;
        for f in retired {
            f.set_persistent(false);
        }
        Ok(())
    }

    fn commit(&self) -> Result<()> {
        let img = IndexImage::<T> {
            dataset_file: self.dataset_file_id,
            segs: self
                .segments
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let boundary = s.boundary.map(|b| {
                        let mut bytes = vec![0u8; T::BYTES];
                        b.write_bytes(&mut bytes);
                        bytes
                    });
                    let files: Vec<(u64, u64)> = if s.files.is_empty() {
                        // Unrefined segment backed by the dataset handle.
                        let f = self.segment_files(i);
                        f.iter().map(|f| (f.id(), f.len())).collect()
                    } else {
                        s.files.iter().map(|f| (f.id(), f.len())).collect()
                    };
                    (s.end_rank, boundary, files)
                })
                .collect(),
            _marker: std::marker::PhantomData,
        };
        self.journal.commit(&img)
    }

    /// Remove the committed skeleton (dataset deregistration).
    pub fn remove_journal(&self) -> Result<()> {
        self.journal.remove()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext, SplitMix64};
    use emselect::multi_select;

    fn ctx() -> EmContext {
        EmContext::new_in_memory(EmConfig::tiny())
    }

    fn dataset(c: &EmContext, n: u64, seed: u64) -> (EmFile<u64>, Vec<u64>) {
        let mut rng = SplitMix64::new(seed);
        let mut v: Vec<u64> = (0..n).collect();
        rng.shuffle(&mut v);
        let f = c.stats().paused(|| EmFile::from_slice(c, &v)).unwrap();
        let mut sorted = v;
        sorted.sort_unstable();
        (f, sorted)
    }

    #[test]
    fn answers_match_plain_multi_select_with_and_without_refine() {
        let c = ctx();
        let n = 2000u64;
        let (_, sorted) = dataset(&c, n, 1);
        let check = |got: &[u64], ranks: &[u64]| {
            let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();
            assert_eq!(got, want);
        };
        for refine in [false, true] {
            let (plain, _) = dataset(&c, n, 1);
            let mut idx = SplitterIndex::open(&c, "t", plain).unwrap();
            let batches: Vec<Vec<u64>> = vec![
                vec![500, 1500, 500, 1],
                vec![1500, 700, 2000],
                vec![499, 500, 501, 1500],
            ];
            for ranks in &batches {
                let (got, _) = idx.answer(ranks, MsOptions::default(), refine).unwrap();
                check(&got, ranks);
            }
            if refine {
                assert!(idx.num_segments() > 1);
            } else {
                assert_eq!(idx.num_segments(), 1);
            }
        }
    }

    #[test]
    fn warm_boundary_hits_cost_zero_ios() {
        let c = ctx();
        let (f, _) = dataset(&c, 3000, 2);
        let mut idx = SplitterIndex::open(&c, "w", f).unwrap();
        let ranks = vec![100u64, 900, 2500];
        let (_, s1) = idx.answer(&ranks, MsOptions::default(), true).unwrap();
        assert_eq!(s1.index_hits, 0);
        let before = c.stats().snapshot();
        let (_, s2) = idx.answer(&ranks, MsOptions::default(), true).unwrap();
        assert_eq!(s2.index_hits, 3);
        assert_eq!(s2.segments_touched, 0);
        assert_eq!(
            c.stats().snapshot().since(&before).total_ios(),
            0,
            "warm boundary hits must be free"
        );
    }

    #[test]
    fn refinement_narrows_select_cost() {
        let c = ctx();
        let (f, _) = dataset(&c, 4000, 3);
        let mut idx = SplitterIndex::open(&c, "narrow", f).unwrap();
        let (_, _) = idx
            .answer(&[1000, 2000, 3000], MsOptions::default(), true)
            .unwrap();
        let before = c.stats().snapshot();
        let (_, st) = idx.answer(&[1500], MsOptions::default(), false).unwrap();
        let narrow = c.stats().snapshot().since(&before).total_ios();
        assert_eq!(st.segments_touched, 1);
        // A fresh unrefined index pays a full-dataset select for the same
        // rank.
        let (g, _) = dataset(&c, 4000, 3);
        let mut cold = SplitterIndex::open(&c, "cold", g).unwrap();
        let before = c.stats().snapshot();
        cold.answer(&[1500], MsOptions::default(), false).unwrap();
        let full = c.stats().snapshot().since(&before).total_ios();
        assert!(
            narrow < full,
            "segment-restricted select ({narrow}) must beat full select ({full})"
        );
    }

    #[test]
    fn duplicate_heavy_boundaries_stay_rank_exact() {
        let c = ctx();
        let n = 1500u64;
        let data: Vec<u64> = (0..n).map(|i| if i % 5 == 0 { i } else { 42 }).collect();
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let plain = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let mut idx = SplitterIndex::open(&c, "dups", f).unwrap();
        let ranks = vec![300u64, 301, 700, 1200, 700];
        let (got, _) = idx.answer(&ranks, MsOptions::default(), true).unwrap();
        let want = multi_select(&plain, &ranks).unwrap();
        assert_eq!(got, want);
        // And again on the refined skeleton.
        let ranks2 = vec![299u64, 300, 302, 1200];
        let (got2, _) = idx.answer(&ranks2, MsOptions::default(), true).unwrap();
        let want2 = multi_select(&plain, &ranks2).unwrap();
        assert_eq!(got2, want2);
    }

    #[test]
    fn approx_answers_are_free_and_respect_their_bound() {
        let c = ctx();
        let (f, sorted) = dataset(&c, 3000, 7);
        let mut idx = SplitterIndex::open(&c, "apx", f).unwrap();
        // Cold skeleton: no boundary known, no approximation possible.
        assert!(idx.answer_approx(&[1500]).unwrap().is_none());
        assert!(idx.answer_approx(&[0]).is_err());
        // Warm it with exact cuts at 600/1200/1800/2400.
        idx.answer(&[600, 1200, 1800, 2400], MsOptions::default(), true)
            .unwrap();
        let before = c.stats().snapshot();
        let ranks = vec![1u64, 650, 1500, 2399, 3000];
        let (vals, bound) = idx.answer_approx(&ranks).unwrap().unwrap();
        assert_eq!(
            c.stats().snapshot().since(&before).total_ios(),
            0,
            "approximation must be skeleton-only"
        );
        // Worst asked rank is 3000, sitting 600 past the last cut at 2400.
        assert_eq!(bound, 600);
        for (&r, &v) in ranks.iter().zip(&vals) {
            let true_rank = sorted.iter().position(|&x| x == v).unwrap() as u64 + 1;
            assert!(
                true_rank.abs_diff(r) <= bound,
                "rank {r}: got rank {true_rank}, bound {bound}"
            );
        }
        // A rank sitting exactly on a boundary is answered exactly.
        let (vals2, _) = idx.answer_approx(&[1200]).unwrap().unwrap();
        assert_eq!(vals2, vec![sorted[1199]]);
    }

    #[test]
    fn skeleton_approximation_bound_is_offset_invariant() {
        assert!(approx_from_skeleton::<u64>(&[], &[1, 2]).is_none());
        let bounds = vec![(100u64, 10u64), (200, 20), (350, 35)];
        let ranks = vec![100u64, 149, 151, 350, 275];
        let (vals, worst) = approx_from_skeleton(&bounds, &ranks).unwrap();
        // 149 is nearer the left cut (49 < 51), 151 nearer the right;
        // 275 sits 75 from both sides and the tie goes left.
        assert_eq!(vals, vec![10, 10, 20, 35, 20]);
        assert_eq!(worst, 75);
        // Rebasing every rank and boundary by the same offset changes
        // neither the chosen values nor the bound — the property the
        // router relies on when it quotes shard-local errors globally.
        let base = 10_000u64;
        let shifted: Vec<(u64, u64)> = bounds.iter().map(|&(r, v)| (r + base, v)).collect();
        let shifted_ranks: Vec<u64> = ranks.iter().map(|&r| r + base).collect();
        let (vals2, worst2) = approx_from_skeleton(&shifted, &shifted_ranks).unwrap();
        assert_eq!((vals2, worst2), (vals, worst));
    }
}
