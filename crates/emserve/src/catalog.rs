//! Persistent dataset catalog: named datasets registered on an
//! [`EmContext`], reopenable across process restarts.
//!
//! The catalog is a single journal (`serve-catalog`) mapping dataset
//! names to `(file id, length, record width)`. Registering a dataset
//! marks its backing file persistent and commits the catalog atomically,
//! so on the directory backend a fresh process can [`Catalog::open`] the
//! same directory and reopen every dataset by id.
//!
//! Since image version 2 the catalog also journals **shard maps**
//! ([`ShardMap`]): for a dataset that was range-partitioned across a
//! shard fleet, the map records the fleet size and the exact splitter
//! boundaries (cut rank + key bytes) so a router restarted on the same
//! directory can rebuild its co-ranking tables without touching data.

use std::collections::BTreeMap;

use emcore::{from_hex, to_hex, EmContext, EmError, EmFile, Journal, JournalState, Record, Result};

/// Journal name holding the catalog image.
pub const CATALOG_JOURNAL: &str = "serve-catalog";

/// One registered dataset: enough to reopen its file on a fresh context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetEntry {
    /// Backing file id ([`EmContext::open_file`]).
    pub id: u64,
    /// Number of records.
    pub len: u64,
    /// Record width in words ([`Record::WORDS`]) — checked on reopen so a
    /// dataset registered as one type is not silently reread as another.
    pub words: u64,
}

/// The persisted description of a sharded dataset: how many shards it
/// was split across and the exact splitter boundaries, as `(end rank,
/// key bytes)` pairs in ascending rank order with the last rank equal to
/// the dataset length. Key bytes are the [`Record::write_bytes`]
/// encoding of the boundary record (the maximum of its shard), so a
/// restarted router can rebuild both the co-ranking prefix array and the
/// degradation skeleton without reading any shard data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Number of shards in the fleet the dataset was built for.
    pub shards: u64,
    /// Total records across all shards.
    pub len: u64,
    /// Record width in words — checked on reopen, like [`DatasetEntry`].
    pub words: u64,
    /// Splitter boundaries: `(cumulative end rank, boundary key bytes)`.
    /// Empty only for an empty dataset.
    pub cuts: Vec<(u64, Vec<u8>)>,
}

#[derive(Debug, Default)]
struct CatalogImage {
    entries: Vec<(String, DatasetEntry)>,
    maps: Vec<(String, ShardMap)>,
}

impl JournalState for CatalogImage {
    const KIND: &'static str = "serve-catalog";
    const VERSION: u32 = 2;

    fn encode(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (name, e) in &self.entries {
            let _ = writeln!(out, "ds {} {} {} {}", name, e.id, e.len, e.words);
        }
        for (name, m) in &self.maps {
            let _ = writeln!(out, "shard {} {} {} {}", name, m.shards, m.len, m.words);
            for (rank, key) in &m.cuts {
                let _ = writeln!(out, "cut {} {} {}", name, rank, to_hex(key));
            }
        }
    }

    fn decode(body: &str) -> Result<Self> {
        let mut entries = Vec::new();
        let mut maps: Vec<(String, ShardMap)> = Vec::new();
        for line in body.lines() {
            let Some((kind, rest)) = line.split_once(' ') else {
                return Err(EmError::config(format!("catalog: bad line {line:?}")));
            };
            let mut it = rest.split(' ');
            let mut next = || {
                it.next()
                    .ok_or_else(|| EmError::config(format!("catalog: short line {line:?}")))
            };
            let num = |s: &str| {
                s.parse::<u64>()
                    .map_err(|_| EmError::config(format!("catalog: bad number {s:?}")))
            };
            match kind {
                "ds" => {
                    let name = next()?.to_string();
                    let id = num(next()?)?;
                    let len = num(next()?)?;
                    let words = num(next()?)?;
                    entries.push((name, DatasetEntry { id, len, words }));
                }
                "shard" => {
                    let name = next()?.to_string();
                    let shards = num(next()?)?;
                    let len = num(next()?)?;
                    let words = num(next()?)?;
                    maps.push((
                        name,
                        ShardMap {
                            shards,
                            len,
                            words,
                            cuts: Vec::new(),
                        },
                    ));
                }
                "cut" => {
                    let name = next()?.to_string();
                    let rank = num(next()?)?;
                    let key = from_hex(next()?)?;
                    let Some((_, m)) = maps.iter_mut().rev().find(|(n, _)| *n == name) else {
                        return Err(EmError::config(format!(
                            "catalog: cut line for unknown shard map {name:?}"
                        )));
                    };
                    m.cuts.push((rank, key));
                }
                _ => return Err(EmError::config(format!("catalog: bad line {line:?}"))),
            }
        }
        Ok(CatalogImage { entries, maps })
    }
}

/// Validate a dataset name: lowercase alphanumerics and dashes, nonempty.
/// The same charset journals require, since each dataset also gets an
/// index journal named after it.
pub fn validate_name(name: &str) -> Result<()> {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return Err(EmError::config(format!(
            "dataset name {name:?} must be nonempty [a-z0-9-]"
        )));
    }
    Ok(())
}

/// The persistent name → dataset map.
#[derive(Debug)]
pub struct Catalog {
    ctx: EmContext,
    journal: Journal,
    entries: BTreeMap<String, DatasetEntry>,
    maps: BTreeMap<String, ShardMap>,
}

impl Catalog {
    /// Open (or create) the catalog on `ctx`'s backing store, loading any
    /// previously committed image.
    pub fn open(ctx: &EmContext) -> Result<Self> {
        let journal = Journal::new(ctx, CATALOG_JOURNAL)?;
        let (entries, maps) = match journal.load::<CatalogImage>()? {
            Some(img) => (
                img.entries.into_iter().collect(),
                img.maps.into_iter().collect(),
            ),
            None => (BTreeMap::new(), BTreeMap::new()),
        };
        Ok(Catalog {
            ctx: ctx.clone(),
            journal,
            entries,
            maps,
        })
    }

    /// Register `file` under `name`, marking it persistent and committing
    /// the catalog. Errors if `name` is taken by a *different* file;
    /// re-registering the same file is a no-op (idempotent restart path).
    pub fn register<T: Record>(&mut self, name: &str, file: &EmFile<T>) -> Result<()> {
        validate_name(name)?;
        let entry = DatasetEntry {
            id: file.id(),
            len: file.len(),
            words: T::WORDS as u64,
        };
        if let Some(prev) = self.entries.get(name) {
            if *prev == entry {
                return Ok(());
            }
            return Err(EmError::config(format!(
                "dataset {name:?} already registered (file {})",
                prev.id
            )));
        }
        file.set_persistent(true);
        self.entries.insert(name.to_string(), entry);
        self.commit()
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Look up a dataset by name.
    pub fn entry(&self, name: &str) -> Option<&DatasetEntry> {
        self.entries.get(name)
    }

    /// Reopen `name`'s backing file on this catalog's context. Requires a
    /// backend whose files survive (the directory backend across restarts,
    /// or the same process's in-memory backend).
    pub fn open_dataset<T: Record>(&self, name: &str) -> Result<EmFile<T>> {
        let e = self
            .entries
            .get(name)
            .ok_or_else(|| EmError::config(format!("unknown dataset {name:?}")))?;
        if e.words != T::WORDS as u64 {
            return Err(EmError::config(format!(
                "dataset {name:?} has records of {} words, asked for {}",
                e.words,
                T::WORDS
            )));
        }
        self.ctx.open_file::<T>(e.id, e.len)
    }

    /// Journal a shard map for `name`, committing the catalog. Committing
    /// the map is the shard build's "build complete" point: a router only
    /// trusts datasets whose map is present. Idempotent for an identical
    /// map; an error if `name` already has a *different* one.
    pub fn register_shard_map(&mut self, name: &str, map: ShardMap) -> Result<()> {
        validate_name(name)?;
        if let Some(prev) = self.maps.get(name) {
            if *prev == map {
                return Ok(());
            }
            return Err(EmError::config(format!(
                "dataset {name:?} already has a shard map ({} shards)",
                prev.shards
            )));
        }
        self.maps.insert(name.to_string(), map);
        self.commit()
    }

    /// Look up the shard map for `name`, if one was journaled.
    pub fn shard_map(&self, name: &str) -> Option<&ShardMap> {
        self.maps.get(name)
    }

    /// Names of datasets with journaled shard maps, sorted.
    pub fn shard_map_names(&self) -> Vec<String> {
        self.maps.keys().cloned().collect()
    }

    /// The context this catalog lives on.
    pub fn ctx(&self) -> &EmContext {
        &self.ctx
    }

    fn commit(&self) -> Result<()> {
        let img = CatalogImage {
            entries: self.entries.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            maps: self
                .maps
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        };
        self.journal.commit(&img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::EmConfig;

    #[test]
    fn register_and_reload_image() {
        let dir = std::env::temp_dir().join(format!("emserve-cat-{}", std::process::id()));
        let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
        let f = EmFile::from_slice(&ctx, &[3u64, 1, 2]).unwrap();
        let mut cat = Catalog::open(&ctx).unwrap();
        cat.register("alpha", &f).unwrap();
        // Idempotent for the same file, an error for a different one.
        cat.register("alpha", &f).unwrap();
        let g = EmFile::from_slice(&ctx, &[9u64]).unwrap();
        assert!(cat.register("alpha", &g).is_err());
        assert!(cat.register("Bad Name", &g).is_err());

        // A second catalog on the same context sees the committed state.
        let cat2 = Catalog::open(&ctx).unwrap();
        assert_eq!(cat2.names(), vec!["alpha".to_string()]);
        let e = cat2.entry("alpha").unwrap();
        assert_eq!((e.id, e.len, e.words), (f.id(), 3, 1));
        let back = cat2.open_dataset::<u64>("alpha").unwrap();
        assert_eq!(back.to_vec().unwrap(), vec![3, 1, 2]);
        drop((f, g, back, cat, cat2));
        drop(ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_maps_survive_reload_and_stay_idempotent() {
        let dir = std::env::temp_dir().join(format!("emserve-cat-shard-{}", std::process::id()));
        let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
        let mut cat = Catalog::open(&ctx).unwrap();
        let key = |v: u64| v.to_le_bytes().to_vec();
        let map = ShardMap {
            shards: 4,
            len: 10,
            words: 1,
            cuts: vec![(3, key(30)), (5, key(50)), (8, key(80)), (10, key(99))],
        };
        cat.register_shard_map("alpha", map.clone()).unwrap();
        // Idempotent for the identical map, an error for a different one.
        cat.register_shard_map("alpha", map.clone()).unwrap();
        let other = ShardMap {
            shards: 8,
            ..map.clone()
        };
        assert!(cat.register_shard_map("alpha", other).is_err());
        assert!(cat.register_shard_map("Bad Name", map.clone()).is_err());

        // A fresh catalog decodes the shard + cut lines back exactly,
        // alongside any plain dataset entries.
        let f = EmFile::from_slice(&ctx, &[1u64, 2]).unwrap();
        cat.register("beta", &f).unwrap();
        let cat2 = Catalog::open(&ctx).unwrap();
        assert_eq!(cat2.shard_map_names(), vec!["alpha".to_string()]);
        assert_eq!(cat2.shard_map("alpha"), Some(&map));
        assert!(cat2.shard_map("beta").is_none());
        assert_eq!(cat2.entry("beta").unwrap().len, 2);
        drop((f, cat, cat2));
        drop(ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
