//! Persistent dataset catalog: named datasets registered on an
//! [`EmContext`], reopenable across process restarts.
//!
//! The catalog is a single journal (`serve-catalog`) mapping dataset
//! names to `(file id, length, record width)`. Registering a dataset
//! marks its backing file persistent and commits the catalog atomically,
//! so on the directory backend a fresh process can [`Catalog::open`] the
//! same directory and reopen every dataset by id.

use std::collections::BTreeMap;

use emcore::{EmContext, EmError, EmFile, Journal, JournalState, Record, Result};

/// Journal name holding the catalog image.
pub const CATALOG_JOURNAL: &str = "serve-catalog";

/// One registered dataset: enough to reopen its file on a fresh context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetEntry {
    /// Backing file id ([`EmContext::open_file`]).
    pub id: u64,
    /// Number of records.
    pub len: u64,
    /// Record width in words ([`Record::WORDS`]) — checked on reopen so a
    /// dataset registered as one type is not silently reread as another.
    pub words: u64,
}

#[derive(Debug, Default)]
struct CatalogImage {
    entries: Vec<(String, DatasetEntry)>,
}

impl JournalState for CatalogImage {
    const KIND: &'static str = "serve-catalog";
    const VERSION: u32 = 1;

    fn encode(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (name, e) in &self.entries {
            let _ = writeln!(out, "ds {} {} {} {}", name, e.id, e.len, e.words);
        }
    }

    fn decode(body: &str) -> Result<Self> {
        let mut entries = Vec::new();
        for line in body.lines() {
            let Some(("ds", rest)) = line.split_once(' ') else {
                return Err(EmError::config(format!("catalog: bad line {line:?}")));
            };
            let mut it = rest.split(' ');
            let mut next = || {
                it.next()
                    .ok_or_else(|| EmError::config(format!("catalog: short line {line:?}")))
            };
            let name = next()?.to_string();
            let num = |s: &str| {
                s.parse::<u64>()
                    .map_err(|_| EmError::config(format!("catalog: bad number {s:?}")))
            };
            let id = num(next()?)?;
            let len = num(next()?)?;
            let words = num(next()?)?;
            entries.push((name, DatasetEntry { id, len, words }));
        }
        Ok(CatalogImage { entries })
    }
}

/// Validate a dataset name: lowercase alphanumerics and dashes, nonempty.
/// The same charset journals require, since each dataset also gets an
/// index journal named after it.
pub fn validate_name(name: &str) -> Result<()> {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return Err(EmError::config(format!(
            "dataset name {name:?} must be nonempty [a-z0-9-]"
        )));
    }
    Ok(())
}

/// The persistent name → dataset map.
#[derive(Debug)]
pub struct Catalog {
    ctx: EmContext,
    journal: Journal,
    entries: BTreeMap<String, DatasetEntry>,
}

impl Catalog {
    /// Open (or create) the catalog on `ctx`'s backing store, loading any
    /// previously committed image.
    pub fn open(ctx: &EmContext) -> Result<Self> {
        let journal = Journal::new(ctx, CATALOG_JOURNAL)?;
        let entries = match journal.load::<CatalogImage>()? {
            Some(img) => img.entries.into_iter().collect(),
            None => BTreeMap::new(),
        };
        Ok(Catalog {
            ctx: ctx.clone(),
            journal,
            entries,
        })
    }

    /// Register `file` under `name`, marking it persistent and committing
    /// the catalog. Errors if `name` is taken by a *different* file;
    /// re-registering the same file is a no-op (idempotent restart path).
    pub fn register<T: Record>(&mut self, name: &str, file: &EmFile<T>) -> Result<()> {
        validate_name(name)?;
        let entry = DatasetEntry {
            id: file.id(),
            len: file.len(),
            words: T::WORDS as u64,
        };
        if let Some(prev) = self.entries.get(name) {
            if *prev == entry {
                return Ok(());
            }
            return Err(EmError::config(format!(
                "dataset {name:?} already registered (file {})",
                prev.id
            )));
        }
        file.set_persistent(true);
        self.entries.insert(name.to_string(), entry);
        self.commit()
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Look up a dataset by name.
    pub fn entry(&self, name: &str) -> Option<&DatasetEntry> {
        self.entries.get(name)
    }

    /// Reopen `name`'s backing file on this catalog's context. Requires a
    /// backend whose files survive (the directory backend across restarts,
    /// or the same process's in-memory backend).
    pub fn open_dataset<T: Record>(&self, name: &str) -> Result<EmFile<T>> {
        let e = self
            .entries
            .get(name)
            .ok_or_else(|| EmError::config(format!("unknown dataset {name:?}")))?;
        if e.words != T::WORDS as u64 {
            return Err(EmError::config(format!(
                "dataset {name:?} has records of {} words, asked for {}",
                e.words,
                T::WORDS
            )));
        }
        self.ctx.open_file::<T>(e.id, e.len)
    }

    /// The context this catalog lives on.
    pub fn ctx(&self) -> &EmContext {
        &self.ctx
    }

    fn commit(&self) -> Result<()> {
        let img = CatalogImage {
            entries: self.entries.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        };
        self.journal.commit(&img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::EmConfig;

    #[test]
    fn register_and_reload_image() {
        let dir = std::env::temp_dir().join(format!("emserve-cat-{}", std::process::id()));
        let ctx = EmContext::new_on_disk(EmConfig::tiny(), &dir).unwrap();
        let f = EmFile::from_slice(&ctx, &[3u64, 1, 2]).unwrap();
        let mut cat = Catalog::open(&ctx).unwrap();
        cat.register("alpha", &f).unwrap();
        // Idempotent for the same file, an error for a different one.
        cat.register("alpha", &f).unwrap();
        let g = EmFile::from_slice(&ctx, &[9u64]).unwrap();
        assert!(cat.register("alpha", &g).is_err());
        assert!(cat.register("Bad Name", &g).is_err());

        // A second catalog on the same context sees the committed state.
        let cat2 = Catalog::open(&ctx).unwrap();
        assert_eq!(cat2.names(), vec!["alpha".to_string()]);
        let e = cat2.entry("alpha").unwrap();
        assert_eq!((e.id, e.len, e.words), (f.id(), 3, 1));
        let back = cat2.open_dataset::<u64>("alpha").unwrap();
        assert_eq!(back.to_vec().unwrap(), vec![3, 1, 2]);
        drop((f, g, back, cat, cat2));
        drop(ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
