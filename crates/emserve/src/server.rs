//! The query server: a scheduler thread that coalesces in-flight queries
//! per dataset and answers each batch with one multi-select pass.
//!
//! Concurrency model matches the parallel sort (PR 4): `std::thread` +
//! `std::sync::mpsc` only. Clients hold a clone of a bounded
//! [`std::sync::mpsc::SyncSender`] — the bound is the admission-control
//! queue depth, so producers block (back-pressure) instead of growing an
//! unbounded queue. The scheduler collects queries under a tunable
//! batching window (first query starts the clock, up to
//! [`ServeOptions::batch_max`] join it), groups them per dataset, and
//! answers each group through the dataset's [`SplitterIndex`] — one
//! [`emselect`] multi-select pass per touched segment, boundary hits free.
//!
//! ## Resilience (PR 6)
//!
//! A fault during a coalesced batch no longer fails every rider:
//!
//! * **Typed errors end to end** — reply channels carry [`EmError`]
//!   values (the error type is `Clone`), never stringly re-wrapped ones.
//! * **Retry, then bisect** — a failed batch is retried under
//!   [`ServeOptions::retry`] while the error is retryable; a persistent
//!   failure bisects the batch so the poisoned query is quarantined and
//!   its coalesced neighbours still get exact answers.
//! * **Per-dataset circuit breaker** — after
//!   [`ServeOptions::breaker_threshold`] consecutive fully-failed fault
//!   batches a dataset enters [`BreakerState::Open`] and fails fast with
//!   [`EmError::Unhealthy`]; a background probe (one block read) half-opens
//!   and restores it once the device answers again.
//! * **Deadlines & degraded answers** — a query whose
//!   [`QueryOptions::deadline`] expired before execution is shed with
//!   [`EmError::DeadlineExceeded`] — or, with degraded mode on, answered
//!   *approximately* from the splitter skeleton at zero I/O, flagged
//!   `approx` with an explicit rank-error bound
//!   ([`SplitterIndex::answer_approx`]). The same degraded path backs
//!   breaker-open datasets: the skeleton needs no device at all.
//!
//! ## Memory governor (PR 7)
//!
//! Each registered dataset is a *tenant* of the context's
//! [`emcore::MemoryGovernor`]: with [`ServeOptions::lease_floor`] set, the
//! scheduler takes a per-dataset lease (floor + fair weighted share of the
//! surplus). A batch that fails with [`EmError::MemoryExceeded`] — a
//! governor squeeze or a contended tracker — is *not* a fault: it trips no
//! breaker, and with degraded mode on, the starved tenant is answered
//! approximately from the memory-resident skeleton (zero allocation, zero
//! I/O) instead of erroring. Lease gauges are surfaced in [`ServeReport`]
//! and [`DatasetHealth`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use emcore::clock::Clock;
use emcore::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use emcore::{EmContext, EmError, EmFile, Lease, Record, Result, RetryPolicy};
use emselect::MsOptions;

use crate::catalog::Catalog;
use crate::index::SplitterIndex;

/// Per-query service options. Unset fields inherit the server-wide
/// defaults in [`ServeOptions`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Answer-latency budget measured from submission. A query still
    /// queued when its deadline expires is shed (or degraded) instead of
    /// executed. `None` inherits [`ServeOptions::deadline`].
    pub deadline: Option<Duration>,
    /// Whether an over-deadline (or breaker-quarantined) query may be
    /// answered approximately from the splitter skeleton at zero I/O.
    /// `None` inherits [`ServeOptions::degraded`].
    pub degraded: Option<bool>,
}

/// One answered query: the values, and whether they are exact or a
/// skeleton-only approximation with a guaranteed rank-error bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAnswer<T: Record> {
    /// The answer values, in the caller's rank order.
    pub values: Vec<T>,
    /// `false`: bit-identical to a full multi-select of the asked ranks.
    /// `true`: each value is the element of a *known exact rank* near the
    /// asked one (degraded mode) — see `rank_error`.
    pub approx: bool,
    /// Guaranteed rank-error bound when `approx`: the value returned for
    /// rank `r` has exact global rank `r'` with `|r' − r| ≤ rank_error`.
    /// Always 0 for exact answers.
    pub rank_error: u64,
}

impl<T: Record> QueryAnswer<T> {
    fn exact(values: Vec<T>) -> Self {
        QueryAnswer {
            values,
            approx: false,
            rank_error: 0,
        }
    }

    /// The values, discarding the exact/approx flag.
    pub fn into_values(self) -> Vec<T> {
        self.values
    }
}

/// Circuit-breaker state of one served dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: batches execute normally.
    Closed,
    /// Tripped: queries fail fast with [`EmError::Unhealthy`] (or degrade
    /// to skeleton answers) until the probe cooldown elapses.
    Open,
    /// Cooldown elapsed: the next background probe (or query) decides
    /// whether the dataset is restored or re-quarantined.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label (for protocol/health output).
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Health snapshot of one dataset, returned by [`Client::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetHealth {
    /// Dataset name.
    pub name: String,
    /// Current breaker state.
    pub state: BreakerState,
    /// Consecutive fully-failed fault batches (resets on any success).
    pub consecutive_failures: u32,
    /// Words of memory floor reserved for this dataset's lease (0 when
    /// leasing is disabled or the lease was denied at admission).
    pub lease_floor_words: u64,
    /// Words currently granted to the lease: floor + weighted fair share
    /// of the budget surplus. Shrinks when the governor squeezes `M`.
    pub lease_granted_words: u64,
}

/// Tunables for [`QueryServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Most queries coalesced into one batch.
    pub batch_max: usize,
    /// How long the scheduler waits for more queries after the first.
    pub batch_window: Duration,
    /// Bound of the request channel (admission control: senders block).
    pub queue_depth: usize,
    /// Refine the splitter index after every answered batch.
    pub refine: bool,
    /// Multi-select options used for every pass.
    pub select: MsOptions,
    /// Server-level batch retry policy: a batch failing with a retryable
    /// fault ([`EmError::is_retryable`]) is re-executed up to
    /// `retry.max_attempts` times before bisection kicks in.
    pub retry: RetryPolicy,
    /// Consecutive fully-failed fault batches before a dataset's breaker
    /// opens (0 disables the breaker).
    pub breaker_threshold: u32,
    /// Cooldown before an open breaker half-opens and is probed.
    pub probe_cooldown: Duration,
    /// Default per-query deadline (`None` = no deadline). Overridable per
    /// query via [`QueryOptions::deadline`].
    pub deadline: Option<Duration>,
    /// Default degraded-mode flag (see [`QueryOptions::degraded`]).
    pub degraded: bool,
    /// Per-dataset memory-lease floor, in words (0 disables leasing).
    /// Each registered dataset reserves this floor with the context's
    /// memory governor; admission-control denials leave the dataset
    /// unleased (it still serves, with no reserved share).
    pub lease_floor: usize,
    /// Fairness weight of each dataset's lease: surplus budget above the
    /// floors is granted proportionally to weight.
    pub lease_weight: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            batch_max: 16,
            batch_window: Duration::from_millis(2),
            queue_depth: 64,
            refine: true,
            select: MsOptions::default(),
            retry: RetryPolicy::retries(2),
            breaker_threshold: 3,
            probe_cooldown: Duration::from_millis(25),
            deadline: None,
            degraded: false,
            lease_floor: 0,
            lease_weight: 1,
        }
    }
}

impl ServeOptions {
    /// Start building options from the defaults, one named setter per
    /// field (the [`emcore::EmConfig::builder`] idiom). Struct-literal
    /// construction via `..ServeOptions::default()` keeps working.
    ///
    /// ```
    /// use emserve::ServeOptions;
    /// use std::time::Duration;
    /// let opts = ServeOptions::builder()
    ///     .batch_window(Duration::from_millis(5))
    ///     .degraded(true)
    ///     .build();
    /// assert_eq!(opts.batch_window, Duration::from_millis(5));
    /// assert!(opts.degraded);
    /// ```
    pub fn builder() -> ServeOptionsBuilder {
        ServeOptionsBuilder {
            opts: ServeOptions::default(),
        }
    }
}

/// Named-parameter construction of [`ServeOptions`]; see
/// [`ServeOptions::builder`]. `build` is infallible — every combination
/// of fields is a valid configuration (degenerate values like a zero
/// queue depth are clamped where they are consumed).
#[derive(Debug, Clone, Copy)]
pub struct ServeOptionsBuilder {
    opts: ServeOptions,
}

impl ServeOptionsBuilder {
    /// Most queries coalesced into one batch.
    pub fn batch_max(mut self, v: usize) -> Self {
        self.opts.batch_max = v;
        self
    }

    /// How long the scheduler waits for more queries after the first.
    pub fn batch_window(mut self, v: Duration) -> Self {
        self.opts.batch_window = v;
        self
    }

    /// Bound of the request channel (admission control).
    pub fn queue_depth(mut self, v: usize) -> Self {
        self.opts.queue_depth = v;
        self
    }

    /// Refine the splitter index after every answered batch.
    pub fn refine(mut self, v: bool) -> Self {
        self.opts.refine = v;
        self
    }

    /// Multi-select options used for every pass.
    pub fn select(mut self, v: MsOptions) -> Self {
        self.opts.select = v;
        self
    }

    /// Server-level batch retry policy.
    pub fn retry(mut self, v: RetryPolicy) -> Self {
        self.opts.retry = v;
        self
    }

    /// Consecutive fully-failed fault batches before the breaker opens.
    pub fn breaker_threshold(mut self, v: u32) -> Self {
        self.opts.breaker_threshold = v;
        self
    }

    /// Cooldown before an open breaker half-opens and is probed.
    pub fn probe_cooldown(mut self, v: Duration) -> Self {
        self.opts.probe_cooldown = v;
        self
    }

    /// Default per-query deadline (`None` = no deadline).
    pub fn deadline(mut self, v: Option<Duration>) -> Self {
        self.opts.deadline = v;
        self
    }

    /// Default degraded-mode flag.
    pub fn degraded(mut self, v: bool) -> Self {
        self.opts.degraded = v;
        self
    }

    /// Per-dataset memory-lease floor, in words (0 disables leasing).
    pub fn lease_floor(mut self, v: usize) -> Self {
        self.opts.lease_floor = v;
        self
    }

    /// Fairness weight of each dataset's lease.
    pub fn lease_weight(mut self, v: u32) -> Self {
        self.opts.lease_weight = v;
        self
    }

    /// The finished options.
    pub fn build(self) -> ServeOptions {
        self.opts
    }
}

/// Aggregate service counters, returned by [`QueryServer::shutdown`] and
/// [`Client::report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Datasets registered (or reopened) this run.
    pub registered: u64,
    /// Queries answered (exact, degraded, shed, or failed — every
    /// accepted query resolves exactly once).
    pub queries: u64,
    /// Batches executed (each ≥ 1 query; the coalescing win is
    /// `queries / batches`).
    pub batches: u64,
    /// Ranks answered from a stored splitter-index boundary at zero I/O.
    pub index_hits: u64,
    /// Distinct ranks answered by an in-segment select pass.
    pub selected: u64,
    /// Wall-clock microseconds spent answering batches (query latency,
    /// excluding queue wait).
    pub answer_us: u64,
    /// Whole-batch re-executions under [`ServeOptions::retry`].
    pub retried_batches: u64,
    /// Queries that received a typed error.
    pub failed: u64,
    /// Failed queries that were *isolated by bisection* — their coalesced
    /// neighbours still got exact answers.
    pub quarantined: u64,
    /// Queries shed at admission because their deadline had expired.
    pub shed: u64,
    /// Queries answered approximately from the skeleton (degraded mode).
    pub degraded: u64,
    /// Circuit-breaker trips (datasets entering the fail-fast state).
    pub breaker_trips: u64,
    /// Background probes executed against quarantined datasets.
    pub probes: u64,
    /// Datasets restored to `Closed` by a successful probe.
    pub breaker_restores: u64,
    /// Breakers currently not `Closed` (snapshot at report time).
    pub open_breakers: u64,
    /// Live memory budget of the serving context, in words (snapshot at
    /// report time; moves when the governor squeezes or restores `M`).
    pub mem_budget_words: u64,
    /// Sum of lease floors held by this server's datasets, in words.
    pub lease_floor_words: u64,
    /// Datasets currently holding a governor lease.
    pub leases: u64,
    /// Governor admission denials observed on this context (snapshot).
    pub lease_denials: u64,
    /// Queries answered approximately *because the exact pass ran out of
    /// memory budget* (subset of `degraded`).
    pub mem_degraded: u64,
    /// Queries/batches admitted to the request queue but not yet pulled
    /// by the scheduler (snapshot at report time).
    pub queue_depth: u64,
    /// Size of the most recently executed batch (snapshot; the live
    /// distribution is in the `em_serve_batch_occupancy` histogram).
    pub batch_occupancy: u64,
}

impl ServeReport {
    /// Accumulate `other` into `self`, field by field — the shard router's
    /// merge operation. Every field adds, so the merged report reads as a
    /// *fleet total*: the counters (queries, batches, failures, ...) sum
    /// exactly, and the point-in-time gauges (memory budget, queue depth,
    /// open breakers, leases) sum across the member servers' snapshots.
    /// Summing keeps the conservation laws intact: with every shard
    /// recording into one shared metrics registry,
    /// `family_total("em_serve_query_e2e_us")` equals the merged
    /// [`ServeReport::queries`].
    pub fn absorb(&mut self, other: &ServeReport) {
        self.registered += other.registered;
        self.queries += other.queries;
        self.batches += other.batches;
        self.index_hits += other.index_hits;
        self.selected += other.selected;
        self.answer_us += other.answer_us;
        self.retried_batches += other.retried_batches;
        self.failed += other.failed;
        self.quarantined += other.quarantined;
        self.shed += other.shed;
        self.degraded += other.degraded;
        self.breaker_trips += other.breaker_trips;
        self.probes += other.probes;
        self.breaker_restores += other.breaker_restores;
        self.open_breakers += other.open_breakers;
        self.mem_budget_words += other.mem_budget_words;
        self.lease_floor_words += other.lease_floor_words;
        self.leases += other.leases;
        self.lease_denials += other.lease_denials;
        self.mem_degraded += other.mem_degraded;
        self.queue_depth += other.queue_depth;
        self.batch_occupancy += other.batch_occupancy;
    }
}

/// One client query awaiting an answer.
struct Pending<T: Record> {
    ranks: Vec<u64>,
    opts: QueryOptions,
    /// Submission time on the server's [`Clock`] (µs).
    submitted_us: u64,
    reply: mpsc::Sender<Result<QueryAnswer<T>>>,
}

enum Req<T: Record> {
    Register {
        name: String,
        data: Vec<T>,
        reply: mpsc::Sender<Result<u64>>,
    },
    Query {
        name: String,
        query: Box<Pending<T>>,
    },
    /// A pre-coalesced batch: answered in one pass regardless of the
    /// batching window (deterministic batch sizes for benches and tests).
    Batch {
        name: String,
        queries: Vec<Pending<T>>,
    },
    Report {
        reply: mpsc::Sender<ServeReport>,
    },
    Health {
        reply: mpsc::Sender<Vec<DatasetHealth>>,
    },
    /// Length of a registered dataset (a catalog lookup, no I/O).
    Len {
        name: String,
        reply: mpsc::Sender<Result<u64>>,
    },
}

/// Handle to a running scheduler thread.
#[derive(Debug)]
pub struct QueryServer<T: Record> {
    tx: Option<SyncSender<Req<T>>>,
    handle: Option<std::thread::JoinHandle<ServeReport>>,
    clock: Arc<dyn Clock>,
    depth: Arc<AtomicU64>,
    /// The serving context's registry, kept so the transport-agnostic
    /// [`crate::QueryService::metrics`] can scrape without a context.
    pub(crate) metrics: MetricsRegistry,
}

/// A cheap client handle; clone freely across threads.
pub struct Client<T: Record> {
    tx: SyncSender<Req<T>>,
    /// The server's time source — submission stamps must share the
    /// scheduler's clock or queue-wait math would mix epochs.
    clock: Arc<dyn Clock>,
    /// Shared admitted-but-unpulled request count (the queue-depth gauge).
    depth: Arc<AtomicU64>,
}

impl<T: Record> Clone for Client<T> {
    fn clone(&self) -> Self {
        Client {
            tx: self.tx.clone(),
            clock: self.clock.clone(),
            depth: self.depth.clone(),
        }
    }
}

/// An in-flight query's answer slot.
pub struct Ticket<T: Record> {
    rx: mpsc::Receiver<Result<QueryAnswer<T>>>,
}

impl<T: Record> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl<T: Record> Ticket<T> {
    /// Block until the answer arrives (in the caller's rank order).
    pub fn wait(self) -> Result<QueryAnswer<T>> {
        self.rx
            .recv()
            .map_err(|_| EmError::unavailable("query server shut down before answering"))?
    }

    /// Wait at most `timeout` for the answer. A wedged or dead server can
    /// never hang the caller: on expiry this returns
    /// [`EmError::DeadlineExceeded`] and the ticket stays live, so the
    /// caller may wait again (or drop it — a late answer to a dropped
    /// ticket is discarded by the scheduler's failed `send`).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<QueryAnswer<T>> {
        let t0 = Instant::now();
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => Err(EmError::DeadlineExceeded {
                deadline_us: timeout.as_micros().min(u64::MAX as u128) as u64,
                waited_us: t0.elapsed().as_micros().min(u64::MAX as u128) as u64,
            }),
            Err(RecvTimeoutError::Disconnected) => Err(EmError::unavailable(
                "query server shut down before answering",
            )),
        }
    }
}

fn gone<R>() -> Result<R> {
    Err(EmError::unavailable("query server is not running"))
}

impl<T: Record> Client<T> {
    /// Register `data` under `name` (or reopen an existing dataset of that
    /// name from the catalog — `data` is then ignored). Returns the
    /// dataset length. Blocks until the server commits the catalog.
    pub fn register(&self, name: &str, data: Vec<T>) -> Result<u64> {
        let (tx, rx) = mpsc::channel();
        if self
            .tx
            .send(Req::Register {
                name: name.to_string(),
                data,
                reply: tx,
            })
            .is_err()
        {
            return gone();
        }
        rx.recv()
            .map_err(|_| EmError::unavailable("server dropped"))?
    }

    /// Submit one query for `ranks` of dataset `name` with default
    /// options. Blocks only on admission control (full queue); the answer
    /// arrives on the ticket.
    pub fn query(&self, name: &str, ranks: Vec<u64>) -> Result<Ticket<T>> {
        self.query_with(name, ranks, QueryOptions::default())
    }

    /// Submit one query with explicit per-query options (deadline,
    /// degraded mode).
    pub fn query_with(&self, name: &str, ranks: Vec<u64>, opts: QueryOptions) -> Result<Ticket<T>> {
        let (tx, rx) = mpsc::channel();
        self.depth.fetch_add(1, Ordering::Relaxed);
        if self
            .tx
            .send(Req::Query {
                name: name.to_string(),
                query: Box::new(Pending {
                    ranks,
                    opts,
                    submitted_us: self.clock.now_us(),
                    reply: tx,
                }),
            })
            .is_err()
        {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return gone();
        }
        Ok(Ticket { rx })
    }

    /// Submit several queries as one pre-coalesced batch: exactly one
    /// batch on the server regardless of timing.
    pub fn submit_batch(&self, name: &str, queries: Vec<Vec<u64>>) -> Result<Vec<Ticket<T>>> {
        self.submit_batch_with(
            name,
            queries
                .into_iter()
                .map(|r| (r, QueryOptions::default()))
                .collect(),
        )
    }

    /// [`Client::submit_batch`] with per-query options.
    pub fn submit_batch_with(
        &self,
        name: &str,
        queries: Vec<(Vec<u64>, QueryOptions)>,
    ) -> Result<Vec<Ticket<T>>> {
        let mut tickets = Vec::with_capacity(queries.len());
        let mut payload = Vec::with_capacity(queries.len());
        let now_us = self.clock.now_us();
        for (ranks, opts) in queries {
            let (tx, rx) = mpsc::channel();
            payload.push(Pending {
                ranks,
                opts,
                submitted_us: now_us,
                reply: tx,
            });
            tickets.push(Ticket { rx });
        }
        self.depth.fetch_add(1, Ordering::Relaxed);
        if self
            .tx
            .send(Req::Batch {
                name: name.to_string(),
                queries: payload,
            })
            .is_err()
        {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return gone();
        }
        Ok(tickets)
    }

    /// Length of a registered dataset (a catalog lookup, no I/O). Typed
    /// `Config` error for an unknown name.
    pub fn dataset_len(&self, name: &str) -> Result<u64> {
        let (tx, rx) = mpsc::channel();
        if self
            .tx
            .send(Req::Len {
                name: name.to_string(),
                reply: tx,
            })
            .is_err()
        {
            return gone();
        }
        rx.recv()
            .map_err(|_| EmError::unavailable("server dropped"))?
    }

    /// Snapshot of the server's counters.
    pub fn report(&self) -> Result<ServeReport> {
        let (tx, rx) = mpsc::channel();
        if self.tx.send(Req::Report { reply: tx }).is_err() {
            return gone();
        }
        rx.recv()
            .map_err(|_| EmError::unavailable("server dropped"))
    }

    /// Per-dataset breaker states.
    pub fn health(&self) -> Result<Vec<DatasetHealth>> {
        let (tx, rx) = mpsc::channel();
        if self.tx.send(Req::Health { reply: tx }).is_err() {
            return gone();
        }
        rx.recv()
            .map_err(|_| EmError::unavailable("server dropped"))
    }
}

/// Per-dataset circuit-breaker bookkeeping. Times are [`Clock`] readings
/// in µs, so tests drive the cooldown with a `ManualClock`.
struct Breaker {
    state: BreakerState,
    consecutive: u32,
    since_us: u64,
}

impl Breaker {
    fn new(now_us: u64) -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive: 0,
            since_us: now_us,
        }
    }
}

/// Per-dataset instrument handles, registered lazily on first touch and
/// cached — the hot path never re-enters the registry mutex.
struct DsMetrics {
    /// `em_serve_query_e2e_us{ds,outcome}` for outcome ∈ exact /
    /// degraded / shed / failed. Every accepted query lands in exactly
    /// one, so Σ counts conserves against [`ServeReport::queries`].
    e2e: [Histogram; 4],
    breaker_state: Gauge,
    lease_words: Gauge,
    trips: Counter,
    restores: Counter,
}

/// Which of the four terminal outcomes a query resolved with.
#[derive(Clone, Copy)]
enum Outcome {
    Exact = 0,
    Degraded = 1,
    Shed = 2,
    Failed = 3,
}

impl Outcome {
    fn label(self) -> &'static str {
        match self {
            Outcome::Exact => "exact",
            Outcome::Degraded => "degraded",
            Outcome::Shed => "shed",
            Outcome::Failed => "failed",
        }
    }
}

/// The scheduler's live instruments. Registration happens at server
/// start (global families) or first dataset touch (labeled children);
/// records afterwards are lock-free, and with a disabled registry each
/// is a single branch.
struct ServeMetrics {
    registry: MetricsRegistry,
    queue_wait_us: Histogram,
    batch_window_us: Histogram,
    batch_occupancy: Histogram,
    select_us: Histogram,
    queue_depth: Gauge,
    mem_budget: Gauge,
    cache_blocks: Gauge,
    datasets: BTreeMap<String, DsMetrics>,
}

impl ServeMetrics {
    fn new(registry: MetricsRegistry) -> Self {
        ServeMetrics {
            queue_wait_us: registry.histogram(
                "em_serve_queue_wait_us",
                "admission-queue wait per query: submission to batch execution start",
            ),
            batch_window_us: registry.histogram(
                "em_serve_batch_window_us",
                "coalescing wait per batch: earliest submission to execution start",
            ),
            batch_occupancy: registry.histogram(
                "em_serve_batch_occupancy",
                "queries coalesced into each executed batch",
            ),
            select_us: registry.histogram(
                "em_serve_select_us",
                "multi-select pass latency per batch attempt",
            ),
            queue_depth: registry.gauge(
                "em_serve_queue_depth",
                "requests admitted but not yet pulled by the scheduler",
            ),
            mem_budget: registry.gauge(
                "em_serve_mem_budget_words",
                "live dynamic memory budget of the serving context",
            ),
            cache_blocks: registry.gauge(
                "em_serve_cache_blocks",
                "blocks resident in the context's block cache",
            ),
            datasets: BTreeMap::new(),
            registry,
        }
    }

    #[inline]
    fn on(&self) -> bool {
        self.registry.enabled()
    }

    fn dataset(&mut self, name: &str) -> &DsMetrics {
        if !self.datasets.contains_key(name) {
            let e2e = [
                Outcome::Exact,
                Outcome::Degraded,
                Outcome::Shed,
                Outcome::Failed,
            ]
            .map(|o| {
                self.registry.histogram_with(
                    "em_serve_query_e2e_us",
                    "end-to-end query latency, submission to reply",
                    &[("ds", name), ("outcome", o.label())],
                )
            });
            let ds = DsMetrics {
                e2e,
                breaker_state: self.registry.gauge_with(
                    "em_serve_breaker_state",
                    "circuit-breaker state: 0 closed, 1 half-open, 2 open",
                    &[("ds", name)],
                ),
                lease_words: self.registry.gauge_with(
                    "em_serve_lease_words",
                    "words currently granted to the dataset's governor lease",
                    &[("ds", name)],
                ),
                trips: self.registry.counter_with(
                    "em_serve_breaker_trips_total",
                    "breaker trips (dataset entered fail-fast)",
                    &[("ds", name)],
                ),
                restores: self.registry.counter_with(
                    "em_serve_breaker_restores_total",
                    "breakers restored to closed",
                    &[("ds", name)],
                ),
            };
            self.datasets.insert(name.to_string(), ds);
        }
        self.datasets.get(name).expect("just inserted")
    }
}

fn breaker_gauge_value(state: BreakerState) -> u64 {
    match state {
        BreakerState::Closed => 0,
        BreakerState::HalfOpen => 1,
        BreakerState::Open => 2,
    }
}

struct Scheduler<T: Record> {
    ctx: EmContext,
    opts: ServeOptions,
    catalog: Catalog,
    indices: BTreeMap<String, SplitterIndex<T>>,
    breakers: BTreeMap<String, Breaker>,
    /// Per-dataset governor leases (RAII: dropped with the scheduler).
    leases: BTreeMap<String, Lease>,
    report: ServeReport,
    clock: Arc<dyn Clock>,
    depth: Arc<AtomicU64>,
    mx: ServeMetrics,
}

impl<T: Record> QueryServer<T> {
    /// Open the catalog on `ctx` and start the scheduler thread. The
    /// scheduler reads time from [`EmContext::clock`] and records into
    /// [`EmContext::metrics`] — install a `ManualClock` or enable the
    /// registry *before* starting the server.
    pub fn start(ctx: &EmContext, opts: ServeOptions) -> Result<Self> {
        let catalog = Catalog::open(ctx)?;
        let (tx, rx) = mpsc::sync_channel::<Req<T>>(opts.queue_depth.max(1));
        let clock = ctx.clock();
        let depth = Arc::new(AtomicU64::new(0));
        let mut sched = Scheduler {
            ctx: ctx.clone(),
            opts,
            catalog,
            indices: BTreeMap::new(),
            breakers: BTreeMap::new(),
            leases: BTreeMap::new(),
            report: ServeReport::default(),
            clock: clock.clone(),
            depth: depth.clone(),
            mx: ServeMetrics::new(ctx.metrics().clone()),
        };
        let handle = std::thread::spawn(move || {
            sched.run(rx);
            sched.report
        });
        Ok(QueryServer {
            tx: Some(tx),
            handle: Some(handle),
            clock,
            depth,
            metrics: ctx.metrics().clone(),
        })
    }

    /// A client handle for this server. `Err` once the server has been
    /// shut down.
    pub fn client(&self) -> Result<Client<T>> {
        match &self.tx {
            Some(tx) => Ok(Client {
                tx: tx.clone(),
                clock: self.clock.clone(),
                depth: self.depth.clone(),
            }),
            None => Err(EmError::unavailable("query server already shut down")),
        }
    }

    /// Stop accepting requests and join the scheduler. Blocks until every
    /// outstanding [`Client`] clone has been dropped (their senders keep
    /// the request channel alive). A second call — or a scheduler that
    /// died — yields a typed [`EmError::Unavailable`], never an abort.
    pub fn shutdown(&mut self) -> Result<ServeReport> {
        drop(self.tx.take());
        let handle = self
            .handle
            .take()
            .ok_or_else(|| EmError::unavailable("query server already shut down"))?;
        handle
            .join()
            .map_err(|_| EmError::unavailable("query server scheduler panicked"))
    }
}

impl<T: Record> Drop for QueryServer<T> {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T: Record> Scheduler<T> {
    /// Note one request pulled off the admission queue: queries and
    /// batches release their queue-depth slot (control requests never
    /// took one).
    fn note_pulled(&self, req: &Req<T>) {
        if matches!(req, Req::Query { .. } | Req::Batch { .. }) {
            let before = self.depth.fetch_sub(1, Ordering::Relaxed);
            self.mx.queue_depth.set(before.saturating_sub(1));
        }
    }

    fn run(&mut self, rx: Receiver<Req<T>>) {
        let mut carry: Option<Req<T>> = None;
        loop {
            let req = match carry.take() {
                Some(r) => r,
                None => {
                    if self.any_unhealthy() {
                        // A quarantined dataset needs background probes:
                        // poll with the probe cadence instead of parking.
                        let tick = self.opts.probe_cooldown.max(Duration::from_millis(1));
                        match rx.recv_timeout(tick) {
                            Ok(r) => {
                                self.note_pulled(&r);
                                r
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                self.tick_probes();
                                continue;
                            }
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    } else {
                        match rx.recv() {
                            Ok(r) => {
                                self.note_pulled(&r);
                                r
                            }
                            Err(_) => break, // every sender gone: shutdown
                        }
                    }
                }
            };
            self.tick_probes();
            match req {
                Req::Register { name, data, reply } => {
                    let _ = reply.send(self.register(&name, data));
                }
                Req::Report { reply } => {
                    let _ = reply.send(self.report_snapshot());
                }
                Req::Health { reply } => {
                    let mut out: Vec<DatasetHealth> = Vec::new();
                    for name in self.catalog.names() {
                        let (state, consecutive) = self
                            .breakers
                            .get(&name)
                            .map(|b| (b.state, b.consecutive))
                            .unwrap_or((BreakerState::Closed, 0));
                        let (floor, granted) = self
                            .leases
                            .get(&name)
                            .map(|l| (l.floor() as u64, l.granted() as u64))
                            .unwrap_or((0, 0));
                        out.push(DatasetHealth {
                            name,
                            state,
                            consecutive_failures: consecutive,
                            lease_floor_words: floor,
                            lease_granted_words: granted,
                        });
                    }
                    let _ = reply.send(out);
                }
                Req::Len { name, reply } => {
                    let r = self
                        .catalog
                        .entry(&name)
                        .map(|e| e.len)
                        .ok_or_else(|| EmError::config(format!("unknown dataset {name:?}")));
                    let _ = reply.send(r);
                }
                Req::Batch { name, queries } => self.answer_group(&name, queries),
                Req::Query { name, query } => {
                    carry = self.coalesce(&rx, name, *query);
                }
            }
        }
        // Freeze the point-in-time gauges (breakers, budget, leases) into
        // the final report so [`QueryServer::shutdown`] sees them too, not
        // just mid-run [`Client::report`] calls.
        self.report = self.report_snapshot();
    }

    /// The aggregate report plus the point-in-time gauges: open breakers,
    /// the live memory budget, this server's lease holdings, and the
    /// admission-queue depth. Also refreshes the live metric gauges, so a
    /// `metrics` scrape right after a `stats`/report sees the same world.
    fn report_snapshot(&mut self) -> ServeReport {
        let mut r = self.report;
        r.open_breakers = self
            .breakers
            .values()
            .filter(|b| b.state != BreakerState::Closed)
            .count() as u64;
        let gov = self.ctx.governor().snapshot();
        r.mem_budget_words = self.ctx.mem_budget() as u64;
        r.lease_floor_words = self.leases.values().map(|l| l.floor() as u64).sum();
        r.leases = self.leases.len() as u64;
        r.lease_denials = gov.denials;
        r.queue_depth = self.depth.load(Ordering::Relaxed);
        if self.mx.on() {
            self.mx.queue_depth.set(r.queue_depth);
            self.mx.mem_budget.set(r.mem_budget_words);
            self.mx.cache_blocks.set(self.ctx.cache().len() as u64);
            for (name, lease) in &self.leases {
                let granted = lease.granted() as u64;
                self.mx.dataset(name).lease_words.set(granted);
            }
            for (name, b) in &self.breakers {
                let v = breaker_gauge_value(b.state);
                self.mx.dataset(name).breaker_state.set(v);
            }
        }
        r
    }

    /// Record the terminal outcome of one query: exactly one e2e latency
    /// sample per accepted query, so histogram counts conserve against
    /// [`ServeReport::queries`].
    fn observe_e2e(&mut self, name: &str, submitted_us: u64, outcome: Outcome) {
        if !self.mx.on() {
            return;
        }
        let waited = self.clock.now_us().saturating_sub(submitted_us);
        self.mx.dataset(name).e2e[outcome as usize].record(waited);
    }

    /// Mirror a breaker transition into its state gauge and trip/restore
    /// counters.
    fn note_breaker(&mut self, name: &str, state: BreakerState, tripped: bool, restored: bool) {
        if !self.mx.on() {
            return;
        }
        let ds = self.mx.dataset(name);
        ds.breaker_state.set(breaker_gauge_value(state));
        if tripped {
            ds.trips.inc();
        }
        if restored {
            ds.restores.inc();
        }
    }

    fn any_unhealthy(&self) -> bool {
        self.breakers
            .values()
            .any(|b| b.state != BreakerState::Closed)
    }

    /// Advance breaker timers: `Open` half-opens after the cooldown, and a
    /// `HalfOpen` dataset is probed (one block read). A successful probe
    /// restores the dataset; a failed one re-opens the breaker and
    /// restarts the cooldown.
    fn tick_probes(&mut self) {
        let cooldown_us = self.opts.probe_cooldown.as_micros().min(u64::MAX as u128) as u64;
        let now_us = self.clock.now_us();
        let due: Vec<String> = self
            .breakers
            .iter()
            .filter(|(_, b)| {
                b.state != BreakerState::Closed && now_us.saturating_sub(b.since_us) >= cooldown_us
            })
            .map(|(n, _)| n.clone())
            .collect();
        for name in due {
            let state = self.breakers[&name].state;
            match state {
                BreakerState::Open => {
                    let b = self.breakers.get_mut(&name).expect("due breaker");
                    b.state = BreakerState::HalfOpen;
                    b.since_us = now_us;
                    self.note_breaker(&name, BreakerState::HalfOpen, false, false);
                }
                BreakerState::HalfOpen => {
                    self.report.probes += 1;
                    let ok = self.ensure_index(&name).and_then(|idx| idx.probe()).is_ok();
                    let b = self.breakers.get_mut(&name).expect("due breaker");
                    b.since_us = now_us;
                    let restored = ok;
                    let new_state = if ok {
                        b.state = BreakerState::Closed;
                        b.consecutive = 0;
                        self.report.breaker_restores += 1;
                        BreakerState::Closed
                    } else {
                        b.state = BreakerState::Open;
                        BreakerState::Open
                    };
                    self.note_breaker(&name, new_state, false, restored);
                }
                BreakerState::Closed => {}
            }
        }
    }

    /// Collect queries under the batching window (starting from `first`),
    /// then answer them grouped per dataset. Returns a non-query request
    /// received mid-window, to be handled next.
    fn coalesce(
        &mut self,
        rx: &Receiver<Req<T>>,
        first_name: String,
        first: Pending<T>,
    ) -> Option<Req<T>> {
        let mut pending = vec![(first_name, first)];
        let mut carry = None;
        if self.opts.batch_max > 1 && !self.opts.batch_window.is_zero() {
            let window_us = self.opts.batch_window.as_micros().min(u64::MAX as u128) as u64;
            let deadline_us = self.clock.now_us().saturating_add(window_us);
            while pending.len() < self.opts.batch_max {
                let left = deadline_us.saturating_sub(self.clock.now_us());
                if left == 0 {
                    break;
                }
                // Under a ManualClock `left` never shrinks; the real-time
                // recv_timeout below still expires and breaks the loop.
                match rx.recv_timeout(Duration::from_micros(left)) {
                    Ok(req) => {
                        self.note_pulled(&req);
                        match req {
                            Req::Query { name, query } => pending.push((name, *query)),
                            other => {
                                carry = Some(other);
                                break;
                            }
                        }
                    }
                    Err(_) => break, // window expired or senders gone
                }
            }
        }
        let mut groups: BTreeMap<String, Vec<Pending<T>>> = BTreeMap::new();
        for (name, q) in pending {
            groups.entry(name).or_default().push(q);
        }
        for (name, queries) in groups {
            self.answer_group(&name, queries);
        }
        carry
    }

    fn register(&mut self, name: &str, data: Vec<T>) -> Result<u64> {
        if self.mx.on() {
            self.mx.dataset(name);
        }
        if let Some(entry) = self.catalog.entry(name) {
            let len = entry.len;
            if !self.indices.contains_key(name) {
                let file = self.catalog.open_dataset::<T>(name)?;
                let idx = SplitterIndex::open(&self.ctx, name, file)?;
                self.indices.insert(name.to_string(), idx);
            }
            self.report.registered += 1;
            self.ensure_lease(name);
            return Ok(len);
        }
        let reg_ctx = self.ctx.clone();
        let _phase = reg_ctx.stats().phase_guard("serve/register");
        let file = EmFile::from_slice(&self.ctx, &data)?;
        let len = file.len();
        self.catalog.register(name, &file)?;
        let idx = SplitterIndex::open(&self.ctx, name, file)?;
        self.indices.insert(name.to_string(), idx);
        self.report.registered += 1;
        self.ensure_lease(name);
        Ok(len)
    }

    /// The dataset's index, opening it from the catalog if needed (e.g.
    /// queries straight after a restart, before any register).
    fn ensure_index(&mut self, name: &str) -> Result<&mut SplitterIndex<T>> {
        if !self.indices.contains_key(name) {
            let file = self.catalog.open_dataset::<T>(name)?;
            let idx = SplitterIndex::open(&self.ctx, name, file)?;
            self.indices.insert(name.to_string(), idx);
            self.ensure_lease(name);
        }
        Ok(self.indices.get_mut(name).expect("just ensured"))
    }

    /// Take (or keep) this dataset's governor lease. An admission denial
    /// is not an error: the dataset serves without a reserved floor and
    /// the denial shows up in the governor's counters.
    fn ensure_lease(&mut self, name: &str) {
        if self.opts.lease_floor == 0 || self.leases.contains_key(name) {
            return;
        }
        if let Ok(lease) =
            self.ctx
                .governor()
                .lease(name, self.opts.lease_floor, self.opts.lease_weight)
        {
            self.leases.insert(name.to_string(), lease);
        }
    }

    fn effective_deadline(&self, q: &Pending<T>) -> Option<Duration> {
        q.opts.deadline.or(self.opts.deadline)
    }

    fn degraded_allowed(&self, q: &Pending<T>) -> bool {
        q.opts.degraded.unwrap_or(self.opts.degraded)
    }

    /// Answer `q` approximately from the skeleton alone (zero I/O).
    /// Returns `false` when no approximation is possible (cold skeleton or
    /// unknown dataset) — the caller then sheds or fails the query.
    fn try_degraded(&mut self, name: &str, q: &Pending<T>) -> bool {
        let Ok(idx) = self.ensure_index(name) else {
            return false;
        };
        match idx.answer_approx(&q.ranks) {
            Ok(Some((values, bound))) => {
                self.report.degraded += 1;
                self.ctx.stats().record_degraded_answer();
                // Record before the reply: the channel's synchronization
                // then guarantees a resolved ticket's e2e sample is
                // visible to any scrape the client takes afterwards.
                self.observe_e2e(name, q.submitted_us, Outcome::Degraded);
                let _ = q.reply.send(Ok(QueryAnswer {
                    values,
                    approx: true,
                    rank_error: bound,
                }));
                true
            }
            _ => false,
        }
    }

    /// Answer one batch of queries against one dataset: deadline-based
    /// admission, breaker fail-fast, then retry-and-bisect execution.
    fn answer_group(&mut self, name: &str, queries: Vec<Pending<T>>) {
        if queries.is_empty() {
            return;
        }
        self.report.batches += 1;
        self.report.queries += queries.len() as u64;
        self.report.batch_occupancy = queries.len() as u64;
        if self.mx.on() {
            let now_us = self.clock.now_us();
            self.mx.batch_occupancy.record(queries.len() as u64);
            for q in &queries {
                self.mx
                    .queue_wait_us
                    .record(now_us.saturating_sub(q.submitted_us));
            }
            let earliest = queries
                .iter()
                .map(|q| q.submitted_us)
                .min()
                .unwrap_or(now_us);
            self.mx
                .batch_window_us
                .record(now_us.saturating_sub(earliest));
        }

        // Admission: shed (or degrade) queries whose deadline has already
        // expired — no I/O is spent on them. A zero deadline always sheds
        // (the clock's µs granularity would otherwise make it racy).
        let now_us = self.clock.now_us();
        let mut live: Vec<Pending<T>> = Vec::with_capacity(queries.len());
        for q in queries {
            if let Some(d) = self.effective_deadline(&q) {
                let d_us = d.as_micros().min(u64::MAX as u128) as u64;
                let waited_us = now_us.saturating_sub(q.submitted_us);
                if waited_us > d_us || d.is_zero() {
                    if self.degraded_allowed(&q) && self.try_degraded(name, &q) {
                        continue;
                    }
                    self.report.shed += 1;
                    self.ctx.stats().record_shed_query();
                    self.observe_e2e(name, q.submitted_us, Outcome::Shed);
                    let _ = q.reply.send(Err(EmError::DeadlineExceeded {
                        deadline_us: d_us,
                        waited_us,
                    }));
                    continue;
                }
            }
            live.push(q);
        }
        if live.is_empty() {
            return;
        }

        // Breaker fail-fast: an `Open` dataset pays no I/O. (A `HalfOpen`
        // one lets the batch through — live traffic doubles as a probe.)
        if let Some(b) = self.breakers.get(name) {
            if b.state == BreakerState::Open {
                let failures = b.consecutive;
                for q in live {
                    if self.degraded_allowed(&q) && self.try_degraded(name, &q) {
                        continue;
                    }
                    self.report.failed += 1;
                    self.observe_e2e(name, q.submitted_us, Outcome::Failed);
                    let _ = q.reply.send(Err(EmError::Unhealthy {
                        dataset: name.to_string(),
                        failures,
                    }));
                }
                return;
            }
        }

        let t0_us = self.clock.now_us();
        let ctx = self.ctx.clone();
        let _phase = ctx.stats().phase_guard("serve/query");
        let nq = live.len();
        let _span = ctx.stats().trace_span(|| format!("serve/batch x{nq}"));
        let (ok, fault_failed) = self.exec(name, live, false);
        drop(_span);
        drop(_phase);
        self.report.answer_us += self.clock.now_us().saturating_sub(t0_us);

        // Breaker accounting: a batch in which *every* query failed on a
        // fault-shaped error is one strike; any success resets the streak
        // (and closes a half-open breaker).
        let threshold = self.opts.breaker_threshold;
        let now_us = self.clock.now_us();
        let b = self
            .breakers
            .entry(name.to_string())
            .or_insert_with(|| Breaker::new(now_us));
        if ok > 0 {
            b.consecutive = 0;
            if b.state != BreakerState::Closed {
                b.state = BreakerState::Closed;
                self.report.breaker_restores += 1;
                self.note_breaker(name, BreakerState::Closed, false, true);
            }
        } else if fault_failed > 0 {
            b.consecutive = b.consecutive.saturating_add(1);
            if threshold > 0 && b.consecutive >= threshold && b.state != BreakerState::Open {
                b.state = BreakerState::Open;
                b.since_us = now_us;
                self.report.breaker_trips += 1;
                self.ctx.stats().record_breaker_trip();
                self.note_breaker(name, BreakerState::Open, true, false);
            }
        }
    }

    /// Execute `queries` as one multi-select pass, retrying retryable
    /// faults under the server's [`RetryPolicy`], then bisecting on a
    /// persistent failure so only the poisoned query is quarantined.
    /// Returns `(answered, fault_failures)`.
    fn exec(&mut self, name: &str, mut queries: Vec<Pending<T>>, bisected: bool) -> (u64, u64) {
        let result = self.try_batch(name, &queries);
        match result {
            Ok(per_query) => {
                let n = queries.len() as u64;
                for (q, ans) in queries.into_iter().zip(per_query) {
                    self.observe_e2e(name, q.submitted_us, Outcome::Exact);
                    let _ = q.reply.send(Ok(QueryAnswer::exact(ans)));
                }
                (n, 0)
            }
            Err(e) => {
                // A crashed context fails everything identically — there
                // is nothing bisection could isolate. Likewise a budget
                // rejection: every sub-batch needs the same working set,
                // so bisection would just repeat the denial.
                let starved = matches!(e, EmError::MemoryExceeded { .. });
                if queries.len() == 1 || matches!(e, EmError::Crashed) || starved {
                    let n = queries.len() as u64;
                    let faults = if e.is_fault() { n } else { 0 };
                    let mut answered = 0u64;
                    for q in queries {
                        // A starved tenant gets a degraded (approximate)
                        // answer from the memory-resident skeleton rather
                        // than an error, when degraded mode allows it.
                        if starved && self.degraded_allowed(&q) && self.try_degraded(name, &q) {
                            self.report.mem_degraded += 1;
                            answered += 1;
                            continue;
                        }
                        self.report.failed += 1;
                        if bisected {
                            self.report.quarantined += 1;
                        }
                        self.observe_e2e(name, q.submitted_us, Outcome::Failed);
                        let _ = q.reply.send(Err(e.clone()));
                    }
                    let _ = n;
                    (answered, faults)
                } else {
                    let right = queries.split_off(queries.len() / 2);
                    let (ok_l, ff_l) = self.exec(name, queries, true);
                    let (ok_r, ff_r) = self.exec(name, right, true);
                    (ok_l + ok_r, ff_l + ff_r)
                }
            }
        }
    }

    /// One attempt set: run the batch through the index, re-running it
    /// while the failure stays retryable and the retry budget lasts.
    fn try_batch(&mut self, name: &str, queries: &[Pending<T>]) -> Result<Vec<Vec<T>>> {
        let retry = self.opts.retry;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.answer_once(name, queries) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < retry.max_attempts.max(1) => {
                    self.report.retried_batches += 1;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// A single index-mediated multi-select pass over the batch's ranks,
    /// answers distributed back per query.
    fn answer_once(&mut self, name: &str, queries: &[Pending<T>]) -> Result<Vec<Vec<T>>> {
        let refine = self.opts.refine;
        let select = self.opts.select;
        let t0_us = self.mx.on().then(|| self.clock.now_us());
        let idx = self.ensure_index(name)?;
        let all: Vec<u64> = queries
            .iter()
            .flat_map(|q| q.ranks.iter().copied())
            .collect();
        let (answers, astats) = idx.answer(&all, select, refine)?;
        if let Some(t0) = t0_us {
            self.mx
                .select_us
                .record(self.clock.now_us().saturating_sub(t0));
        }
        self.report.index_hits += astats.index_hits;
        self.report.selected += astats.selected;
        let mut out = Vec::with_capacity(queries.len());
        let mut off = 0usize;
        for q in queries {
            out.push(answers[off..off + q.ranks.len()].to_vec());
            off += q.ranks.len();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, FaultKind, FaultPlan, SplitMix64};
    use emselect::multi_select;

    fn data(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        SplitMix64::new(seed).shuffle(&mut v);
        v
    }

    #[test]
    fn batched_answers_match_per_query_select() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let v = data(3000, 1);
        let plain = ctx.stats().paused(|| EmFile::from_slice(&ctx, &v)).unwrap();
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let client = server.client().unwrap();
        assert_eq!(client.register("ds", v).unwrap(), 3000);
        let queries: Vec<Vec<u64>> = vec![
            vec![1, 1500, 3000],
            vec![2999, 42],
            vec![1500],
            vec![700, 701, 700],
        ];
        let tickets = client.submit_batch("ds", queries.clone()).unwrap();
        for (ranks, t) in queries.iter().zip(tickets) {
            let got = t.wait().unwrap();
            assert!(!got.approx);
            assert_eq!(got.rank_error, 0);
            let want = multi_select(&plain, ranks).unwrap();
            assert_eq!(got.values, want, "ranks {ranks:?}");
        }
        drop(client);
        let report = server.shutdown().unwrap();
        assert_eq!(report.queries, 4);
        assert_eq!(report.batches, 1);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn concurrent_clients_coalesce_and_agree() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let v = data(4000, 2);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let mut server = QueryServer::<u64>::start(
            &ctx,
            ServeOptions {
                batch_window: Duration::from_millis(20),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let client = server.client().unwrap();
        client.register("ds", v).unwrap();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = client.clone();
                let sorted = &sorted;
                s.spawn(move || {
                    for q in 0..8u64 {
                        let r = 1 + (t * 997 + q * 131) % 4000;
                        let got = c.query("ds", vec![r]).unwrap().wait().unwrap();
                        assert_eq!(got.values, vec![sorted[(r - 1) as usize]]);
                    }
                });
            }
        });
        drop(client);
        let report = server.shutdown().unwrap();
        assert_eq!(report.queries, 32);
        assert!(
            report.batches < report.queries,
            "some coalescing must happen: {} batches for {} queries",
            report.batches,
            report.queries
        );
    }

    #[test]
    fn unknown_dataset_and_bad_rank_error_cleanly() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let client = server.client().unwrap();
        assert!(client.query("nope", vec![1]).unwrap().wait().is_err());
        client.register("ds", data(100, 3)).unwrap();
        assert!(client.query("ds", vec![0]).unwrap().wait().is_err());
        assert!(client.query("ds", vec![101]).unwrap().wait().is_err());
        let ok = client.query("ds", vec![100]).unwrap().wait().unwrap();
        assert_eq!(ok.values, vec![99]);
        drop(client);
        server.shutdown().unwrap();
    }

    #[test]
    fn poisoned_query_is_bisected_out_of_the_batch() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let v = data(2000, 4);
        let plain = ctx.stats().paused(|| EmFile::from_slice(&ctx, &v)).unwrap();
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let client = server.client().unwrap();
        client.register("ds", v).unwrap();
        // One poisoned query (rank out of range) coalesced with 7 good ones.
        let queries: Vec<Vec<u64>> = vec![
            vec![1],
            vec![250, 500],
            vec![750],
            vec![9999], // poisoned
            vec![1000],
            vec![1250, 1500],
            vec![1750],
            vec![2000],
        ];
        let tickets = client.submit_batch("ds", queries.clone()).unwrap();
        let mut errors = 0;
        for (ranks, t) in queries.iter().zip(tickets) {
            match t.wait() {
                Ok(a) => {
                    let want = multi_select(&plain, ranks).unwrap();
                    assert_eq!(a.values, want, "neighbours must stay exact");
                }
                Err(e) => {
                    errors += 1;
                    assert!(matches!(e, EmError::Config(_)), "typed error, got {e}");
                    assert_eq!(ranks, &vec![9999]);
                }
            }
        }
        assert_eq!(errors, 1, "exactly the poisoned query fails");
        drop(client);
        let report = server.shutdown().unwrap();
        assert_eq!(report.failed, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.batches, 1);
    }

    #[test]
    fn transient_faults_are_retried_to_exact_answers() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        ctx.set_retry_policy(RetryPolicy::retries(4));
        let v = data(2000, 5);
        let plain = ctx.stats().paused(|| EmFile::from_slice(&ctx, &v)).unwrap();
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let client = server.client().unwrap();
        client.register("ds", v).unwrap();
        ctx.install_fault_plan(FaultPlan::new(7).transient_rate(0.02));
        let queries: Vec<Vec<u64>> = vec![vec![1, 1000, 2000], vec![500], vec![1500, 3]];
        let tickets = client.submit_batch("ds", queries.clone()).unwrap();
        for (ranks, t) in queries.iter().zip(tickets) {
            let got = t.wait().unwrap();
            let want = ctx.oracle(|| multi_select(&plain, ranks)).unwrap();
            assert_eq!(got.values, want);
            assert!(!got.approx);
        }
        ctx.clear_fault_plan();
        drop(client);
        server.shutdown().unwrap();
    }

    #[test]
    fn zero_deadline_sheds_cold_and_degrades_warm() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let v = data(3000, 6);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let client = server.client().unwrap();
        client.register("ds", v).unwrap();
        let rush = QueryOptions {
            deadline: Some(Duration::ZERO),
            degraded: Some(true),
        };
        // Cold skeleton: no boundary known, nothing to degrade to → shed.
        let t = client.query_with("ds", vec![1500], rush).unwrap();
        match t.wait() {
            Err(EmError::DeadlineExceeded { .. }) => {}
            other => panic!("expected a shed, got {other:?}"),
        }
        // Warm the skeleton with a refining exact batch.
        client
            .query("ds", vec![1000, 2000])
            .unwrap()
            .wait()
            .unwrap();
        // Now the same rushed query degrades: zero I/O, bounded rank error.
        let before = ctx.stats().snapshot();
        let a = client
            .query_with("ds", vec![1500], rush)
            .unwrap()
            .wait()
            .unwrap();
        assert!(a.approx);
        assert!(
            a.rank_error <= 500,
            "bound {} from cuts at 1000/2000",
            a.rank_error
        );
        assert_eq!(
            ctx.stats().snapshot().since(&before).total_ios(),
            0,
            "degraded answers are skeleton-only"
        );
        // The realized error respects the stated bound.
        let true_rank = sorted.iter().position(|&x| x == a.values[0]).unwrap() as u64 + 1;
        assert!(true_rank.abs_diff(1500) <= a.rank_error);
        drop(client);
        let report = server.shutdown().unwrap();
        assert_eq!(report.shed, 1);
        assert_eq!(report.degraded, 1);
    }

    #[test]
    fn breaker_opens_fails_fast_and_probe_restores() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let v = data(1000, 7);
        let mut server = QueryServer::<u64>::start(
            &ctx,
            ServeOptions {
                breaker_threshold: 2,
                probe_cooldown: Duration::from_millis(5),
                retry: RetryPolicy::NONE,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let client = server.client().unwrap();
        client.register("ds", v).unwrap();
        // Crash the device; two failed batches trip the breaker.
        let plan = FaultPlan::new(0).fail_nth(0, FaultKind::Fatal);
        ctx.install_fault_plan(plan.clone());
        for _ in 0..2 {
            let e = client.query("ds", vec![10]).unwrap().wait().unwrap_err();
            assert!(matches!(e, EmError::Crashed), "got {e}");
        }
        // Breaker open: fail fast with a typed Unhealthy error.
        let e = client.query("ds", vec![10]).unwrap().wait().unwrap_err();
        assert!(matches!(e, EmError::Unhealthy { .. }), "got {e}");
        let health = client.health().unwrap();
        assert_eq!(health.len(), 1);
        assert_ne!(health[0].state, BreakerState::Closed);
        // Device restored: the background probe half-opens and closes it.
        plan.clear_crash();
        let t0 = Instant::now();
        loop {
            let h = &client.health().unwrap()[0];
            if h.state == BreakerState::Closed {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "probe never restored"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let a = client.query("ds", vec![10]).unwrap().wait().unwrap();
        assert_eq!(a.values, vec![9]);
        drop(client);
        let report = server.shutdown().unwrap();
        assert_eq!(report.breaker_trips, 1);
        assert!(report.probes >= 1);
        assert!(report.breaker_restores >= 1);
    }

    #[test]
    fn manual_clock_makes_breaker_lifecycle_deterministic() {
        use emcore::ManualClock;
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let clock = Arc::new(ManualClock::new(0));
        ctx.set_clock(clock.clone());
        let cooldown = Duration::from_millis(25);
        let mut server = QueryServer::<u64>::start(
            &ctx,
            ServeOptions {
                breaker_threshold: 2,
                probe_cooldown: cooldown,
                retry: RetryPolicy::NONE,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let client = server.client().unwrap();
        client.register("ds", data(1000, 11)).unwrap();
        let plan = FaultPlan::new(0).fail_nth(0, FaultKind::Fatal);
        ctx.install_fault_plan(plan.clone());
        for _ in 0..2 {
            let e = client.query("ds", vec![10]).unwrap().wait().unwrap_err();
            assert!(matches!(e, EmError::Crashed), "got {e}");
        }
        plan.clear_crash();
        // The device is healthy again, but the clock has not moved: no
        // amount of real time or request traffic may half-open the
        // breaker. (Under the old Instant-based cooldown this would flap
        // with scheduling jitter.)
        std::thread::sleep(Duration::from_millis(30));
        for _ in 0..3 {
            let h = &client.health().unwrap()[0];
            assert_eq!(h.state, BreakerState::Open, "cooldown is clock-driven");
        }
        // Advance past the cooldown: the next request's probe tick
        // half-opens; one more advance and tick restores it.
        clock.advance(cooldown.as_micros() as u64 + 1);
        let _ = client.report().unwrap();
        clock.advance(cooldown.as_micros() as u64 + 1);
        let t0 = Instant::now();
        loop {
            if client.health().unwrap()[0].state == BreakerState::Closed {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(5), "probe never ran");
        }
        let a = client.query("ds", vec![10]).unwrap().wait().unwrap();
        assert_eq!(a.values, vec![9]);
        drop(client);
        let report = server.shutdown().unwrap();
        assert_eq!(report.breaker_trips, 1);
        assert!(report.breaker_restores >= 1);
    }

    #[test]
    fn deadline_cannot_expire_under_a_manual_clock() {
        use emcore::ManualClock;
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        ctx.set_clock(Arc::new(ManualClock::new(7_000)));
        // A 1µs deadline with the default 2ms batching window would shed
        // nearly every query on the wall clock; on a manual clock no time
        // ever passes between submit and execution, so all are exact.
        let mut server = QueryServer::<u64>::start(
            &ctx,
            ServeOptions {
                deadline: Some(Duration::from_micros(1)),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let client = server.client().unwrap();
        client.register("ds", data(500, 12)).unwrap();
        for r in [1u64, 250, 500] {
            let a = client.query("ds", vec![r]).unwrap().wait().unwrap();
            assert!(!a.approx);
            assert_eq!(a.values, vec![r - 1]);
        }
        drop(client);
        let report = server.shutdown().unwrap();
        assert_eq!(report.shed, 0, "manual clock: nothing can expire");
        assert_eq!(report.queries, 3);
    }

    #[test]
    fn e2e_histograms_conserve_against_report_counters() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        ctx.metrics().set_enabled(true);
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let client = server.client().unwrap();
        client.register("ds", data(2000, 13)).unwrap();
        // A mix of exact, failed (bad rank), shed and degraded queries.
        let rush = QueryOptions {
            deadline: Some(Duration::ZERO),
            degraded: Some(true),
        };
        let mut tickets = Vec::new();
        for r in [1u64, 500, 1000, 1500, 2000, 9999] {
            tickets.push(client.query("ds", vec![r]).unwrap());
        }
        for _ in 0..3 {
            tickets.push(client.query_with("ds", vec![777], rush).unwrap());
        }
        for t in tickets {
            let _ = t.wait();
        }
        let report = client.report().unwrap();
        let snap = ctx.metrics().snapshot(0);
        let e2e_total = snap.family_total("em_serve_query_e2e_us");
        assert_eq!(
            e2e_total, report.queries,
            "every accepted query must land in exactly one outcome histogram"
        );
        let occupancy = snap
            .find("em_serve_batch_occupancy", &[])
            .expect("registered at start");
        assert_eq!(
            occupancy.value, report.batches,
            "one occupancy sample per executed batch"
        );
        let shed = snap
            .find(
                "em_serve_query_e2e_us",
                &[("ds", "ds"), ("outcome", "shed")],
            )
            .map(|s| s.value)
            .unwrap_or(0);
        let degraded = snap
            .find(
                "em_serve_query_e2e_us",
                &[("ds", "ds"), ("outcome", "degraded")],
            )
            .map(|s| s.value)
            .unwrap_or(0);
        assert_eq!(shed + degraded, report.shed + report.degraded);
        drop(client);
        server.shutdown().unwrap();
    }

    #[test]
    fn options_builder_matches_struct_literal_construction() {
        let built = ServeOptions::builder()
            .batch_max(8)
            .batch_window(Duration::from_millis(7))
            .queue_depth(16)
            .refine(false)
            .select(MsOptions::default())
            .retry(RetryPolicy::NONE)
            .breaker_threshold(5)
            .probe_cooldown(Duration::from_millis(9))
            .deadline(Some(Duration::from_secs(1)))
            .degraded(true)
            .lease_floor(1024)
            .lease_weight(3)
            .build();
        // Struct-literal construction with functional update must keep
        // compiling — the builder is additive, not a replacement.
        let literal = ServeOptions {
            batch_max: 8,
            batch_window: Duration::from_millis(7),
            queue_depth: 16,
            refine: false,
            select: MsOptions::default(),
            retry: RetryPolicy::NONE,
            breaker_threshold: 5,
            probe_cooldown: Duration::from_millis(9),
            deadline: Some(Duration::from_secs(1)),
            degraded: true,
            lease_floor: 1024,
            lease_weight: 3,
        };
        let partial = ServeOptions {
            batch_max: 8,
            ..ServeOptions::default()
        };
        assert_eq!(format!("{built:?}"), format!("{literal:?}"));
        assert_eq!(partial.batch_max, 8);
        assert_eq!(partial.queue_depth, ServeOptions::default().queue_depth);
    }

    #[test]
    fn report_absorb_sums_every_field() {
        let mut a = ServeReport {
            queries: 3,
            batches: 1,
            failed: 1,
            mem_budget_words: 100,
            ..ServeReport::default()
        };
        let b = ServeReport {
            queries: 7,
            batches: 2,
            degraded: 4,
            mem_budget_words: 50,
            queue_depth: 2,
            ..ServeReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.queries, 10);
        assert_eq!(a.batches, 3);
        assert_eq!(a.failed, 1);
        assert_eq!(a.degraded, 4);
        assert_eq!(a.mem_budget_words, 150);
        assert_eq!(a.queue_depth, 2);
        // Absorbing a default report changes nothing.
        let before = a;
        a.absorb(&ServeReport::default());
        assert_eq!(a, before);
    }

    #[test]
    fn dataset_len_is_a_catalog_lookup() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let client = server.client().unwrap();
        client.register("ds", data(321, 8)).unwrap();
        let before = ctx.stats().snapshot();
        assert_eq!(client.dataset_len("ds").unwrap(), 321);
        assert_eq!(
            ctx.stats().snapshot().since(&before).total_ios(),
            0,
            "length lookups must be free"
        );
        assert!(matches!(
            client.dataset_len("nope"),
            Err(EmError::Config(_))
        ));
        drop(client);
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_is_typed_and_idempotent() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        assert!(server.client().is_ok());
        server.shutdown().unwrap();
        // Post-shutdown client() and a double join are typed errors.
        assert!(matches!(server.client(), Err(EmError::Unavailable { .. })));
        assert!(matches!(
            server.shutdown(),
            Err(EmError::Unavailable { .. })
        ));
    }
}
