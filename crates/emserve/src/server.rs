//! The query server: a scheduler thread that coalesces in-flight queries
//! per dataset and answers each batch with one multi-select pass.
//!
//! Concurrency model matches the parallel sort (PR 4): `std::thread` +
//! `std::sync::mpsc` only. Clients hold a clone of a bounded
//! [`std::sync::mpsc::SyncSender`] — the bound is the admission-control
//! queue depth, so producers block (back-pressure) instead of growing an
//! unbounded queue. The scheduler collects queries under a tunable
//! batching window (first query starts the clock, up to
//! [`ServeOptions::batch_max`] join it), groups them per dataset, and
//! answers each group through the dataset's [`SplitterIndex`] — one
//! [`emselect`] multi-select pass per touched segment, boundary hits free.

use std::collections::BTreeMap;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::time::{Duration, Instant};

use emcore::{EmContext, EmError, EmFile, Record, Result};
use emselect::MsOptions;

use crate::catalog::Catalog;
use crate::index::SplitterIndex;

/// One client query awaiting an answer: the ranks asked for, and the
/// channel its [`Ticket`] is waiting on.
type PendingQuery<T> = (Vec<u64>, mpsc::Sender<Result<Vec<T>>>);

/// Tunables for [`QueryServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Most queries coalesced into one batch.
    pub batch_max: usize,
    /// How long the scheduler waits for more queries after the first.
    pub batch_window: Duration,
    /// Bound of the request channel (admission control: senders block).
    pub queue_depth: usize,
    /// Refine the splitter index after every answered batch.
    pub refine: bool,
    /// Multi-select options used for every pass.
    pub select: MsOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            batch_max: 16,
            batch_window: Duration::from_millis(2),
            queue_depth: 64,
            refine: true,
            select: MsOptions::default(),
        }
    }
}

/// Aggregate service counters, returned by [`QueryServer::shutdown`] and
/// [`Client::report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Datasets registered (or reopened) this run.
    pub registered: u64,
    /// Queries answered.
    pub queries: u64,
    /// Batches executed (each ≥ 1 query; the coalescing win is
    /// `queries / batches`).
    pub batches: u64,
    /// Ranks answered from a stored splitter-index boundary at zero I/O.
    pub index_hits: u64,
    /// Distinct ranks answered by an in-segment select pass.
    pub selected: u64,
    /// Wall-clock microseconds spent answering batches (query latency,
    /// excluding queue wait).
    pub answer_us: u64,
}

enum Req<T: Record> {
    Register {
        name: String,
        data: Vec<T>,
        reply: mpsc::Sender<Result<u64>>,
    },
    Query {
        name: String,
        ranks: Vec<u64>,
        reply: mpsc::Sender<Result<Vec<T>>>,
    },
    /// A pre-coalesced batch: answered in one pass regardless of the
    /// batching window (deterministic batch sizes for benches and tests).
    Batch {
        name: String,
        queries: Vec<PendingQuery<T>>,
    },
    Report {
        reply: mpsc::Sender<ServeReport>,
    },
}

/// Handle to a running scheduler thread.
#[derive(Debug)]
pub struct QueryServer<T: Record> {
    tx: Option<SyncSender<Req<T>>>,
    handle: Option<std::thread::JoinHandle<ServeReport>>,
}

/// A cheap client handle; clone freely across threads.
pub struct Client<T: Record> {
    tx: SyncSender<Req<T>>,
}

impl<T: Record> Clone for Client<T> {
    fn clone(&self) -> Self {
        Client {
            tx: self.tx.clone(),
        }
    }
}

/// An in-flight query's answer slot.
pub struct Ticket<T: Record> {
    rx: mpsc::Receiver<Result<Vec<T>>>,
}

impl<T: Record> Ticket<T> {
    /// Block until the answer arrives (in the caller's rank order).
    pub fn wait(self) -> Result<Vec<T>> {
        self.rx
            .recv()
            .map_err(|_| EmError::config("query server shut down before answering"))?
    }
}

fn gone<R>() -> Result<R> {
    Err(EmError::config("query server is not running"))
}

impl<T: Record> Client<T> {
    /// Register `data` under `name` (or reopen an existing dataset of that
    /// name from the catalog — `data` is then ignored). Returns the
    /// dataset length. Blocks until the server commits the catalog.
    pub fn register(&self, name: &str, data: Vec<T>) -> Result<u64> {
        let (tx, rx) = mpsc::channel();
        if self
            .tx
            .send(Req::Register {
                name: name.to_string(),
                data,
                reply: tx,
            })
            .is_err()
        {
            return gone();
        }
        rx.recv().map_err(|_| EmError::config("server dropped"))?
    }

    /// Submit one query for `ranks` of dataset `name`. Blocks only on
    /// admission control (full queue); the answer arrives on the ticket.
    pub fn query(&self, name: &str, ranks: Vec<u64>) -> Result<Ticket<T>> {
        let (tx, rx) = mpsc::channel();
        if self
            .tx
            .send(Req::Query {
                name: name.to_string(),
                ranks,
                reply: tx,
            })
            .is_err()
        {
            return gone();
        }
        Ok(Ticket { rx })
    }

    /// Submit several queries as one pre-coalesced batch: exactly one
    /// batch on the server regardless of timing.
    pub fn submit_batch(&self, name: &str, queries: Vec<Vec<u64>>) -> Result<Vec<Ticket<T>>> {
        let mut tickets = Vec::with_capacity(queries.len());
        let mut payload = Vec::with_capacity(queries.len());
        for ranks in queries {
            let (tx, rx) = mpsc::channel();
            payload.push((ranks, tx));
            tickets.push(Ticket { rx });
        }
        if self
            .tx
            .send(Req::Batch {
                name: name.to_string(),
                queries: payload,
            })
            .is_err()
        {
            return gone();
        }
        Ok(tickets)
    }

    /// Snapshot of the server's counters.
    pub fn report(&self) -> Result<ServeReport> {
        let (tx, rx) = mpsc::channel();
        if self.tx.send(Req::Report { reply: tx }).is_err() {
            return gone();
        }
        rx.recv().map_err(|_| EmError::config("server dropped"))
    }
}

struct Scheduler<T: Record> {
    ctx: EmContext,
    opts: ServeOptions,
    catalog: Catalog,
    indices: BTreeMap<String, SplitterIndex<T>>,
    report: ServeReport,
}

impl<T: Record> QueryServer<T> {
    /// Open the catalog on `ctx` and start the scheduler thread.
    pub fn start(ctx: &EmContext, opts: ServeOptions) -> Result<Self> {
        let catalog = Catalog::open(ctx)?;
        let (tx, rx) = mpsc::sync_channel::<Req<T>>(opts.queue_depth.max(1));
        let mut sched = Scheduler {
            ctx: ctx.clone(),
            opts,
            catalog,
            indices: BTreeMap::new(),
            report: ServeReport::default(),
        };
        let handle = std::thread::spawn(move || {
            sched.run(rx);
            sched.report
        });
        Ok(QueryServer {
            tx: Some(tx),
            handle: Some(handle),
        })
    }

    /// A client handle for this server.
    pub fn client(&self) -> Client<T> {
        Client {
            tx: self.tx.clone().expect("server running"),
        }
    }

    /// Stop accepting requests and join the scheduler. Blocks until every
    /// outstanding [`Client`] clone has been dropped (their senders keep
    /// the request channel alive).
    pub fn shutdown(mut self) -> ServeReport {
        drop(self.tx.take());
        match self.handle.take().expect("not yet joined").join() {
            Ok(r) => r,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl<T: Record> Drop for QueryServer<T> {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T: Record> Scheduler<T> {
    fn run(&mut self, rx: Receiver<Req<T>>) {
        let mut carry: Option<Req<T>> = None;
        loop {
            let req = match carry.take() {
                Some(r) => r,
                None => match rx.recv() {
                    Ok(r) => r,
                    Err(_) => break, // every sender gone: shutdown
                },
            };
            match req {
                Req::Register { name, data, reply } => {
                    let _ = reply.send(self.register(&name, data));
                }
                Req::Report { reply } => {
                    let _ = reply.send(self.report);
                }
                Req::Batch { name, queries } => self.answer_group(&name, queries),
                Req::Query { name, ranks, reply } => {
                    carry = self.coalesce(&rx, (name, ranks, reply));
                }
            }
        }
    }

    /// Collect queries under the batching window (starting from `first`),
    /// then answer them grouped per dataset. Returns a non-query request
    /// received mid-window, to be handled next.
    #[allow(clippy::type_complexity)]
    fn coalesce(
        &mut self,
        rx: &Receiver<Req<T>>,
        first: (String, Vec<u64>, mpsc::Sender<Result<Vec<T>>>),
    ) -> Option<Req<T>> {
        let mut pending = vec![first];
        let mut carry = None;
        if self.opts.batch_max > 1 && !self.opts.batch_window.is_zero() {
            let deadline = Instant::now() + self.opts.batch_window;
            while pending.len() < self.opts.batch_max {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match rx.recv_timeout(left) {
                    Ok(Req::Query { name, ranks, reply }) => pending.push((name, ranks, reply)),
                    Ok(other) => {
                        carry = Some(other);
                        break;
                    }
                    Err(_) => break, // window expired or senders gone
                }
            }
        }
        let mut groups: BTreeMap<String, Vec<(Vec<u64>, mpsc::Sender<Result<Vec<T>>>)>> =
            BTreeMap::new();
        for (name, ranks, reply) in pending {
            groups.entry(name).or_default().push((ranks, reply));
        }
        for (name, queries) in groups {
            self.answer_group(&name, queries);
        }
        carry
    }

    fn register(&mut self, name: &str, data: Vec<T>) -> Result<u64> {
        if let Some(entry) = self.catalog.entry(name) {
            let len = entry.len;
            if !self.indices.contains_key(name) {
                let file = self.catalog.open_dataset::<T>(name)?;
                let idx = SplitterIndex::open(&self.ctx, name, file)?;
                self.indices.insert(name.to_string(), idx);
            }
            self.report.registered += 1;
            return Ok(len);
        }
        let _phase = self.ctx.stats().phase_guard("serve/register");
        let file = EmFile::from_slice(&self.ctx, &data)?;
        let len = file.len();
        self.catalog.register(name, &file)?;
        let idx = SplitterIndex::open(&self.ctx, name, file)?;
        self.indices.insert(name.to_string(), idx);
        self.report.registered += 1;
        Ok(len)
    }

    /// Answer one batch of queries against one dataset with a single
    /// index pass; distribute the answers back per query.
    #[allow(clippy::type_complexity)]
    fn answer_group(&mut self, name: &str, queries: Vec<(Vec<u64>, mpsc::Sender<Result<Vec<T>>>)>) {
        if queries.is_empty() {
            return;
        }
        let nq = queries.len();
        let result = (|| -> Result<Vec<Vec<T>>> {
            if !self.indices.contains_key(name) {
                // Dataset known to the catalog but not yet opened (e.g.
                // queries straight after a restart, before any register).
                let file = self.catalog.open_dataset::<T>(name)?;
                let idx = SplitterIndex::open(&self.ctx, name, file)?;
                self.indices.insert(name.to_string(), idx);
            }
            let idx = self.indices.get_mut(name).expect("just ensured");
            let all: Vec<u64> = queries
                .iter()
                .flat_map(|(r, _)| r.iter().copied())
                .collect();
            let t0 = Instant::now();
            let _phase = self.ctx.stats().phase_guard("serve/query");
            let _span = self.ctx.stats().trace_span(|| format!("serve/batch x{nq}"));
            let (answers, astats) = idx.answer(&all, self.opts.select, self.opts.refine)?;
            drop(_span);
            drop(_phase);
            self.report.answer_us += t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
            self.report.index_hits += astats.index_hits;
            self.report.selected += astats.selected;
            let mut out = Vec::with_capacity(nq);
            let mut off = 0usize;
            for (ranks, _) in &queries {
                out.push(answers[off..off + ranks.len()].to_vec());
                off += ranks.len();
            }
            Ok(out)
        })();
        self.report.batches += 1;
        self.report.queries += nq as u64;
        match result {
            Ok(per_query) => {
                for ((_, reply), ans) in queries.into_iter().zip(per_query) {
                    let _ = reply.send(Ok(ans));
                }
            }
            Err(e) => {
                let msg = e.to_string();
                for (_, reply) in queries {
                    let _ = reply.send(Err(EmError::config(msg.clone())));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, SplitMix64};
    use emselect::multi_select;

    fn data(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        SplitMix64::new(seed).shuffle(&mut v);
        v
    }

    #[test]
    fn batched_answers_match_per_query_select() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let v = data(3000, 1);
        let plain = ctx.stats().paused(|| EmFile::from_slice(&ctx, &v)).unwrap();
        let server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let client = server.client();
        assert_eq!(client.register("ds", v).unwrap(), 3000);
        let queries: Vec<Vec<u64>> = vec![
            vec![1, 1500, 3000],
            vec![2999, 42],
            vec![1500],
            vec![700, 701, 700],
        ];
        let tickets = client.submit_batch("ds", queries.clone()).unwrap();
        for (ranks, t) in queries.iter().zip(tickets) {
            let got = t.wait().unwrap();
            let want = multi_select(&plain, ranks).unwrap();
            assert_eq!(got, want, "ranks {ranks:?}");
        }
        drop(client);
        let report = server.shutdown();
        assert_eq!(report.queries, 4);
        assert_eq!(report.batches, 1);
    }

    #[test]
    fn concurrent_clients_coalesce_and_agree() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let v = data(4000, 2);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let server = QueryServer::<u64>::start(
            &ctx,
            ServeOptions {
                batch_window: Duration::from_millis(20),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let client = server.client();
        client.register("ds", v).unwrap();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = client.clone();
                let sorted = &sorted;
                s.spawn(move || {
                    for q in 0..8u64 {
                        let r = 1 + (t * 997 + q * 131) % 4000;
                        let got = c.query("ds", vec![r]).unwrap().wait().unwrap();
                        assert_eq!(got, vec![sorted[(r - 1) as usize]]);
                    }
                });
            }
        });
        drop(client);
        let report = server.shutdown();
        assert_eq!(report.queries, 32);
        assert!(
            report.batches < report.queries,
            "some coalescing must happen: {} batches for {} queries",
            report.batches,
            report.queries
        );
    }

    #[test]
    fn unknown_dataset_and_bad_rank_error_cleanly() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let server = QueryServer::<u64>::start(&ctx, ServeOptions::default()).unwrap();
        let client = server.client();
        assert!(client.query("nope", vec![1]).unwrap().wait().is_err());
        client.register("ds", data(100, 3)).unwrap();
        assert!(client.query("ds", vec![0]).unwrap().wait().is_err());
        assert!(client.query("ds", vec![101]).unwrap().wait().is_err());
        let ok = client.query("ds", vec![100]).unwrap().wait().unwrap();
        assert_eq!(ok, vec![99]);
        drop(client);
        server.shutdown();
    }
}
