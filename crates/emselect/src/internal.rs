//! In-memory selection primitives.
//!
//! These are the base cases of every external recursion: once a subproblem
//! fits in memory, CPU work is free in the EM model, so we use simple,
//! obviously-correct routines. `median_of_five` is the subgroup step of the
//! intermixed-selection scan (paper §4.1, after [BFPRT 1973]).

use emcore::Record;

/// The element with 1-based rank `rank` among `data` (by key), computed
/// in place via introselect. Panics if `rank` is out of `[1, data.len()]`.
pub fn select_rank_in_mem<T: Record>(data: &mut [T], rank: u64) -> T {
    assert!(
        rank >= 1 && rank <= data.len() as u64,
        "rank {rank} out of range [1, {}]",
        data.len()
    );
    let idx = (rank - 1) as usize;
    let (_, kth, _) = data.select_nth_unstable_by(idx, |a, b| a.key().cmp(&b.key()));
    *kth
}

/// The elements at several 1-based `ranks` (sorted ascending; duplicates
/// allowed) among `data`, by recursive halving: select the middle rank,
/// then recurse into the two sides. `O(n·lg k)` comparisons.
pub fn multi_select_in_mem<T: Record>(data: &mut [T], ranks: &[u64]) -> Vec<T> {
    let mut out = vec![None; ranks.len()];
    multi_select_rec(data, ranks, 0, &mut out);
    out.into_iter()
        .map(|o| o.expect("every rank filled"))
        .collect()
}

fn multi_select_rec<T: Record>(
    data: &mut [T],
    ranks: &[u64],
    rank_offset: u64,
    out: &mut [Option<T>],
) {
    if ranks.is_empty() {
        return;
    }
    debug_assert_eq!(ranks.len(), out.len());
    let mid = ranks.len() / 2;
    let r = ranks[mid];
    let local = (r - rank_offset) as usize; // 1-based within `data`
    debug_assert!(local >= 1 && local <= data.len());
    let idx = local - 1;
    let (lo, kth, hi) = data.select_nth_unstable_by(idx, |a, b| a.key().cmp(&b.key()));
    let kth = *kth;
    // All ranks equal to r are answered by this element.
    let lo_end = ranks[..mid].partition_point(|&x| x < r);
    let hi_start = mid + ranks[mid..].partition_point(|&x| x <= r);
    for slot in &mut out[lo_end..hi_start] {
        *slot = Some(kth);
    }
    let (out_lo, rest) = out.split_at_mut(lo_end);
    let (_, out_hi) = rest.split_at_mut(hi_start - lo_end);
    multi_select_rec(lo, &ranks[..lo_end], rank_offset, out_lo);
    multi_select_rec(hi, &ranks[hi_start..], rank_offset + local as u64, out_hi);
}

/// Median (lower median for even sizes) of at most five records, by key.
/// Panics on an empty slice.
pub fn median_of_five<T: Record>(group: &[T]) -> T {
    assert!(!group.is_empty() && group.len() <= 5);
    let mut tmp: [Option<T>; 5] = [None; 5];
    for (i, r) in group.iter().enumerate() {
        tmp[i] = Some(*r);
    }
    let slice = &mut tmp[..group.len()];
    slice.sort_unstable_by(|a, b| {
        a.as_ref()
            .expect("present")
            .key()
            .cmp(&b.as_ref().expect("present").key())
    });
    slice[(group.len() - 1) / 2].expect("present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_rank_basics() {
        let mut v: Vec<u64> = vec![5, 1, 4, 2, 3];
        assert_eq!(select_rank_in_mem(&mut v, 1), 1);
        let mut v2 = v.clone();
        assert_eq!(select_rank_in_mem(&mut v2, 3), 3);
        let mut v3 = v.clone();
        assert_eq!(select_rank_in_mem(&mut v3, 5), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_rank_zero_panics() {
        let mut v: Vec<u64> = vec![1];
        select_rank_in_mem(&mut v, 0);
    }

    #[test]
    fn select_rank_with_duplicates() {
        let mut v: Vec<u64> = vec![2, 2, 2, 1, 1];
        assert_eq!(select_rank_in_mem(&mut v, 1), 1);
        let mut v2: Vec<u64> = vec![2, 2, 2, 1, 1];
        assert_eq!(select_rank_in_mem(&mut v2, 3), 2);
    }

    #[test]
    fn multi_select_all_ranks() {
        let data: Vec<u64> = vec![9, 3, 7, 1, 5];
        let ranks: Vec<u64> = (1..=5).collect();
        let mut work = data.clone();
        let got = multi_select_in_mem(&mut work, &ranks);
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn multi_select_sparse_ranks() {
        let data: Vec<u64> = (0..1000).map(|i| (i * 48271) % 10007).collect();
        let ranks = vec![1, 17, 500, 999, 1000];
        let mut work = data.clone();
        let got = multi_select_in_mem(&mut work, &ranks);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn multi_select_duplicate_ranks() {
        let mut v: Vec<u64> = vec![4, 2, 1, 3];
        let got = multi_select_in_mem(&mut v, &[2, 2, 2]);
        assert_eq!(got, vec![2, 2, 2]);
    }

    #[test]
    fn multi_select_empty_ranks() {
        let mut v: Vec<u64> = vec![1, 2];
        assert!(multi_select_in_mem(&mut v, &[]).is_empty());
    }

    #[test]
    fn multi_select_matches_sort_randomised() {
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for trial in 0..50 {
            let n = 1 + (next() % 200) as usize;
            let data: Vec<u64> = (0..n).map(|_| next() % 50).collect();
            let k = 1 + (next() % 10) as usize;
            let mut ranks: Vec<u64> = (0..k).map(|_| 1 + next() % n as u64).collect();
            ranks.sort_unstable();
            let mut sorted = data.clone();
            sorted.sort_unstable();
            let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();
            let mut work = data.clone();
            let got = multi_select_in_mem(&mut work, &ranks);
            assert_eq!(got, want, "trial {trial}, n {n}, ranks {ranks:?}");
        }
    }

    #[test]
    fn median_of_five_all_sizes() {
        assert_eq!(median_of_five(&[7u64]), 7);
        assert_eq!(median_of_five(&[2u64, 1]), 1); // upper? (len-1)/2 = 0 → lower median
        assert_eq!(median_of_five(&[3u64, 1, 2]), 2);
        assert_eq!(median_of_five(&[4u64, 1, 3, 2]), 2);
        assert_eq!(median_of_five(&[5u64, 4, 3, 2, 1]), 3);
    }

    #[test]
    #[should_panic]
    fn median_of_empty_panics() {
        median_of_five::<u64>(&[]);
    }
}
