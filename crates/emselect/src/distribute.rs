//! One-pass distribution of a file into buckets around splitters.
//!
//! The write half of distribution sort [Aggarwal & Vitter 1988]: one reader
//! plus `f` buffered writers route every record to its bucket in a single
//! scan (`2·n/B` I/Os counting the writes). Memory: `(f + 1)` block buffers
//! plus the `f − 1` memory-resident splitters, which caps the fan-out at
//! [`max_distribution_fanout`].

use emcore::{EmConfig, EmContext, EmError, EmFile, Record, Result, Writer};

use crate::partition_out::ChainReader;
use crate::sample_splitters::bucket_of;

/// Largest distribution fan-out that fits the memory budget for record
/// type `T`: `f` writer block buffers + 1 reader block buffer + `f`
/// memory-resident splitter records must total at most `M` words.
pub fn max_distribution_fanout<T: Record>(config: EmConfig) -> usize {
    fanout_for_budget::<T>(config, config.mem_capacity())
}

/// [`max_distribution_fanout`] against the *live* budget of `ctx` rather
/// than the static configuration: a governor squeeze narrows the feasible
/// fan-out (and with it the per-pass splitter count `L`), so distribution
/// passes started after the squeeze use fewer, coarser buckets.
pub fn max_distribution_fanout_now<T: Record>(ctx: &EmContext) -> usize {
    fanout_for_budget::<T>(ctx.config(), ctx.mem_budget())
}

fn fanout_for_budget<T: Record>(config: EmConfig, budget: usize) -> usize {
    let block_words = config.block_size() * T::WORDS;
    let per_bucket = block_words + T::WORDS;
    // Reserve the scan reader's buffer plus two persistent caller-side
    // buffers (e.g. a partition sink's open writer held across the call).
    ((budget.saturating_sub(3 * block_words)) / per_bucket).max(2)
}

/// Distribute `input` into `splitters.len() + 1` bucket files: bucket `j`
/// receives keys in `(s_{j-1}, s_j]`. Splitters must be ascending.
///
/// Returns the bucket files in order; their lengths are the exact bucket
/// sizes.
pub fn distribute<T: Record>(input: &EmFile<T>, splitters: &[T]) -> Result<Vec<EmFile<T>>> {
    distribute_segs(input.ctx(), std::slice::from_ref(input), splitters)
}

/// [`distribute`] over a segment list.
pub fn distribute_segs<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    splitters: &[T],
) -> Result<Vec<EmFile<T>>> {
    let f = splitters.len() + 1;
    // Validate against the static model bound; the live budget governs the
    // fan-out *chosen* by callers, while admission of an already-chosen
    // fan-out is enforced by the tracked buffer charges below.
    let fmax = max_distribution_fanout::<T>(ctx.config());
    if f > fmax {
        return Err(EmError::config(format!(
            "distribution fan-out {f} exceeds memory-feasible maximum {fmax}"
        )));
    }
    debug_assert!(
        splitters.windows(2).all(|w| w[0].key() <= w[1].key()),
        "splitters must be ascending"
    );
    let _phase = ctx.stats().phase_guard("distribute");
    let _splitter_charge = ctx
        .mem()
        .try_charge(splitters.len() * T::WORDS, "distribution splitters")?;
    let mut writers: Vec<Writer<T>> = (0..f).map(|_| ctx.writer::<T>()).collect::<Result<_>>()?;
    let mut r = ChainReader::new(segs);
    while let Some(x) = r.next()? {
        let j = bucket_of(splitters, &x.key());
        writers[j].push(x)?;
    }
    drop(r);
    let mut out = Vec::with_capacity(f);
    for w in writers {
        out.push(w.finish()?);
    }
    Ok(out)
}

/// Split `input` into three files `(less, equal, greater)` relative to
/// `pivot` in one scan. The fallback path of multi-partition for inputs
/// where a single key value dominates (no splitter set can spread those).
pub fn three_way_split<T: Record>(
    input: &EmFile<T>,
    pivot: T::Key,
) -> Result<(EmFile<T>, EmFile<T>, EmFile<T>)> {
    three_way_split_segs(input.ctx(), std::slice::from_ref(input), pivot)
}

/// [`three_way_split`] over a segment list.
pub fn three_way_split_segs<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    pivot: T::Key,
) -> Result<(EmFile<T>, EmFile<T>, EmFile<T>)> {
    let mut less = ctx.writer::<T>()?;
    let mut equal = ctx.writer::<T>()?;
    let mut greater = ctx.writer::<T>()?;
    let mut r = ChainReader::new(segs);
    while let Some(x) = r.next()? {
        match x.key().cmp(&pivot) {
            std::cmp::Ordering::Less => less.push(x)?,
            std::cmp::Ordering::Equal => equal.push(x)?,
            std::cmp::Ordering::Greater => greater.push(x)?,
        }
    }
    drop(r);
    Ok((less.finish()?, equal.finish()?, greater.finish()?))
}

/// Stream-copy a file into a writer-like sink function (`ceil(n/B)` reads
/// plus the sink's writes).
pub fn stream_into<T: Record>(
    input: &EmFile<T>,
    mut push: impl FnMut(T) -> Result<()>,
) -> Result<()> {
    let mut r = input.reader()?;
    while let Some(x) = r.next()? {
        push(x)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext};

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny())
    }

    #[test]
    fn distributes_by_ranges() {
        let c = ctx();
        let data: Vec<u64> = (0..100).rev().collect();
        let f = EmFile::from_slice(&c, &data).unwrap();
        let splitters: Vec<u64> = vec![24, 49, 74];
        let buckets = distribute(&f, &splitters).unwrap();
        assert_eq!(buckets.len(), 4);
        let sizes: Vec<u64> = buckets.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![25, 25, 25, 25]);
        // bucket 1 = (24, 49]
        let mut b1 = buckets[1].to_vec().unwrap();
        b1.sort_unstable();
        assert_eq!(b1, (25..=49).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_buckets_allowed() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &[100u64, 101, 102]).unwrap();
        let buckets = distribute(&f, &[5u64, 10]).unwrap();
        assert_eq!(buckets[0].len(), 0);
        assert_eq!(buckets[1].len(), 0);
        assert_eq!(buckets[2].len(), 3);
    }

    #[test]
    fn boundary_keys_go_left() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &[10u64, 10, 11]).unwrap();
        let buckets = distribute(&f, &[10u64]).unwrap();
        assert_eq!(buckets[0].len(), 2); // key == splitter → left bucket (s_{j-1}, s_j]
        assert_eq!(buckets[1].len(), 1);
    }

    #[test]
    fn fanout_cap_enforced() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &[1u64]).unwrap();
        let fmax = max_distribution_fanout::<u64>(c.config());
        let too_many: Vec<u64> = (0..fmax as u64 + 1).collect();
        assert!(distribute(&f, &too_many).is_err());
    }

    #[test]
    fn fanout_formula_fits_strict_memory() {
        let c = ctx();
        let fmax = max_distribution_fanout::<u64>(c.config());
        let n = 2000u64;
        let data: Vec<u64> = (0..n).rev().collect();
        let file = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let splitters: Vec<u64> = (1..fmax as u64).map(|i| i * n / fmax as u64).collect();
        // Must not panic in strict mode.
        let buckets = distribute(&file, &splitters).unwrap();
        assert_eq!(buckets.iter().map(|b| b.len()).sum::<u64>(), n);
    }

    #[test]
    fn distribution_io_is_two_scans() {
        let c = ctx();
        let n = 1600u64; // 100 blocks
        let data: Vec<u64> = (0..n).collect();
        let file = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let before = c.stats().snapshot();
        let buckets = distribute(&file, &[799u64]).unwrap();
        let d = c.stats().snapshot().since(&before);
        assert_eq!(d.reads, 100);
        // writes: each bucket is 800 records = 50 blocks
        assert_eq!(d.writes, 100);
        assert_eq!(buckets[0].len(), 800);
    }

    #[test]
    fn three_way_split_partitions() {
        let c = ctx();
        let data: Vec<u64> = vec![5, 1, 5, 9, 5, 0, 7];
        let f = EmFile::from_slice(&c, &data).unwrap();
        let (l, e, g) = three_way_split(&f, 5).unwrap();
        let mut lv = l.to_vec().unwrap();
        lv.sort_unstable();
        assert_eq!(lv, vec![0, 1]);
        assert_eq!(e.to_vec().unwrap(), vec![5, 5, 5]);
        let mut gv = g.to_vec().unwrap();
        gv.sort_unstable();
        assert_eq!(gv, vec![7, 9]);
    }
}
