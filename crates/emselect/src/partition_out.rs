//! The output representation of partitioning: a *linked list* of file
//! segments per partition, exactly as the paper specifies ("the algorithm
//! is required to output `P_1, …, P_K` in a linked list").
//!
//! Keeping each partition as a list of segments lets the multi-partition
//! recursion *adopt* a whole bucket file as partition content in `O(1)` —
//! no re-streaming — which is what makes the distribution levels cost one
//! read + one write pass each, matching the
//! `O((N/B)·lg_{M/B} K)` bound with a small constant.

use emcore::{EmContext, EmFile, Record, Result};

/// One ordered partition: the concatenation of its file segments.
/// The relative order of records *within* a partition is unspecified
/// (as in the paper's problem statement).
#[derive(Debug)]
pub struct Partition<T: Record> {
    segments: Vec<EmFile<T>>,
    len: u64,
}

impl<T: Record> Partition<T> {
    /// An empty partition.
    pub fn empty() -> Self {
        Self {
            segments: Vec::new(),
            len: 0,
        }
    }

    /// A partition consisting of one file.
    pub fn from_file(file: EmFile<T>) -> Self {
        let len = file.len();
        Self {
            segments: vec![file],
            len,
        }
    }

    /// Build from a list of segments.
    pub fn from_segments(segments: Vec<EmFile<T>>) -> Self {
        let len = segments.iter().map(|s| s.len()).sum();
        Self { segments, len }
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the partition holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying segments, in order.
    pub fn segments(&self) -> &[EmFile<T>] {
        &self.segments
    }

    /// Append a segment (O(1), no I/O).
    pub fn push_segment(&mut self, file: EmFile<T>) {
        self.len += file.len();
        self.segments.push(file);
    }

    /// Take ownership of the segments (O(1), no I/O).
    pub fn into_segments(self) -> Vec<EmFile<T>> {
        self.segments
    }

    /// Visit every record (one block-buffered scan; charges the reads).
    pub fn for_each(&self, mut f: impl FnMut(T) -> Result<()>) -> Result<()> {
        for s in &self.segments {
            let mut r = s.reader()?;
            while let Some(x) = r.next()? {
                f(x)?;
            }
        }
        Ok(())
    }

    /// Materialise into a host `Vec` (charges the read scan).
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.for_each(|x| {
            out.push(x);
            Ok(())
        })?;
        Ok(out)
    }

    /// Flatten into a single file. Free if the partition already is a
    /// single segment; otherwise one read + one write scan.
    pub fn into_file(self, ctx: &EmContext) -> Result<EmFile<T>> {
        let mut segments = self.segments;
        if segments.len() == 1 {
            if let Some(seg) = segments.pop() {
                return Ok(seg);
            }
        }
        let mut w = ctx.writer::<T>()?;
        for s in &segments {
            let mut r = s.reader()?;
            while let Some(x) = r.next()? {
                w.push(x)?;
            }
        }
        w.finish()
    }
}

/// Total record count of a segment list.
pub fn segs_len<T: Record>(segs: &[EmFile<T>]) -> u64 {
    segs.iter().map(|s| s.len()).sum()
}

/// A sequential reader over a list of file segments, holding one block
/// buffer at a time. Lets every scan primitive operate on a
/// [`Partition`]'s segments without flattening them into one file.
pub struct ChainReader<'a, T: Record> {
    segs: &'a [EmFile<T>],
    idx: usize,
    cur: Option<emcore::Reader<'a, T>>,
}

impl<'a, T: Record> ChainReader<'a, T> {
    /// Reader over `segs`, in order.
    pub fn new(segs: &'a [EmFile<T>]) -> Self {
        Self {
            segs,
            idx: 0,
            cur: None,
        }
    }

    /// Next record, or `None` at the end of the last segment.
    // Fallible streaming, deliberately not Iterator (whose `next` cannot
    // surface `EmError`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<T>> {
        loop {
            if let Some(r) = self.cur.as_mut() {
                if let Some(x) = r.next()? {
                    return Ok(Some(x));
                }
                self.cur = None; // segment exhausted; free its buffer
            }
            if self.idx >= self.segs.len() {
                return Ok(None);
            }
            self.cur = Some(self.segs[self.idx].reader()?);
            self.idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::EmConfig;

    fn ctx() -> EmContext {
        EmContext::new_in_memory(EmConfig::tiny())
    }

    #[test]
    fn chain_reader_spans_segments() {
        let c = ctx();
        let a = EmFile::from_slice(&c, &[1u64, 2]).unwrap();
        let b = c.create_file::<u64>().unwrap(); // empty middle segment
        let d = EmFile::from_slice(&c, &[3u64, 4, 5]).unwrap();
        let segs = vec![a, b, d];
        assert_eq!(segs_len(&segs), 5);
        let mut r = ChainReader::new(&segs);
        let mut got = Vec::new();
        while let Some(x) = r.next().unwrap() {
            got.push(x);
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn chain_reader_empty_list() {
        let mut r = ChainReader::<u64>::new(&[]);
        assert_eq!(r.next().unwrap(), None);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::<u64>::empty();
        assert!(p.is_empty());
        assert!(p.to_vec().unwrap().is_empty());
    }

    #[test]
    fn segments_concatenate() {
        let c = ctx();
        let a = EmFile::from_slice(&c, &[1u64, 2]).unwrap();
        let b = EmFile::from_slice(&c, &[3u64]).unwrap();
        let p = Partition::from_segments(vec![a, b]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(p.segments().len(), 2);
    }

    #[test]
    fn push_segment_updates_len() {
        let c = ctx();
        let mut p = Partition::from_file(EmFile::from_slice(&c, &[9u64]).unwrap());
        p.push_segment(EmFile::from_slice(&c, &[8u64, 7]).unwrap());
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn into_file_single_segment_is_free() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &(0..100u64).collect::<Vec<_>>()).unwrap();
        let p = Partition::from_file(f);
        let before = c.stats().snapshot();
        let back = p.into_file(&c).unwrap();
        assert_eq!(c.stats().snapshot(), before, "single segment must not copy");
        assert_eq!(back.len(), 100);
    }

    #[test]
    fn into_file_multi_segment_copies() {
        let c = ctx();
        let a = EmFile::from_slice(&c, &[1u64, 2]).unwrap();
        let b = EmFile::from_slice(&c, &[3u64]).unwrap();
        let p = Partition::from_segments(vec![a, b]);
        let f = p.into_file(&c).unwrap();
        assert_eq!(f.to_vec().unwrap(), vec![1, 2, 3]);
    }
}
