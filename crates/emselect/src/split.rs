//! Exact rank split: divide `S` into its `count` smallest records and the
//! rest, in `O(n/B)` I/Os.
//!
//! The workhorse behind the two-sided algorithms' `S_low`/`S_high` split
//! (paper §5.1–5.2) and the §3 reduction's residue cuts. One distribution
//! level routes everything into `f` buckets; every bucket left of the cut
//! is adopted into the low [`Partition`] (O(1), no I/O), every bucket
//! right of it into the high one, and only the single boundary bucket
//! recurses — so the total cost telescopes to `O(n/B)` with roughly one
//! sample pass plus one distribution pass.

use emcore::{EmContext, EmError, EmFile, Record, Result};

use crate::distribute::{distribute_segs, max_distribution_fanout_now, three_way_split};
use crate::partition_out::{segs_len, ChainReader, Partition};
use crate::sample_splitters::{
    max_deterministic_fanout_n, sample_splitters_segs, SplitterStrategy,
};

/// Split `input` into `(low, high, boundary)` where `low` holds exactly
/// the `count` smallest records, `high` the rest, and `boundary` is the
/// maximum record of `low` (the element of rank `count`).
///
/// Duplicate keys are handled exactly: records whose key equals the
/// boundary's are routed low until the quota is met.
pub fn split_at_rank<T: Record>(
    input: &EmFile<T>,
    count: u64,
) -> Result<(Partition<T>, Partition<T>, T)> {
    split_at_rank_segs(
        input.ctx(),
        std::slice::from_ref(input),
        count,
        SplitterStrategy::Deterministic,
    )
}

/// [`split_at_rank`] over a segment list, with an explicit sampling
/// strategy.
pub fn split_at_rank_segs<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    count: u64,
    strategy: SplitterStrategy,
) -> Result<(Partition<T>, Partition<T>, T)> {
    let n = segs_len(segs);
    if count == 0 || count > n {
        return Err(EmError::config(format!(
            "split rank {count} out of range [1, {n}]"
        )));
    }
    let _phase = ctx.stats().phase_guard("split-at-rank");
    split_rec(ctx, segs, count, strategy)
}

fn split_rec<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    count: u64,
    strategy: SplitterStrategy,
) -> Result<(Partition<T>, Partition<T>, T)> {
    let n = segs_len(segs);
    debug_assert!(count >= 1 && count <= n);
    let block = ctx.config().block_size();
    let mem_cap = (ctx.mem_records::<T>() / 2).max(block);

    if n as usize <= mem_cap {
        // In-memory: select, then write the two sides exactly.
        let mut buf = ctx.try_tracked_vec::<T>(n as usize, "rank-split base buffer")?;
        let mut r = ChainReader::new(segs);
        while let Some(x) = r.next()? {
            buf.push(x);
        }
        let idx = (count - 1) as usize;
        buf.sort_unstable_by_key(|a| a.key());
        let boundary = buf[idx];
        let mut low = ctx.writer::<T>()?;
        low.push_all(&buf[..=idx])?;
        let mut high = ctx.writer::<T>()?;
        high.push_all(&buf[idx + 1..])?;
        return Ok((
            Partition::from_file(low.finish()?),
            Partition::from_file(high.finish()?),
            boundary,
        ));
    }

    let f = max_deterministic_fanout_n::<T>(ctx, n)
        .min(max_distribution_fanout_now::<T>(ctx))
        .max(2);
    let splitters = sample_splitters_segs(ctx, segs, f, strategy)?;
    let buckets = distribute_segs(ctx, segs, &splitters)?;
    drop(splitters);

    // Locate the bucket containing the cut.
    let mut cum = 0u64;
    let mut j = buckets.len(); // bucket index holding rank `count`
    let mut cum_before = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        if cum < count && count <= cum + b.len() {
            j = i;
            cum_before = cum;
        }
        cum += b.len();
    }
    debug_assert!(j < buckets.len(), "cut bucket must exist");

    if buckets[j].len() == n {
        // One key value dominates; split exactly with a three-way pass.
        return dominant_split(ctx, &buckets[j], count);
    }

    // Recurse only inside the boundary bucket; adopt everything else.
    let mut low = Partition::empty();
    let mut high = Partition::empty();
    let mut boundary: Option<T> = None;
    for (i, bucket) in buckets.into_iter().enumerate() {
        if i < j {
            low.push_segment(bucket);
        } else if i > j {
            high.push_segment(bucket);
        } else {
            let local = count - cum_before;
            if local == bucket.len() {
                // Cut aligns with the bucket's right edge: the boundary is
                // the bucket's max record (one scan of this bucket only).
                let mut mx: Option<T> = None;
                let mut r = bucket.reader()?;
                while let Some(x) = r.next()? {
                    if mx.is_none_or(|m| x.key() >= m.key()) {
                        mx = Some(x);
                    }
                }
                boundary = mx;
                low.push_segment(bucket);
            } else {
                let (l, h, b) = split_rec(ctx, std::slice::from_ref(&bucket), local, strategy)?;
                for seg in l.into_segments() {
                    low.push_segment(seg);
                }
                for seg in h.into_segments() {
                    high.push_segment(seg);
                }
                boundary = Some(b);
            }
        }
    }
    Ok((low, high, boundary.expect("cut bucket processed")))
}

/// Exact split of a single-value-dominated file: one counting pass plus
/// one quota-routing pass.
fn dominant_split<T: Record>(
    ctx: &EmContext,
    file: &EmFile<T>,
    count: u64,
) -> Result<(Partition<T>, Partition<T>, T)> {
    // Probe for the dominant key: most frequent key of the first block.
    let mut probe = ctx.try_tracked_vec::<T>(file.block_capacity(), "split pivot probe")?;
    file.read_block_into(0, &mut probe)?;
    let mut keys: Vec<T::Key> = probe.iter().map(|r| r.key()).collect();
    keys.sort_unstable();
    let mut pivot = keys[0];
    let mut best_run = 0usize;
    let mut i = 0usize;
    while i < keys.len() {
        let mut k = i;
        while k < keys.len() && keys[k] == keys[i] {
            k += 1;
        }
        if k - i > best_run {
            best_run = k - i;
            pivot = keys[i];
        }
        i = k;
    }
    drop(probe);

    let (less, equal, greater) = three_way_split(file, pivot)?;
    let nl = less.len();
    let ne = equal.len();
    if count <= nl {
        // The cut lies inside `less`: recurse there; `equal ∪ greater` all high.
        let (low, mut high, b) = split_rec(
            ctx,
            std::slice::from_ref(&less),
            count,
            SplitterStrategy::Deterministic,
        )?;
        high.push_segment(equal);
        high.push_segment(greater);
        return Ok((low, high, b));
    }
    if count <= nl + ne {
        // The cut lands among the equals: split the equal slab by position.
        let quota = count - nl;
        let mut lw = ctx.writer::<T>()?;
        let mut hw = ctx.writer::<T>()?;
        let mut taken = 0u64;
        let mut sample_equal: Option<T> = None;
        let mut r = equal.reader()?;
        while let Some(x) = r.next()? {
            if taken < quota {
                lw.push(x)?;
                taken += 1;
                sample_equal = Some(x);
            } else {
                hw.push(x)?;
            }
        }
        let mut low = Partition::from_file(less);
        low.push_segment(lw.finish()?);
        let mut high = Partition::from_file(hw.finish()?);
        high.push_segment(greater);
        return Ok((low, high, sample_equal.expect("quota ≥ 1")));
    }
    // The cut lies inside `greater`.
    let local = count - nl - ne;
    let (glow, ghigh, b) = split_rec(
        ctx,
        std::slice::from_ref(&greater),
        local,
        SplitterStrategy::Deterministic,
    )?;
    let mut low = Partition::from_file(less);
    low.push_segment(equal);
    for seg in glow.into_segments() {
        low.push_segment(seg);
    }
    Ok((low, ghigh, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext};

    fn strict_ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny())
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        let mut s = seed;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    fn check(data: &[u64], count: u64) {
        let c = strict_ctx();
        let f = c.stats().paused(|| EmFile::from_slice(&c, data)).unwrap();
        let (low, high, boundary) = split_at_rank(&f, count).unwrap();
        assert_eq!(low.len(), count);
        assert_eq!(high.len(), data.len() as u64 - count);
        let lv = low.to_vec().unwrap();
        let hv = high.to_vec().unwrap();
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        assert_eq!(boundary, sorted[(count - 1) as usize]);
        assert!(lv.iter().all(|&x| x <= boundary));
        assert!(hv.iter().all(|&x| x >= boundary));
        let mut all: Vec<u64> = lv.into_iter().chain(hv).collect();
        all.sort_unstable();
        assert_eq!(all, sorted);
    }

    #[test]
    fn small_in_memory() {
        check(&[5, 1, 4, 2, 3], 2);
        check(&[5, 1, 4, 2, 3], 5);
        check(&[7], 1);
    }

    #[test]
    fn large_external() {
        let data = shuffled(20_000, 3);
        check(&data, 1);
        check(&data, 7_777);
        check(&data, 20_000);
    }

    #[test]
    fn duplicates_exact_quota() {
        let mut data = vec![5u64; 5000];
        data.extend(0..100u64);
        data.extend(std::iter::repeat_n(900u64, 100));
        check(&data, 2600);
        check(&data, 100); // cut right at the end of the smalls
        check(&data, 101); // first equal
    }

    #[test]
    fn all_equal() {
        let data = vec![9u64; 3000];
        check(&data, 1500);
        check(&data, 1);
        check(&data, 3000);
    }

    #[test]
    fn out_of_range_rejected() {
        let c = strict_ctx();
        let f = EmFile::from_slice(&c, &[1u64, 2]).unwrap();
        assert!(split_at_rank(&f, 0).is_err());
        assert!(split_at_rank(&f, 3).is_err());
    }

    #[test]
    fn linear_io_with_adoption() {
        let c = EmContext::new_in_memory(EmConfig::medium());
        let n = 200_000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 9)))
            .unwrap();
        let before = c.stats().snapshot();
        let _ = split_at_rank(&f, n / 3).unwrap();
        let ios = c.stats().snapshot().since(&before).total_ios();
        let scan = n.div_ceil(64);
        // Roughly: sample (~1.7 scans) + distribute (2 scans) + boundary
        // bucket recursion (small).
        assert!(
            ios <= 5 * scan,
            "split took {ios} I/Os = {:.2} scans",
            ios as f64 / scan as f64
        );
    }

    #[test]
    fn segmented_input() {
        let c = strict_ctx();
        let data = shuffled(5000, 4);
        let a = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &data[..2000]))
            .unwrap();
        let b = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &data[2000..]))
            .unwrap();
        let segs = vec![a, b];
        let (low, high, boundary) =
            split_at_rank_segs(&c, &segs, 1234, SplitterStrategy::Deterministic).unwrap();
        assert_eq!(low.len(), 1234);
        assert_eq!(high.len(), 5000 - 1234);
        assert_eq!(boundary, 1233);
    }
}
