//! Multi-selection (paper Theorem 4): report the elements of `S` at `K`
//! given ranks in `O((N/B)·lg_{M/B}(K/B))` I/Os.
//!
//! Structure follows §4.2:
//!
//! * **Base case `K ≤ m`** — two engines (see [`MsBaseCase`]):
//!   * *Pruned* (default): find `f − 1` even splitters in linear I/Os,
//!     distribute, drop the rank-free buckets (free), recurse into the
//!     rank-carrying ones. `O(n/B)` whenever `K` is within the feasible
//!     distribution fan-out, with small constants.
//!   * *Intermixed* (the paper's §4.2 construction, verbatim): find
//!     `Θ(m)` splitters via the two-round refined sampler
//!     ([`crate::sample_splitters::refined_splitters`], restoring the
//!     paper's `m = Θ(M)` capacity), count bucket sizes in one scan, then
//!     build the `K`-intermixed instance — the group of rank `r_i` is the
//!     content of the bucket containing `r_i` with residual target
//!     `t_i = r_i − (|P_1| + … + |P_{j-1}|)` — and finish with
//!     [`crate::intermixed_select`] in `O(|D|/B)`.
//! * **General case `K > m`** — multi-partition `S` at every `m`-th target
//!   rank into `g = ceil(K/m)` partitions (`O((N/B)·lg_{M/B} g)` I/Os),
//!   then run the base case inside each partition's segments (`O(N/B)`
//!   total, no flattening).

use emcore::{EmContext, EmError, EmFile, Record, Result, Tagged};

use crate::intermixed::{intermixed_select, max_groups};
use crate::multi_partition::multi_partition_at_ranks;
use crate::partition_out::{segs_len, ChainReader};
use crate::sample_splitters::{
    bucket_of, count_buckets_segs, max_deterministic_fanout_n, refined_splitters,
    sample_splitters_segs, SplitterStrategy,
};

/// Which engine finishes a base case (`K ≤ m` ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MsBaseCase {
    /// Pruned distribution (default): distribute only rank-carrying
    /// buckets and recurse; `O(n/B · (1 + K/f))` with small constants.
    /// Falls back to the intermixed engine on duplicate-dominated inputs.
    #[default]
    Pruned,
    /// The paper's §4.2 construction verbatim: build the intermixed
    /// instance `D` and run [`intermixed_select`]. Required asymptotically
    /// when the group count exceeds the feasible distribution fan-out
    /// (`L = Θ(M)` vs `f = Θ(M/B)` in the paper's parameterisation);
    /// selectable here for faithfulness tests and ablations.
    Intermixed,
}

/// Options for multi-selection (ablation hooks).
#[derive(Debug, Clone, Copy, Default)]
pub struct MsOptions {
    /// Splitter sampling strategy used by both the base case and the
    /// multi-partition levels.
    pub strategy: SplitterStrategy,
    /// Override the base-case group capacity `m` (testing/ablation);
    /// clamped to `[1, max_groups]`.
    pub base_capacity_override: Option<usize>,
    /// Base-case engine.
    pub base_case: MsBaseCase,
}

/// The base-case capacity `m`: how many ranks one linear-I/O base case can
/// handle. For the pruned engine `m = min(Θ(M/w), 2f)` (past `≈ f` ranks,
/// splitting via multi-partition becomes cheaper); for the paper-faithful
/// intermixed engine `m = min(Θ(M/w), f/2)`, which keeps the intermixed
/// instance `|D| ≤ Σ_i bucket(r_i)` at `O(n)`. `f` is the splitter
/// fan-out bound — `Θ(M/log(N/M))` under the deterministic sampling
/// substitute; see DESIGN.md.
pub fn base_case_capacity<T: Record>(input: &EmFile<T>, opts: &MsOptions) -> usize {
    base_case_capacity_n::<T>(input.ctx(), input.len(), opts)
}

/// [`base_case_capacity`] from an explicit input size.
pub fn base_case_capacity_n<T: Record>(ctx: &EmContext, n: u64, opts: &MsOptions) -> usize {
    let groups_cap = max_groups::<T>(ctx.config());
    let f = max_deterministic_fanout_n::<T>(ctx, n);
    let _ = f;
    let m = match opts.base_case {
        // Pruned bookkeeping is ~3 words per rank; cap well inside the
        // *live* budget, so a governor squeeze narrows the base case.
        MsBaseCase::Pruned => (ctx.mem_budget() / 6).max(8),
        // With refined (two-round) splitters the base case reaches the
        // paper's m = Θ(M): the intermixed instance |D| ≤ K·4n/f' stays
        // O(n) because f' = 4·groups_cap splitters are available.
        MsBaseCase::Intermixed => groups_cap,
    };
    let m = opts
        .base_capacity_override
        .map_or(m, |o| o.clamp(1, groups_cap));
    m.max(1)
}

/// Report the element of rank `ranks[i]` (1-based) of `input`, for every
/// `i`. Ranks may be in any order and may repeat; the output matches the
/// input order. Errors on ranks outside `[1, N]` or an empty input with
/// nonempty ranks.
pub fn multi_select<T: Record>(input: &EmFile<T>, ranks: &[u64]) -> Result<Vec<T>> {
    multi_select_with(input, ranks, MsOptions::default())
}

/// [`multi_select`] with explicit options.
pub fn multi_select_with<T: Record>(
    input: &EmFile<T>,
    ranks: &[u64],
    opts: MsOptions,
) -> Result<Vec<T>> {
    multi_select_segs(input.ctx(), std::slice::from_ref(input), ranks, opts)
}

/// [`multi_select`] over a segment list (e.g. a [`crate::Partition`]'s
/// segments) — avoids flattening multi-segment inputs before selecting.
pub fn multi_select_segs<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    ranks: &[u64],
    opts: MsOptions,
) -> Result<Vec<T>> {
    if ranks.is_empty() {
        return Ok(Vec::new());
    }
    let ctx = ctx.clone();
    let n = segs_len(segs);
    for &r in ranks {
        if r == 0 || r > n {
            return Err(EmError::config(format!("rank {r} out of range [1, {n}]")));
        }
    }
    // Synthetic charge for consuming the caller's rank list.
    ctx.stats()
        .charge_reads((ranks.len() as u64).div_ceil(ctx.config().block_size() as u64));

    // Sorted, deduplicated working set.
    let mut sorted: Vec<u64> = ranks.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let phase = ctx.stats().phase_guard("multi-select");
    let answers = multi_select_sorted(&ctx, segs, &sorted, &opts);
    drop(phase);
    let answers = answers?;

    // Map back to the caller's order.
    let out = ranks
        .iter()
        .map(|r| {
            let i = sorted.binary_search(r).expect("rank present");
            answers[i]
        })
        .collect();
    Ok(out)
}

/// [`multi_select_segs`] restricted to a rank window: `segs` hold the
/// elements of global ranks `(offset, offset + segs_len]` of some larger
/// dataset, and `ranks` are *global* ranks that must fall inside that
/// window. Used by serving layers that keep a pivot skeleton: a query
/// rank known to land in a segment is answered by selecting only within
/// it, at the segment's (smaller) linear cost. Answers come back in the
/// caller's order and are identical to selecting the same global ranks
/// on the full dataset.
pub fn multi_select_window<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    offset: u64,
    ranks: &[u64],
    opts: MsOptions,
) -> Result<Vec<T>> {
    let n = segs_len(segs);
    let mut local = Vec::with_capacity(ranks.len());
    for &r in ranks {
        if r <= offset || r > offset.saturating_add(n) {
            return Err(EmError::config(format!(
                "global rank {r} outside segment window ({}, {}]",
                offset,
                offset + n
            )));
        }
        local.push(r - offset);
    }
    multi_select_segs(ctx, segs, &local, opts)
}

/// Core: `sorted` is ascending and distinct; `segs` is the input as a
/// segment list (single-element for a plain file).
fn multi_select_sorted<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    sorted: &[u64],
    opts: &MsOptions,
) -> Result<Vec<T>> {
    let k = sorted.len();
    let m = base_case_capacity_n::<T>(ctx, segs_len(segs), opts);
    if k <= m {
        return base_case(ctx, segs, sorted, opts);
    }
    if opts.base_case == MsBaseCase::Pruned && opts.base_capacity_override.is_none() {
        // The pruned engine scales past the in-memory rank cap by keeping
        // the rank list itself in external memory: each recursion node
        // holds only a (start, end, offset) view of the sorted rank file
        // (rank ranges split contiguously across buckets), so no boundary
        // multi-partition prepass is needed.
        let mut w = ctx.writer::<u64>()?;
        for &r in sorted {
            w.push(r)?;
        }
        let rank_file = w.finish()?;
        let mut out = Vec::with_capacity(k);
        pruned_select_external(ctx, segs, &rank_file, 0, k as u64, 0, opts, &mut out)?;
        return Ok(out);
    }
    // General case: partition at every m-th target rank. Multi-partition
    // takes a single input file; flatten multi-segment inputs first (one
    // linear pass, only on this rare path).
    let flattened;
    let input = if segs.len() == 1 {
        &segs[0]
    } else {
        let mut w = ctx.writer::<T>()?;
        let mut r = ChainReader::new(segs);
        while let Some(x) = r.next()? {
            w.push(x)?;
        }
        flattened = w.finish()?;
        &flattened
    };
    let g = k.div_ceil(m);
    let boundaries: Vec<u64> = (1..g).map(|i| sorted[i * m - 1]).collect();
    let parts = multi_partition_at_ranks(input, &boundaries)?;
    debug_assert_eq!(parts.len(), g);
    let mut out = Vec::with_capacity(k);
    let mut prev_bound = 0u64;
    for (i, part) in parts.iter().enumerate() {
        let lo = i * m;
        let hi = ((i + 1) * m).min(k);
        let local: Vec<u64> = sorted[lo..hi].iter().map(|&r| r - prev_bound).collect();
        // The base case scans the partition's segments directly — no
        // flattening copy.
        out.extend(base_case(ctx, part.segments(), &local, opts)?);
        prev_bound += part.len();
    }
    Ok(out)
}

/// Base case (`K ≤ m` ranks, all 1-based within `input`, sorted and
/// distinct). Dispatches to the engine selected by
/// [`MsOptions::base_case`]; see [`MsBaseCase`] for the trade-off.
fn base_case<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    ranks: &[u64],
    opts: &MsOptions,
) -> Result<Vec<T>> {
    if ranks.is_empty() {
        return Ok(Vec::new());
    }
    let n = segs_len(segs);
    debug_assert!(ranks.iter().all(|&r| r >= 1 && r <= n));
    let block = ctx.config().block_size();

    // Memory-resident: finish directly. (M/2 leaves room for the rank
    // array and block buffers; matches multi-partition's base threshold.)
    let mem_cap = (ctx.mem_records::<T>() / 2).max(block);
    if n as usize <= mem_cap {
        let mut buf = ctx.try_tracked_vec::<T>(n as usize, "multi-select base buffer")?;
        let mut r = ChainReader::new(segs);
        while let Some(x) = r.next()? {
            buf.push(x);
        }
        drop(r);
        return Ok(crate::internal::multi_select_in_mem(&mut buf, ranks));
    }

    match opts.base_case {
        MsBaseCase::Pruned => pruned_select(ctx, segs, ranks, opts),
        MsBaseCase::Intermixed => intermixed_base_case(ctx, segs, ranks, opts),
    }
}

/// The paper's §4.2 base case, verbatim: find Θ(m) splitters, count the
/// buckets, materialise the intermixed instance `D` (an element joins one
/// group per rank routed to its bucket), and finish with
/// [`intermixed_select`] in `O(|D|/B)`.
fn intermixed_base_case<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    ranks: &[u64],
    _opts: &MsOptions,
) -> Result<Vec<T>> {
    let _phase = ctx.stats().phase_guard("multi-select/intermixed-base");
    // Θ(m) splitters of this partition in linear I/Os — the two-round
    // refined sampler keeps the instance |D| ≤ K·4n/f' at O(n) for
    // K up to the paper's m = Θ(M).
    let f = (4 * ranks.len()).max(max_deterministic_fanout_n::<T>(ctx, segs_len(segs)));
    let splitters = refined_splitters(ctx, segs, f)?;
    // The splitter array stays memory-resident for the rest of the base case.
    let _splitter_charge = ctx
        .mem()
        .try_charge(splitters.len() * T::WORDS, "base-case splitters")?;
    let counts = count_buckets_segs(ctx, segs, &splitters)?;
    let nb = counts.len();

    // Cumulative bucket sizes (memory-resident, Θ(m) words).
    let _cum_charge = ctx.try_charge_words(nb + 1, "bucket prefix sums")?;
    let mut cum = Vec::with_capacity(nb + 1);
    cum.push(0u64);
    for &c in &counts {
        cum.push(cum.last().unwrap() + c);
    }

    // For each rank, its bucket and in-bucket residual target.
    let _rank_charge = ctx.try_charge_words(2 * ranks.len(), "rank routing")?;
    let mut bucket_of_rank = Vec::with_capacity(ranks.len());
    let mut targets = Vec::with_capacity(ranks.len());
    for &r in ranks {
        // bucket j with cum[j] < r ≤ cum[j+1]
        let j = cum.partition_point(|&c| c < r) - 1;
        bucket_of_rank.push(j);
        targets.push(r - cum[j]);
    }

    // Materialise D: an element of bucket j joins group i for every rank i
    // routed to bucket j. (`bucket_of_rank` is ascending, so the groups of
    // a bucket form a contiguous index range.)
    let mut w = ctx.writer::<Tagged<T>>()?;
    {
        let mut r = ChainReader::new(segs);
        while let Some(x) = r.next()? {
            let j = bucket_of(&splitters, &x.key());
            let lo = bucket_of_rank.partition_point(|&b| b < j);
            let hi = bucket_of_rank.partition_point(|&b| b <= j);
            for i in lo..hi {
                w.push(Tagged::new(x, i as u32))?;
            }
        }
    }
    let d = w.finish()?;
    drop(splitters);

    intermixed_select(d, &targets)
}

/// Pruned-distribution selection for `K ≪ f` ranks: per level, find the
/// bucket of every rank, write out *only* those buckets (rank-free buckets
/// are dropped from the scan at zero write cost), and recurse into each.
/// The active volume shrinks to `≤ K · max_bucket ≤ 2Kn/f` per level, a
/// geometric series, so the total is `O(n/B)`.
fn pruned_select<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    ranks: &[u64],
    opts: &MsOptions,
) -> Result<Vec<T>> {
    let n = segs_len(segs);
    // Trace-only span covering this whole recursion level (including the
    // per-bucket recursive calls below), so traces show the tree depth.
    let _level = ctx
        .stats()
        .trace_span(|| format!("pruned n={n} k={}", ranks.len()));
    let block = ctx.config().block_size();
    let mem_cap = (ctx.mem_records::<T>() / 2).max(block);
    if n as usize <= mem_cap {
        let mut buf = ctx.try_tracked_vec::<T>(n as usize, "pruned-select base buffer")?;
        let mut r = ChainReader::new(segs);
        while let Some(x) = r.next()? {
            buf.push(x);
        }
        drop(r);
        return Ok(crate::internal::multi_select_in_mem(&mut buf, ranks));
    }
    let phase = ctx.stats().phase_guard("multi-select/pruned");
    let f = max_deterministic_fanout_n::<T>(ctx, n)
        .min(crate::distribute::max_distribution_fanout_now::<T>(ctx))
        .max(2);
    let splitters = sample_splitters_segs(ctx, segs, f, opts.strategy)?;
    // Distribute into f buckets; exact sizes come from the bucket files.
    // Rank-free buckets are simply dropped (freeing storage costs no I/O),
    // which prunes the recursion tree to the rank-carrying volume.
    let buckets = crate::distribute::distribute_segs(ctx, segs, &splitters)?;
    drop(splitters);
    let mut cum = Vec::with_capacity(buckets.len() + 1);
    cum.push(0u64);
    for b in &buckets {
        cum.push(cum.last().unwrap() + b.len());
    }
    if buckets.iter().any(|b| b.len() == n) {
        // A single key value dominates: no splitter set can shrink this
        // input. Resolve exactly with a three-way split around the
        // dominant key (records equal to it are interchangeable for rank
        // semantics).
        drop(phase);
        drop(buckets);
        return dominated_select(ctx, segs, ranks, opts);
    }
    // Route each rank to its bucket (ranks ascending → buckets ascending).
    let mut bucket_of_rank = Vec::with_capacity(ranks.len());
    for &r in ranks {
        let j = cum.partition_point(|&c| c < r) - 1;
        bucket_of_rank.push(j);
    }
    drop(phase);
    // Recurse per rank-carrying bucket, preserving rank order.
    let mut out = Vec::with_capacity(ranks.len());
    for (j, bucket) in buckets.into_iter().enumerate() {
        let lo = bucket_of_rank.partition_point(|&b| b < j);
        let hi = bucket_of_rank.partition_point(|&b| b <= j);
        if lo == hi {
            continue; // rank-free: dropped here, storage freed
        }
        let local: Vec<u64> = ranks[lo..hi].iter().map(|&r| r - cum[j]).collect();
        out.extend(pruned_select(
            ctx,
            std::slice::from_ref(&bucket),
            &local,
            opts,
        )?);
    }
    Ok(out)
}

/// The most frequent key of the first block of the first nonempty
/// segment — by construction of the fallback paths, a single value
/// dominates the input, so this probe finds a pivot that guarantees
/// progress (and any value present works for correctness).
fn dominant_pivot_segs<T: Record>(ctx: &EmContext, segs: &[EmFile<T>]) -> Result<T::Key> {
    let file = segs
        .iter()
        .find(|s| !s.is_empty())
        .ok_or_else(|| EmError::config("dominant_pivot_segs on an all-empty input"))?;
    let mut probe = ctx.try_tracked_vec::<T>(file.block_capacity(), "dominant pivot probe")?;
    file.read_block_into(0, &mut probe)?;
    let mut keys: Vec<T::Key> = probe.iter().map(|r| r.key()).collect();
    keys.sort_unstable();
    let mut pivot = keys[0];
    let mut best = 0usize;
    let mut i = 0usize;
    while i < keys.len() {
        let mut j = i;
        while j < keys.len() && keys[j] == keys[i] {
            j += 1;
        }
        if j - i > best {
            best = j - i;
            pivot = keys[i];
        }
        i = j;
    }
    Ok(pivot)
}

/// Exact multi-selection on a single-value-dominated input: three-way
/// split around the dominant key; ranks falling in the `equal` span all
/// answer with an equal record, the two sides recurse (both strictly
/// smaller, so this terminates).
fn dominated_select<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    ranks: &[u64],
    opts: &MsOptions,
) -> Result<Vec<T>> {
    let pivot = dominant_pivot_segs(ctx, segs)?;
    let (less, equal, greater) = crate::distribute::three_way_split_segs(ctx, segs, pivot)?;
    let nl = less.len();
    let ne = equal.len();
    debug_assert!(ne >= 1, "pivot key must be present");
    let eq_rec = {
        let mut r = equal.reader()?;
        r.next()?
            .ok_or_else(|| EmError::config("equal slab unexpectedly empty"))?
    };
    let split1 = ranks.partition_point(|&r| r <= nl);
    let split2 = ranks.partition_point(|&r| r <= nl + ne);
    let mut out = Vec::with_capacity(ranks.len());
    if split1 > 0 {
        out.extend(base_case(
            ctx,
            std::slice::from_ref(&less),
            &ranks[..split1],
            opts,
        )?);
    }
    out.extend(std::iter::repeat_n(eq_rec, split2 - split1));
    if split2 < ranks.len() {
        let shifted: Vec<u64> = ranks[split2..].iter().map(|&r| r - nl - ne).collect();
        out.extend(base_case(
            ctx,
            std::slice::from_ref(&greater),
            &shifted,
            opts,
        )?);
    }
    Ok(out)
}

/// Pruned selection with an *external* rank list: `rank_file[lo..hi)` are
/// the (sorted, distinct) global target ranks of this node, already offset
/// by `offset` (i.e. local rank = stored rank − offset). Because ranks are
/// sorted and buckets are ordered, each bucket receives a contiguous
/// subrange of the rank file — recursion passes `(lo, hi, offset)` views,
/// never materialising more than one block of ranks in memory.
#[allow(clippy::too_many_arguments)]
fn pruned_select_external<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    rank_file: &EmFile<u64>,
    lo: u64,
    hi: u64,
    offset: u64,
    opts: &MsOptions,
    out: &mut Vec<T>,
) -> Result<()> {
    debug_assert!(lo < hi);
    let k = hi - lo;
    let n = segs_len(segs);
    // Trace-only span per recursion node (covers the recursive calls too).
    let _level = ctx.stats().trace_span(|| format!("pruned-ext n={n} k={k}"));
    // Few enough ranks: load this node's rank range and use the in-memory
    // rank machinery.
    let mem_rank_cap = (ctx.mem_budget() / 16).max(8) as u64;
    if k <= mem_rank_cap {
        let mut ranks = ctx.try_tracked_words::<u64>(k as usize, "external rank slice")?;
        let mut r = rank_file.reader_at(lo)?;
        for _ in 0..k {
            let v = r
                .next()?
                .ok_or_else(|| EmError::config("rank range exceeds rank file"))?;
            ranks.push(v - offset);
        }
        out.extend(base_case(ctx, segs, &ranks, opts)?);
        return Ok(());
    }
    // Many ranks on a large input: one distribution level, then route the
    // rank range to buckets by streaming it once.
    debug_assert!(k <= n);
    let f = max_deterministic_fanout_n::<T>(ctx, n)
        .min(crate::distribute::max_distribution_fanout_now::<T>(ctx))
        .max(2);
    let splitters = sample_splitters_segs(ctx, segs, f, opts.strategy)?;
    let buckets = crate::distribute::distribute_segs(ctx, segs, &splitters)?;
    drop(splitters);
    if buckets.iter().any(|b| b.len() == n) {
        // Duplicate-dominated: three-way split around the dominant key,
        // splitting the external rank range at the slab boundaries.
        drop(buckets);
        let pivot = dominant_pivot_segs(ctx, segs)?;
        let (less, equal, greater) = crate::distribute::three_way_split_segs(ctx, segs, pivot)?;
        let nl = less.len();
        let ne = equal.len();
        debug_assert!(ne >= 1);
        let eq_rec = {
            let mut r = equal.reader()?;
            r.next()?
                .ok_or_else(|| EmError::config("equal slab unexpectedly empty"))?
        };
        // Find the rank-range split points by streaming the range once.
        let (mut mid1, mut mid2) = (lo, lo);
        {
            let mut r = rank_file.reader_at(lo)?;
            let mut cursor = lo;
            while cursor < hi {
                let v = r
                    .next()?
                    .ok_or_else(|| EmError::config("rank range exceeds rank file"))?
                    - offset;
                if v <= nl {
                    mid1 = cursor + 1;
                }
                if v <= nl + ne {
                    mid2 = cursor + 1;
                }
                cursor += 1;
            }
        }
        if mid1 > lo {
            pruned_select_external(
                ctx,
                std::slice::from_ref(&less),
                rank_file,
                lo,
                mid1,
                offset,
                opts,
                out,
            )?;
        }
        out.extend(std::iter::repeat_n(eq_rec, (mid2 - mid1) as usize));
        if mid2 < hi {
            pruned_select_external(
                ctx,
                std::slice::from_ref(&greater),
                rank_file,
                mid2,
                hi,
                offset + nl + ne,
                opts,
                out,
            )?;
        }
        return Ok(());
    }
    let mut cum = Vec::with_capacity(buckets.len() + 1);
    cum.push(0u64);
    for b in &buckets {
        cum.push(cum.last().unwrap() + b.len());
    }
    // Split the rank range per bucket with one sequential pass (ranges are
    // contiguous because both ranks and buckets are sorted), then recurse.
    let mut ranges: Vec<(u64, u64, usize)> = Vec::new();
    {
        let mut r = rank_file.reader_at(lo)?;
        let mut cursor = lo;
        for j in 0..buckets.len() {
            let upper = offset + cum[j + 1]; // global ranks ≤ upper fall in bucket j
            let start = cursor;
            while cursor < hi {
                match r.peek()? {
                    Some(v) if v <= upper => {
                        r.next()?;
                        cursor += 1;
                    }
                    _ => break,
                }
            }
            if cursor > start {
                ranges.push((start, cursor, j));
            }
        }
        debug_assert_eq!(cursor, hi, "every rank routed to a bucket");
    }
    for (start, end, j) in ranges {
        pruned_select_external(
            ctx,
            std::slice::from_ref(&buckets[j]),
            rank_file,
            start,
            end,
            offset + cum[j],
            opts,
            out,
        )?;
    }
    Ok(())
}

/// The element of 1-based rank `rank` of `input` in `O(N/B)` I/Os.
pub fn select_rank<T: Record>(input: &EmFile<T>, rank: u64) -> Result<T> {
    Ok(multi_select(input, &[rank])?[0])
}

/// The `(1/q)`-quantiles of `input`: the elements of ranks
/// `round(i·N/q)` for `i = 1..q-1` (the bucket boundaries of a `q`-bucket
/// equi-depth histogram).
pub fn quantiles<T: Record>(input: &EmFile<T>, q: u64) -> Result<Vec<T>> {
    let n = input.len();
    if q < 1 {
        return Err(EmError::config("quantile count must be ≥ 1"));
    }
    if q == 1 || n == 0 {
        return Ok(Vec::new());
    }
    let ranks: Vec<u64> = (1..q).map(|i| ((i * n) / q).max(1)).collect();
    multi_select(input, &ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext};

    fn strict_ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny())
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        let mut s = seed;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn in_memory_path() {
        let c = strict_ctx();
        let f = EmFile::from_slice(&c, &shuffled(60, 1)).unwrap();
        let got = multi_select(&f, &[1, 30, 60]).unwrap();
        assert_eq!(got, vec![0, 29, 59]);
    }

    #[test]
    fn base_case_external_path() {
        let c = strict_ctx();
        let n = 5000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 2)))
            .unwrap();
        let ranks = vec![1, 1000, 2500, 4999, 5000];
        let got = multi_select(&f, &ranks).unwrap();
        let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn general_case_many_ranks() {
        let c = strict_ctx();
        let n = 20_000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 3)))
            .unwrap();
        // K far above the tiny config's base capacity
        let k = 200u64;
        let ranks: Vec<u64> = (1..=k).map(|i| i * (n / k)).collect();
        let got = multi_select(&f, &ranks).unwrap();
        let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn unsorted_and_duplicate_ranks() {
        let c = strict_ctx();
        let f = EmFile::from_slice(&c, &shuffled(1000, 4)).unwrap();
        let ranks = vec![500, 1, 500, 999, 2];
        let got = multi_select(&f, &ranks).unwrap();
        assert_eq!(got, vec![499, 0, 499, 998, 1]);
    }

    #[test]
    fn rank_out_of_range_rejected() {
        let c = strict_ctx();
        let f = EmFile::from_slice(&c, &[1u64, 2, 3]).unwrap();
        assert!(multi_select(&f, &[0]).is_err());
        assert!(multi_select(&f, &[4]).is_err());
    }

    #[test]
    fn empty_ranks_ok() {
        let c = strict_ctx();
        let f = EmFile::from_slice(&c, &[1u64]).unwrap();
        assert!(multi_select(&f, &[]).unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_in_data() {
        let c = strict_ctx();
        let data: Vec<u64> = (0..3000u64).map(|i| i % 5).collect();
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let ranks = vec![1, 600, 601, 1500, 3000];
        let got = multi_select(&f, &ranks).unwrap();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn randomized_strategy_matches() {
        let c = strict_ctx();
        let n = 8000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 5)))
            .unwrap();
        let ranks: Vec<u64> = vec![7, 77, 777, 7777];
        let got = multi_select_with(
            &f,
            &ranks,
            MsOptions {
                strategy: SplitterStrategy::Randomized { seed: 99 },
                base_capacity_override: None,
                base_case: MsBaseCase::default(),
            },
        )
        .unwrap();
        let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn select_rank_single() {
        let c = strict_ctx();
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(4000, 6)))
            .unwrap();
        assert_eq!(select_rank(&f, 2000).unwrap(), 1999);
        assert_eq!(select_rank(&f, 1).unwrap(), 0);
        assert_eq!(select_rank(&f, 4000).unwrap(), 3999);
    }

    #[test]
    fn quantiles_equi_depth() {
        let c = strict_ctx();
        let n = 1000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 7)))
            .unwrap();
        let q = quantiles(&f, 4).unwrap();
        assert_eq!(q, vec![249, 499, 749]);
        assert!(quantiles(&f, 1).unwrap().is_empty());
    }

    #[test]
    fn small_base_capacity_override_still_correct() {
        let c = strict_ctx();
        let n = 6000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 8)))
            .unwrap();
        let ranks: Vec<u64> = (1..=30).map(|i| i * 200).collect();
        let got = multi_select_with(
            &f,
            &ranks,
            MsOptions {
                strategy: SplitterStrategy::Deterministic,
                base_capacity_override: Some(3),
                base_case: MsBaseCase::default(),
            },
        )
        .unwrap();
        let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn external_rank_path_correct() {
        // K far beyond the in-memory rank cap at the tiny config forces
        // the external-rank pruned recursion.
        let c = strict_ctx();
        let n = 4000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 77)))
            .unwrap();
        let k = 500u64;
        let ranks: Vec<u64> = (1..=k).map(|i| (i * n) / k).collect();
        let got = multi_select(&f, &ranks).unwrap();
        let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn external_rank_path_clustered_ranks() {
        let c = strict_ctx();
        let n = 4000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 78)))
            .unwrap();
        // 300 ranks all inside a narrow window.
        let ranks: Vec<u64> = (0..300u64).map(|i| 1700 + i).collect();
        let got = multi_select(&f, &ranks).unwrap();
        let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn external_rank_path_duplicate_dominated() {
        let c = strict_ctx();
        let n = 4000u64;
        let data: Vec<u64> = (0..n).map(|i| if i % 10 == 0 { i } else { 7 }).collect();
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let k = 400u64;
        let ranks: Vec<u64> = (1..=k).map(|i| (i * n) / k).collect();
        let got = multi_select(&f, &ranks).unwrap();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let want: Vec<u64> = ranks.iter().map(|&r| sorted[(r - 1) as usize]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn window_select_matches_full_select() {
        let c = strict_ctx();
        let n = 3000u64;
        let data = shuffled(n, 11);
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        // Cut out the exact rank window (1000, 2000] as its own segment.
        let window: Vec<u64> = sorted[1000..2000].to_vec();
        let seg = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &window))
            .unwrap();
        let ranks = vec![1500u64, 1001, 2000, 1500];
        let got = multi_select_window(
            &c,
            std::slice::from_ref(&seg),
            1000,
            &ranks,
            MsOptions::default(),
        )
        .unwrap();
        let want = multi_select(&f, &ranks).unwrap();
        assert_eq!(got, want);
        // Out-of-window global ranks are rejected.
        for bad in [1000u64, 2001, 0] {
            assert!(multi_select_window(
                &c,
                std::slice::from_ref(&seg),
                1000,
                &[bad],
                MsOptions::default()
            )
            .is_err());
        }
    }

    #[test]
    fn linear_io_for_small_k() {
        // Theorem 4's headline: for K ≤ m the cost is O(N/B) — a bounded
        // number of scans, NOT the sort bound.
        let c = EmContext::new_in_memory(EmConfig::medium());
        let n = 200_000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 9)))
            .unwrap();
        let before = c.stats().snapshot();
        let ranks = vec![n / 4, n / 2, 3 * n / 4];
        let _ = multi_select(&f, &ranks).unwrap();
        let ios = c.stats().snapshot().since(&before).total_ios();
        let scan = n.div_ceil(64);
        assert!(
            ios <= 30 * scan,
            "multi-select of 3 ranks took {ios} I/Os = {:.1} scans",
            ios as f64 / scan as f64
        );
    }
}
