//! # emselect — the external-memory selection stack of SPAA'14
//!
//! Implements, bottom-up, every selection component of *"Finding
//! Approximate Partitions and Splitters in External Memory"* (Hu, Tao,
//! Yang, Zhou; SPAA 2014):
//!
//! | paper | here |
//! |---|---|
//! | in-memory selection [BFPRT 1973] | [`select_rank_in_mem`], [`multi_select_in_mem`], [`median_of_five`] |
//! | Hu et al.\[6\] linear-I/O Θ(M)-splitters (black box) | [`sample_splitters`] (deterministic + randomized; see DESIGN.md substitutions) |
//! | distribution step of [Aggarwal & Vitter 1988] | [`distribute`], [`three_way_split`] |
//! | multi-partition, `O((N/B)·lg_{M/B} K)` (§1.2) | [`multi_partition`], [`multi_partition_at_ranks`] |
//! | **L-intermixed selection** (§4.1, Lemma 6), `O(|D|/B)` | [`intermixed_select`] |
//! | **multi-selection** (§4.2, Theorem 4), `O((N/B)·lg_{M/B}(K/B))` | [`multi_select`], [`select_rank`], [`quantiles`] |
//!
//! ```
//! use emcore::{EmConfig, EmContext, EmFile};
//! use emselect::multi_select;
//!
//! let ctx = EmContext::new_in_memory(EmConfig::medium());
//! let data: Vec<u64> = (0..100_000).rev().collect();
//! let file = EmFile::from_slice(&ctx, &data).unwrap();
//! // The 25th/50th/75th percentiles, in far fewer I/Os than sorting:
//! let got = multi_select(&file, &[25_000, 50_000, 75_000]).unwrap();
//! assert_eq!(got, vec![24_999, 49_999, 74_999]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod distribute;
mod intermixed;
mod internal;
mod internal_bounds;
mod multi_partition;
mod multi_select;
mod partition_out;
mod recover;
mod sample_splitters;
mod split;

pub use distribute::{
    distribute, distribute_segs, max_distribution_fanout, max_distribution_fanout_now, stream_into,
    three_way_split, three_way_split_segs,
};
pub use intermixed::{intermixed_select, max_groups};
pub use internal::{median_of_five, multi_select_in_mem, select_rank_in_mem};
pub use internal_bounds::{multi_partition_counting, multi_select_counting, CmpCounter};
pub use multi_partition::{
    multi_partition, multi_partition_at_ranks, multi_partition_segs, multi_partition_with,
    MpOptions,
};
pub use multi_select::{
    base_case_capacity, base_case_capacity_n, multi_select, multi_select_segs, multi_select_window,
    multi_select_with, quantiles, select_rank, MsBaseCase, MsOptions,
};
pub use partition_out::{segs_len, ChainReader, Partition};
#[allow(deprecated)]
pub use recover::resume_multi_select;
pub use recover::{
    multi_select_recoverable, MultiSelectJob, MultiSelectManifest, MULTI_SELECT_JOURNAL,
};
pub use sample_splitters::{
    bucket_of, count_buckets, count_buckets_segs, max_deterministic_fanout,
    max_deterministic_fanout_n, refined_splitters, sample_splitters, sample_splitters_segs,
    SplitterStrategy, SAMPLE_RHO,
};
pub use split::{split_at_rank, split_at_rank_segs};
