//! Crash-recoverable multi-selection.
//!
//! [`crate::multi_select`] (paper Theorem 4) loses all work when a fatal
//! fault unwinds it mid-recursion. This module wraps the same algorithm in
//! a checkpointed [`MultiSelectManifest`] committed to a durable
//! [`emcore::Journal`], so a crash redoes at most one in-flight *work
//! unit* and every already-found splitter element survives.
//!
//! ## Work units
//!
//! The recursion of `multi_select_with` decomposes into:
//!
//! 1. **Partition prepass** (one unit; only when `K > m`): multi-partition
//!    the input at every `m`-th target rank into `g = ⌈K/m⌉` partitions.
//!    The partitions' segment files are journaled (and marked persistent)
//!    once the whole prepass is complete; a crash inside it redoes the
//!    prepass (its partial temporaries unwind).
//! 2. **Per-group base case** (one unit each): group `i` selects its ≤ `m`
//!    residual ranks inside partition `i`'s segments. The found elements
//!    are journaled — hex-encoded through their [`Record`] byte encoding —
//!    and the group's partition is released only *after* its answers are
//!    durable.
//!
//! Journal commits charge [`emcore::Counters::journal_writes`]; I/O spent
//! redoing an interrupted unit is additionally counted in
//! [`emcore::Counters::redone_ios`].
//!
//! ## Example: crash and resume
//!
//! ```
//! use emcore::{run_recoverable, EmConfig, EmContext, EmError, EmFile, FaultPlan};
//! use emselect::{MsOptions, MultiSelectJob, MultiSelectManifest};
//!
//! let ctx = EmContext::new_in_memory(EmConfig::tiny());
//! let data: Vec<u64> = (0..4000).rev().collect();
//! let input = EmFile::from_slice(&ctx, &data).unwrap();
//! let ranks: Vec<u64> = (1..=10).map(|i| i * 400).collect();
//!
//! let plan = FaultPlan::new(0).fatal_at(300);
//! ctx.install_fault_plan(plan.clone());
//! let mut opts = MsOptions::default();
//! opts.base_capacity_override = Some(3); // force several groups
//! let mut m = MultiSelectManifest::new(&input, &ranks, opts).unwrap();
//! assert!(matches!(
//!     run_recoverable(&ctx, &mut MultiSelectJob::new(&input, &mut m)),
//!     Err(EmError::Crashed)
//! ));
//! plan.clear_crash();
//! let got = run_recoverable(&ctx, &mut MultiSelectJob::new(&input, &mut m)).unwrap();
//! let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();
//! assert_eq!(got, want);
//! ```

#[cfg(test)]
use emcore::from_hex;
use emcore::{
    run_recoverable, to_hex, Counters, EmContext, EmError, EmFile, Journal, JournalState, Record,
    RecoverableJob, Result,
};

use crate::multi_partition::multi_partition_at_ranks;
use crate::multi_select::{base_case_capacity_n, multi_select_segs, MsOptions};
use crate::partition_out::{segs_len, Partition};

/// Name of the multi-selection checkpoint journal within its backing store.
pub const MULTI_SELECT_JOURNAL: &str = "multi-select-manifest";

fn rec_to_hex<T: Record>(r: &T) -> String {
    let mut buf = vec![0u8; T::BYTES];
    r.write_bytes(&mut buf);
    to_hex(&buf)
}

#[cfg(test)]
fn rec_from_hex<T: Record>(s: &str) -> Result<T> {
    let buf = from_hex(s)?;
    if buf.len() != T::BYTES {
        return Err(EmError::config(format!(
            "journaled record holds {} bytes, {} expected",
            buf.len(),
            T::BYTES
        )));
    }
    Ok(T::read_bytes(&buf))
}

/// Serialised image of a [`MultiSelectManifest`] — what the journal stores.
/// Partition segments appear as `(id, len)` pairs, answers as hex-encoded
/// record payloads.
#[derive(Debug, PartialEq, Eq)]
struct MsImage {
    input: (u64, u64),
    m: usize,
    partitioned: bool,
    next_group: usize,
    checkpoints: u64,
    ranks: Vec<u64>,
    offsets: Vec<u64>,
    /// Per-group segment lists; groups not yet built (or already released)
    /// are empty.
    parts: Vec<Vec<(u64, u64)>>,
    answers: Vec<String>,
}

impl JournalState for MsImage {
    const KIND: &'static str = "multi-select-manifest";
    const VERSION: u32 = 1;

    fn encode(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "input {} {}", self.input.0, self.input.1);
        let _ = writeln!(out, "m {}", self.m);
        let _ = writeln!(out, "partitioned {}", self.partitioned);
        let _ = writeln!(out, "next-group {}", self.next_group);
        let _ = writeln!(out, "checkpoints {}", self.checkpoints);
        for &r in &self.ranks {
            let _ = writeln!(out, "rank {r}");
        }
        for &o in &self.offsets {
            let _ = writeln!(out, "offset {o}");
        }
        for (i, segs) in self.parts.iter().enumerate() {
            let _ = write!(out, "part {i}");
            for (id, len) in segs {
                let _ = write!(out, " {id} {len}");
            }
            let _ = writeln!(out);
        }
        for a in &self.answers {
            let _ = writeln!(out, "answer {a}");
        }
    }

    fn decode(body: &str) -> Result<Self> {
        fn bad(line: &str) -> EmError {
            EmError::config(format!("multi-select journal: bad line {line:?}"))
        }
        let mut img = MsImage {
            input: (0, 0),
            m: 1,
            partitioned: false,
            next_group: 0,
            checkpoints: 0,
            ranks: Vec::new(),
            offsets: Vec::new(),
            parts: Vec::new(),
            answers: Vec::new(),
        };
        for line in body.lines() {
            let (key, rest) = line.split_once(' ').ok_or_else(|| bad(line))?;
            match key {
                "input" => {
                    let (a, b) = rest.split_once(' ').ok_or_else(|| bad(line))?;
                    img.input = (
                        a.parse().map_err(|_| bad(line))?,
                        b.parse().map_err(|_| bad(line))?,
                    );
                }
                "m" => img.m = rest.parse().map_err(|_| bad(line))?,
                "partitioned" => img.partitioned = rest.parse().map_err(|_| bad(line))?,
                "next-group" => img.next_group = rest.parse().map_err(|_| bad(line))?,
                "checkpoints" => img.checkpoints = rest.parse().map_err(|_| bad(line))?,
                "rank" => img.ranks.push(rest.parse().map_err(|_| bad(line))?),
                "offset" => img.offsets.push(rest.parse().map_err(|_| bad(line))?),
                "part" => {
                    let mut it = rest.split(' ');
                    let idx: usize = it
                        .next()
                        .ok_or_else(|| bad(line))?
                        .parse()
                        .map_err(|_| bad(line))?;
                    if idx != img.parts.len() {
                        return Err(bad(line));
                    }
                    let rest: Vec<&str> = it.collect();
                    if !rest.len().is_multiple_of(2) {
                        return Err(bad(line));
                    }
                    let mut segs = Vec::with_capacity(rest.len() / 2);
                    for pair in rest.chunks(2) {
                        segs.push((
                            pair[0].parse().map_err(|_| bad(line))?,
                            pair[1].parse().map_err(|_| bad(line))?,
                        ));
                    }
                    img.parts.push(segs);
                }
                "answer" => img.answers.push(rest.to_string()),
                _ => return Err(bad(line)),
            }
        }
        Ok(img)
    }
}

/// Checkpointed state of a recoverable multi-selection. Owns the prepass
/// partitions of groups not yet selected; survives any number of failed
/// resume attempts.
#[derive(Debug)]
pub struct MultiSelectManifest<T: Record> {
    ctx: EmContext,
    opts: MsOptions,
    /// Caller's rank list, in caller order (the output order).
    ranks: Vec<u64>,
    /// Sorted, deduplicated working ranks.
    sorted: Vec<u64>,
    /// Base-case group capacity at construction.
    m: usize,
    /// Number of rank groups `g = ⌈K/m⌉`.
    groups: usize,
    /// Input file identity `(id, len)`.
    input: (u64, u64),
    /// The partition prepass (unit 0) has completed (vacuously true when
    /// `g ≤ 1`).
    partitioned: bool,
    /// Per-group partitions (empty before the prepass and after release).
    parts: Vec<Partition<T>>,
    /// Global-rank offset of each group's partition.
    offsets: Vec<u64>,
    /// Found elements for groups `0..next_group`, in sorted-rank order.
    answers: Vec<T>,
    next_group: usize,
    checkpoints: u64,
    done: bool,
    in_flight: Option<u64>,
    max_unit_ios: u64,
    journal: Journal,
}

impl<T: Record> MultiSelectManifest<T> {
    /// A fresh manifest for selecting `ranks` (1-based, any order,
    /// duplicates allowed) from `input`. Validates ranks against the input
    /// length and charges the synthetic read of the caller's rank list,
    /// mirroring [`crate::multi_select_with`].
    pub fn new(input: &EmFile<T>, ranks: &[u64], opts: MsOptions) -> Result<Self> {
        let ctx = input.ctx().clone();
        let n = input.len();
        for &r in ranks {
            if r == 0 || r > n {
                return Err(EmError::config(format!("rank {r} out of range [1, {n}]")));
            }
        }
        ctx.stats()
            .charge_reads((ranks.len() as u64).div_ceil(ctx.config().block_size() as u64));
        let mut sorted: Vec<u64> = ranks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let m = base_case_capacity_n::<T>(&ctx, n, &opts);
        let groups = sorted.len().div_ceil(m.max(1));
        let journal = Journal::new(&ctx, MULTI_SELECT_JOURNAL).expect("valid journal name");
        Ok(Self {
            opts,
            ranks: ranks.to_vec(),
            sorted,
            m,
            groups,
            input: (input.id(), n),
            // A single group (or no ranks) needs no prepass.
            partitioned: groups <= 1,
            parts: Vec::new(),
            offsets: vec![0],
            answers: Vec::new(),
            next_group: 0,
            checkpoints: 0,
            done: false,
            in_flight: None,
            max_unit_ios: 0,
            journal,
            ctx,
        })
    }

    /// Whether selection has completed and yielded its output.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Completed work units so far (each one a checkpoint).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Number of rank groups (`⌈K/m⌉`; each is one work unit, plus one
    /// prepass unit when there is more than one group).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Largest I/O cost of any single completed work unit — the empirical
    /// bound on crash rework.
    pub fn max_unit_ios(&self) -> u64 {
        self.max_unit_ios
    }

    /// A human-readable snapshot of the manifest.
    pub fn describe(&self) -> String {
        let mut s = String::from("em-multi-select-manifest v1\n");
        self.image().encode(&mut s);
        s
    }

    fn image(&self) -> MsImage {
        MsImage {
            input: self.input,
            m: self.m,
            partitioned: self.partitioned,
            next_group: self.next_group,
            checkpoints: self.checkpoints,
            ranks: self.ranks.clone(),
            offsets: self.offsets.clone(),
            parts: self
                .parts
                .iter()
                .map(|p| p.segments().iter().map(|s| (s.id(), s.len())).collect())
                .collect(),
            answers: self.answers.iter().map(rec_to_hex).collect(),
        }
    }

    fn begin_unit(&mut self) -> (bool, Counters) {
        let redo = self.in_flight == Some(self.checkpoints);
        self.in_flight = Some(self.checkpoints);
        (redo, self.ctx.stats().snapshot())
    }

    fn end_unit(&mut self, redo: bool, before: Counters) {
        let spent = self.ctx.stats().snapshot().since(&before).total_ios();
        self.max_unit_ios = self.max_unit_ios.max(spent);
        if redo {
            self.ctx.stats().record_redone_ios(spent);
        }
    }

    fn checkpoint(&mut self) -> Result<()> {
        self.checkpoints += 1;
        self.journal.commit(&self.image())
    }
}

/// The checkpointed multi-selection as a [`RecoverableJob`]: drive it with
/// [`emcore::run_recoverable`]. Borrows the input and its manifest for the
/// duration of one resume attempt; build a fresh job value per attempt.
#[derive(Debug)]
pub struct MultiSelectJob<'a, T: Record> {
    input: &'a EmFile<T>,
    manifest: &'a mut MultiSelectManifest<T>,
}

impl<'a, T: Record> MultiSelectJob<'a, T> {
    /// A job that selects `manifest`'s ranks from `input`.
    pub fn new(input: &'a EmFile<T>, manifest: &'a mut MultiSelectManifest<T>) -> Self {
        Self { input, manifest }
    }
}

impl<T: Record> RecoverableJob for MultiSelectJob<'_, T> {
    type Output = Vec<T>;

    fn kind(&self) -> &'static str {
        "resume_multi_select"
    }

    fn journal_name(&self) -> &'static str {
        MULTI_SELECT_JOURNAL
    }

    fn is_done(&self) -> bool {
        self.manifest.done
    }

    fn check_input(&mut self) -> Result<()> {
        // Identity was bound at `MultiSelectManifest::new`; only verify.
        if self.manifest.input != (self.input.id(), self.input.len()) {
            return Err(EmError::config(format!(
                "resume_multi_select: manifest belongs to input (id {}, len {}), \
                 got (id {}, len {})",
                self.manifest.input.0,
                self.manifest.input.1,
                self.input.id(),
                self.input.len()
            )));
        }
        Ok(())
    }

    fn drive(&mut self, ctx: &EmContext) -> Result<Vec<T>> {
        let _phase = ctx.stats().phase_guard("multi-select/recoverable");
        resume_inner(self.input, self.manifest, ctx)
    }
}

/// One-shot recoverable multi-selection with default options — semantically
/// identical to [`crate::multi_select`], with checkpointing overhead. Use
/// [`MultiSelectManifest::new`] + [`MultiSelectJob`] +
/// [`emcore::run_recoverable`] directly to keep the manifest across
/// failures.
pub fn multi_select_recoverable<T: Record>(input: &EmFile<T>, ranks: &[u64]) -> Result<Vec<T>> {
    let mut manifest = MultiSelectManifest::new(input, ranks, MsOptions::default())?;
    let ctx = manifest.ctx.clone();
    run_recoverable(&ctx, &mut MultiSelectJob::new(input, &mut manifest))
}

/// Drive the multi-selection of `input` forward from wherever `manifest`
/// left off, until completion or the next terminal error. Idempotent over
/// failures: only the interrupted work unit is redone on the next call.
/// Returns the selected elements in the caller's original rank order.
#[deprecated(note = "use emcore::run_recoverable with emselect::MultiSelectJob")]
pub fn resume_multi_select<T: Record>(
    input: &EmFile<T>,
    manifest: &mut MultiSelectManifest<T>,
) -> Result<Vec<T>> {
    let ctx = manifest.ctx.clone();
    run_recoverable(&ctx, &mut MultiSelectJob::new(input, manifest))
}

fn resume_inner<T: Record>(
    input: &EmFile<T>,
    manifest: &mut MultiSelectManifest<T>,
    ctx: &EmContext,
) -> Result<Vec<T>> {
    let k = manifest.sorted.len();
    let m = manifest.m;
    let g = manifest.groups;

    // Unit 0: partition prepass at every m-th target rank (only when the
    // rank set spans several groups).
    if !manifest.partitioned {
        let (redo, before) = manifest.begin_unit();
        let boundaries: Vec<u64> = (1..g).map(|i| manifest.sorted[i * m - 1]).collect();
        let parts = multi_partition_at_ranks(input, &boundaries)?;
        debug_assert_eq!(parts.len(), g);
        // ---- checkpoint: all partitions durable, referenced by the journal ----
        for p in &parts {
            for s in p.segments() {
                s.set_persistent(true);
            }
        }
        let mut offsets = Vec::with_capacity(g);
        offsets.push(0);
        offsets.extend(boundaries);
        manifest.parts = parts;
        manifest.offsets = offsets;
        manifest.partitioned = true;
        manifest.checkpoint()?;
        manifest.end_unit(redo, before);
    }

    // Units 1..=g: per-group base-case selection.
    while manifest.next_group < g {
        let i = manifest.next_group;
        let (redo, before) = manifest.begin_unit();
        let lo = i * m;
        let hi = ((i + 1) * m).min(k);
        let offset = manifest.offsets[i];
        let local: Vec<u64> = manifest.sorted[lo..hi]
            .iter()
            .map(|&r| r - offset)
            .collect();
        let found = if g == 1 {
            multi_select_segs(ctx, std::slice::from_ref(input), &local, manifest.opts)?
        } else {
            debug_assert_eq!(segs_len(manifest.parts[i].segments()), {
                let end = manifest
                    .offsets
                    .get(i + 1)
                    .copied()
                    .unwrap_or(manifest.input.1);
                end - offset
            });
            multi_select_segs(ctx, manifest.parts[i].segments(), &local, manifest.opts)?
        };
        manifest.answers.extend(found);
        manifest.next_group += 1;
        // ---- checkpoint: the group's splitter elements are durable ----
        manifest.checkpoint()?;
        // Only now is the group's partition releasable.
        if g > 1 {
            let part = std::mem::replace(&mut manifest.parts[i], Partition::empty());
            for s in part.segments() {
                s.set_persistent(false);
            }
        }
        manifest.end_unit(redo, before);
    }

    // Map answers (sorted-rank order) back to the caller's order.
    debug_assert_eq!(manifest.answers.len(), k);
    let out = manifest
        .ranks
        .iter()
        .map(|r| {
            let i = manifest.sorted.binary_search(r).expect("rank present");
            manifest.answers[i]
        })
        .collect();
    manifest.done = true;
    manifest.journal.remove()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, FaultPlan};

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        emcore::SplitMix64::new(seed).shuffle(&mut v);
        v
    }

    /// The canonical resume idiom: drive the job via `run_recoverable`.
    /// (`resume_multi_select` is only a deprecated shim over exactly this.)
    fn resume(f: &EmFile<u64>, m: &mut MultiSelectManifest<u64>) -> Result<Vec<u64>> {
        let c = f.ctx().clone();
        run_recoverable(&c, &mut MultiSelectJob::new(f, m))
    }

    fn many_group_opts() -> MsOptions {
        MsOptions {
            base_capacity_override: Some(3),
            ..MsOptions::default()
        }
    }

    #[test]
    fn fault_free_matches_plain_multi_select() {
        let c = EmContext::new_in_memory_strict(EmConfig::tiny());
        let n = 6000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 11)))
            .unwrap();
        let ranks: Vec<u64> = vec![4000, 7, 7, 1500, 3000, 5999, 420, 2222, 808, 1, 6000];
        let want = crate::multi_select(&f, &ranks).unwrap();
        let mut m = MultiSelectManifest::new(&f, &ranks, many_group_opts()).unwrap();
        let got = resume(&f, &mut m).unwrap();
        assert_eq!(got, want);
        assert!(m.is_done());
        assert!(m.groups() > 1, "override must force several groups");
        let stats = c.stats().snapshot();
        assert_eq!(stats.redone_ios, 0);
        assert!(stats.journal_writes as usize >= m.groups());
    }

    #[test]
    fn single_group_path() {
        let c = EmContext::new_in_memory_strict(EmConfig::tiny());
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(3000, 12)))
            .unwrap();
        let got = multi_select_recoverable(&f, &[1, 1500, 3000]).unwrap();
        assert_eq!(got, vec![0, 1499, 2999]);
    }

    #[test]
    fn empty_ranks_complete_immediately() {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = EmFile::from_slice(&c, &[5u64, 1]).unwrap();
        assert!(multi_select_recoverable(&f, &[]).unwrap().is_empty());
    }

    #[test]
    fn rank_out_of_range_rejected() {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = EmFile::from_slice(&c, &[1u64, 2, 3]).unwrap();
        assert!(MultiSelectManifest::new(&f, &[0], MsOptions::default()).is_err());
        assert!(MultiSelectManifest::new(&f, &[4], MsOptions::default()).is_err());
    }

    // Keeps the deprecated `resume_multi_select` shim covered until it is
    // removed; every other test resumes via `run_recoverable` directly.
    #[test]
    #[allow(deprecated)]
    fn crash_and_resume_preserves_output_and_bounds_rework() {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let n = 5000u64;
        let data = shuffled(n, 13);
        let ranks: Vec<u64> = (1..=12).map(|i| i * 400).collect();
        // Fault-free reference.
        let want: Vec<u64> = ranks.iter().map(|&r| r - 1).collect();

        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let plan = FaultPlan::new(0).fatal_at(250);
        c.install_fault_plan(plan.clone());
        let mut m = MultiSelectManifest::new(&f, &ranks, many_group_opts()).unwrap();
        let mut crashes = 0;
        let got = loop {
            match resume_multi_select(&f, &mut m) {
                Ok(out) => break out,
                Err(EmError::Crashed) => {
                    crashes += 1;
                    assert!(crashes < 100);
                    plan.clear_crash();
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(got, want);
        assert_eq!(crashes, 1);
        let stats = c.stats().snapshot();
        assert!(stats.redone_ios > 0);
        assert!(
            stats.redone_ios <= m.max_unit_ios(),
            "rework {} vs unit bound {}",
            stats.redone_ios,
            m.max_unit_ios()
        );
    }

    #[test]
    fn completed_manifest_rejects_reuse_and_wrong_input() {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = EmFile::from_slice(&c, &shuffled(100, 14)).unwrap();
        let mut m = MultiSelectManifest::new(&f, &[50], MsOptions::default()).unwrap();
        let _ = resume(&f, &mut m).unwrap();
        assert!(matches!(resume(&f, &mut m), Err(EmError::Config(_))));
        let g = EmFile::from_slice(&c, &[1u64, 2]).unwrap();
        let mut m2 = MultiSelectManifest::new(&f, &[50], MsOptions::default()).unwrap();
        assert!(matches!(resume(&g, &mut m2), Err(EmError::Config(_))));
    }

    #[test]
    fn journal_cleaned_up_on_completion_disk() {
        let ranks: Vec<u64> = (1..=9).map(|i| i * 400).collect();
        // Measure a fault-free run's device-attempt count so the crash can
        // be planted near the end, i.e. after several checkpoints.
        let attempts = {
            let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
            let f = c
                .stats()
                .paused(|| EmFile::from_slice(&c, &shuffled(4000, 15)))
                .unwrap();
            let p = FaultPlan::new(0);
            c.install_fault_plan(p.clone());
            let mut m = MultiSelectManifest::new(&f, &ranks, many_group_opts()).unwrap();
            resume(&f, &mut m).unwrap();
            p.attempts()
        };

        let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(4000, 15)))
            .unwrap();
        let meta = c
            .backing_dir()
            .unwrap()
            .join("multi-select-manifest.journal");
        let plan = FaultPlan::new(0).fatal_at(attempts - 5);
        c.install_fault_plan(plan.clone());
        let mut m = MultiSelectManifest::new(&f, &ranks, many_group_opts()).unwrap();
        assert!(resume(&f, &mut m).is_err());
        assert!(m.checkpoints() > 0, "crash planted after first checkpoint");
        assert!(meta.exists(), "journal persisted after crash");
        plan.clear_crash();
        let got = resume(&f, &mut m).unwrap();
        assert_eq!(got.len(), ranks.len());
        assert!(!meta.exists(), "journal removed after completion");
    }

    #[test]
    fn image_roundtrips_through_journal_encoding() {
        let img = MsImage {
            input: (3, 9000),
            m: 4,
            partitioned: true,
            next_group: 2,
            checkpoints: 3,
            ranks: vec![100, 50, 100],
            offsets: vec![0, 60, 120],
            parts: vec![vec![], vec![(7, 60), (8, 60)], vec![(9, 8880)]],
            answers: vec![rec_to_hex(&42u64), rec_to_hex(&u64::MAX)],
        };
        let mut body = String::new();
        img.encode(&mut body);
        assert_eq!(MsImage::decode(&body).unwrap(), img);
        assert_eq!(rec_from_hex::<u64>(&img.answers[1]).unwrap(), u64::MAX);
    }
}
