//! Approximate even splitters in linear I/Os.
//!
//! This is the workspace's stand-in for the Hu et al.\[6\] black box the
//! paper invokes in §4.2: a routine that, given `S` of size `n`, returns
//! `f − 1` splitters whose induced buckets all have size `O(n/f)`, in
//! `O(n/B)` I/Os.
//!
//! Two strategies (compared in ablation experiment EX-A1):
//!
//! * **Deterministic** multi-level regular sampling: sort memory-loads,
//!   keep every `ρ`-th element, recurse on the sample until it fits in
//!   memory, then pick evenly. Rank error after `L` levels is at most
//!   `ρ·L·n/C` (`C` = load capacity), so every bucket is within `n/f ±
//!   2·ρ·L·n/C`; the guarantee `bucket ≤ 2n/f` holds whenever
//!   `f ≤ fmax = C/(4·ρ·L)` — see [`max_deterministic_fanout`]. This makes
//!   the deterministic base-case capacity of Theorem 4 `Θ(M/log(N/M))`
//!   rather than `Θ(M)`; see DESIGN.md "substitutions".
//! * **Randomized** reservoir sampling: one scan keeps a uniform sample of
//!   `min(C/2, 16·f·ln n)` records; even picks from the sorted sample give
//!   buckets `≤ 2n/f` w.h.p. for `f` up to `Θ(M)`.
//!
//! All entry points come in two flavours: over a single [`EmFile`] and
//! over a *segment list* (`&[EmFile<T>]`, as produced by
//! [`crate::Partition`]) — the latter avoids flattening partitions before
//! scanning them.

use emcore::SplitMix64;
use emcore::{EmContext, EmError, EmFile, Record, Result};

use crate::partition_out::{segs_len, ChainReader};

/// The per-level thinning factor of the deterministic strategy.
pub const SAMPLE_RHO: usize = 4;

/// How splitters are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitterStrategy {
    /// Multi-level regular sampling; worst-case bucket guarantee, smaller
    /// maximum fan-out.
    #[default]
    Deterministic,
    /// Reservoir sampling with the given seed; `Θ(M)` fan-out with
    /// high-probability bucket guarantee.
    Randomized {
        /// RNG seed (experiments are reproducible bit-for-bit).
        seed: u64,
    },
}

/// In-memory load capacity used by sampling. Reserves four block buffers:
/// sampling's own reader and writer, plus up to two persistent buffers a
/// caller (e.g. multi-partition's output sink) may hold across the call.
fn load_capacity<T: Record>(ctx: &EmContext) -> usize {
    let cfg = ctx.config();
    ctx.mem_records::<T>()
        .saturating_sub(4 * cfg.block_size())
        .max(cfg.block_size())
}

/// Number of sampling levels the deterministic strategy needs for `n`
/// records with load capacity `cap`.
fn levels(n: u64, cap: usize) -> u32 {
    let mut lv = 0u32;
    let mut m = n;
    while m > cap as u64 {
        m /= SAMPLE_RHO as u64;
        lv += 1;
    }
    lv.max(1)
}

/// Largest fan-out for which the deterministic strategy guarantees every
/// bucket `≤ 2n/f`: `f ≤ C/(4·ρ·L)` where `L = ceil(log_ρ(n/C))`.
pub fn max_deterministic_fanout<T: Record>(file: &EmFile<T>) -> usize {
    max_deterministic_fanout_n::<T>(file.ctx(), file.len())
}

/// [`max_deterministic_fanout`] from an explicit input size.
pub fn max_deterministic_fanout_n<T: Record>(ctx: &EmContext, n: u64) -> usize {
    let cap = load_capacity::<T>(ctx);
    if n <= cap as u64 {
        // Everything fits in memory: splitters are exact, any fan-out works
        // (bounded by the number of records).
        return cap.max(2);
    }
    let lv = levels(n, cap) as usize;
    (cap / (4 * SAMPLE_RHO * lv)).max(2)
}

/// Find `f − 1` splitters of `input` such that every induced bucket
/// `(s_{j-1}, s_j]` has at most `≈ 2n/f` records (guaranteed for the
/// deterministic strategy when `f ≤ max_deterministic_fanout`, w.h.p. for
/// the randomized one). Costs `O(n/B)` I/Os. The splitters are returned in
/// ascending key order as whole records.
pub fn sample_splitters<T: Record>(
    input: &EmFile<T>,
    f: usize,
    strategy: SplitterStrategy,
) -> Result<Vec<T>> {
    sample_splitters_segs(input.ctx(), std::slice::from_ref(input), f, strategy)
}

/// [`sample_splitters`] over a segment list.
pub fn sample_splitters_segs<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    f: usize,
    strategy: SplitterStrategy,
) -> Result<Vec<T>> {
    if f < 2 {
        return Err(EmError::config(format!("fan-out must be ≥ 2, got {f}")));
    }
    if segs_len(segs) == 0 {
        return Ok(Vec::new());
    }
    let _phase = ctx.stats().phase_guard("sample-splitters");
    match strategy {
        SplitterStrategy::Deterministic => deterministic(ctx, segs, f),
        SplitterStrategy::Randomized { seed } => randomized(ctx, segs, f, seed),
    }
}

fn pick_even<T: Record>(sorted: &[T], f: usize) -> Vec<T> {
    // Splitter i (1-based, i = 1..f-1) is the element of rank
    // round(i·n/f) in the (sorted) sample.
    let n = sorted.len();
    let mut out = Vec::with_capacity(f - 1);
    for i in 1..f {
        let rank = ((i as u64 * n as u64) / f as u64).max(1);
        out.push(sorted[(rank - 1) as usize]);
    }
    out
}

fn deterministic<T: Record>(ctx: &EmContext, segs: &[EmFile<T>], f: usize) -> Result<Vec<T>> {
    let cap = load_capacity::<T>(ctx);

    // Level 0 reads the borrowed segments; subsequent levels own their
    // sample files.
    let mut current: Option<EmFile<T>> = None;
    loop {
        let len = match &current {
            None => segs_len(segs),
            Some(fl) => fl.len(),
        };
        if len <= cap as u64 {
            // Load, sort, pick evenly.
            let mut buf = ctx.try_tracked_vec::<T>(len as usize, "splitter final sample")?;
            match &current {
                None => {
                    let mut r = ChainReader::new(segs);
                    while let Some(x) = r.next()? {
                        buf.push(x);
                    }
                }
                Some(fl) => {
                    let mut r = fl.reader()?;
                    while let Some(x) = r.next()? {
                        buf.push(x);
                    }
                }
            }
            buf.sort_unstable_by_key(|a| a.key());
            let f_eff = f.min(buf.len().max(2));
            return Ok(pick_even(&buf, f_eff));
        }
        // One reduction level: sort chunks of `cap`, keep every ρ-th.
        let mut load = ctx.try_tracked_vec::<T>(cap, "splitter sample chunk")?;
        let mut w = ctx.writer::<T>()?;
        {
            let mut reduce = |next: &mut dyn FnMut() -> Result<Option<T>>| -> Result<()> {
                loop {
                    load.clear();
                    while load.len() < cap {
                        match next()? {
                            Some(x) => load.push(x),
                            None => break,
                        }
                    }
                    if load.is_empty() {
                        return Ok(());
                    }
                    load.sort_unstable_by_key(|a| a.key());
                    let mut i = SAMPLE_RHO - 1;
                    while i < load.len() {
                        w.push(load[i])?;
                        i += SAMPLE_RHO;
                    }
                    if load.len() < cap {
                        return Ok(());
                    }
                }
            };
            match &current {
                None => {
                    let mut r = ChainReader::new(segs);
                    reduce(&mut || r.next())?;
                }
                Some(fl) => {
                    let mut r = fl.reader()?;
                    reduce(&mut || r.next())?;
                }
            }
        }
        drop(load);
        current = Some(w.finish()?);
    }
}

fn randomized<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    f: usize,
    seed: u64,
) -> Result<Vec<T>> {
    let n = segs_len(segs);
    let cap = load_capacity::<T>(ctx);
    let target = ((16.0 * f as f64 * (n.max(2) as f64).ln()) as usize)
        .clamp(f, cap / 2)
        .max(2);
    let mut rng = SplitMix64::new(seed);
    let mut reservoir = ctx.try_tracked_vec::<T>(target, "splitter reservoir")?;
    let mut r = ChainReader::new(segs);
    let mut seen = 0u64;
    while let Some(x) = r.next()? {
        seen += 1;
        if reservoir.len() < target {
            reservoir.push(x);
        } else {
            let j = rng.below(seen) as usize;
            if j < target {
                reservoir[j] = x;
            }
        }
    }
    reservoir.sort_unstable_by_key(|a| a.key());
    let f_eff = f.min(reservoir.len().max(2));
    Ok(pick_even(&reservoir, f_eff))
}

/// Iterated-refinement deterministic splitters: two sampling rounds reach
/// fan-outs far beyond [`max_deterministic_fanout`], up to `Θ(M)`.
///
/// Round 1 finds `f₀ − 1` splitters and distributes the input into `f₀`
/// buckets (`≤ 2n/f₀` each); round 2 samples each bucket independently for
/// `f₁ − 1` sub-splitters (`≤ 2·bucket/f₁` each), giving `f₀·f₁` buckets of
/// size `≤ 4n/(f₀·f₁)`. Since each round's cap is `Θ(M/log(N/M))`, the
/// product reaches `Θ((M/log)²) ≫ M` — in practice limited only by the
/// memory needed to hold the splitters themselves (`≤ M/4` words here).
///
/// This is the workspace's closest realisation of the Hu et al.\[6\]
/// `Θ(M)`-splitter black box (paper §4.2): it restores the base-case
/// capacity `m = Θ(M)` of Theorem 4 for the intermixed engine, at the cost
/// of one extra distribution pass (`+2` scans), keeping the total `O(n/B)`.
pub fn refined_splitters<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    f_target: usize,
) -> Result<Vec<T>> {
    let n = segs_len(segs);
    if n == 0 {
        return Ok(Vec::new());
    }
    // The refined splitter array must stay memory-resident for the caller:
    // cap its footprint at M/4 words.
    let store_cap = (ctx.mem_budget() / (4 * T::WORDS)).max(4);
    let f_target = f_target.clamp(2, store_cap);
    let f0 = max_deterministic_fanout_n::<T>(ctx, n)
        .min(crate::distribute::max_distribution_fanout_now::<T>(ctx))
        .max(2);
    if f_target <= f0 {
        return sample_splitters_segs(ctx, segs, f_target, SplitterStrategy::Deterministic);
    }
    let _phase = ctx.stats().phase_guard("refined-splitters");
    let round1 = sample_splitters_segs(ctx, segs, f0, SplitterStrategy::Deterministic)?;
    let buckets = crate::distribute::distribute_segs(ctx, segs, &round1)?;
    let f1 = f_target.div_ceil(f0).max(2);
    let mut out = Vec::with_capacity(f0 * f1);
    for (i, bucket) in buckets.iter().enumerate() {
        if !bucket.is_empty() {
            let f1_eff = f1.min(max_deterministic_fanout_n::<T>(ctx, bucket.len()).max(2));
            out.extend(sample_splitters_segs(
                ctx,
                std::slice::from_ref(bucket),
                f1_eff,
                SplitterStrategy::Deterministic,
            )?);
        }
        if i + 1 < buckets.len() {
            out.push(round1[i]);
        }
    }
    // Sub-splitters are within-bucket ascending and buckets are ordered,
    // but defensively enforce global order (ties across equal keys).
    out.sort_unstable_by_key(|a| a.key());
    Ok(out)
}

/// Count the number of records of `input` falling into each of the `f`
/// buckets `(-∞, s_1], (s_1, s_2], …, (s_{f-2}, s_{f-1}], (s_{f-1}, ∞)`
/// induced by `splitters` (ascending). One scan; the splitter array is
/// charged to memory for its duration.
pub fn count_buckets<T: Record>(input: &EmFile<T>, splitters: &[T]) -> Result<Vec<u64>> {
    count_buckets_segs(input.ctx(), std::slice::from_ref(input), splitters)
}

/// [`count_buckets`] over a segment list.
pub fn count_buckets_segs<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    splitters: &[T],
) -> Result<Vec<u64>> {
    let _charge = ctx
        .mem()
        .try_charge(splitters.len() * T::WORDS, "bucket-count splitters")?;
    let mut counts = vec![0u64; splitters.len() + 1];
    let mut r = ChainReader::new(segs);
    while let Some(x) = r.next()? {
        counts[bucket_of(splitters, &x.key())] += 1;
    }
    Ok(counts)
}

/// The bucket index of `key` among ascending `splitters`: the number of
/// splitters strictly smaller than `key` (so bucket `j` receives keys in
/// `(s_{j-1}, s_j]`, matching the paper's partition convention).
#[inline]
pub fn bucket_of<T: Record>(splitters: &[T], key: &T::Key) -> usize {
    splitters.partition_point(|s| s.key() < *key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext};

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny()) // M=256, B=16
    }

    fn shuffled(n: u64) -> Vec<u64> {
        // Fixed-seed Fisher-Yates via LCG for determinism.
        let mut v: Vec<u64> = (0..n).collect();
        let mut s = 99u64;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    fn check_buckets(input: &EmFile<u64>, splitters: &[u64], f: usize, slack: f64) {
        let counts = count_buckets(input, splitters).unwrap();
        assert_eq!(counts.len(), splitters.len() + 1);
        let n = input.len() as f64;
        let bound = slack * n / f as f64 + 1.0;
        for (j, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) <= bound,
                "bucket {j} has {c} records > bound {bound} (n={n}, f={f})"
            );
        }
        assert_eq!(counts.iter().sum::<u64>(), input.len());
    }

    #[test]
    fn bucket_of_convention() {
        let sp: Vec<u64> = vec![10, 20, 30];
        assert_eq!(bucket_of(&sp, &5), 0);
        assert_eq!(bucket_of(&sp, &10), 0); // key ≤ s_1 → bucket 0
        assert_eq!(bucket_of(&sp, &11), 1);
        assert_eq!(bucket_of(&sp, &20), 1);
        assert_eq!(bucket_of(&sp, &30), 2);
        assert_eq!(bucket_of(&sp, &31), 3);
    }

    #[test]
    fn deterministic_small_input_exact() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &shuffled(100)).unwrap();
        let sp = sample_splitters(&f, 4, SplitterStrategy::Deterministic).unwrap();
        assert_eq!(sp.len(), 3);
        // exact quartiles of 0..100 ranks 25,50,75 → values 24,49,74
        assert_eq!(sp, vec![24, 49, 74]);
    }

    #[test]
    fn deterministic_large_input_bucket_guarantee() {
        let c = ctx();
        let n = 20_000u64;
        let data = shuffled(n);
        let file = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let fmax = max_deterministic_fanout(&file);
        assert!(fmax >= 2, "fmax = {fmax}");
        let sp = sample_splitters(&file, fmax, SplitterStrategy::Deterministic).unwrap();
        assert_eq!(sp.len(), fmax - 1);
        check_buckets(&file, &sp, fmax, 2.0);
    }

    #[test]
    fn deterministic_is_linear_io() {
        let c = ctx();
        let n = 40_000u64;
        let file = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n)))
            .unwrap();
        let before = c.stats().snapshot();
        let f = max_deterministic_fanout(&file);
        let _ = sample_splitters(&file, f, SplitterStrategy::Deterministic).unwrap();
        let ios = c.stats().snapshot().since(&before).total_ios();
        let scan = n.div_ceil(16);
        // reduction levels cost a geometric series: < 2 scans read + 1/3 write
        assert!(
            ios <= 3 * scan,
            "sampling took {ios} I/Os, more than 3 scans ({scan} each)"
        );
    }

    #[test]
    fn randomized_bucket_guarantee() {
        let c = ctx();
        let n = 20_000u64;
        let file = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n)))
            .unwrap();
        for seed in [1u64, 7, 42] {
            let f = 8;
            let sp = sample_splitters(&file, f, SplitterStrategy::Randomized { seed }).unwrap();
            assert_eq!(sp.len(), f - 1);
            check_buckets(&file, &sp, f, 2.5);
        }
    }

    #[test]
    fn randomized_single_scan() {
        let c = ctx();
        let n = 10_000u64;
        let file = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n)))
            .unwrap();
        let before = c.stats().snapshot();
        let _ = sample_splitters(&file, 8, SplitterStrategy::Randomized { seed: 3 }).unwrap();
        let d = c.stats().snapshot().since(&before);
        assert_eq!(d.reads, n.div_ceil(16));
        assert_eq!(d.writes, 0);
    }

    #[test]
    fn sorted_input_splitters() {
        let c = ctx();
        let data: Vec<u64> = (0..5000).collect();
        let file = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let f = max_deterministic_fanout(&file);
        let sp = sample_splitters(&file, f, SplitterStrategy::Deterministic).unwrap();
        check_buckets(&file, &sp, f, 2.0);
        // splitters ascending
        assert!(sp.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn duplicate_heavy_input() {
        let c = ctx();
        let data: Vec<u64> = (0..5000u64).map(|i| i % 3).collect();
        let file = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        // No bucket guarantee possible with 3 distinct keys; just sanity.
        let sp = sample_splitters(&file, 4, SplitterStrategy::Deterministic).unwrap();
        assert_eq!(sp.len(), 3);
        let counts = count_buckets(&file, &sp).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 5000);
    }

    #[test]
    fn empty_input_no_splitters() {
        let c = ctx();
        let file = c.create_file::<u64>().unwrap();
        let sp = sample_splitters(&file, 8, SplitterStrategy::Deterministic).unwrap();
        assert!(sp.is_empty());
    }

    #[test]
    fn fanout_below_two_rejected() {
        let c = ctx();
        let file = EmFile::from_slice(&c, &[1u64, 2]).unwrap();
        assert!(sample_splitters(&file, 1, SplitterStrategy::Deterministic).is_err());
    }

    #[test]
    fn fanout_larger_than_input() {
        let c = ctx();
        let file = EmFile::from_slice(&c, &[3u64, 1, 2]).unwrap();
        let sp = sample_splitters(&file, 10, SplitterStrategy::Deterministic).unwrap();
        // f clamps to n; still ascending and within data
        assert!(!sp.is_empty());
        assert!(sp.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn max_fanout_monotone_reasonable() {
        let c = ctx();
        let small = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(100)))
            .unwrap();
        let big = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(100_000)))
            .unwrap();
        assert!(max_deterministic_fanout(&small) >= max_deterministic_fanout(&big));
        assert!(max_deterministic_fanout(&big) >= 2);
    }

    #[test]
    fn refined_reaches_beyond_single_round_cap() {
        let c = EmContext::new_in_memory(EmConfig::medium()); // M=4096, B=64
        let n = 100_000u64;
        let file = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n)))
            .unwrap();
        let f0 = max_deterministic_fanout(&file);
        let target = 4 * f0;
        let sp = refined_splitters(&c, std::slice::from_ref(&file), target).unwrap();
        assert!(
            sp.len() + 1 >= 2 * f0,
            "refined fan-out {} should exceed single-round cap {f0}",
            sp.len() + 1
        );
        assert!(sp.windows(2).all(|w| w[0] <= w[1]));
        // Bucket guarantee ≤ 4n/f'.
        let counts = count_buckets(&file, &sp).unwrap();
        let f_eff = counts.len() as f64;
        let bound = 4.0 * n as f64 / f_eff + 1.0;
        for (j, &cnt) in counts.iter().enumerate() {
            assert!(
                (cnt as f64) <= bound,
                "bucket {j}: {cnt} > {bound} (f' = {f_eff})"
            );
        }
        assert_eq!(counts.iter().sum::<u64>(), n);
    }

    #[test]
    fn refined_is_linear_io() {
        let c = EmContext::new_in_memory(EmConfig::medium());
        let n = 100_000u64;
        let file = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n)))
            .unwrap();
        let before = c.stats().snapshot();
        let f0 = max_deterministic_fanout(&file);
        let _ = refined_splitters(&c, std::slice::from_ref(&file), 8 * f0).unwrap();
        let ios = c.stats().snapshot().since(&before).total_ios();
        let scan = n.div_ceil(64);
        // round-1 sampling (~1.7) + distribute (2) + per-bucket sampling (~1.7)
        assert!(
            ios <= 7 * scan,
            "refined sampling took {ios} I/Os = {:.1} scans",
            ios as f64 / scan as f64
        );
    }

    #[test]
    fn refined_small_target_delegates() {
        let c = ctx();
        let file = EmFile::from_slice(&c, &shuffled(100)).unwrap();
        let sp = refined_splitters(&c, std::slice::from_ref(&file), 4).unwrap();
        assert_eq!(sp, vec![24, 49, 74]);
    }

    #[test]
    fn refined_empty_input() {
        let c = ctx();
        let file = c.create_file::<u64>().unwrap();
        assert!(refined_splitters(&c, std::slice::from_ref(&file), 64)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn segmented_input_matches_single_file() {
        let c = ctx();
        let data = shuffled(3000);
        let whole = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let seg_a = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &data[..1000]))
            .unwrap();
        let seg_b = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &data[1000..]))
            .unwrap();
        let segs = vec![seg_a, seg_b];
        let sp1 = sample_splitters(&whole, 4, SplitterStrategy::Deterministic).unwrap();
        let sp2 = sample_splitters_segs(&c, &segs, 4, SplitterStrategy::Deterministic).unwrap();
        assert_eq!(sp1, sp2, "segmentation must not change the sample");
        let c1 = count_buckets(&whole, &sp1).unwrap();
        let c2 = count_buckets_segs(&c, &segs, &sp1).unwrap();
        assert_eq!(c1, c2);
    }
}
