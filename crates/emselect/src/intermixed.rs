//! L-intermixed selection (paper §4.1, Lemma 6).
//!
//! Input: a file `D` of `(key, group)` pairs with groups in `[0, L)`, and a
//! target rank `t_i ∈ [1, |D_i|]` per group. Output: for every group `i`,
//! the element with the `t_i`-th smallest key within that group. All `L`
//! rank selections run *concurrently* over the intermixed file in
//! `O(|D|/B)` I/Os total.
//!
//! The algorithm is the paper's: run `L` threads of median-of-medians
//! [BFPRT 1973] concurrently with `O(1)` in-memory state per thread —
//! a 5-slot subgroup buffer, the running target `t_i`, the recursion
//! medians `μ_i`, and the rank counters `θ_i` (realised here as three-way
//! `less/equal` counters, which makes duplicate keys exact). Per round:
//!
//! 1. one scan collects the medians of subgroups of 5 into `Σ` (grouped
//!    like `D`),
//! 2. a recursive call finds the median `μ_i` of each `Σ_i`,
//! 3. one scan counts, per group, the elements `< μ_i` and `= μ_i`,
//! 4. groups whose target falls on `μ_i` resolve; the rest keep only the
//!    side of `μ_i` their target lies in, forming `D'`, and the loop
//!    repeats on `D'` (`|Σ| + |D'| ≤ (19/20)|D|`, so the total cost
//!    telescopes to `O(|D|/B)`).
//!
//! One deviation from the paper's exposition, documented in DESIGN.md: the
//! parent's `O(L)` bookkeeping words are *spilled to disk* across the
//! recursive call of step 2 (and the child returns its medians via a disk
//! file), so peak memory stays `O(L)` regardless of recursion depth instead
//! of `O(L·depth)`.

use emcore::{EmConfig, EmContext, EmError, EmFile, Record, Result, SpillVec, Tagged};

use crate::internal::median_of_five;

/// Maximum number of groups `L` an intermixed-selection instance may have
/// under memory capacity `M`: the per-group in-memory state (5-slot
/// subgroup buffer, targets, medians, counters) must fit comfortably
/// inside `M`. This is the paper's `m = cM` with `c = 1/(12·(w+1))` for
/// records of `w` words.
pub fn max_groups<R: Record>(config: EmConfig) -> usize {
    (config.mem_capacity() / (12 * (R::WORDS + 1))).max(1)
}

/// Solve the L-intermixed selection problem on `d` (consumed): for each
/// group `i` in `[0, targets.len())`, return the record whose key has rank
/// `targets[i]` (1-based) within group `i`.
///
/// Errors if `targets.len()` exceeds [`max_groups`], if any target is 0 or
/// exceeds its group's size, or if a group has no records.
pub fn intermixed_select<R: Record>(d: EmFile<Tagged<R>>, targets: &[u64]) -> Result<Vec<R>> {
    let ctx = d.ctx().clone();
    let l = targets.len();
    if l == 0 {
        return Ok(Vec::new());
    }
    let cap = max_groups::<R>(ctx.config());
    if l > cap {
        return Err(EmError::config(format!(
            "intermixed selection with L={l} groups exceeds capacity m={cap} for M={}",
            ctx.config().mem_capacity()
        )));
    }
    let mut ts = ctx.try_tracked_words::<u64>(l, "intermixed targets")?;
    for &t in targets {
        if t == 0 {
            return Err(EmError::config("targets are 1-based; got 0"));
        }
        ts.push(t);
    }
    let ts = SpillVec::from_tracked(&ctx, ts, "intermixed targets");

    let phase = ctx.stats().phase_guard("intermixed-select");
    let resolved = solve(&ctx, d, ts);
    drop(phase);
    let resolved = resolved?;

    let mut out: Vec<Option<R>> = vec![None; l];
    let mut r = resolved.reader()?;
    while let Some(p) = r.next()? {
        out[p.group as usize] = Some(p.rec);
    }
    out.into_iter()
        .enumerate()
        .map(|(g, o)| o.ok_or_else(|| EmError::config(format!("group {g} left unresolved"))))
        .collect()
}

/// One frame of the recursion. `ts[g] == 0` marks an inactive group (it is
/// not present in `d` and must not be answered). Returns a file of
/// `(record, group)` pairs, one per group active at entry.
fn solve<R: Record>(
    ctx: &EmContext,
    mut d: EmFile<Tagged<R>>,
    mut ts: SpillVec<u64>,
) -> Result<EmFile<Tagged<R>>> {
    let l = ts.len();
    let block = ctx.config().block_size();
    let base_cap = (ctx.mem_records::<Tagged<R>>() / 3).max(block);
    let mut resolved = SpillVec::<Tagged<R>>::with_capacity(ctx, l, "resolved answers")?;

    loop {
        let active = ts.as_slice().iter().filter(|&&t| t > 0).count();
        if active == 0 {
            break;
        }
        let n = d.len();

        if n as usize <= base_cap {
            base_case(ctx, &d, &mut ts, &mut resolved)?;
            break;
        }

        // --- Round step 1: subgroup medians into Σ (one scan of D). ---
        let sigma_counts = {
            let mut slots =
                ctx.try_tracked_buf::<[Option<R>; 5]>(l, 5 * (R::WORDS + 1), "subgroup slots")?;
            let mut fill = ctx.try_tracked_words::<u8>(l, "subgroup fill")?;
            for _ in 0..l {
                slots.push([None; 5]);
                fill.push(0);
            }
            let mut sigma_counts = ctx.try_tracked_words::<u32>(l, "sigma sizes")?;
            for _ in 0..l {
                sigma_counts.push(0);
            }
            let mut sw = ctx.writer::<Tagged<R>>()?;
            {
                let ts_s = ts.as_slice();
                let mut r = d.reader()?;
                while let Some(e) = r.next()? {
                    let g = e.group as usize;
                    if g >= l || ts_s[g] == 0 {
                        return Err(EmError::config(format!(
                            "record with inactive or out-of-range group {g}"
                        )));
                    }
                    let k = fill[g] as usize;
                    slots[g][k] = Some(e.rec);
                    fill[g] += 1;
                    if fill[g] == 5 {
                        let five: Vec<R> = slots[g].iter().map(|o| o.expect("filled")).collect();
                        sw.push(Tagged::new(median_of_five(&five), e.group))?;
                        sigma_counts[g] += 1;
                        fill[g] = 0;
                    }
                }
            }
            // Flush leftover subgroups.
            for g in 0..l {
                let k = fill[g] as usize;
                if k > 0 {
                    let part: Vec<R> = slots[g][..k].iter().map(|o| o.expect("filled")).collect();
                    sw.push(Tagged::new(median_of_five(&part), g as u32))?;
                    sigma_counts[g] += 1;
                }
            }
            drop(slots);
            drop(fill);
            let sigma = sw.finish()?;
            (sigma, sigma_counts)
        };
        let (sigma, sigma_counts) = sigma_counts;

        // Child targets: the median rank of each Σ_i.
        let mut tchild = ctx.try_tracked_words::<u64>(l, "child targets")?;
        for g in 0..l {
            let active_g = ts.as_slice()[g] > 0;
            if active_g && sigma_counts[g] == 0 {
                return Err(EmError::config(format!(
                    "group {g} has target {} but no records",
                    ts.as_slice()[g]
                )));
            }
            tchild.push(if active_g {
                (sigma_counts[g] as u64).div_ceil(2)
            } else {
                0
            });
        }
        drop(sigma_counts);
        let tchild = SpillVec::from_tracked(ctx, tchild, "child targets");

        // --- Round step 2: recurse on Σ for the medians-of-medians. ---
        // Spill this frame's O(L) state so the child frame has the memory.
        ts.spill()?;
        resolved.spill()?;
        let mu_file = solve(ctx, sigma, tchild)?;
        ts.unspill()?;
        resolved.unspill()?;

        let mut mu = ctx.try_tracked_buf::<Option<R>>(l, R::WORDS + 1, "round medians")?;
        for _ in 0..l {
            mu.push(None);
        }
        {
            let mut r = mu_file.reader()?;
            while let Some(p) = r.next()? {
                mu[p.group as usize] = Some(p.rec);
            }
        }
        drop(mu_file);

        // --- Round step 3: three-way rank counts against μ (one scan). ---
        let mut less = ctx.try_tracked_words::<u64>(l, "less counts")?;
        let mut equal = ctx.try_tracked_words::<u64>(l, "equal counts")?;
        for _ in 0..l {
            less.push(0);
            equal.push(0);
        }
        {
            let ts_s = ts.as_slice();
            let mut r = d.reader()?;
            while let Some(e) = r.next()? {
                let g = e.group as usize;
                if ts_s[g] == 0 {
                    continue;
                }
                let mk = mu[g].expect("active group has a median").key();
                match e.key().cmp(&mk) {
                    std::cmp::Ordering::Less => less[g] += 1,
                    std::cmp::Ordering::Equal => equal[g] += 1,
                    std::cmp::Ordering::Greater => {}
                }
            }
        }

        // --- Round step 4: resolve or narrow each group; build D'. ---
        // side: 0 = keep < μ, 1 = keep > μ, 2 = done/inactive.
        let mut side = ctx.try_tracked_words::<u8>(l, "sides")?;
        for _ in 0..l {
            side.push(2);
        }
        for g in 0..l {
            let t = ts.as_slice()[g];
            if t == 0 {
                continue;
            }
            if t <= less[g] {
                side[g] = 0;
            } else if t <= less[g] + equal[g] {
                resolved.push(Tagged::new(mu[g].expect("median"), g as u32));
                ts.as_mut_slice()[g] = 0;
            } else {
                side[g] = 1;
                ts.as_mut_slice()[g] = t - less[g] - equal[g];
            }
        }
        drop(less);
        drop(equal);

        let mut w = ctx.writer::<Tagged<R>>()?;
        {
            let mut r = d.reader()?;
            while let Some(e) = r.next()? {
                let g = e.group as usize;
                let keep = match side[g] {
                    0 => e.key() < mu[g].expect("median").key(),
                    1 => e.key() > mu[g].expect("median").key(),
                    _ => false,
                };
                if keep {
                    w.push(e)?;
                }
            }
        }
        drop(side);
        drop(mu);
        let new_d = w.finish()?;
        debug_assert!(new_d.len() < n, "intermixed round must shrink D");
        d = new_d;
    }

    // Emit the resolved pairs.
    let mut w = ctx.writer::<Tagged<R>>()?;
    w.push_all(resolved.as_slice())?;
    w.finish()
}

/// In-memory base case: load all of `d`, sort by (group, key), and read
/// off each active group's target rank.
fn base_case<R: Record>(
    ctx: &EmContext,
    d: &EmFile<Tagged<R>>,
    ts: &mut SpillVec<u64>,
    resolved: &mut SpillVec<Tagged<R>>,
) -> Result<()> {
    let n = d.len() as usize;
    let mut buf = ctx.try_tracked_vec::<Tagged<R>>(n, "intermixed base case")?;
    let mut r = d.reader()?;
    while let Some(e) = r.next()? {
        buf.push(e);
    }
    drop(r);
    buf.sort_unstable_by_key(|a| (a.group, a.key()));
    let ts_s = ts.as_mut_slice();
    let mut i = 0usize;
    while i < buf.len() {
        let g = buf[i].group;
        let mut j = i;
        while j < buf.len() && buf[j].group == g {
            j += 1;
        }
        let t = ts_s[g as usize];
        if t > 0 {
            if t as usize > j - i {
                return Err(EmError::config(format!(
                    "group {g}: target {t} exceeds group size {}",
                    j - i
                )));
            }
            resolved.push(buf[i + (t as usize) - 1]);
            ts_s[g as usize] = 0;
        }
        i = j;
    }
    if let Some(g) = ts_s.iter().position(|&t| t > 0) {
        return Err(EmError::config(format!(
            "group {g} has target {} but no records",
            ts_s[g]
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::EmConfig;

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny()) // M=256, B=16; max_groups(u64)=10
    }

    /// Build an intermixed file from per-group data, interleaved round-robin.
    fn build_d(ctx: &EmContext, groups: &[Vec<u64>]) -> EmFile<Tagged<u64>> {
        let mut w = ctx.writer::<Tagged<u64>>().unwrap();
        let maxlen = groups.iter().map(|g| g.len()).max().unwrap_or(0);
        for i in 0..maxlen {
            for (g, data) in groups.iter().enumerate() {
                if i < data.len() {
                    w.push(Tagged::new(data[i], g as u32)).unwrap();
                }
            }
        }
        w.finish().unwrap()
    }

    fn expected(groups: &[Vec<u64>], ts: &[u64]) -> Vec<u64> {
        groups
            .iter()
            .zip(ts)
            .map(|(g, &t)| {
                let mut s = g.clone();
                s.sort_unstable();
                s[(t - 1) as usize]
            })
            .collect()
    }

    #[test]
    fn single_group_is_rank_selection() {
        let c = ctx();
        let data: Vec<u64> = (0..500).rev().collect();
        let d = build_d(&c, std::slice::from_ref(&data));
        let got = intermixed_select(d, &[250]).unwrap();
        assert_eq!(got, vec![249]);
    }

    #[test]
    fn small_all_in_memory() {
        let c = ctx();
        let groups = vec![vec![3u64, 1, 2], vec![10, 30, 20], vec![7]];
        let ts = vec![2, 3, 1];
        let want = expected(&groups, &ts);
        let d = build_d(&c, &groups);
        assert_eq!(intermixed_select(d, &ts).unwrap(), want);
    }

    #[test]
    fn large_multi_round() {
        let c = ctx();
        // 4 groups × 600 records = 2400 > M; forces several rounds + recursion.
        let mut s = 11u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let groups: Vec<Vec<u64>> = (0..4)
            .map(|_| (0..600).map(|_| next() % 100_000).collect())
            .collect();
        let ts = vec![1, 300, 599, 600];
        let want = expected(&groups, &ts);
        let d = build_d(&c, &groups);
        assert_eq!(intermixed_select(d, &ts).unwrap(), want);
    }

    #[test]
    fn duplicate_keys_exact() {
        let c = ctx();
        let groups = vec![vec![5u64; 700], (0..700u64).map(|i| i % 3).collect()];
        let ts = vec![350, 400];
        let want = expected(&groups, &ts);
        let d = build_d(&c, &groups);
        assert_eq!(intermixed_select(d, &ts).unwrap(), want);
    }

    #[test]
    fn uneven_group_sizes() {
        let c = ctx();
        let groups = vec![
            (0..997u64).rev().collect::<Vec<_>>(),
            vec![42u64],
            (0..313u64).map(|i| i * 7).collect(),
        ];
        let ts = vec![997, 1, 100];
        let want = expected(&groups, &ts);
        let d = build_d(&c, &groups);
        assert_eq!(intermixed_select(d, &ts).unwrap(), want);
    }

    #[test]
    fn linear_io_cost() {
        let c = EmContext::new_in_memory(EmConfig::medium()); // M=4096, B=64
        let mut s = 5u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let groups: Vec<Vec<u64>> = (0..8)
            .map(|_| (0..10_000).map(|_| next()).collect())
            .collect();
        let ts: Vec<u64> = (0..8).map(|g| 1000 * (g + 1)).collect();
        let d = c.stats().paused(|| build_d(&c, &groups));
        let n = d.len();
        let before = c.stats().snapshot();
        let _ = intermixed_select(d, &ts).unwrap();
        let ios = c.stats().snapshot().since(&before).total_ios();
        let scan = n.div_ceil(64);
        assert!(
            ios <= 25 * scan,
            "intermixed selection took {ios} I/Os = {:.1} scans; expected O(1) scans",
            ios as f64 / scan as f64
        );
    }

    #[test]
    fn too_many_groups_rejected() {
        let c = ctx();
        let cap = max_groups::<u64>(c.config());
        let groups: Vec<Vec<u64>> = (0..cap + 1).map(|g| vec![g as u64]).collect();
        let ts = vec![1u64; cap + 1];
        let d = build_d(&c, &groups);
        assert!(intermixed_select(d, &ts).is_err());
    }

    #[test]
    fn zero_target_rejected() {
        let c = ctx();
        let d = build_d(&c, &[vec![1u64]]);
        assert!(intermixed_select(d, &[0]).is_err());
    }

    #[test]
    fn target_exceeding_group_rejected() {
        let c = ctx();
        let d = build_d(&c, &[vec![1u64, 2]]);
        assert!(intermixed_select(d, &[3]).is_err());
    }

    #[test]
    fn target_exceeding_group_rejected_large() {
        let c = ctx();
        // big enough to take the external path
        let groups = vec![(0..1000u64).collect::<Vec<_>>(), vec![1u64, 2]];
        let d = build_d(&c, &groups);
        assert!(intermixed_select(d, &[500, 3]).is_err());
    }

    #[test]
    fn empty_targets_ok() {
        let c = ctx();
        let d = c.create_file::<Tagged<u64>>().unwrap();
        assert!(intermixed_select(d, &[]).unwrap().is_empty());
    }

    #[test]
    fn strict_memory_respected_at_max_groups() {
        let c = ctx();
        let cap = max_groups::<u64>(c.config());
        let mut s = 17u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let groups: Vec<Vec<u64>> = (0..cap)
            .map(|_| (0..300).map(|_| next() % 1000).collect())
            .collect();
        let ts: Vec<u64> = vec![150; cap];
        let want = expected(&groups, &ts);
        let d = c.stats().paused(|| build_d(&c, &groups));
        // strict context: any memory violation panics
        assert_eq!(intermixed_select(d, &ts).unwrap(), want);
    }
}
