//! Multi-partition: split `S` into `K` ordered partitions of *given sizes*.
//!
//! The problem reviewed in the paper's §1.2: given `σ_1, …, σ_K` with
//! `Σσ_i = N`, produce partitions `P_1, …, P_K` with `|P_i| = σ_i` and
//! every element of `P_i` smaller than every element of `P_j` for `i < j`.
//! Solvable in `O((N/B)·lg_{M/B} K)` I/Os [Aggarwal & Vitter 1988], which
//! is optimal (paper Lemma 5).
//!
//! Implementation: recursive distribution. Each level finds `f − 1`
//! approximate even splitters in `O(n/B)` I/Os
//! ([`crate::sample_splitters`]), distributes into `f` buckets, and routes
//! the target boundary ranks to buckets. Buckets containing no interior
//! rank lie inside a single output partition and are emitted verbatim;
//! the rest recurse on geometrically smaller inputs. Memory-resident
//! subproblems finish by an in-memory sort. Inputs dominated by one key
//! value (which no splitter set can spread) fall back to a three-way
//! split around that value; the `equal` slab is emitted directly since
//! its records are mutually interchangeable.
//!
//! Cost: `O(n/B)` per level times `O(1 + lg_{M/B} min{K, n/B})` levels.
//! Output partitions are [`Partition`] segment lists (the paper's linked
//! list), so a rank-free bucket is adopted as partition content in `O(1)`
//! — distribution levels cost exactly one read + one write pass.

use emcore::{EmContext, EmError, EmFile, Record, Result, Writer};

use crate::distribute::{distribute_segs, max_distribution_fanout_now, three_way_split};
use crate::partition_out::{segs_len, ChainReader, Partition};
use crate::sample_splitters::{
    max_deterministic_fanout_n, sample_splitters_segs, SplitterStrategy,
};

/// Options controlling multi-partition (ablation hooks).
#[derive(Debug, Clone, Copy, Default)]
pub struct MpOptions {
    /// Splitter sampling strategy.
    pub strategy: SplitterStrategy,
    /// Cap the distribution fan-out below the memory-feasible maximum
    /// (EX-A2 sweeps this). `None` = use the maximum.
    pub fanout_override: Option<usize>,
}

/// Partition `input` into `sizes.len()` ordered partitions with exactly the
/// given sizes (`Σ sizes = input.len()`, zeros allowed). Returns one
/// [`Partition`] per requested size, in order — the paper's "linked list"
/// output.
pub fn multi_partition<T: Record>(input: &EmFile<T>, sizes: &[u64]) -> Result<Vec<Partition<T>>> {
    multi_partition_with(input, sizes, MpOptions::default())
}

/// [`multi_partition`] with explicit options.
pub fn multi_partition_with<T: Record>(
    input: &EmFile<T>,
    sizes: &[u64],
    opts: MpOptions,
) -> Result<Vec<Partition<T>>> {
    multi_partition_segs(input.ctx(), std::slice::from_ref(input), sizes, opts)
}

/// [`multi_partition`] over a segment list (e.g. a [`Partition`]'s
/// segments) — avoids flattening multi-segment inputs first.
pub fn multi_partition_segs<T: Record>(
    ctx: &EmContext,
    segs: &[EmFile<T>],
    sizes: &[u64],
    opts: MpOptions,
) -> Result<Vec<Partition<T>>> {
    let n = segs_len(segs);
    if sizes.is_empty() {
        return Err(EmError::config("multi-partition needs at least one size"));
    }
    let total: u64 = sizes.iter().sum();
    if total != n {
        return Err(EmError::config(format!(
            "partition sizes sum to {total}, input has {n} records"
        )));
    }
    let ctx = ctx.clone();
    // Synthetic charge for consuming the caller's size list (DESIGN.md,
    // model-fidelity notes).
    ctx.stats()
        .charge_reads((sizes.len() as u64).div_ceil(ctx.config().block_size() as u64));

    // Cumulative boundaries; the interior ones are the recursion's targets.
    let mut bounds = Vec::with_capacity(sizes.len());
    let mut acc = 0u64;
    for &s in sizes {
        acc += s;
        bounds.push(acc);
    }
    let mut interior: Vec<u64> = bounds[..bounds.len() - 1]
        .iter()
        .copied()
        .filter(|&r| r > 0 && r < n)
        .collect();
    interior.dedup();

    let _phase = ctx.stats().phase_guard("multi-partition");
    let mut sink = PartitionSink::new(&ctx, bounds)?;
    mp_rec(&ctx, MpInput::Borrowed(segs), &interior, &mut sink, &opts)?;
    let out = sink.finish()?;
    Ok(out)
}

/// Partition at explicit interior boundary *ranks* (strictly increasing,
/// in `(0, N)`): returns `ranks.len() + 1` partitions where partition `i`
/// holds the records of global ranks `(r_{i-1}, r_i]`.
pub fn multi_partition_at_ranks<T: Record>(
    input: &EmFile<T>,
    ranks: &[u64],
) -> Result<Vec<Partition<T>>> {
    let n = input.len();
    let mut sizes = Vec::with_capacity(ranks.len() + 1);
    let mut prev = 0u64;
    for &r in ranks {
        if r <= prev || r >= n {
            return Err(EmError::config(format!(
                "boundary ranks must be strictly increasing inside (0, {n}); got {r} after {prev}"
            )));
        }
        sizes.push(r - prev);
        prev = r;
    }
    sizes.push(n - prev);
    multi_partition(input, &sizes)
}

enum MpInput<'a, T: Record> {
    Borrowed(&'a [EmFile<T>]),
    Owned(EmFile<T>),
}

impl<T: Record> MpInput<'_, T> {
    fn segs(&self) -> &[EmFile<T>] {
        match self {
            MpInput::Borrowed(s) => s,
            MpInput::Owned(f) => std::slice::from_ref(f),
        }
    }
}

fn mp_rec<T: Record>(
    ctx: &EmContext,
    d: MpInput<'_, T>,
    ranks: &[u64], // strictly increasing, in (0, n): *local* boundary ranks
    sink: &mut PartitionSink<T>,
    opts: &MpOptions,
) -> Result<()> {
    let n = segs_len(d.segs());
    if n == 0 {
        return Ok(());
    }
    if ranks.is_empty() {
        // Whole input lies inside one output partition. Owned intermediates
        // are adopted as segments for free; borrowed inputs are streamed.
        return match d {
            MpInput::Owned(f) => sink.adopt_file(f),
            MpInput::Borrowed(segs) => {
                for f in segs {
                    sink.stream_file(f)?;
                }
                Ok(())
            }
        };
    }
    let base_cap = (ctx.mem_records::<T>() / 2).max(ctx.config().block_size());
    if n as usize <= base_cap {
        let mut buf = ctx.try_tracked_vec::<T>(n as usize, "multi-partition base case")?;
        let mut r = ChainReader::new(d.segs());
        while let Some(x) = r.next()? {
            buf.push(x);
        }
        drop(r);
        buf.sort_unstable_by_key(|a| a.key());
        for &x in buf.iter() {
            sink.push(x)?;
        }
        return Ok(());
    }

    let fmax = max_distribution_fanout_now::<T>(ctx)
        .min(max_deterministic_fanout_n::<T>(ctx, n))
        .max(2);
    let f = opts.fanout_override.map_or(fmax, |o| o.clamp(2, fmax));
    let splitters = sample_splitters_segs(ctx, d.segs(), f, opts.strategy)?;
    let buckets = distribute_segs(ctx, d.segs(), &splitters)?;
    drop(d); // free the intermediate input before recursing

    let max_bucket = buckets.iter().map(|b| b.len()).max().unwrap_or(0);
    if max_bucket == n {
        // No progress: one key value dominates. Split three ways around it
        // and emit the `equal` slab directly (its records are mutually
        // interchangeable, so the sink's boundary cuts are all valid).
        let full = buckets
            .into_iter()
            .find(|b| b.len() == n)
            .ok_or_else(|| EmError::config("full-size bucket vanished"))?;
        let pivot = dominant_pivot(&full)?;
        let (less, equal, greater) = three_way_split(&full, pivot)?;
        drop(full);
        let mut offset = 0u64;
        for (idx, part) in [less, equal, greater].into_iter().enumerate() {
            let size = part.len();
            let local = shift_ranks(ranks, offset, size);
            if local.is_empty() {
                sink.adopt_file(part)?;
            } else if idx == 1 {
                // Equal slab with interior ranks: its records are mutually
                // interchangeable, so stream it through the boundary cuts.
                sink.stream_file(&part)?;
            } else {
                mp_rec(ctx, MpInput::Owned(part), &local, sink, opts)?;
            }
            offset += size;
        }
        return Ok(());
    }

    let mut offset = 0u64;
    for bucket in buckets {
        let size = bucket.len();
        let local = shift_ranks(ranks, offset, size);
        if local.is_empty() {
            // No partition boundary strictly inside: the whole bucket file
            // becomes a segment of the current partition at zero I/O cost.
            sink.adopt_file(bucket)?;
        } else {
            mp_rec(ctx, MpInput::Owned(bucket), &local, sink, opts)?;
        }
        offset += size;
    }
    Ok(())
}

/// The ranks falling strictly inside `(offset, offset + size)`, shifted to
/// be local to that range.
fn shift_ranks(ranks: &[u64], offset: u64, size: u64) -> Vec<u64> {
    let lo = ranks.partition_point(|&r| r <= offset);
    // For an empty range (`size == 0`, possible when a three-way split
    // leaves a side bucket empty) a rank equal to `offset` makes the two
    // partition points cross (`lo > hi`); clamp — nothing is strictly
    // inside an empty range.
    let hi = ranks.partition_point(|&r| r < offset + size).max(lo);
    ranks[lo..hi].iter().map(|&r| r - offset).collect()
}

/// The median key of the first block of `file` — by construction of the
/// fallback path the file is dominated by one key value, and any value
/// present works as the three-way pivot; the *majority* value is the one
/// that guarantees progress. Take the most frequent key of the first
/// block, which must be the dominant one when a single value fills the
/// whole bucket range.
fn dominant_pivot<T: Record>(file: &EmFile<T>) -> Result<T::Key> {
    let ctx = file.ctx();
    let mut buf = ctx.try_tracked_vec::<T>(ctx.config().block_size(), "pivot probe")?;
    file.read_block_into(0, &mut buf)?;
    let mut keys: Vec<T::Key> = buf.iter().map(|r| r.key()).collect();
    keys.sort_unstable();
    // Most frequent key in the probe block.
    let mut best = keys[0];
    let mut best_run = 0usize;
    let mut i = 0usize;
    while i < keys.len() {
        let mut j = i;
        while j < keys.len() && keys[j] == keys[i] {
            j += 1;
        }
        if j - i > best_run {
            best_run = j - i;
            best = keys[i];
        }
        i = j;
    }
    Ok(best)
}

/// Routes an ordered stream of records and whole files into per-partition
/// segment lists, cutting at the given cumulative boundaries.
struct PartitionSink<T: Record> {
    ctx: EmContext,
    bounds: Vec<u64>,
    cur: usize,
    written: u64,
    /// Open streaming writer for the current partition (lazily created).
    buf: Option<Writer<T>>,
    /// Completed segments of the current partition.
    segs: Vec<EmFile<T>>,
    done: Vec<Partition<T>>,
}

impl<T: Record> PartitionSink<T> {
    fn new(ctx: &EmContext, bounds: Vec<u64>) -> Result<Self> {
        let mut s = Self {
            ctx: ctx.clone(),
            bounds,
            cur: 0,
            written: 0,
            buf: None,
            segs: Vec::new(),
            done: Vec::new(),
        };
        s.advance()?; // leading zero-size partitions
        Ok(s)
    }

    /// Append one record to the current partition.
    fn push(&mut self, rec: T) -> Result<()> {
        debug_assert!(self.cur < self.bounds.len(), "pushed past final boundary");
        let buf = match self.buf.as_mut() {
            Some(w) => w,
            None => self.buf.insert(self.ctx.writer::<T>()?),
        };
        buf.push(rec)?;
        self.written += 1;
        self.advance()
    }

    /// Adopt a whole file as a segment of the current partition — `O(1)`,
    /// no I/O. The file must fit inside the current partition (guaranteed
    /// for rank-free buckets, which never straddle a boundary).
    fn adopt_file(&mut self, file: EmFile<T>) -> Result<()> {
        if file.is_empty() {
            return Ok(());
        }
        let end = self.written + file.len();
        debug_assert!(
            self.cur < self.bounds.len() && end <= self.bounds[self.cur],
            "adopted file straddles a partition boundary"
        );
        self.flush_buf()?;
        self.segs.push(file);
        self.written = end;
        self.advance()
    }

    /// Stream a file record by record through the boundary cuts (used for
    /// the interchangeable equal-slab fallback).
    fn stream_file(&mut self, file: &EmFile<T>) -> Result<()> {
        let mut r = file.reader()?;
        while let Some(x) = r.next()? {
            self.push(x)?;
        }
        Ok(())
    }

    fn flush_buf(&mut self) -> Result<()> {
        if let Some(w) = self.buf.take() {
            if w.is_empty() {
                return Ok(());
            }
            self.segs.push(w.finish()?);
        }
        Ok(())
    }

    fn advance(&mut self) -> Result<()> {
        while self.cur < self.bounds.len() && self.written == self.bounds[self.cur] {
            self.flush_buf()?;
            let segs = std::mem::take(&mut self.segs);
            self.done.push(Partition::from_segments(segs));
            self.cur += 1;
        }
        Ok(())
    }

    fn finish(self) -> Result<Vec<Partition<T>>> {
        if self.cur != self.bounds.len() {
            return Err(EmError::config(format!(
                "partition sink finished early: {} of {} records routed",
                self.written,
                self.bounds.last().copied().unwrap_or(0)
            )));
        }
        Ok(self.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext};

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny())
    }

    #[test]
    fn shift_ranks_tolerates_empty_bucket_at_rank_boundary() {
        // A three-way split can leave a side bucket empty; a rank landing
        // exactly on that bucket's offset used to cross the partition
        // points and panic on the slice.
        assert!(shift_ranks(&[409], 409, 0).is_empty());
        assert!(shift_ranks(&[409], 409, 1).is_empty());
        assert_eq!(shift_ranks(&[409], 408, 2), vec![1]);
    }

    fn shuffled(n: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        let mut s = 7u64;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    fn check_partitions(parts: &[Partition<u64>], sizes: &[u64]) {
        assert_eq!(parts.len(), sizes.len());
        let mut prev_max: Option<u64> = None;
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.len(), sizes[i], "partition {i} size");
            if p.is_empty() {
                continue;
            }
            let v = p.to_vec().unwrap();
            let mn = *v.iter().min().unwrap();
            let mx = *v.iter().max().unwrap();
            if let Some(pm) = prev_max {
                assert!(mn >= pm, "partition {i} min {mn} < previous max {pm}");
            }
            prev_max = Some(mx + 1); // strict keys in these tests
        }
    }

    #[test]
    fn equal_sizes_small() {
        let c = ctx();
        let data = shuffled(100);
        let f = EmFile::from_slice(&c, &data).unwrap();
        let parts = multi_partition(&f, &[25, 25, 25, 25]).unwrap();
        check_partitions(&parts, &[25, 25, 25, 25]);
        // Exact contents of partition 0: values 0..25
        let mut p0 = parts[0].to_vec().unwrap();
        p0.sort_unstable();
        assert_eq!(p0, (0..25).collect::<Vec<u64>>());
    }

    #[test]
    fn equal_sizes_large_multilevel() {
        let c = ctx();
        let n = 30_000u64;
        let data = shuffled(n);
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let k = 8u64;
        let sizes = vec![n / k; k as usize];
        let parts = multi_partition(&f, &sizes).unwrap();
        check_partitions(&parts, &sizes);
    }

    #[test]
    fn uneven_sizes() {
        let c = ctx();
        let n = 5000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n)))
            .unwrap();
        let sizes = vec![1, 4000, 9, 990];
        let parts = multi_partition(&f, &sizes).unwrap();
        check_partitions(&parts, &sizes);
        assert_eq!(parts[0].to_vec().unwrap(), vec![0]);
    }

    #[test]
    fn zero_sizes_produce_empty_partitions() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &shuffled(50)).unwrap();
        let sizes = vec![0, 25, 0, 0, 25, 0];
        let parts = multi_partition(&f, &sizes).unwrap();
        check_partitions(&parts, &sizes);
    }

    #[test]
    fn single_partition_is_copy() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &shuffled(40)).unwrap();
        let parts = multi_partition(&f, &[40]).unwrap();
        assert_eq!(parts.len(), 1);
        let mut v = parts[0].to_vec().unwrap();
        v.sort_unstable();
        assert_eq!(v, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn size_sum_mismatch_rejected() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &[1u64, 2, 3]).unwrap();
        assert!(multi_partition(&f, &[1, 1]).is_err());
        assert!(multi_partition(&f, &[]).is_err());
    }

    #[test]
    fn at_ranks_convention() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &shuffled(100)).unwrap();
        let parts = multi_partition_at_ranks(&f, &[10, 60]).unwrap();
        check_partitions(&parts, &[10, 50, 40]);
        assert!(multi_partition_at_ranks(&f, &[0]).is_err());
        assert!(multi_partition_at_ranks(&f, &[100]).is_err());
        assert!(multi_partition_at_ranks(&f, &[5, 5]).is_err());
    }

    #[test]
    fn all_equal_keys_terminates() {
        let c = ctx();
        let data = vec![7u64; 3000];
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let parts = multi_partition(&f, &[1000, 1000, 1000]).unwrap();
        for p in &parts {
            assert_eq!(p.len(), 1000);
            assert!(p.to_vec().unwrap().iter().all(|&x| x == 7));
        }
    }

    #[test]
    fn duplicate_dominated_input_terminates() {
        let c = ctx();
        // 90% the value 5, rest spread
        let mut data: Vec<u64> = vec![5; 2700];
        data.extend(0..300u64);
        // interleave deterministically
        let mut s = 3u64;
        for i in (1..data.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.swap(i, (s >> 33) as usize % (i + 1));
        }
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let parts = multi_partition(&f, &[1500, 1500]).unwrap();
        let p0 = parts[0].to_vec().unwrap();
        let p1 = parts[1].to_vec().unwrap();
        assert_eq!(p0.len(), 1500);
        assert_eq!(p1.len(), 1500);
        let max0 = p0.iter().max().unwrap();
        let min1 = p1.iter().min().unwrap();
        assert!(max0 <= min1);
    }

    #[test]
    fn io_scales_with_log_k() {
        // For fixed N, I/O should grow roughly with lg K, not linearly in K.
        let n = 40_000u64;
        let measure = |k: u64| -> u64 {
            let c = EmContext::new_in_memory(EmConfig::tiny());
            let f = c
                .stats()
                .paused(|| EmFile::from_slice(&c, &shuffled(n)))
                .unwrap();
            let sizes = vec![n / k; k as usize];
            let before = c.stats().snapshot();
            let _ = multi_partition(&f, &sizes).unwrap();
            c.stats().snapshot().since(&before).total_ios()
        };
        let io2 = measure(2);
        let io64 = measure(64);
        // 64 partitions needs more work than 2 but far less than 32x.
        assert!(io64 > io2, "io64={io64} io2={io2}");
        assert!(io64 < io2 * 8, "io64={io64} io2={io2}");
    }

    #[test]
    fn output_preserves_multiset() {
        let c = ctx();
        let data: Vec<u64> = (0..4000u64).map(|i| i % 97).collect();
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let parts = multi_partition(&f, &[1000, 1000, 1000, 1000]).unwrap();
        let mut all: Vec<u64> = Vec::new();
        for p in &parts {
            all.extend(p.to_vec().unwrap());
        }
        let mut want = data.clone();
        want.sort_unstable();
        all.sort_unstable();
        assert_eq!(all, want);
        // Boundaries respect the order under ≤ (ties may straddle a cut):
        // each partition's min is at least the previous partition's max.
        let mut prev_max: Option<u64> = None;
        for p in &parts {
            let v = p.to_vec().unwrap();
            let mn = *v.iter().min().unwrap();
            if let Some(pm) = prev_max {
                assert!(mn >= pm, "min {mn} < previous max {pm}");
            }
            prev_max = Some(*v.iter().max().unwrap());
        }
    }
}
