//! Internal-memory multi-selection and multi-partition with comparison
//! counting.
//!
//! The paper's §1.2–1.3 contrast the external-memory situation with RAM:
//! in internal memory, multi-selection and multi-partition have *exactly*
//! the same complexity — both demand `Θ(N lg K)` comparisons (multi-select
//! lower bound by Kaligosi–Mehlhorn–Munro–Sanders [7]; multi-partition by
//! the information-theoretic argument of the paper's Lemma 5) — whereas in
//! EM they separate. This module makes that contrast measurable: exact
//! comparison counts for both problems, used by experiment EX-IM.

use std::cell::Cell;

/// A comparison counter threaded through the algorithms below.
#[derive(Debug, Default)]
pub struct CmpCounter {
    count: Cell<u64>,
}

impl CmpCounter {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn cmp<K: Ord>(&self, a: &K, b: &K) -> std::cmp::Ordering {
        self.count.set(self.count.get() + 1);
        a.cmp(b)
    }

    /// Comparisons recorded so far.
    pub fn count(&self) -> u64 {
        self.count.get()
    }
}

/// In-RAM multi-selection by recursive halving around the middle target
/// rank (`ranks` ascending, 1-based, within `[1, data.len()]`), counting
/// every key comparison. Returns the selected values.
///
/// `O(N lg K)` comparisons — optimal by [7].
pub fn multi_select_counting<K: Ord + Copy>(
    data: &mut [K],
    ranks: &[u64],
    cmp: &CmpCounter,
) -> Vec<K> {
    let mut out = vec![None; ranks.len()];
    rec(data, ranks, 0, &mut out, cmp);
    return out.into_iter().map(|o| o.expect("filled")).collect();

    fn rec<K: Ord + Copy>(
        data: &mut [K],
        ranks: &[u64],
        offset: u64,
        out: &mut [Option<K>],
        cmp: &CmpCounter,
    ) {
        if ranks.is_empty() {
            return;
        }
        let mid = ranks.len() / 2;
        let local = (ranks[mid] - offset) as usize; // 1-based
        let idx = local - 1;
        let (lo, kth, hi) = data.select_nth_unstable_by(idx, |a, b| cmp.cmp(a, b));
        let kth = *kth;
        let lo_end = ranks[..mid].partition_point(|&x| x < ranks[mid]);
        let hi_start = mid + ranks[mid..].partition_point(|&x| x <= ranks[mid]);
        for slot in &mut out[lo_end..hi_start] {
            *slot = Some(kth);
        }
        let (out_lo, rest) = out.split_at_mut(lo_end);
        let (_, out_hi) = rest.split_at_mut(hi_start - lo_end);
        rec(lo, &ranks[..lo_end], offset, out_lo, cmp);
        rec(hi, &ranks[hi_start..], offset + local as u64, out_hi, cmp);
    }
}

/// In-RAM multi-partition by recursive halving: rearranges `data` so that
/// the element ranges split exactly at the given ascending interior
/// `ranks`, counting every key comparison. (The classical lower bound —
/// paper Lemma 5's internal-memory analogue — is `Ω(N lg K)`, matched
/// here.)
pub fn multi_partition_counting<K: Ord + Copy>(data: &mut [K], ranks: &[u64], cmp: &CmpCounter) {
    if ranks.is_empty() || data.is_empty() {
        return;
    }
    let mid = ranks.len() / 2;
    let idx = (ranks[mid] - 1) as usize;
    let (lo, _, hi) = data.select_nth_unstable_by(idx, |a, b| cmp.cmp(a, b));
    let lo_ranks: Vec<u64> = ranks[..mid].to_vec();
    let hi_ranks: Vec<u64> = ranks[mid + 1..].iter().map(|&r| r - ranks[mid]).collect();
    multi_partition_counting(lo, &lo_ranks, cmp);
    multi_partition_counting(hi, &hi_ranks, cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        let mut s = seed;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn counting_select_correct() {
        let mut data = shuffled(1000, 1);
        let cmp = CmpCounter::new();
        let ranks = vec![1, 250, 500, 1000];
        let got = multi_select_counting(&mut data, &ranks, &cmp);
        assert_eq!(got, vec![0, 249, 499, 999]);
        assert!(cmp.count() > 0);
    }

    #[test]
    fn counting_partition_correct() {
        let mut data = shuffled(1000, 2);
        let cmp = CmpCounter::new();
        multi_partition_counting(&mut data, &[250, 500, 750], &cmp);
        for (i, chunk) in data.chunks(250).enumerate() {
            let lo = (i as u64) * 250;
            assert!(chunk.iter().all(|&x| x >= lo && x < lo + 250));
        }
    }

    #[test]
    fn comparisons_scale_with_n_lg_k() {
        // Both problems: comparisons / (N·lg K) stays bounded as K grows.
        let n = 50_000u64;
        for k in [2u64, 8, 64, 512] {
            let ranks: Vec<u64> = (1..=k).map(|i| (i * n) / k).collect();
            let interior: Vec<u64> = ranks[..(k - 1) as usize].to_vec();

            let mut d1 = shuffled(n, 3);
            let c1 = CmpCounter::new();
            let _ = multi_select_counting(&mut d1, &ranks, &c1);

            let mut d2 = shuffled(n, 3);
            let c2 = CmpCounter::new();
            multi_partition_counting(&mut d2, &interior, &c2);

            let denom = n as f64 * (k as f64).log2().max(1.0);
            let r1 = c1.count() as f64 / denom;
            let r2 = c2.count() as f64 / denom;
            assert!(r1 < 6.0, "select K={k}: ratio {r1}");
            assert!(r2 < 6.0, "partition K={k}: ratio {r2}");
            // And the two track each other within a small constant — the
            // paper's "exactly the same complexity" remark.
            let rel = r1 / r2;
            assert!(
                (0.2..=5.0).contains(&rel),
                "K={k}: select/partition comparison ratio {rel}"
            );
        }
    }

    #[test]
    fn counter_counts() {
        let c = CmpCounter::new();
        assert_eq!(c.cmp(&1, &2), std::cmp::Ordering::Less);
        assert_eq!(c.cmp(&2, &2), std::cmp::Ordering::Equal);
        assert_eq!(c.count(), 2);
    }
}
