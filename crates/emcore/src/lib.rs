//! # emcore — an external-memory (I/O) model runtime
//!
//! This crate implements the computation model of Aggarwal and Vitter's
//! external-memory (EM) model as a *measurable runtime*: algorithms written
//! against it are charged exactly one I/O per block transferred and are
//! metered for internal-memory usage, so their empirical I/O complexity can
//! be compared against theoretical bounds.
//!
//! It is the substrate for the reproduction of *"Finding Approximate
//! Partitions and Splitters in External Memory"* (SPAA 2014); see the
//! workspace `DESIGN.md`.
//!
//! ## Pieces
//!
//! * [`EmConfig`] — the model parameters `M` (memory capacity) and `B`
//!   (block size), in records. `M` is a *dynamic* budget at runtime: the
//!   [`MemoryGovernor`] can squeeze and restore it mid-run and algorithms
//!   adapt at phase boundaries (`EmContext::set_mem_budget`).
//! * [`EmContext`] — a "machine": config + shared [`IoStats`] +
//!   [`MemoryTracker`] + backing store (host RAM or a real directory).
//! * [`EmFile`] — a typed sequence of records stored in `B`-record blocks;
//!   [`Reader`]/[`Writer`] give block-buffered sequential access.
//! * [`Record`] — fixed-width, keyed, POD records ([`KeyValue`],
//!   [`Tagged`], [`Indexed`] provided).
//! * [`SpillVec`] — bookkeeping arrays that can be written out to disk
//!   across recursive calls.
//! * [`Journal`] — durable, atomically-committed checkpoint documents for
//!   crash-recoverable algorithms ([`JournalState`] encode/decode).
//!
//! ## Example
//!
//! ```
//! use emcore::{EmConfig, EmContext, EmFile};
//!
//! let ctx = EmContext::new_in_memory(EmConfig::new(4096, 64).unwrap());
//! let data: Vec<u64> = (0..10_000).rev().collect();
//! let file = EmFile::from_slice(&ctx, &data).unwrap();
//!
//! // Scanning the file costs ceil(N/B) block reads:
//! let before = ctx.stats().snapshot();
//! let mut r = file.reader().unwrap();
//! let mut count = 0u64;
//! while let Some(_x) = r.next().unwrap() {
//!     count += 1;
//! }
//! assert_eq!(count, 10_000);
//! let ios = ctx.stats().snapshot().since(&before);
//! assert_eq!(ios.reads, 10_000u64.div_ceil(64));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod checksum;
pub mod clock;
mod config;
mod ctx;
mod error;
mod fault;
mod file;
pub mod governor;
mod journal;
mod memory;
pub mod metrics;
mod pool;
mod record;
pub mod recovery;
pub mod report;
mod rng;
mod spill;
mod stats;
pub mod trace;

pub use checksum::block_checksum;
pub use clock::{Clock, ManualClock, WallClock};
pub use config::EmConfig;
pub use ctx::EmContext;
pub use error::{EmError, Result};
pub use fault::{FaultCounts, FaultKind, FaultPlan, FaultSpec, IoOp, RetryPolicy, Trigger};
pub use file::{EmFile, Reader, Writer};
pub use governor::{GovernorSnapshot, Lease, LeaseInfo, MemoryGovernor};
pub use journal::{from_hex, to_hex, Journal, JournalState};
pub use memory::{MemCharge, MemoryTracker, TrackedVec};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricSample, MetricsRegistry,
    MetricsSnapshot, Sampler,
};
pub use pool::{BlockCache, PinnedBlock};
pub use record::{Indexed, KeyValue, Record, Tagged};
pub use recovery::{run_recoverable, RecoverableJob};
pub use report::{SpanNode, TraceReport};
pub use rng::SplitMix64;
pub use spill::SpillVec;
pub use stats::{Counters, IoStats, PhaseGuard, TraceSpanGuard};
pub use trace::{
    FileAccess, JsonlSink, PointKind, RingSink, TraceEvent, TraceSink, Tracer, HEAT_BUCKETS,
};
