//! Per-block checksums for the file-backed device.
//!
//! The `Directory` backend stores an 8-byte checksum alongside every block
//! and verifies it on read, turning silent device corruption (injected by a
//! [`crate::FaultPlan`] or real-world bit rot) into a detectable
//! [`crate::EmError::Corrupt`] instead of wrong answers.
//!
//! The function is FNV-1a folded through an avalanche finaliser. It is not
//! cryptographic — the threat model is accidental corruption (torn writes,
//! flipped bits), where a 64-bit checksum's miss probability (~2⁻⁶⁴ per
//! block) is negligible — and it is deterministic across platforms, so
//! on-disk files are verifiable anywhere.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit checksum of a byte slice (FNV-1a + SplitMix64 finaliser).
#[inline]
pub fn block_checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Finalise: FNV's low bits are weak for short inputs; one SplitMix64
    // mixing round gives full avalanche so single-bit flips change ~32 bits.
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(block_checksum(b"hello"), block_checksum(b"hello"));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let a = vec![0u8; 128];
        for i in 0..128 {
            for bit in 0..8 {
                let mut b = a.clone();
                b[i] ^= 1 << bit;
                assert_ne!(block_checksum(&a), block_checksum(&b), "byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn length_extension_distinct() {
        assert_ne!(block_checksum(b""), block_checksum(b"\0"));
        assert_ne!(block_checksum(b"\0"), block_checksum(b"\0\0"));
    }

    #[test]
    fn empty_input_ok() {
        let _ = block_checksum(b"");
    }
}
